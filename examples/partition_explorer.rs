//! Explore the heterogeneity- and memory-aware partitioner.
//!
//! Shows, for a mixed VRGQ virtual worker, how the min-max partitioner
//! assigns layers to GPUs of different speeds, how per-stage memory
//! limits bite as the pipeline concurrency `Nm` grows (`Max_m`), and
//! how stage order matters for heterogeneous GPUs.
//!
//! Run with: `cargo run --release --example partition_explorer`

use hetpipe::cluster::{GpuKind, LinkKind};
use hetpipe::model::memory::nm_saturation_limit;
use hetpipe::partition::{max_feasible_nm, PartitionProblem, PartitionSolver};
use hetpipe::prelude::*;

fn main() {
    let graph = resnet152(32);
    println!(
        "{}: {} partitionable units, {:.0} MiB parameters\n",
        graph.name,
        graph.len(),
        graph.total_param_bytes() as f64 / (1024.0 * 1024.0)
    );

    // A mixed virtual worker: one GPU of each kind, fastest first.
    let gpus: Vec<_> = GpuKind::ALL.iter().map(|k| k.spec()).collect();
    let links = vec![LinkKind::Pcie; 3];

    println!("== Min-max partition for [V, R, G, Q], Nm = 1 ==");
    let problem = PartitionProblem::new(&graph, gpus.clone(), links.clone(), 1);
    let plan = PartitionSolver::solve(&problem).expect("feasible");
    for (q, (range, secs)) in plan.ranges.iter().zip(&plan.stage_secs).enumerate() {
        println!(
            "  stage {q} on {:<16}: units {:>2}..{:<2} ({:>2} units) -> {:.1} ms",
            gpus[q].name,
            range.start,
            range.end,
            range.len(),
            secs * 1e3
        );
    }
    println!(
        "  bottleneck {:.1} ms -> pipeline upper bound {:.1} minibatches/s",
        plan.bottleneck_secs * 1e3,
        plan.minibatches_per_sec()
    );

    println!("\n== Max_m: memory caps pipeline depth ==");
    for kinds in [[GpuKind::Rtx2060; 4], [GpuKind::TitanRtx; 4]] {
        let gpus: Vec<_> = kinds.iter().map(|k| k.spec()).collect();
        let limit = nm_saturation_limit(4);
        match max_feasible_nm(&graph, &gpus, &links, limit) {
            Some((maxm, _)) => println!(
                "  4x {:<16}: Max_m = {maxm} (pipeline saturates at {limit})",
                gpus[0].name
            ),
            None => println!("  4x {:<16}: infeasible even at Nm = 1", gpus[0].name),
        }
    }

    println!("\n== Stage order matters for heterogeneous VWs ==");
    let natural = PartitionSolver::solve(&PartitionProblem::new(
        &graph,
        gpus.clone(),
        links.clone(),
        4,
    ));
    let reversed: Vec<_> = gpus.iter().rev().cloned().collect();
    let rev = PartitionSolver::solve(&PartitionProblem::new(&graph, reversed, links, 4));
    match (natural, rev) {
        (Ok(a), Ok(b)) => println!(
            "  V,R,G,Q order: {:.1} ms bottleneck;  Q,G,R,V order: {:.1} ms",
            a.bottleneck_secs * 1e3,
            b.bottleneck_secs * 1e3
        ),
        (a, b) => println!(
            "  feasibility differs by order: {:?} vs {:?}",
            a.is_ok(),
            b.is_ok()
        ),
    }
}
