//! Quickstart: train VGG-19 on the paper's 16-GPU heterogeneous
//! testbed with HetPipe (ED-local, D = 0) and compare against the
//! Horovod baseline.
//!
//! Run with: `cargo run --release --example quickstart`

use hetpipe::prelude::*;

fn main() {
    // The paper's testbed: 4 nodes x 4 GPUs (TITAN V / TITAN RTX /
    // GeForce RTX 2060 / Quadro P4000), PCIe inside nodes, InfiniBand
    // between them.
    let cluster = Cluster::paper_testbed();
    let model = vgg19(32);
    println!(
        "model: {} ({:.0} MiB parameters, {} partitionable units)",
        model.name,
        model.total_param_bytes() as f64 / (1024.0 * 1024.0),
        model.len()
    );

    // Assemble HetPipe: Equal-Distribution allocation (one GPU of each
    // kind per virtual worker), local parameter placement, BSP-like
    // synchronization (D = 0).
    let config = SystemConfig {
        policy: AllocationPolicy::EqualDistribution,
        placement: Placement::Local,
        staleness_bound: 0,
        ..SystemConfig::default()
    };
    let system = HetPipeSystem::build(&cluster, &model, &config).expect("feasible configuration");
    println!("virtual workers: {}", system.virtual_workers().len());
    println!("pipeline concurrency Nm = {}", system.nm());
    for vw in system.virtual_workers() {
        println!(
            "  VW{} [{}]: stages {:?}, bottleneck {:.1} ms",
            vw.index,
            vw.label(&cluster),
            vw.plan.ranges,
            vw.plan.bottleneck_secs * 1e3
        );
    }

    // Simulate one minute of training.
    let report = system.run(SimTime::from_secs(60.0));
    println!(
        "\nHetPipe ED-local: {:.0} images/s ({:.2} minibatches/s)",
        report.throughput_images_per_sec(),
        report.throughput_minibatches_per_sec()
    );

    // The baseline every figure compares against.
    let horovod = HorovodBaseline::evaluate_all(&cluster, &model).expect("VGG-19 fits every GPU");
    println!(
        "Horovod ({} GPUs):  {:.0} images/s",
        horovod.devices.len(),
        horovod.images_per_sec
    );
    println!(
        "speedup: {:.2}x",
        report.throughput_images_per_sec() / horovod.images_per_sec
    );
}
