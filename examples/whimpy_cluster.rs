//! The paper's headline scenario: training a model that is *too large*
//! for your GPUs, by aggregating whimpy GPUs into virtual workers.
//!
//! ResNet-152 at batch 32 does not fit a 6 GB GeForce RTX 2060, so
//! data-parallel training on a G-only cluster is impossible. HetPipe
//! partitions the model across four G GPUs per virtual worker and
//! trains anyway — and adding those whimpy GPUs to a bigger cluster
//! increases throughput (Table 4).
//!
//! Run with: `cargo run --release --example whimpy_cluster`

use hetpipe::cluster::{Cluster, GpuKind};
use hetpipe::prelude::*;

fn main() {
    let model = resnet152(32);

    // 1. A cluster of nothing but 6 GB RTX 2060s.
    let whimpy = Cluster::testbed_subset(&[GpuKind::Rtx2060]);
    println!("== G-only cluster (4x GeForce RTX 2060, 6 GB each) ==");
    match HorovodBaseline::evaluate_all(&whimpy, &model) {
        Ok(_) => println!("Horovod: unexpectedly feasible?!"),
        Err(e) => println!("Horovod: IMPOSSIBLE ({e})"),
    }
    let config = SystemConfig {
        policy: AllocationPolicy::Custom(vec![whimpy.devices().collect()]),
        placement: Placement::Local,
        staleness_bound: 0,
        ..SystemConfig::default()
    };
    let sys = HetPipeSystem::build(&whimpy, &model, &config)
        .expect("pipelined model parallelism fits where data parallelism cannot");
    let report = sys.run(SimTime::from_secs(60.0));
    println!(
        "HetPipe (1 virtual worker, 4-stage pipeline, Nm = {}): {:.0} images/s",
        sys.nm(),
        report.throughput_images_per_sec()
    );

    // 2. Incrementally adding the old nodes to the new TITAN V node
    //    (the Table-4 sweep).
    println!("\n== Adding whimpy GPUs to a TITAN V node (ED-local) ==");
    use GpuKind::*;
    let sets: [(&str, Vec<GpuKind>); 4] = [
        ("4[V]", vec![TitanV]),
        ("8[VR]", vec![TitanV, TitanRtx]),
        ("12[VRQ]", vec![TitanV, TitanRtx, QuadroP4000]),
        ("16[VRQG]", vec![TitanV, TitanRtx, QuadroP4000, Rtx2060]),
    ];
    let mut first = None;
    for (label, kinds) in sets {
        let cluster = Cluster::testbed_subset(&kinds);
        let policy = if cluster.node_count() == 1 {
            AllocationPolicy::Custom(vec![cluster.devices().collect()])
        } else {
            AllocationPolicy::EqualDistribution
        };
        let config = SystemConfig {
            policy,
            placement: Placement::Local,
            staleness_bound: 0,
            ..SystemConfig::default()
        };
        let sys = HetPipeSystem::build(&cluster, &model, &config).expect("builds");
        let ips = sys
            .run(SimTime::from_secs(60.0))
            .throughput_images_per_sec();
        let base = *first.get_or_insert(ips);
        println!(
            "  {label:9} -> {ips:5.0} images/s ({:.2}x vs 4[V])",
            ips / base
        );
    }
    println!("\nOld GPUs that cannot train alone still buy real throughput when aggregated.");
}
