//! Real multi-threaded training under WSP staleness semantics.
//!
//! Four worker threads play four virtual workers, each running
//! *pipelined* SGD (gradients computed against injection-time weights,
//! wave-aggregated pushes, D-bounded pulls) against a shared parameter
//! server. Compares WSP at D = 0 / 4 / 32 with classic BSP and ASP on
//! the same synthetic task — the Figure-6 mechanism at laptop scale.
//!
//! Run with: `cargo run --release --example convergence_wsp`

use hetpipe::train::{train, Dataset, Mode, TrainConfig};

fn main() {
    let dataset = Dataset::teacher(24, 8, 48, 8192, 2048, 7);
    println!(
        "task: teacher-network classification, {} train / {} test samples, {} classes\n",
        dataset.train_len(),
        dataset.test_y.len(),
        dataset.classes
    );

    println!(
        "{:<22} {:>10} {:>14} {:>16}",
        "mode", "final acc", "updates", "max clock dist"
    );
    for (label, mode) in [
        ("BSP", Mode::Bsp),
        ("ASP", Mode::Asp),
        ("SSP (s=3)", Mode::Ssp { s: 3 }),
        ("WSP (Nm=4, D=0)", Mode::Wsp { nm: 4, d: 0 }),
        ("WSP (Nm=4, D=4)", Mode::Wsp { nm: 4, d: 4 }),
        ("WSP (Nm=4, D=32)", Mode::Wsp { nm: 4, d: 32 }),
    ] {
        let config = TrainConfig {
            mode,
            workers: 4,
            dims: vec![24, 48, 32, 8],
            batch: 32,
            lr: 0.04,
            momentum: 0.9,
            steps_per_worker: 4000,
            seed: 42,
            snapshot_every: 0,
        };
        let out = train(&dataset, &config);
        println!(
            "{:<22} {:>10.3} {:>14} {:>16}",
            label, out.final_accuracy, out.total_updates, out.max_clock_distance
        );
    }
    println!(
        "\nWSP keeps the clock distance within D+1 by construction; D = 32 lets the\n\
         replicas drift (workers pull global weights only every 33 waves), costing\n\
         statistical efficiency — the paper's Figure-6 observation."
    );
}
