//! End-to-end integration tests: the paper's qualitative results must
//! hold on the assembled system (cluster -> allocation -> partitioning
//! -> pipelined simulation -> report).

use hetpipe::cluster::GpuKind;
use hetpipe::prelude::*;

fn run(
    cluster: &Cluster,
    graph: &hetpipe::model::ModelGraph,
    policy: AllocationPolicy,
    placement: Placement,
    nm: Option<usize>,
) -> f64 {
    let config = SystemConfig {
        policy,
        placement,
        staleness_bound: 0,
        nm_override: nm,
        // The paper fixes the GPU-to-stage assignment per allocation
        // policy; stage-order search is this repo's extension and its
        // simulation-refined pass finds orders that overturn some of
        // Figure 4's qualitative orderings (e.g. searched ED-default
        // beats Horovod for VGG-19). Reproduction tests therefore pin
        // the paper's fixed assignment.
        order_search: false,
        ..SystemConfig::default()
    };
    HetPipeSystem::build(cluster, graph, &config)
        .expect("feasible")
        .run(SimTime::from_secs(25.0))
        .throughput_images_per_sec()
}

#[test]
fn figure4_vgg_orderings() {
    let cluster = Cluster::paper_testbed();
    let graph = vgg19(32);
    // At the paper's Nm values: only ED-local beats Horovod for VGG-19;
    // NP is the slowest policy.
    let horovod = HorovodBaseline::evaluate_all(&cluster, &graph)
        .expect("VGG fits all GPUs")
        .images_per_sec;
    let np = run(
        &cluster,
        &graph,
        AllocationPolicy::NodePartition,
        Placement::Default,
        Some(2),
    );
    let ed = run(
        &cluster,
        &graph,
        AllocationPolicy::EqualDistribution,
        Placement::Default,
        Some(5),
    );
    let ed_local = run(
        &cluster,
        &graph,
        AllocationPolicy::EqualDistribution,
        Placement::Local,
        Some(5),
    );
    let hd = run(
        &cluster,
        &graph,
        AllocationPolicy::HybridDistribution,
        Placement::Default,
        Some(2),
    );

    assert!(
        ed_local > horovod,
        "ED-local {ed_local:.0} must beat Horovod {horovod:.0}"
    );
    assert!(
        ed < horovod,
        "ED {ed:.0} must lose to Horovod {horovod:.0} (default placement)"
    );
    assert!(np < horovod, "NP {np:.0} must lose to Horovod {horovod:.0}");
    assert!(hd < horovod, "HD {hd:.0} must lose to Horovod {horovod:.0}");
    assert!(
        ed_local > ed,
        "local placement must help: {ed_local:.0} vs {ed:.0}"
    );
    assert!(np < ed_local, "NP is the worst policy for VGG-19");
}

#[test]
fn figure4_resnet_orderings() {
    let cluster = Cluster::paper_testbed();
    let graph = resnet152(32);
    let horovod = HorovodBaseline::evaluate_all(&cluster, &graph)
        .expect("12 capable GPUs")
        .images_per_sec;
    let np = run(
        &cluster,
        &graph,
        AllocationPolicy::NodePartition,
        Placement::Default,
        Some(2),
    );
    let ed = run(
        &cluster,
        &graph,
        AllocationPolicy::EqualDistribution,
        Placement::Default,
        Some(7),
    );
    let ed_local = run(
        &cluster,
        &graph,
        AllocationPolicy::EqualDistribution,
        Placement::Local,
        Some(7),
    );

    assert!(
        np < horovod,
        "NP (straggler-bound) loses: {np:.0} vs {horovod:.0}"
    );
    assert!(
        ed_local > horovod,
        "ED-local wins: {ed_local:.0} vs {horovod:.0}"
    );
    assert!(ed_local > ed, "local placement helps ResNet too");
}

#[test]
fn table4_hetpipe_beats_horovod_at_every_rung() {
    use GpuKind::*;
    let graph = vgg19(32);
    for kinds in [
        vec![TitanV, TitanRtx],
        vec![TitanV, TitanRtx, QuadroP4000],
        vec![TitanV, TitanRtx, QuadroP4000, Rtx2060],
    ] {
        let cluster = Cluster::testbed_subset(&kinds);
        let horovod = HorovodBaseline::evaluate_all(&cluster, &graph)
            .expect("VGG fits")
            .images_per_sec;
        let hetpipe = run(
            &cluster,
            &graph,
            AllocationPolicy::EqualDistribution,
            Placement::Local,
            None,
        );
        assert!(
            hetpipe > horovod,
            "{} nodes: HetPipe {hetpipe:.0} vs Horovod {horovod:.0}",
            kinds.len()
        );
    }
}

#[test]
fn resnet_on_g_only_cluster_needs_hetpipe() {
    // The headline capability: PMP fits what DP cannot.
    let cluster = Cluster::testbed_subset(&[GpuKind::Rtx2060]);
    let graph = resnet152(32);
    assert!(HorovodBaseline::evaluate_all(&cluster, &graph).is_err());
    let tput = run(
        &cluster,
        &graph,
        AllocationPolicy::Custom(vec![cluster.devices().collect()]),
        Placement::Local,
        None,
    );
    assert!(tput > 0.0, "HetPipe trains where Horovod cannot");
}

#[test]
fn larger_d_never_hurts_throughput() {
    let cluster = Cluster::paper_testbed();
    let graph = vgg19(32);
    let mut last = 0.0;
    for d in [0usize, 4] {
        let config = SystemConfig {
            policy: AllocationPolicy::NodePartition,
            placement: Placement::Default,
            staleness_bound: d,
            nm_override: Some(2),
            ..SystemConfig::default()
        };
        let t = HetPipeSystem::build(&cluster, &graph, &config)
            .expect("feasible")
            .run(SimTime::from_secs(25.0))
            .throughput_images_per_sec();
        assert!(
            t >= last * 0.98,
            "D={d} throughput {t:.0} must not regress (was {last:.0})"
        );
        last = t;
    }
}

#[test]
fn ed_local_eliminates_cross_node_sync_traffic() {
    let cluster = Cluster::paper_testbed();
    let graph = vgg19(32);
    let config = SystemConfig {
        policy: AllocationPolicy::EqualDistribution,
        placement: Placement::Local,
        staleness_bound: 0,
        ..SystemConfig::default()
    };
    let report = HetPipeSystem::build(&cluster, &graph, &config)
        .expect("feasible")
        .run(SimTime::from_secs(20.0));
    assert_eq!(report.sync_bytes_inter, 0);
    assert!(report.sync_bytes_intra > 0);
    assert!(
        report.act_bytes_inter > 0,
        "ED activations still cross nodes"
    );
}

#[test]
fn report_utilizations_are_sane() {
    let cluster = Cluster::paper_testbed();
    let graph = resnet152(32);
    let config = SystemConfig {
        policy: AllocationPolicy::EqualDistribution,
        placement: Placement::Local,
        staleness_bound: 0,
        ..SystemConfig::default()
    };
    let report = HetPipeSystem::build(&cluster, &graph, &config)
        .expect("feasible")
        .run(SimTime::from_secs(20.0));
    for (d, u) in &report.gpu_utilization {
        assert!(
            (0.0..=1.01).contains(u),
            "{d}: utilization {u} out of range"
        );
    }
    // The pipeline bottleneck stage should be busy most of the time.
    let max = report
        .gpu_utilization
        .iter()
        .map(|(_, u)| *u)
        .fold(0.0, f64::max);
    assert!(
        max > 0.5,
        "bottleneck utilization {max:.2} suspiciously low"
    );
}
