//! Reproducibility: identical configurations must simulate to
//! bit-identical reports (fixed-point time + deterministic event
//! ordering), and the trainer's gate must agree with the simulator's
//! staleness algebra.

use hetpipe::prelude::*;

fn report(d: usize) -> SystemReport {
    let cluster = Cluster::paper_testbed();
    let graph = resnet152(32);
    let config = SystemConfig {
        policy: AllocationPolicy::HybridDistribution,
        placement: Placement::Default,
        staleness_bound: d,
        ..SystemConfig::default()
    };
    HetPipeSystem::build(&cluster, &graph, &config)
        .expect("feasible")
        .run(SimTime::from_secs(20.0))
}

#[test]
fn identical_runs_identical_reports() {
    let a = report(0);
    let b = report(0);
    assert_eq!(a.minibatches_per_vw, b.minibatches_per_vw);
    assert_eq!(a.waves_per_vw, b.waves_per_vw);
    assert_eq!(a.sync_bytes_inter, b.sync_bytes_inter);
    assert_eq!(a.act_bytes_inter, b.act_bytes_inter);
    assert_eq!(a.pull_wait_per_vw, b.pull_wait_per_vw);
    let ua: Vec<_> = a.gpu_utilization.iter().map(|(_, u)| u.to_bits()).collect();
    let ub: Vec<_> = b.gpu_utilization.iter().map(|(_, u)| u.to_bits()).collect();
    assert_eq!(ua, ub, "utilizations must be bit-identical");
}

#[test]
fn different_d_changes_behaviour() {
    let a = report(0);
    let b = report(4);
    // With HD's (mildly) heterogeneous VWs the waiting budget differs.
    assert!(
        a.total_pull_wait_secs() >= b.total_pull_wait_secs(),
        "D=4 must not wait longer than D=0"
    );
}

#[test]
fn trainer_is_deterministic_single_worker() {
    use hetpipe::train::{train, Dataset, Mode, TrainConfig};
    let dataset = Dataset::gaussian_blobs(8, 3, 256, 64, 0.4, 3);
    let config = TrainConfig {
        mode: Mode::Wsp { nm: 3, d: 0 },
        workers: 1,
        dims: vec![8, 12, 3],
        batch: 16,
        lr: 0.05,
        momentum: 0.9,
        steps_per_worker: 60,
        seed: 9,
        snapshot_every: 0,
    };
    let a = train(&dataset, &config);
    let b = train(&dataset, &config);
    assert_eq!(a.final_accuracy, b.final_accuracy);
    assert_eq!(a.total_updates, b.total_updates);
}
