//! Elastic scenario integration tests: lease-driven scale-down *and*
//! scale-up, degraded-mode planning, and the frozen zero-scenario
//! golden.
//!
//! (a) **Elastic scale-up**: on the whimpy 4×RTX 2060 ResNet-152
//!     configuration under the canonical lease trace (grant at 0,
//!     preempt at 8 s, re-grant at 30 s), `Replan` recovers ≥ 15%
//!     throughput over `Static` measured past the preemption onset,
//!     ends back on the full 4-GPU pipeline at the original `Nm`, and
//!     the grown plan passes the exact joint per-GPU memory check.
//! (b) **Zero-scenario identity**: an empty scenario commits exactly
//!     the one-shot executor's trace, bit for bit, under every policy
//!     — and the trace matches a frozen golden fingerprint, so silent
//!     cross-version drift of the baseline fails loudly.
//! (c) **Flap suppression**: a grant/preempt flap shorter than the
//!     lease hysteresis window produces zero splices.
//! (d) **Degraded mode**: a stalled (slow, not dead) plan service
//!     behind a deadline/retry client degrades to the in-process
//!     solver with bit-identical plans, epochs, and completions.

use hetpipe::cluster::{Cluster, DeviceId, GpuKind};
use hetpipe::core::exec::{self, ExecParams};
use hetpipe::core::pserver::{Placement, ShardMap};
use hetpipe::core::{RecomputePolicy, Schedule, VirtualWorker, WspParams};
use hetpipe::des::SimTime;
use hetpipe::model::ModelGraph;
use hetpipe::partition::{max_feasible_nm_with, PartitionProblem, PartitionSolver};
use hetpipe::runtime::{self, MonitorConfig, Policy, RuntimeParams, ScenarioScript};
use hetpipe::schedule::PipelineSchedule;

/// One standalone virtual worker over `devices`, plan solved at `nm`.
fn standalone_vw(
    cluster: &Cluster,
    graph: &ModelGraph,
    devices: Vec<DeviceId>,
    nm: usize,
    schedule: Schedule,
    recompute: RecomputePolicy,
) -> VirtualWorker {
    let k = schedule.virtual_stages(devices.len());
    let expanded: Vec<DeviceId> = (0..k).map(|s| devices[s % devices.len()]).collect();
    let gpus = expanded.iter().map(|&d| cluster.spec_of(d)).collect();
    let links = VirtualWorker::links(cluster, &expanded);
    let plan = PartitionSolver::solve(
        &PartitionProblem::with_schedule(graph, gpus, links, nm, schedule)
            .with_recompute(recompute),
    )
    .expect("feasible");
    VirtualWorker {
        index: 0,
        devices: expanded,
        plan,
        nm,
    }
}

/// The acceptance configuration: one whimpy 4×RTX 2060 node running
/// ResNet-152.
fn whimpy_resnet() -> (Cluster, ModelGraph, usize) {
    let cluster = Cluster::testbed_subset(&[GpuKind::Rtx2060; 4]);
    let graph = hetpipe::model::resnet152(32);
    let devices: Vec<_> = (0..4).map(DeviceId).collect();
    let gpus: Vec<_> = devices.iter().map(|&d| cluster.spec_of(d)).collect();
    let links = VirtualWorker::links(&cluster, &devices);
    let limit = hetpipe::model::memory::nm_saturation_limit(4);
    let (nm, _) = max_feasible_nm_with(
        &graph,
        &gpus,
        &links,
        limit,
        Schedule::HetPipeWave,
        RecomputePolicy::None,
    )
    .expect("feasible");
    (cluster, graph, nm)
}

#[allow(clippy::too_many_arguments)]
fn runtime_params<'a>(
    cluster: &'a Cluster,
    graph: &'a ModelGraph,
    vws: Vec<VirtualWorker>,
    nm: usize,
    schedule: Schedule,
    recompute: RecomputePolicy,
    script: ScenarioScript,
    policy: Policy,
) -> RuntimeParams<'a> {
    RuntimeParams {
        cluster,
        graph,
        vws,
        wsp: WspParams::new(nm, 0),
        placement: Placement::Default,
        sync_transfers: false,
        schedule,
        recompute,
        script,
        policy,
        monitor: MonitorConfig::default(),
        max_reactions: 8,
        planner: None,
    }
}

// ------------------------------------------------------------------
// (a) Elastic scale-up on the canonical lease trace.
// ------------------------------------------------------------------

#[test]
fn canonical_lease_scale_up_recovers_throughput_and_recertifies() {
    let (cluster, graph, _) = whimpy_resnet();
    // Boundary-only recomputation: the configuration where the 6 GB
    // GPUs hold a balanced partition and pipeline quality matters
    // (same as the straggler acceptance test).
    let recompute = RecomputePolicy::BoundaryOnly;
    let nm = 4;
    let horizon = SimTime::from_secs(75.0);
    // GPU 2's spot lease: granted up front, preempted at 8 s,
    // re-granted at 30 s.
    let script = ScenarioScript::canonical_lease(2, 8.0, 30.0);
    let run_policy = |policy: Policy| {
        let vw = standalone_vw(
            &cluster,
            &graph,
            (0..4).map(DeviceId).collect(),
            nm,
            Schedule::HetPipeWave,
            recompute,
        );
        runtime::run(
            runtime_params(
                &cluster,
                &graph,
                vec![vw],
                nm,
                Schedule::HetPipeWave,
                recompute,
                script.clone(),
                policy,
            ),
            horizon,
        )
    };
    let st = run_policy(Policy::Static);
    let re = run_policy(Policy::Replan);
    assert!(st.audits_sound() && re.audits_sound(), "occupancy audits");
    assert_eq!(st.epochs.len(), 1, "static never splices");
    // Replan must have spliced at least twice: the eviction (shrink to
    // 3 GPUs) and the re-admission (grow back to 4).
    assert!(
        re.epochs.len() >= 3,
        "lease trace needs shrink + grow splices: {:?}",
        re.epochs.iter().map(|e| &e.action).collect::<Vec<_>>()
    );
    // Scale-up end state: the full roster is back, at the original Nm.
    let grown = &re.final_vws[0];
    assert_eq!(grown.devices.len(), 4, "re-admitted to 4 GPUs");
    assert!(
        grown.devices.contains(&DeviceId(2)),
        "the preempted GPU is back"
    );
    assert_eq!(re.final_nm, nm, "Nm re-raised on the widened pipeline");
    // The grown plan is certified by the exact joint per-GPU check.
    let gpus: Vec<_> = grown.devices.iter().map(|&d| cluster.spec_of(d)).collect();
    let links = VirtualWorker::links(&cluster, &grown.devices);
    let problem =
        PartitionProblem::with_schedule(&graph, gpus, links, re.final_nm, Schedule::HetPipeWave)
            .with_recompute(recompute);
    assert!(
        hetpipe::partition::StageCostModel::new(&problem).plan_fits_per_gpu(&grown.plan.ranges),
        "grown plan must pass plan_fits_per_gpu"
    );
    // The acceptance bar: Replan ≥ 15% over Static past the onset.
    // Static rides the outage out (the preempted GPU's work resumes at
    // re-grant); Replan runs 3-wide through the gap and 4-wide after.
    let cutoff = SimTime::from_secs(8.0);
    let count =
        |r: &runtime::RuntimeReport| r.completions[0].iter().filter(|&&t| t >= cutoff).count();
    let (static_n, replan_n) = (count(&st), count(&re));
    let recovery = replan_n as f64 / static_n as f64;
    assert!(
        recovery >= 1.15,
        "Replan must recover >= 15% over Static on the canonical lease: \
         {replan_n} vs {static_n} completions ({recovery:.3}x)"
    );
    // Completions keep flowing on the grown pipeline well after the
    // re-admission splice (detected at ~32 s with lease hysteresis).
    let post_grow = re.completions[0]
        .iter()
        .filter(|&&t| t >= SimTime::from_secs(40.0))
        .count();
    assert!(
        post_grow > 10,
        "the grown pipeline must keep completing ({post_grow})"
    );
}

// ------------------------------------------------------------------
// (b) Zero-scenario identity + frozen golden.
// ------------------------------------------------------------------

fn fnv1a(h: u64, bytes: &[u8]) -> u64 {
    let mut h = h;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    h
}

/// The frozen fingerprint of the zero-scenario baseline trace on the
/// whimpy ResNet-152 configuration (HetPipeWave, 15 s horizon). This
/// pins the baseline *across versions*: any change to the executor,
/// DES core, or schedule streams that silently moves the zero-fault
/// trace fails here and must update the constant deliberately.
const GOLDEN_ZERO_SCENARIO_FP: u64 = 0x194fc5a5787b8742;

#[test]
fn zero_scenario_is_bit_identical_and_matches_golden() {
    let (cluster, graph, nm) = whimpy_resnet();
    let horizon = SimTime::from_secs(15.0);
    let schedule = Schedule::HetPipeWave;
    let vw = standalone_vw(
        &cluster,
        &graph,
        (0..4).map(DeviceId).collect(),
        nm,
        schedule,
        RecomputePolicy::None,
    );
    let shards = ShardMap::build(Placement::Default, &graph, &cluster, &vw);
    let vws = vec![vw];
    let plain = exec::run(
        ExecParams {
            cluster: &cluster,
            graph: &graph,
            vws: &vws,
            wsp: WspParams::new(nm, 0),
            shards: &shards,
            sync_transfers: false,
            schedule,
            recompute: RecomputePolicy::None,
        },
        horizon,
    );
    // Frozen golden: fingerprint the full span list and the completion
    // instants (exact nanosecond ticks).
    let mut fp = 0xcbf2_9ce4_8422_2325u64;
    for span in plain.trace.spans() {
        fp = fnv1a(fp, format!("{span:?}").as_bytes());
    }
    for &t in &plain.vws[0].completions {
        fp = fnv1a(fp, &t.as_nanos().to_le_bytes());
    }
    assert_eq!(
        fp, GOLDEN_ZERO_SCENARIO_FP,
        "zero-scenario baseline drifted from the frozen golden \
         (got {fp:#018x}; update the constant only for deliberate \
         executor/schedule changes)"
    );
    for policy in [
        Policy::Static,
        Policy::SkipStraggler { window: 8 },
        Policy::Replan,
    ] {
        let report = runtime::run(
            runtime_params(
                &cluster,
                &graph,
                vws.clone(),
                nm,
                schedule,
                RecomputePolicy::None,
                ScenarioScript::none(),
                policy,
            ),
            horizon,
        );
        assert_eq!(report.epochs.len(), 1, "{policy:?}: one epoch");
        assert_eq!(plain.trace.len(), report.trace.len(), "{policy:?}: spans");
        for (i, (a, b)) in plain
            .trace
            .spans()
            .iter()
            .zip(report.trace.spans())
            .enumerate()
        {
            assert_eq!(a, b, "{policy:?}: span {i}");
        }
        assert_eq!(
            plain.vws[0].completions, report.completions[0],
            "{policy:?}: completions"
        );
        assert!(report.signals.is_empty(), "{policy:?}: signals");
    }
}

// ------------------------------------------------------------------
// (c) Flap suppression.
// ------------------------------------------------------------------

#[test]
fn flapping_lease_produces_zero_splices() {
    let (cluster, graph, _) = whimpy_resnet();
    let recompute = RecomputePolicy::BoundaryOnly;
    let nm = 4;
    let horizon = SimTime::from_secs(40.0);
    // Preempt and re-grant within 0.4 s — far inside the default 2 s
    // lease hysteresis window. Neither transition is stable, so the
    // controller must not splice; the monitor's ratios stay below the
    // loss and straggler thresholds too (a 0.4 s delay on crossing
    // tasks is a blip, not a fault).
    let script = ScenarioScript::canonical_lease(2, 10.0, 10.4);
    let vw = standalone_vw(
        &cluster,
        &graph,
        (0..4).map(DeviceId).collect(),
        nm,
        Schedule::HetPipeWave,
        recompute,
    );
    let report = runtime::run(
        runtime_params(
            &cluster,
            &graph,
            vec![vw],
            nm,
            Schedule::HetPipeWave,
            recompute,
            script,
            Policy::Replan,
        ),
        horizon,
    );
    assert!(report.audits_sound(), "occupancy audits");
    assert_eq!(
        report.epochs.len(),
        1,
        "a sub-hysteresis flap must not splice: {:?}",
        report.epochs.iter().map(|e| &e.action).collect::<Vec<_>>()
    );
    assert_eq!(report.final_vws[0].devices.len(), 4, "pipeline unchanged");
    // Training continues straight through the flap.
    let after = report.completions[0]
        .iter()
        .filter(|&&t| t >= SimTime::from_secs(15.0))
        .count();
    assert!(
        after > 10,
        "completions must continue past the flap ({after})"
    );
}

// ------------------------------------------------------------------
// (d) Degraded mode: slow service, certified in-process fallback.
// ------------------------------------------------------------------

#[test]
fn slow_plan_service_degrades_to_certified_in_process_fallback() {
    use hetpipe::plansvc::{Catalog, PlanService};
    use std::time::Duration;
    let (cluster, graph, _) = whimpy_resnet();
    let recompute = RecomputePolicy::BoundaryOnly;
    let nm = 4;
    let horizon = SimTime::from_secs(50.0);
    let script = ScenarioScript::canonical_lease(2, 8.0, 30.0);
    let mk_vw = || {
        standalone_vw(
            &cluster,
            &graph,
            (0..4).map(DeviceId).collect(),
            nm,
            Schedule::HetPipeWave,
            recompute,
        )
    };
    let in_process = runtime::run(
        runtime_params(
            &cluster,
            &graph,
            vec![mk_vw()],
            nm,
            Schedule::HetPipeWave,
            recompute,
            script.clone(),
            Policy::Replan,
        ),
        horizon,
    );
    // A service whose whole worker pool is busy for far longer than
    // the run: slow, not dead. The deadline/retry client gives up per
    // reaction and the controller solves in-process instead.
    let mut catalog = Catalog::new();
    catalog.register_model(graph.clone());
    catalog.register_cluster(cluster.clone());
    let svc = PlanService::start(catalog, 2);
    svc.stall_workers(Duration::from_secs(120));
    let mut params = runtime_params(
        &cluster,
        &graph,
        vec![mk_vw()],
        nm,
        Schedule::HetPipeWave,
        recompute,
        script,
        Policy::Replan,
    );
    params.planner = Some(
        svc.client()
            .with_deadline(Duration::from_millis(5))
            .with_retry(2, Duration::from_millis(1)),
    );
    let degraded = runtime::run(params, horizon);
    // The service never answered within the run (pool still stalled).
    let (_, _, publishes) = svc.cache_stats();
    assert_eq!(publishes, 0, "the stalled service must not have answered");
    // Certified fallback: bit-identical to the in-process path.
    assert_eq!(degraded.final_nm, in_process.final_nm, "spliced Nm");
    assert_eq!(degraded.epochs.len(), in_process.epochs.len(), "epochs");
    for (a, b) in degraded.final_vws.iter().zip(&in_process.final_vws) {
        assert_eq!(a.devices, b.devices, "spliced devices");
        assert_eq!(a.plan.ranges, b.plan.ranges, "spliced ranges");
        assert_eq!(a.plan.stage_secs, b.plan.stage_secs, "spliced stage costs");
    }
    assert_eq!(
        degraded.completions, in_process.completions,
        "completion instants"
    );
    assert!(degraded.audits_sound(), "occupancy audits");
    // Not shut down: shutdown() joins workers, which are deliberately
    // mid-stall — dropping the service closes the queue instead.
    drop(svc);
}
