//! The three scheduling conditions of Section 4, verified on the
//! simulated trace rather than assumed:
//!
//! 1. forward of minibatch `p` at a stage runs only after forwards of
//!    all `p' < p` at that stage;
//! 2. likewise for backwards;
//! 3. tasks on one GPU never overlap (serial FIFO service);
//! plus the fused forward+backward at the last stage.

use hetpipe::cluster::{Cluster, DeviceId};
use hetpipe::core::exec::SpanTag;
use hetpipe::core::{AllocationPolicy, HetPipeSystem, Placement, SystemConfig};
use hetpipe::des::SimTime;

fn single_vw_stats() -> (hetpipe::core::exec::RunStats, usize) {
    let cluster = Cluster::paper_testbed();
    let graph = hetpipe::model::vgg19(32);
    let config = SystemConfig {
        policy: AllocationPolicy::Custom(vec![(0..4).map(DeviceId).collect()]),
        placement: Placement::Default,
        staleness_bound: 0,
        nm_override: Some(4),
        sync_transfers: false,
        ..SystemConfig::default()
    };
    let sys = HetPipeSystem::build(&cluster, &graph, &config).expect("builds");
    let (_, stats) = sys.run_with_stats(SimTime::from_secs(10.0));
    (stats, 4)
}

#[test]
fn forwards_and_backwards_in_minibatch_order() {
    let (stats, stages) = single_vw_stats();
    for stage in 0..stages {
        let rid = stats.gpu_resources[stage];
        let mut fwd_starts = Vec::new();
        let mut bwd_starts = Vec::new();
        for s in stats.trace.spans() {
            if s.resource != rid {
                continue;
            }
            match s.tag {
                SpanTag::Forward { mb, .. } => fwd_starts.push((s.start, mb)),
                SpanTag::Backward { mb, .. } => bwd_starts.push((s.start, mb)),
                _ => {}
            }
        }
        fwd_starts.sort();
        bwd_starts.sort();
        // Condition 1: forward start order == minibatch order.
        for w in fwd_starts.windows(2) {
            assert!(
                w[0].1 < w[1].1,
                "stage {stage}: forward of mb {} started before mb {}",
                w[1].1,
                w[0].1
            );
        }
        // Condition 2: same for backwards.
        for w in bwd_starts.windows(2) {
            assert!(w[0].1 < w[1].1, "stage {stage}: backward order violated");
        }
    }
}

#[test]
fn gpu_tasks_never_overlap() {
    let (stats, stages) = single_vw_stats();
    for stage in 0..stages {
        let rid = stats.gpu_resources[stage];
        let mut spans: Vec<(SimTime, SimTime)> = stats
            .trace
            .spans()
            .iter()
            .filter(|s| s.resource == rid)
            .map(|s| (s.start, s.end))
            .collect();
        spans.sort();
        for w in spans.windows(2) {
            assert!(
                w[1].0 >= w[0].1,
                "stage {stage}: overlapping tasks {:?} and {:?}",
                w[0],
                w[1]
            );
        }
    }
}

#[test]
fn last_stage_is_fused() {
    let (stats, stages) = single_vw_stats();
    let last = stats.gpu_resources[stages - 1];
    // The last stage records only fused (Backward-tagged) tasks — no
    // standalone forwards.
    let fwd = stats.trace.count_where(
        |t| matches!(t, SpanTag::Forward { stage, .. } if *stage as usize == stages - 1),
    );
    assert_eq!(fwd, 0, "last stage must fuse forward+backward");
    let fused = stats
        .trace
        .spans()
        .iter()
        .filter(|s| s.resource == last)
        .count();
    assert!(fused > 0, "last stage did run tasks");
}

#[test]
fn first_stage_holds_up_to_nm_in_flight() {
    // Count the maximum number of minibatches whose forward at stage 0
    // has run but whose backward at stage 0 has not — the Section-4
    // memory-asymmetry quantity — and check it is bounded by the
    // Figure-1 occupancy (min(Nm, 2k-1) = 4 here).
    let (stats, _) = single_vw_stats();
    let rid = stats.gpu_resources[0];
    let mut events: Vec<(SimTime, i64)> = Vec::new();
    for s in stats.trace.spans() {
        if s.resource != rid {
            continue;
        }
        match s.tag {
            SpanTag::Forward { .. } => events.push((s.end, 1)),
            SpanTag::Backward { .. } => events.push((s.end, -1)),
            _ => {}
        }
    }
    events.sort();
    let mut live = 0i64;
    let mut peak = 0i64;
    for (_, d) in events {
        live += d;
        peak = peak.max(live);
    }
    assert!(
        peak >= 3,
        "pipelining should overlap minibatches, peak {peak}"
    );
    assert!(peak <= 4, "occupancy must respect Nm, peak {peak}");
}
