//! The three scheduling conditions of Section 4, verified on the
//! simulated trace rather than assumed — for *every* pipeline
//! schedule, not just the paper's wave schedule:
//!
//! 1. forward of minibatch `p` at a stage runs only after forwards of
//!    all `p' < p` at that stage;
//! 2. likewise for backwards;
//! 3. tasks on one GPU never overlap (serial FIFO service);
//!
//! plus schedule-specific structure: the fused forward+backward at the
//! wave schedule's last stage, per-stage occupancy bounds matching the
//! declared memory accounting, and the cross-stage causality property
//! that no activation (or gradient) is consumed before it is produced.

use hetpipe::cluster::{Cluster, DeviceId};
use hetpipe::core::exec::{RunStats, SpanTag};
use hetpipe::core::{
    AllocationPolicy, HetPipeSystem, OccupancyAudit, Placement, RecomputePolicy, Schedule,
    SystemConfig, VirtualWorker,
};
use hetpipe::des::SimTime;
use hetpipe::schedule::PipelineSchedule;
use std::collections::HashMap;

const NM: usize = 4;

/// Every schedule form (incl. both interleaved variants) with the
/// stage count their single-VW pipeline runs (interleaved expands
/// 4 GPUs into 8 virtual stages).
fn all_schedules() -> Vec<Schedule> {
    Schedule::ALL.to_vec()
}

fn single_vw_run(
    schedule: Schedule,
    recompute: RecomputePolicy,
) -> (RunStats, usize, Vec<VirtualWorker>) {
    let cluster = Cluster::paper_testbed();
    let graph = hetpipe::model::vgg19(32);
    let config = SystemConfig {
        policy: AllocationPolicy::Custom(vec![(0..4).map(DeviceId).collect()]),
        placement: Placement::Default,
        staleness_bound: 0,
        nm_override: Some(NM),
        sync_transfers: false,
        order_search: false,
        schedule,
        recompute,
        ..SystemConfig::default()
    };
    let sys = HetPipeSystem::build(&cluster, &graph, &config).expect("builds");
    let stages = schedule.virtual_stages(4);
    assert_eq!(sys.virtual_workers()[0].stages(), stages);
    let vws = sys.virtual_workers().to_vec();
    let (_, stats) = sys.run_with_stats(SimTime::from_secs(10.0));
    (stats, stages, vws)
}

fn single_vw_stats(schedule: Schedule) -> (RunStats, usize) {
    let (stats, stages, _) = single_vw_run(schedule, RecomputePolicy::None);
    (stats, stages)
}

/// `(stage, mb)` → the `(start, end)` of the span carrying that pass.
type PassSpans = HashMap<(u32, u64), (SimTime, SimTime)>;

/// (start, end) of the span carrying mb's forward/backward at a stage.
/// The wave schedule's fused last-stage task carries both.
fn collect_passes(stats: &RunStats, stages: usize, fused_last: bool) -> (PassSpans, PassSpans) {
    let mut fwd = HashMap::new();
    let mut bwd = HashMap::new();
    for s in stats.trace.spans() {
        match s.tag {
            SpanTag::Forward { stage, mb, .. } => {
                fwd.insert((stage, mb), (s.start, s.end));
            }
            SpanTag::Backward { stage, mb, .. } => {
                bwd.insert((stage, mb), (s.start, s.end));
                if fused_last && stage as usize == stages - 1 {
                    fwd.insert((stage, mb), (s.start, s.end));
                }
            }
            _ => {}
        }
    }
    (fwd, bwd)
}

#[test]
fn forwards_and_backwards_in_minibatch_order_for_every_schedule() {
    for schedule in all_schedules() {
        let (stats, stages) = single_vw_stats(schedule);
        for stage in 0..stages as u32 {
            let mut fwd_starts = Vec::new();
            let mut bwd_starts = Vec::new();
            for s in stats.trace.spans() {
                match s.tag {
                    SpanTag::Forward { stage: q, mb, .. } if q == stage => {
                        fwd_starts.push((s.start, mb))
                    }
                    SpanTag::Backward { stage: q, mb, .. } if q == stage => {
                        bwd_starts.push((s.start, mb))
                    }
                    _ => {}
                }
            }
            fwd_starts.sort();
            bwd_starts.sort();
            assert!(
                !bwd_starts.is_empty(),
                "{schedule}: stage {stage} ran no backwards"
            );
            // Condition 1: forward start order == minibatch order.
            for w in fwd_starts.windows(2) {
                assert!(
                    w[0].1 < w[1].1,
                    "{schedule} stage {stage}: forward of mb {} started before mb {}",
                    w[1].1,
                    w[0].1
                );
            }
            // Condition 2: same for backwards.
            for w in bwd_starts.windows(2) {
                assert!(
                    w[0].1 < w[1].1,
                    "{schedule} stage {stage}: backward order violated"
                );
            }
        }
    }
}

#[test]
fn gpu_tasks_never_overlap_for_every_schedule() {
    for schedule in all_schedules() {
        let (stats, _) = single_vw_stats(schedule);
        // Condition 3 is per physical GPU (an interleaved GPU serves
        // two virtual stages on one timeline).
        for &rid in &stats.gpu_resources {
            let mut spans: Vec<(SimTime, SimTime)> = stats
                .trace
                .spans()
                .iter()
                .filter(|s| s.resource == rid)
                .map(|s| (s.start, s.end))
                .collect();
            spans.sort();
            for w in spans.windows(2) {
                assert!(
                    w[1].0 >= w[0].1,
                    "{schedule}: overlapping tasks {:?} and {:?} on {rid:?}",
                    w[0],
                    w[1]
                );
            }
        }
    }
}

#[test]
fn nothing_consumed_before_it_is_produced() {
    for schedule in all_schedules() {
        let (stats, stages) = single_vw_stats(schedule);
        let fused = schedule.fused_last_stage();
        let (fwd, bwd) = collect_passes(&stats, stages, fused);
        for (&(stage, mb), &(start, _)) in &fwd {
            // A forward consumes the previous stage's activations.
            if stage > 0 {
                if let Some(&(_, prev_end)) = fwd.get(&(stage - 1, mb)) {
                    assert!(
                        start >= prev_end,
                        "{schedule}: fwd mb {mb} at stage {stage} started {start} before \
                         stage {} produced it at {prev_end}",
                        stage - 1
                    );
                }
            }
        }
        for (&(stage, mb), &(start, _)) in &bwd {
            // A backward consumes the next stage's gradients...
            if (stage as usize) < stages - 1 {
                if let Some(&(_, next_end)) = bwd.get(&(stage + 1, mb)) {
                    assert!(
                        start >= next_end,
                        "{schedule}: bwd mb {mb} at stage {stage} started before \
                         stage {} finished",
                        stage + 1
                    );
                }
            }
            // ... and its own stage's forward activations.
            if let Some(&(fwd_start, _)) = fwd.get(&(stage, mb)) {
                assert!(
                    start >= fwd_start,
                    "{schedule}: bwd mb {mb} at stage {stage} before its forward"
                );
            }
        }
    }
}

#[test]
fn per_stage_occupancy_matches_declared_memory_accounting() {
    // The measured ≤ declared memory invariant, asserted for *every*
    // schedule × recompute policy: a run must never hold more
    // concurrent minibatches at a stage (or summed across a GPU's
    // co-located stages) than the memory model charged when the plan
    // was certified. This is the soundness property the executor's
    // dispatch gate and the wave schedule's honest Nm accounting
    // exist to guarantee — before them, arrival-order timing skew let
    // middle stages exceed the idealized Figure-1 window.
    for schedule in all_schedules() {
        for recompute in RecomputePolicy::ALL {
            let (stats, stages, vws) = single_vw_run(schedule, recompute);
            let audit = OccupancyAudit::measure(&stats, &vws, &schedule, NM);
            audit.assert_sound(&format!("{schedule} (recompute {recompute})"));
            // The audit must have measured real work, not an empty
            // trace: every non-last stage saw at least 1 in flight,
            // and stage 0 actually pipelined.
            assert_eq!(audit.stages.len(), stages, "{schedule}");
            for s in &audit.stages {
                if s.stage + 1 < stages {
                    assert!(s.measured >= 1, "{schedule}: {s} measured no work");
                }
            }
            assert!(
                audit.stages[0].measured >= 2,
                "{schedule}: stage 0 never overlapped minibatches"
            );
            assert!(!audit.gpus.is_empty(), "{schedule}");
        }
    }
}

#[test]
fn recompute_rematerializes_before_every_backward() {
    for schedule in all_schedules() {
        // Off: no recompute spans anywhere.
        let (stats, _, _) = single_vw_run(schedule, RecomputePolicy::None);
        assert_eq!(
            stats
                .trace
                .count_where(|t| matches!(t, SpanTag::Recompute { .. })),
            0,
            "{schedule}: recompute spans with the policy off"
        );
        // On: every backward at a stage that checkpoints
        // (`recomputes_at`: the policy is on and the stage's window
        // exceeds 1) is preceded by a same-stage recompute of the same
        // minibatch, back-to-back on the GPU timeline. Fused tasks and
        // window-1 stages (e.g. the last stage of stream-order
        // schedules) never recompute — there is no stash to reclaim,
        // so the forward re-run is skipped for free throughput.
        let (stats, stages, _) = single_vw_run(schedule, RecomputePolicy::BoundaryOnly);
        let recomputes: HashMap<(u32, u64), (SimTime, SimTime)> = stats
            .trace
            .spans()
            .iter()
            .filter_map(|s| match s.tag {
                SpanTag::Recompute { stage, mb, .. } => Some(((stage, mb), (s.start, s.end))),
                _ => None,
            })
            .collect();
        let mut checkpointed_backwards = 0;
        let mut skipped_stages = 0;
        for s in stats.trace.spans() {
            if let SpanTag::Backward { stage, mb, .. } = s.tag {
                if !schedule.recomputes_at(
                    stage as usize,
                    stages,
                    NM,
                    RecomputePolicy::BoundaryOnly,
                ) {
                    assert!(
                        !recomputes.contains_key(&(stage, mb)),
                        "{schedule}: mb {mb} at non-checkpointing stage {stage} must not recompute"
                    );
                    skipped_stages += 1;
                    continue;
                }
                checkpointed_backwards += 1;
                let (_, re_end) = recomputes.get(&(stage, mb)).unwrap_or_else(|| {
                    panic!("{schedule}: backward mb {mb} stage {stage} missing its recompute")
                });
                assert_eq!(
                    *re_end, s.start,
                    "{schedule}: recompute of mb {mb} not back-to-back with its backward"
                );
            }
        }
        assert!(
            checkpointed_backwards > 10,
            "{schedule}: ran only {checkpointed_backwards} checkpointed backwards"
        );
        // Schedules with a non-checkpointing stage (the wave
        // schedule's fused last stage; the window-1 last stage of the
        // 1F1B-family schedules) must actually have exercised the
        // skip. Fill-drain holds the whole wave at every stage, so it
        // checkpoints everywhere.
        let has_skip_stage = (0..stages)
            .any(|s| !schedule.recomputes_at(s, stages, NM, RecomputePolicy::BoundaryOnly));
        assert_eq!(
            skipped_stages > 0,
            has_skip_stage,
            "{schedule}: recompute skip coverage mismatch"
        );
        // Recomputation trades compute for memory: the run must still
        // make progress.
        assert!(
            stats.vws[0].completions.len() > 5,
            "{schedule}: no progress under recompute"
        );
    }
}

#[test]
fn last_stage_is_fused_only_for_the_wave_schedule() {
    for schedule in all_schedules() {
        let (stats, stages) = single_vw_stats(schedule);
        let standalone_fwd = stats.trace.count_where(
            |t| matches!(t, SpanTag::Forward { stage, .. } if *stage as usize == stages - 1),
        );
        if schedule.fused_last_stage() {
            assert_eq!(
                standalone_fwd, 0,
                "{schedule}: last stage must fuse forward+backward"
            );
        } else {
            assert!(
                standalone_fwd > 0,
                "{schedule}: last stage runs standalone forwards"
            );
        }
        let last_stage_tasks = stats.trace.count_where(
            |t| matches!(t, SpanTag::Backward { stage, .. } if *stage as usize == stages - 1),
        );
        assert!(last_stage_tasks > 0, "{schedule}: last stage ran tasks");
    }
}

#[test]
fn first_stage_holds_up_to_nm_in_flight() {
    // The wave schedule's Section-4 memory asymmetry: stage 0 overlaps
    // minibatches up to min(Nm, 2k-1) = 4 here.
    let (stats, _) = single_vw_stats(Schedule::HetPipeWave);
    let rid = stats.gpu_resources[0];
    let mut events: Vec<(SimTime, i64)> = Vec::new();
    for s in stats.trace.spans() {
        if s.resource != rid {
            continue;
        }
        match s.tag {
            SpanTag::Forward { .. } => events.push((s.end, 1)),
            SpanTag::Backward { .. } => events.push((s.end, -1)),
            _ => {}
        }
    }
    events.sort();
    let mut live = 0i64;
    let mut peak = 0i64;
    for (_, d) in events {
        live += d;
        peak = peak.max(live);
    }
    assert!(
        peak >= 3,
        "pipelining should overlap minibatches, peak {peak}"
    );
    assert!(peak <= 4, "occupancy must respect Nm, peak {peak}");
}

#[test]
fn static_streams_satisfy_their_own_invariants() {
    // The schedule-level counterpart of the trace checks above, over a
    // wider (k, Nm, D) grid than a simulation can cover.
    use hetpipe::core::WspParams;
    use hetpipe::schedule::schedules::validate_stream;
    for schedule in all_schedules() {
        for k_gpus in [1usize, 2, 4, 6] {
            let k = schedule.virtual_stages(k_gpus);
            for nm in [1usize, 3, 4, 8] {
                for d in [0usize, 1, 4] {
                    let wsp = WspParams::new(nm, d);
                    for stage in 0..k {
                        validate_stream(&schedule, stage, k, wsp, 400)
                            .unwrap_or_else(|e| panic!("{e} (k_gpus={k_gpus} nm={nm} d={d})"));
                    }
                }
            }
        }
    }
}
