//! Property tests of the partition solver: structural invariants plus
//! optimality certified against exhaustive enumeration.

use hetpipe::cluster::{GpuKind, LinkKind};
use hetpipe::model::mlp;
use hetpipe::partition::brute::solve_brute;
use hetpipe::partition::{PartitionProblem, PartitionSolver};
use proptest::prelude::*;

fn gpu_pool() -> Vec<GpuKind> {
    vec![
        GpuKind::TitanV,
        GpuKind::TitanRtx,
        GpuKind::Rtx2060,
        GpuKind::QuadroP4000,
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// On random MLPs with random heterogeneous GPU assignments, the DP
    /// solver's bottleneck equals the brute-force optimum, and the plan
    /// is a contiguous cover.
    #[test]
    fn dp_matches_brute_force(
        widths in prop::collection::vec(8usize..256, 3..9),
        k in 2usize..5,
        picks in prop::collection::vec(0usize..4, 4),
        link_picks in prop::collection::vec(0usize..2, 4),
        nm in 1usize..4,
    ) {
        let dims: Vec<usize> = widths;
        let graph = mlp(16, &dims);
        prop_assume!(graph.len() >= k);
        let pool = gpu_pool();
        let gpus: Vec<_> = (0..k).map(|i| pool[picks[i % picks.len()]].spec()).collect();
        let links: Vec<LinkKind> = (0..k - 1)
            .map(|i| if link_picks[i % link_picks.len()] == 0 {
                LinkKind::Pcie
            } else {
                LinkKind::Infiniband
            })
            .collect();
        let problem = PartitionProblem::new(&graph, gpus, links, nm);
        let dp = PartitionSolver::solve(&problem);
        let brute = solve_brute(&problem);
        match (dp, brute) {
            (Ok(a), Ok(b)) => {
                prop_assert!((a.bottleneck_secs - b.bottleneck_secs).abs() < 1e-12,
                    "dp {} vs brute {}", a.bottleneck_secs, b.bottleneck_secs);
                prop_assert!(a.is_valid_cover(graph.len()));
                prop_assert_eq!(a.ranges.len(), k);
            }
            (Err(a), Err(b)) => prop_assert_eq!(a, b),
            (a, b) => prop_assert!(false, "feasibility disagreement: {a:?} vs {b:?}"),
        }
    }

    /// The greedy binary-search solver never reports a bottleneck below
    /// the exact optimum.
    #[test]
    fn greedy_never_beats_exact(
        widths in prop::collection::vec(8usize..128, 3..8),
        k in 2usize..4,
    ) {
        let graph = mlp(16, &widths);
        prop_assume!(graph.len() >= k);
        let gpus = vec![GpuKind::TitanV.spec(); k];
        let links = vec![LinkKind::Pcie; k - 1];
        let problem = PartitionProblem::new(&graph, gpus, links, 1);
        if let (Ok(exact), Some(greedy)) = (
            PartitionSolver::solve(&problem),
            PartitionSolver::solve_greedy(&problem),
        ) {
            prop_assert!(greedy.bottleneck_secs >= exact.bottleneck_secs - 1e-12);
            prop_assert!(greedy.is_valid_cover(graph.len()));
        }
    }

    /// Feasibility is monotone in Nm: if Nm is feasible, so is Nm - 1.
    #[test]
    fn feasibility_monotone_in_nm(nm in 2usize..8) {
        let graph = hetpipe::model::resnet152(48);
        let gpus = vec![GpuKind::Rtx2060.spec(); 4];
        let links = vec![LinkKind::Pcie; 3];
        let at = |n: usize| {
            PartitionSolver::solve(&PartitionProblem::new(&graph, gpus.clone(), links.clone(), n)).is_ok()
        };
        if at(nm) {
            prop_assert!(at(nm - 1), "Nm={} feasible but Nm={} not", nm, nm - 1);
        }
    }
}

/// The paper-testbed plans for both evaluation models are valid covers
/// with monotonically reasonable bottlenecks.
#[test]
fn evaluation_model_plans_are_valid() {
    for graph in [hetpipe::model::resnet152(32), hetpipe::model::vgg19(32)] {
        for k in 1..=4usize {
            let gpus: Vec<_> = gpu_pool().into_iter().take(k).map(|g| g.spec()).collect();
            let links = vec![LinkKind::Pcie; k.saturating_sub(1)];
            let plan = PartitionSolver::solve(&PartitionProblem::new(&graph, gpus, links, 1))
                .expect("feasible at Nm=1");
            assert!(plan.is_valid_cover(graph.len()), "{} k={k}", graph.name);
            assert!(plan.bottleneck_secs > 0.0);
        }
    }
}
