//! Property tests of the partition solver: structural invariants plus
//! optimality certified against exhaustive enumeration.
//!
//! Written as seeded random sweeps rather than `proptest` (the offline
//! build vendors no shrinking framework); each case prints its seed on
//! failure so it can be replayed.

use hetpipe::cluster::{GpuKind, LinkKind};
use hetpipe::model::mlp;
use hetpipe::partition::brute::solve_brute;
use hetpipe::partition::{PartitionProblem, PartitionSolver};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

fn gpu_pool() -> Vec<GpuKind> {
    vec![
        GpuKind::TitanV,
        GpuKind::TitanRtx,
        GpuKind::Rtx2060,
        GpuKind::QuadroP4000,
    ]
}

/// On random MLPs with random heterogeneous GPU assignments, the DP
/// solver's bottleneck equals the brute-force optimum, and the plan is
/// a contiguous cover.
#[test]
fn dp_matches_brute_force() {
    let pool = gpu_pool();
    for case in 0u64..48 {
        let mut rng = SmallRng::seed_from_u64(0xA11C_E000 + case);
        let n_layers = rng.gen_range(3usize..9);
        let widths: Vec<usize> = (0..n_layers).map(|_| rng.gen_range(8usize..256)).collect();
        let k = rng.gen_range(2usize..5);
        let nm = rng.gen_range(1usize..4);
        let graph = mlp(16, &widths);
        if graph.len() < k {
            continue;
        }
        let gpus: Vec<_> = (0..k)
            .map(|_| pool[rng.gen_range(0usize..4)].spec())
            .collect();
        let links: Vec<LinkKind> = (0..k - 1)
            .map(|_| {
                if rng.gen_range(0usize..2) == 0 {
                    LinkKind::Pcie
                } else {
                    LinkKind::Infiniband
                }
            })
            .collect();
        let problem = PartitionProblem::new(&graph, gpus, links, nm);
        let dp = PartitionSolver::solve(&problem);
        let brute = solve_brute(&problem);
        match (dp, brute) {
            (Ok(a), Ok(b)) => {
                assert!(
                    (a.bottleneck_secs - b.bottleneck_secs).abs() < 1e-12,
                    "case {case}: dp {} vs brute {}",
                    a.bottleneck_secs,
                    b.bottleneck_secs
                );
                assert!(a.is_valid_cover(graph.len()), "case {case}");
                assert_eq!(a.ranges.len(), k, "case {case}");
            }
            (Err(a), Err(b)) => assert_eq!(a, b, "case {case}"),
            (a, b) => panic!("case {case}: feasibility disagreement: {a:?} vs {b:?}"),
        }
    }
}

/// The greedy binary-search solver never reports a bottleneck below
/// the exact optimum.
#[test]
fn greedy_never_beats_exact() {
    for case in 0u64..32 {
        let mut rng = SmallRng::seed_from_u64(0x6EEE_D000 + case);
        let n_layers = rng.gen_range(3usize..8);
        let widths: Vec<usize> = (0..n_layers).map(|_| rng.gen_range(8usize..128)).collect();
        let k = rng.gen_range(2usize..4);
        let graph = mlp(16, &widths);
        if graph.len() < k {
            continue;
        }
        let gpus = vec![GpuKind::TitanV.spec(); k];
        let links = vec![LinkKind::Pcie; k - 1];
        let problem = PartitionProblem::new(&graph, gpus, links, 1);
        if let (Ok(exact), Some(greedy)) = (
            PartitionSolver::solve(&problem),
            PartitionSolver::solve_greedy(&problem),
        ) {
            assert!(
                greedy.bottleneck_secs >= exact.bottleneck_secs - 1e-12,
                "case {case}"
            );
            assert!(greedy.is_valid_cover(graph.len()), "case {case}");
        }
    }
}

/// Feasibility is monotone in Nm: if Nm is feasible, so is Nm - 1.
#[test]
fn feasibility_monotone_in_nm() {
    let graph = hetpipe::model::resnet152(48);
    let gpus = vec![GpuKind::Rtx2060.spec(); 4];
    let links = vec![LinkKind::Pcie; 3];
    let at = |n: usize| {
        PartitionSolver::solve(&PartitionProblem::new(
            &graph,
            gpus.clone(),
            links.clone(),
            n,
        ))
        .is_ok()
    };
    for nm in 2usize..8 {
        if at(nm) {
            assert!(at(nm - 1), "Nm={} feasible but Nm={} not", nm, nm - 1);
        }
    }
}

/// The paper-testbed plans for both evaluation models are valid covers
/// with monotonically reasonable bottlenecks.
#[test]
fn evaluation_model_plans_are_valid() {
    for graph in [hetpipe::model::resnet152(32), hetpipe::model::vgg19(32)] {
        for k in 1..=4usize {
            let gpus: Vec<_> = gpu_pool().into_iter().take(k).map(|g| g.spec()).collect();
            let links = vec![LinkKind::Pcie; k.saturating_sub(1)];
            let plan = PartitionSolver::solve(&PartitionProblem::new(&graph, gpus, links, 1))
                .expect("feasible at Nm=1");
            assert!(plan.is_valid_cover(graph.len()), "{} k={k}", graph.name);
            assert!(plan.bottleneck_secs > 0.0);
        }
    }
}
