//! Fidelity properties of the composite per-GPU interleaved stream
//! (Megatron-style ordered chunk groups) against the depth-expanded
//! variant it replaces as the default:
//!
//! 1. **Warmup no longer serializes chunk 0** — the regression the
//!    composite stream exists to fix: with `Nm > GPUs`, the
//!    depth-expanded executor reserves chunk 0's whole 1F1B window on
//!    the GPU timeline before chunk 1's first microbatch runs, while
//!    the composite stream hands the GPU over after one chunk group.
//! 2. **The composite stream strictly improves simulated throughput**
//!    on the paper configuration the interleaved schedule exists for
//!    (ResNet-152 on a whimpy 4 × RTX 2060 virtual worker, chunks = 2).
//! 3. **Measured ≤ declared occupancy holds per stage and per GPU**
//!    for the composite stream, with recomputation off and on — the
//!    memory contract is schedule-independent.

use hetpipe::cluster::{Cluster, DeviceId, GpuKind};
use hetpipe::core::exec::SpanTag;
use hetpipe::core::{
    AllocationPolicy, HetPipeSystem, OccupancyAudit, Placement, RecomputePolicy, Schedule,
    SystemConfig,
};
use hetpipe::des::SimTime;

const CHUNKS: usize = 2;

fn interleaved(composite: bool) -> Schedule {
    Schedule::Interleaved1F1B {
        chunks: CHUNKS,
        composite,
    }
}

/// One standalone 4-GPU virtual worker on the paper testbed, Nm
/// forced above the GPU count so warmup behaviour is distinguishable.
fn single_vw_config(composite: bool, nm: usize) -> SystemConfig {
    SystemConfig {
        policy: AllocationPolicy::Custom(vec![(0..4).map(DeviceId).collect()]),
        placement: Placement::Default,
        staleness_bound: 0,
        nm_override: Some(nm),
        sync_transfers: false,
        order_search: false,
        schedule: interleaved(composite),
        recompute: RecomputePolicy::None,
        ..SystemConfig::default()
    }
}

/// How many stage-0 (chunk 0) forwards start on GPU 0 before chunk
/// 1's first forward (virtual stage `gpus`) starts.
fn chunk0_forwards_before_chunk1(composite: bool, nm: usize) -> usize {
    let cluster = Cluster::paper_testbed();
    let graph = hetpipe::model::vgg19(32);
    let sys =
        HetPipeSystem::build(&cluster, &graph, &single_vw_config(composite, nm)).expect("builds");
    let (_, stats) = sys.run_with_stats(SimTime::from_secs(5.0));
    let gpus = 4u32;
    let first_chunk1 = stats
        .trace
        .spans()
        .iter()
        .filter(|s| matches!(s.tag, SpanTag::Forward { stage, .. } if stage == gpus))
        .map(|s| s.start)
        .min()
        .expect("chunk 1 ran forwards");
    stats
        .trace
        .spans()
        .iter()
        .filter(|s| {
            matches!(s.tag, SpanTag::Forward { stage, .. } if stage == 0) && s.start < first_chunk1
        })
        .count()
}

#[test]
fn composite_warmup_does_not_serialize_chunk0_ahead_of_chunk1() {
    let nm = 6; // > GPUs, so the two variants warm up differently.
    let depth = chunk0_forwards_before_chunk1(false, nm);
    let composite = chunk0_forwards_before_chunk1(true, nm);
    // Depth-expanded: stage 0's whole 1F1B window (min(Nm, 2·4) = 6
    // forwards) is reserved on GPU 0's FIFO timeline before chunk 1's
    // first arrival gets a slot.
    assert_eq!(
        depth, nm,
        "depth-expanded warmup must show the serialization bug"
    );
    // Composite: the idealized timetable hands GPU 0 over to chunk 1
    // after one chunk group of `GPUs` forwards.
    assert_eq!(
        composite, 4,
        "composite warmup must hand over after one chunk group"
    );
    assert!(composite < depth);
}

/// The acceptance configuration: ResNet-152 on all-whimpy 4 × RTX 2060
/// virtual workers (ED over a 4-node RTX 2060 testbed), chunks = 2.
fn whimpy_config(composite: bool, recompute: RecomputePolicy) -> SystemConfig {
    SystemConfig {
        policy: AllocationPolicy::EqualDistribution,
        placement: Placement::Local,
        staleness_bound: 0,
        order_search: false,
        schedule: interleaved(composite),
        recompute,
        ..SystemConfig::default()
    }
}

#[test]
fn composite_strictly_beats_depth_expanded_on_whimpy_resnet() {
    let cluster = Cluster::testbed_subset(&[GpuKind::Rtx2060; 4]);
    let graph = hetpipe::model::resnet152(32);
    let horizon = SimTime::from_secs(20.0);
    let run = |composite: bool| {
        let sys = HetPipeSystem::build(
            &cluster,
            &graph,
            &whimpy_config(composite, RecomputePolicy::None),
        )
        .expect("builds");
        let (report, stats) = sys.run_with_stats(horizon);
        // The throughput claim only counts if the run stayed inside
        // its memory certification.
        let audit = OccupancyAudit::measure(
            &stats,
            sys.virtual_workers(),
            &interleaved(composite),
            sys.nm(),
        );
        audit.assert_sound(if composite { "composite" } else { "depth" });
        report.throughput_images_per_sec()
    };
    let depth = run(false);
    let composite = run(true);
    assert!(
        composite > depth,
        "the composite per-GPU stream must strictly improve simulated \
         throughput: composite {composite:.0} vs depth-expanded {depth:.0} img/s"
    );
}

#[test]
fn composite_occupancy_measured_within_declared_per_stage_and_gpu() {
    // The memory contract for the new stream form, on the whimpy
    // acceptance cluster, recompute off and on: trace-measured peak
    // activation occupancy never exceeds the declared accounting —
    // per virtual stage and summed per physical GPU — and the run
    // does real pipelined work.
    let cluster = Cluster::testbed_subset(&[GpuKind::Rtx2060; 4]);
    let graph = hetpipe::model::resnet152(32);
    for recompute in RecomputePolicy::ALL {
        let sys = HetPipeSystem::build(&cluster, &graph, &whimpy_config(true, recompute))
            .expect("builds");
        let (_, stats) = sys.run_with_stats(SimTime::from_secs(10.0));
        let audit =
            OccupancyAudit::measure(&stats, sys.virtual_workers(), &interleaved(true), sys.nm());
        audit.assert_sound(&format!("composite (recompute {recompute})"));
        assert_eq!(audit.gpus.len(), 4 * sys.virtual_workers().len());
        for g in &audit.gpus {
            assert!(
                g.measured >= 2,
                "recompute {recompute}: gpu {g} never overlapped minibatches"
            );
        }
        assert!(
            stats.vws.iter().all(|v| v.completions.len() > 10),
            "recompute {recompute}: no steady progress"
        );
    }
}

#[test]
fn composite_and_depth_certify_identical_memory() {
    // The two interleaved forms differ only in GPU timeline order;
    // their declared per-stage windows, weight versions, and per-GPU
    // peaks are identical, so plans certify identically and the
    // throughput comparison is apples-to-apples.
    use hetpipe::schedule::PipelineSchedule;
    let (k, nm) = (8usize, 5usize);
    for stage in 0..k {
        assert_eq!(
            interleaved(true).max_in_flight(stage, k, nm),
            interleaved(false).max_in_flight(stage, k, nm)
        );
        assert_eq!(
            interleaved(true).extra_weight_versions(stage, k, nm),
            interleaved(false).extra_weight_versions(stage, k, nm)
        );
    }
}
