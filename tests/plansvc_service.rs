//! Plan-service integration tests: parity and cache coherence.
//!
//! (a) **Parity**: every reply — cold, cache hit, or warm miss — is
//!     bit-identical to a cold `PartitionSolver::solve` of the same
//!     instance (same oracle style as `tests/planner_parity.rs`),
//!     across a model × schedule × `Nm` grid.
//! (b) **Coherence**: racing replan publishes against concurrent
//!     readers never serve a plan whose `seq` is older than the
//!     latest published for that key (the `MatchSeq` guarantee).
//! (c) **Warm-start policy**: a miss that differs from a cached
//!     family member only in derates or `Nm` is answered as a
//!     `WarmMiss` — and still matches the cold oracle exactly.

use hetpipe::cluster::{Cluster, DeviceId, GpuKind};
use hetpipe::core::plankey::{cluster_fingerprint, graph_fingerprint};
use hetpipe::core::{RecomputePolicy, Schedule, VirtualWorker};
use hetpipe::model::ModelGraph;
use hetpipe::partition::{PartitionPlan, PartitionProblem, PartitionSolver};
use hetpipe::plansvc::{Catalog, PlanRequest, PlanService, Provenance};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};

/// The cold oracle: a from-scratch solve of exactly the instance the
/// service builds from a request (derated specs, same link derivation).
fn cold_oracle(
    cluster: &Cluster,
    graph: &ModelGraph,
    devices: &[DeviceId],
    derates: &[f64],
    nm: usize,
    schedule: Schedule,
    recompute: RecomputePolicy,
) -> PartitionPlan {
    let gpus = devices
        .iter()
        .zip(derates)
        .map(|(&d, &r)| cluster.spec_of(d).derated(r.max(1.0)))
        .collect();
    let links = VirtualWorker::links(cluster, devices);
    PartitionSolver::solve(
        &PartitionProblem::with_schedule(graph, gpus, links, nm, schedule)
            .with_recompute(recompute),
    )
    .expect("oracle instance must be feasible")
}

fn assert_plan_eq(a: &PartitionPlan, b: &PartitionPlan, what: &str) {
    assert_eq!(a.ranges, b.ranges, "{what}: ranges");
    // Bit-identical, not approximately equal.
    assert_eq!(a.stage_secs, b.stage_secs, "{what}: stage_secs");
    assert_eq!(a.bottleneck_secs, b.bottleneck_secs, "{what}: bottleneck");
}

/// One GPU of each kind across the paper testbed's four nodes (the
/// VRGQ heterogeneous pipeline the planner benches use).
fn vrgq_devices() -> Vec<DeviceId> {
    vec![DeviceId(0), DeviceId(4), DeviceId(8), DeviceId(12)]
}

#[test]
fn every_reply_matches_the_cold_oracle_across_the_grid() {
    let cluster = Cluster::paper_testbed();
    let mut catalog = Catalog::new();
    let cluster_fp = catalog.register_cluster(cluster.clone());
    let models = [hetpipe::model::vgg19(32), hetpipe::model::resnet152(32)];
    let fps: Vec<u64> = models
        .iter()
        .map(|m| catalog.register_model(m.clone()))
        .collect();
    let svc = PlanService::start(catalog, 2);
    let client = svc.client();
    for (graph, &model_fp) in models.iter().zip(&fps) {
        for schedule in [Schedule::HetPipeWave, Schedule::OneFOneB] {
            for nm in [1, 2, 4] {
                let req = PlanRequest::nominal(
                    model_fp,
                    cluster_fp,
                    vrgq_devices(),
                    nm,
                    schedule,
                    RecomputePolicy::None,
                );
                let what = format!("{} {schedule:?} nm={nm}", graph.name);
                let oracle = cold_oracle(
                    &cluster,
                    graph,
                    &vrgq_devices(),
                    &[1.0; 4],
                    nm,
                    schedule,
                    RecomputePolicy::None,
                );
                // First ask solves (cold, or warm off a same-family
                // lower-Nm sibling from an earlier grid step — either
                // way the answer must be the oracle's, bit for bit).
                let first = client.plan(&req).expect(&what);
                assert_ne!(first.provenance, Provenance::CacheHit, "{what}: first ask");
                assert_plan_eq(&first.plan, &oracle, &what);
                assert_eq!(first.cost, oracle.bottleneck_secs, "{what}: cost");
                // Second ask is a hit and bit-identical.
                let second = client.plan(&req).expect(&what);
                assert_eq!(second.provenance, Provenance::CacheHit, "{what}: hit");
                assert_eq!(second.seq, first.seq, "{what}: hit seq");
                assert_plan_eq(&second.plan, &oracle, &what);
            }
        }
    }
    drop(client);
    svc.shutdown();
}

#[test]
fn derate_and_nm_misses_warm_start_and_still_match_oracle() {
    let cluster = Cluster::testbed_subset(&[GpuKind::Rtx2060; 4]);
    let graph = hetpipe::model::resnet152(32);
    let mut catalog = Catalog::new();
    let cluster_fp = catalog.register_cluster(cluster.clone());
    let model_fp = catalog.register_model(graph.clone());
    let svc = PlanService::start(catalog, 2);
    let client = svc.client();
    let devices: Vec<DeviceId> = (0..4).map(DeviceId).collect();
    let nominal = PlanRequest::nominal(
        model_fp,
        cluster_fp,
        devices.clone(),
        4,
        Schedule::HetPipeWave,
        RecomputePolicy::BoundaryOnly,
    );
    assert_eq!(
        client.plan(&nominal).unwrap().provenance,
        Provenance::Cold,
        "fresh cache must solve cold"
    );
    // A straggler-style derate on stage 0: same family, new key.
    let mut derated = nominal.clone();
    derated.observed_derates = vec![1.3, 1.0, 1.0, 1.0];
    let reply = client.plan(&derated).unwrap();
    assert_eq!(reply.provenance, Provenance::WarmMiss, "derate neighbor");
    let oracle = cold_oracle(
        &cluster,
        &graph,
        &devices,
        &derated.observed_derates,
        4,
        Schedule::HetPipeWave,
        RecomputePolicy::BoundaryOnly,
    );
    assert_plan_eq(&reply.plan, &oracle, "derated warm miss");
    // An Nm backoff: higher-Nm incumbent stays feasible at lower Nm.
    let mut backoff = nominal.clone();
    backoff.nm = 3;
    let reply = client.plan(&backoff).unwrap();
    assert_eq!(reply.provenance, Provenance::WarmMiss, "nm neighbor");
    let oracle = cold_oracle(
        &cluster,
        &graph,
        &devices,
        &[1.0; 4],
        3,
        Schedule::HetPipeWave,
        RecomputePolicy::BoundaryOnly,
    );
    assert_plan_eq(&reply.plan, &oracle, "nm-backoff warm miss");
    drop(client);
    svc.shutdown();
}

#[test]
fn racing_replan_publishes_never_serve_stale_sequences() {
    let cluster = Cluster::testbed_subset(&[GpuKind::Rtx2060; 4]);
    let graph = hetpipe::model::resnet152(32);
    let mut catalog = Catalog::new();
    let cluster_fp = catalog.register_cluster(cluster.clone());
    let model_fp = catalog.register_model(graph.clone());
    let svc = PlanService::start(catalog, 2);
    let req = PlanRequest::nominal(
        model_fp,
        cluster_fp,
        (0..4).map(DeviceId).collect(),
        2,
        Schedule::HetPipeWave,
        RecomputePolicy::None,
    );
    let oracle = cold_oracle(
        &cluster,
        &graph,
        &(0..4).map(DeviceId).collect::<Vec<_>>(),
        &[1.0; 4],
        2,
        Schedule::HetPipeWave,
        RecomputePolicy::None,
    );
    const PUBLISHES: u64 = 100;
    // The latest sequence a publish has *returned* for the key: once
    // a reader observes this at n, a reply with seq < n is a
    // coherence violation (a stale fault-era plan resurfacing).
    let latest = AtomicU64::new(0);
    let done = AtomicBool::new(false);
    std::thread::scope(|s| {
        let publisher = {
            let client = svc.client();
            let req = req.clone();
            let (latest, done) = (&latest, &done);
            s.spawn(move || {
                for _ in 0..PUBLISHES {
                    let reply = client.replan(&req).unwrap();
                    latest.fetch_max(reply.seq, Ordering::SeqCst);
                }
                done.store(true, Ordering::SeqCst);
            })
        };
        let readers: Vec<_> = (0..3)
            .map(|_| {
                let client = svc.client();
                let req = req.clone();
                let oracle = &oracle;
                let (latest, done) = (&latest, &done);
                s.spawn(move || {
                    let mut reads = 0u64;
                    while !done.load(Ordering::SeqCst) || reads == 0 {
                        let floor = latest.load(Ordering::SeqCst);
                        let reply = client.plan(&req).unwrap();
                        assert!(
                            reply.seq >= floor,
                            "stale read: served seq {} after {} was published",
                            reply.seq,
                            floor
                        );
                        assert_plan_eq(&reply.plan, oracle, "racing read");
                        reads += 1;
                    }
                    reads
                })
            })
            .collect();
        publisher.join().unwrap();
        for r in readers {
            assert!(r.join().unwrap() > 0);
        }
    });
    // ≥, not ==: a reader's initial query miss may insert seq 1
    // before the first publish, shifting every published seq up one.
    assert!(latest.load(Ordering::SeqCst) >= PUBLISHES);
    svc.shutdown();
}

#[test]
fn catalog_fingerprints_are_the_plankey_fingerprints() {
    // Requests are addressed by the same process-stable fingerprints
    // `hetpipe_core::plankey` exposes — no service-private identity.
    let cluster = Cluster::paper_testbed();
    let graph = hetpipe::model::vgg19(32);
    let mut catalog = Catalog::new();
    assert_eq!(
        catalog.register_model(graph.clone()),
        graph_fingerprint(&graph)
    );
    assert_eq!(
        catalog.register_cluster(cluster.clone()),
        cluster_fingerprint(&cluster)
    );
}
