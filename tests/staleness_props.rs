//! Property tests of the WSP staleness algebra and its enforcement by
//! both the simulator and the real threaded trainer.
//!
//! Written as exhaustive/seeded sweeps rather than `proptest` (the
//! offline build vendors no shrinking framework); the parameter grids
//! cover the same domains the original strategies sampled.

use hetpipe::core::WspParams;

/// The closed-form global staleness bound of Section 5.
#[test]
fn s_global_formula() {
    for nm in 1usize..16 {
        for d in 0usize..8 {
            let w = WspParams::new(nm, d);
            let s_local = nm - 1;
            assert_eq!(w.s_local(), s_local);
            assert_eq!(w.s_global(), (d + 1) * (s_local + 1) + s_local - 1);
        }
    }
}

/// Every minibatch's required wave is far enough in the past that the
/// staleness guarantee `p` sees all updates up to `p - (s_global + 1)`
/// holds, and no further (tightness).
#[test]
fn required_wave_is_exact() {
    for nm in 1usize..12 {
        for d in 0usize..6 {
            let w = WspParams::new(nm, d);
            for p in 1u64..4000 {
                match w.required_wave(p) {
                    None => {
                        // Only the first s_global + 1 minibatches are exempt.
                        assert!(p <= w.s_global() as u64 + 1);
                    }
                    Some(wave) => {
                        // The wave must cover minibatch p - s_global - 1 ...
                        let must_see = p - w.s_global() as u64 - 1;
                        assert!(
                            w.last_of_wave(wave) >= must_see,
                            "wave {wave} ends at {} but must cover {must_see}",
                            w.last_of_wave(wave)
                        );
                        // ... and the previous wave must NOT cover it (tight).
                        if wave > 0 {
                            assert!(w.last_of_wave(wave - 1) < must_see);
                        }
                    }
                }
            }
        }
    }
}

/// Required waves are monotone in `p` and decrease with `D`.
#[test]
fn required_wave_monotone() {
    for nm in 1usize..10 {
        for d in 0usize..5 {
            let w = WspParams::new(nm, d);
            for p in 2u64..2000 {
                let r_prev = w.required_wave(p - 1);
                let r = w.required_wave(p);
                assert!(r_prev.unwrap_or(0) <= r.unwrap_or(u64::MAX).max(r_prev.unwrap_or(0)));
                // Looser D never requires more.
                let looser = WspParams::new(nm, d + 1);
                match (looser.required_wave(p), r) {
                    (Some(a), Some(b)) => assert!(a <= b),
                    (Some(_), None) => panic!("looser D cannot add requirements"),
                    _ => {}
                }
            }
        }
    }
}

/// Wave indexing round-trips.
#[test]
fn wave_indexing_roundtrip() {
    for nm in 1usize..16 {
        let w = WspParams::new(nm, 0);
        for wave in 0u64..1000 {
            let first = w.first_of_wave(wave);
            let last = w.last_of_wave(wave);
            assert_eq!(last - first + 1, nm as u64);
            assert_eq!(w.wave_of(first), wave);
            assert_eq!(w.wave_of(last), wave);
            if first > 1 {
                assert_eq!(w.wave_of(first - 1), wave - 1);
            }
        }
    }
}

/// PipeDream-2BW double buffering against the WSP clock: under 2BW,
/// every minibatch of wave `c` reads the version closed by wave
/// `c − 1` (one shadow buffer — the `extra_weight_versions` cap of 1
/// that replaces HetPipe's per-minibatch `w_p` stashing for 1F1B).
/// That version must be (a) exactly one wave stale — the fixed 2BW
/// staleness — and (b) never older than the WSP start gate
/// ([`WspParams::required_wave`]) demands, for every `(Nm, D)`: the
/// double buffer is a *tightening* of WSP's staleness envelope, so
/// capping the stash cannot admit a run WSP would forbid.
#[test]
fn two_bw_versions_respect_the_wsp_staleness_bound() {
    use hetpipe::schedule::{OneFOneB, PipelineSchedule};
    for nm in 1usize..12 {
        for d in 0usize..6 {
            let w = WspParams::new(nm, d);
            for p in 1u64..4000 {
                let v = w.two_bw_version(p);
                // (a) Fixed one-wave staleness: wave 0 runs on the
                // initial weights (−1), later waves on the previous
                // wave's version.
                assert_eq!(v, w.wave_of(p) as i64 - 1);
                // (b) At least as fresh as the WSP gate requires.
                if let Some(req) = w.required_wave(p) {
                    assert!(
                        v >= req as i64,
                        "Nm={nm} D={d} mb={p}: 2BW version {v} staler than \
                         the WSP gate's wave {req}"
                    );
                }
            }
        }
    }
    // The memory side of the same scheme: 1F1B pins at most one shadow
    // copy at any stage, depth, or concurrency.
    for k in 1usize..10 {
        for nm in 1usize..12 {
            for stage in 0..k {
                assert!(OneFOneB.extra_weight_versions(stage, k, nm) <= 1);
            }
        }
    }
}

/// Clock-distance rule consistency.
#[test]
fn distance_rule() {
    for d in 0usize..10 {
        let w = WspParams::new(4, d);
        for slowest in 0u64..100 {
            for ahead in 0u64..20 {
                let mine = slowest + ahead;
                assert_eq!(w.within_distance(mine, slowest), ahead <= d as u64);
            }
        }
    }
}

/// The threaded trainer must honour the clock-distance bound under
/// every (Nm, D) combination — measured, not assumed.
#[test]
fn trainer_clock_distance_respects_bound() {
    use hetpipe::train::{train, Dataset, Mode, TrainConfig};
    let dataset = Dataset::gaussian_blobs(8, 3, 512, 64, 0.4, 5);
    for (nm, d) in [(1usize, 0usize), (2, 0), (4, 1), (4, 3)] {
        let config = TrainConfig {
            mode: Mode::Wsp { nm, d },
            workers: 3,
            dims: vec![8, 16, 3],
            batch: 16,
            lr: 0.05,
            momentum: 0.0,
            steps_per_worker: 96,
            seed: 11,
            snapshot_every: 0,
        };
        let out = train(&dataset, &config);
        assert!(
            out.max_clock_distance <= d as u64 + 1,
            "Nm={nm} D={d}: observed clock distance {}",
            out.max_clock_distance
        );
    }
}

/// The simulator keeps virtual workers within the distance bound too.
#[test]
fn simulator_clock_distance_respects_bound() {
    use hetpipe::prelude::*;
    let cluster = Cluster::paper_testbed();
    let graph = vgg19(32);
    for d in [0usize, 2] {
        let config = SystemConfig {
            policy: AllocationPolicy::NodePartition,
            placement: Placement::Default,
            staleness_bound: d,
            nm_override: Some(2),
            ..SystemConfig::default()
        };
        let report = HetPipeSystem::build(&cluster, &graph, &config)
            .expect("feasible")
            .run(SimTime::from_secs(30.0));
        let max = report.waves_per_vw.iter().max().copied().unwrap_or(0);
        let min = report.waves_per_vw.iter().min().copied().unwrap_or(0);
        assert!(
            max - min <= d as u64 + 1,
            "D={d}: final clocks {:?}",
            report.waves_per_vw
        );
    }
}
