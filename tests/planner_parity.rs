//! The planner-optimization parity suite.
//!
//! PR 4 made the plan→simulate pipeline fast *without changing any
//! answer*: prefix-sum O(1) cost/memory probes, a frontier-pruned DP,
//! a binary-searched `Max_m`, a thread-fanned order search, an
//! answer-preserving `Nm`-sweep reuse step, and one shared joint
//! timetable per virtual worker. This suite is the "without changing
//! any answer" half of that claim:
//!
//! (a) prefix-sum `stage_secs` / stage-memory bytes match the naive
//!     per-range re-summation (to 1e-12 relative for times, exactly
//!     for bytes) over random ranges of **every zoo model**;
//! (b) the parallel order search returns the same plan as the serial
//!     search, and the optimized solver the same plan as the naive
//!     reference solver;
//! (c) the wave schedule's golden traces are still bit-identical to
//!     the frozen seed executor — the planner refactor may not leak
//!     into runtime behaviour.

use hetpipe::cluster::{Cluster, DeviceId, GpuKind, LinkKind};
use hetpipe::core::exec::{self, ExecParams};
use hetpipe::core::golden;
use hetpipe::core::pserver::{Placement, ShardMap};
use hetpipe::core::{RecomputePolicy, Schedule, VirtualWorker, WspParams};
use hetpipe::des::SimTime;
use hetpipe::model::memory::nm_saturation_limit;
use hetpipe::model::{ModelGraph, StageMemoryTerms, TrainingMemoryModel};
use hetpipe::partition::order::{best_order, search_orders, search_orders_par};
use hetpipe::partition::{
    max_feasible_nm_linear, max_feasible_nm_with, NmSweep, PartitionProblem, PartitionSolver,
    StageCostModel,
};
use hetpipe::schedule::PipelineSchedule;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

fn zoo() -> Vec<ModelGraph> {
    vec![
        hetpipe::model::vgg19(32),
        hetpipe::model::resnet152(32),
        hetpipe::model::resnet50(32),
        hetpipe::model::mlp(32, &[512, 400, 300, 200, 100, 50, 10]),
        hetpipe::model::transformer_encoder(12, 768, 12, 256, 8),
    ]
}

fn vrgq() -> Vec<hetpipe::cluster::gpu::GpuSpec> {
    vec![
        GpuKind::TitanV.spec(),
        GpuKind::TitanRtx.spec(),
        GpuKind::QuadroP4000.spec(),
        GpuKind::Rtx2060.spec(),
    ]
}

/// (a) Prefix-sum range queries vs naive re-summation, random ranges
/// over every zoo model, every schedule, recompute on and off.
#[test]
fn prefix_sums_match_naive_summation() {
    let mut rng = SmallRng::seed_from_u64(0x9e3779b97f4a7c15);
    for graph in zoo() {
        let n = graph.len();
        for schedule in [Schedule::HetPipeWave, Schedule::OneFOneB] {
            let k = schedule.virtual_stages(4);
            for recompute in [RecomputePolicy::None, RecomputePolicy::BoundaryOnly] {
                let problem = PartitionProblem::with_schedule(
                    &graph,
                    (0..k).map(|s| vrgq()[s % 4].clone()).collect(),
                    vec![LinkKind::Pcie; k - 1],
                    3,
                    schedule,
                )
                .with_recompute(recompute);
                let model = StageCostModel::new(&problem);
                for _ in 0..200 {
                    let start = rng.gen_range(0..n);
                    let end = rng.gen_range(start + 1..n + 1);
                    let stage = rng.gen_range(0..k);
                    let fast = model.stage_secs(stage, start..end);
                    let slow = model.stage_secs_naive(stage, start..end);
                    assert!(
                        (fast - slow).abs() <= 1e-12 * slow.abs(),
                        "{} {schedule} {recompute} stage {stage} {start}..{end}: \
                         prefix {fast} vs naive {slow}",
                        graph.name
                    );
                    // Byte totals are integer arithmetic: exact.
                    let terms = StageMemoryTerms::new(stage, k, 3, &schedule, recompute);
                    assert_eq!(
                        terms.stage_bytes(&graph, start..end),
                        TrainingMemoryModel::stage_bytes_with_naive(
                            &graph,
                            start..end,
                            stage,
                            k,
                            3,
                            &schedule,
                            recompute
                        ),
                        "{} {schedule} {recompute} stage {stage} {start}..{end}",
                        graph.name
                    );
                }
            }
        }
    }
}

/// (b) The optimized solver (O(1) probes + frontier prune) returns
/// the same plan as the naive reference DP, and the incremental
/// `Nm`-sweep and binary-searched `Max_m` agree with their linear
/// counterparts, over every zoo model on the heterogeneous VW.
#[test]
fn optimized_solver_matches_reference() {
    for graph in zoo() {
        let k = 4.min(graph.len());
        let gpus: Vec<_> = vrgq().into_iter().take(k).collect();
        let links = vec![LinkKind::Pcie; k - 1];
        let limit = nm_saturation_limit(k);
        let mut sweep = NmSweep::new(
            &graph,
            &gpus,
            &links,
            Schedule::HetPipeWave,
            RecomputePolicy::None,
        );
        for nm in 1..=limit {
            let problem = PartitionProblem::new(&graph, gpus.clone(), links.clone(), nm);
            let fast = PartitionSolver::solve(&problem);
            let slow = PartitionSolver::solve_reference(&problem);
            let swept = sweep.solve(nm);
            match (&fast, &slow) {
                (Ok(a), Ok(b)) => {
                    assert_eq!(a.ranges, b.ranges, "{} nm={nm}", graph.name);
                    assert!(
                        (a.bottleneck_secs - b.bottleneck_secs).abs()
                            <= 1e-12 * b.bottleneck_secs.abs(),
                        "{} nm={nm}: bottleneck {} vs {}",
                        graph.name,
                        a.bottleneck_secs,
                        b.bottleneck_secs
                    );
                }
                (Err(a), Err(b)) => assert_eq!(a, b, "{} nm={nm}", graph.name),
                _ => panic!("{} nm={nm}: {fast:?} vs {slow:?}", graph.name),
            }
            match (&fast, &swept) {
                (Ok(a), Ok(b)) => assert_eq!(a.ranges, b.ranges, "{} nm={nm} sweep", graph.name),
                (Err(a), Err(b)) => assert_eq!(a, b),
                _ => panic!("{} nm={nm}: solve {fast:?} vs sweep {swept:?}", graph.name),
            }
        }
        let fast = max_feasible_nm_with(
            &graph,
            &gpus,
            &links,
            limit,
            Schedule::HetPipeWave,
            RecomputePolicy::None,
        );
        let slow = max_feasible_nm_linear(
            &graph,
            &gpus,
            &links,
            limit,
            Schedule::HetPipeWave,
            RecomputePolicy::None,
        );
        match (fast, slow) {
            (None, None) => {}
            (Some((a, pa)), Some((b, pb))) => {
                assert_eq!(a, b, "{}: Max_m binary vs linear", graph.name);
                assert_eq!(pa.ranges, pb.ranges, "{}", graph.name);
            }
            (a, b) => panic!(
                "{}: Max_m binary {:?} vs linear {:?}",
                graph.name,
                a.map(|x| x.0),
                b.map(|x| x.0)
            ),
        }
    }
}

/// (b) The thread-fanned order search is bit-identical to the serial
/// fold, at the search-engine level and through `best_order`.
#[test]
fn parallel_order_search_matches_serial() {
    for graph in [hetpipe::model::vgg19(32), hetpipe::model::resnet152(32)] {
        let gpus = vrgq();
        let eval = |order: &[usize]| {
            let ordered: Vec<_> = order.iter().map(|&i| gpus[i].clone()).collect();
            let problem = PartitionProblem::new(&graph, ordered, vec![LinkKind::Pcie; 3], 4);
            PartitionSolver::solve(&problem)
                .ok()
                .map(|plan| -plan.bottleneck_secs)
        };
        let serial = search_orders(&gpus, eval);
        let parallel = search_orders_par(&gpus, eval);
        match (serial, parallel) {
            (None, None) => {}
            (Some((so, ss, se)), Some((po, ps, pe))) => {
                assert_eq!(so, po, "{}: winning order", graph.name);
                assert_eq!(ss.to_bits(), ps.to_bits(), "{}: score", graph.name);
                assert_eq!(se, pe, "{}: evaluated count", graph.name);
            }
            (a, b) => panic!("{}: serial {a:?} vs parallel {b:?}", graph.name),
        }
        // And through the public best_order entry point: the plan is
        // the winning order's solve either way.
        let res = best_order(&graph, &gpus, 4, |_| vec![LinkKind::Pcie; 3]).unwrap();
        assert!(res.plan.is_valid_cover(graph.len()));
        assert_eq!(res.evaluated, 24);
    }
}

/// (c) The wave schedule through the schedule-generic executor is
/// still bit-identical to the frozen seed executor: nothing in the
/// planner/trace/timetable optimizations leaks into runtime traces.
#[test]
fn golden_wave_still_bit_identical() {
    let cluster = Cluster::paper_testbed();
    let graph = hetpipe::model::vgg19(32);
    let groups: Vec<Vec<DeviceId>> = (0..4)
        .map(|j| (0..4).map(|n| DeviceId(n * 4 + j)).collect())
        .collect();
    let nm = 4;
    let vws: Vec<VirtualWorker> = groups
        .iter()
        .enumerate()
        .map(|(i, devices)| {
            let gpus = devices.iter().map(|&d| cluster.spec_of(d)).collect();
            let links = VirtualWorker::links(&cluster, devices);
            let plan = PartitionSolver::solve(&PartitionProblem::new(&graph, gpus, links, nm))
                .expect("feasible");
            VirtualWorker {
                index: i,
                devices: devices.clone(),
                plan,
                nm,
            }
        })
        .collect();
    let shards = ShardMap::build(Placement::Local, &graph, &cluster, &vws[0]);
    let params = ExecParams {
        cluster: &cluster,
        graph: &graph,
        vws: &vws,
        wsp: WspParams::new(nm, 0),
        shards: &shards,
        sync_transfers: true,
        schedule: Schedule::HetPipeWave,
        recompute: RecomputePolicy::None,
    };
    let horizon = SimTime::from_secs(10.0);
    let new = exec::run(params.clone(), horizon);
    let old = golden::run(params, horizon);
    assert!(new.trace.len() > 100, "trivial trace proves nothing");
    assert_eq!(new.trace.len(), old.trace.len());
    for (i, (x, y)) in new.trace.spans().iter().zip(old.trace.spans()).enumerate() {
        assert_eq!(x, y, "span {i} differs");
    }
    for (x, y) in new.vws.iter().zip(&old.vws) {
        assert_eq!(x.completions, y.completions);
        assert_eq!(x.waves_pushed, y.waves_pushed);
    }
}
