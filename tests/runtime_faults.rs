//! Fault-aware runtime integration tests.
//!
//! (a) **Zero-fault invariance**: running under the runtime layer
//!     with an empty fault script — any policy — commits exactly the
//!     trace of the plain one-shot executor, bit for bit.
//! (b) **Determinism**: same seed + script ⇒ identical traces and
//!     epochs across repeated runs and across threads.
//! (c) **Reaction**: on the paper's whimpy 4×RTX 2060 ResNet-152
//!     configuration with the canonical 30%-slowdown straggler
//!     script, `Replan` recovers ≥ 15% throughput over `Static`
//!     (the acceptance bar); after a `GpuLost`, `Replan` produces a
//!     plan certified by the exact joint per-GPU memory check and
//!     every epoch passes its occupancy audit.

use hetpipe::cluster::{Cluster, DeviceId, GpuKind};
use hetpipe::core::exec::{self, ExecParams};
use hetpipe::core::pserver::{Placement, ShardMap};
use hetpipe::core::{RecomputePolicy, Schedule, VirtualWorker, WspParams};
use hetpipe::des::SimTime;
use hetpipe::model::ModelGraph;
use hetpipe::partition::{max_feasible_nm_with, PartitionProblem, PartitionSolver};
use hetpipe::runtime::{self, FaultScript, MonitorConfig, Policy, RuntimeParams};
use hetpipe::schedule::PipelineSchedule;

/// One standalone virtual worker over `devices` (the paper's
/// Figure-3 measurement mode): plan solved at `nm`.
fn standalone_vw(
    cluster: &Cluster,
    graph: &ModelGraph,
    devices: Vec<DeviceId>,
    nm: usize,
    schedule: Schedule,
    recompute: RecomputePolicy,
) -> VirtualWorker {
    let k = schedule.virtual_stages(devices.len());
    let expanded: Vec<DeviceId> = (0..k).map(|s| devices[s % devices.len()]).collect();
    let gpus = expanded.iter().map(|&d| cluster.spec_of(d)).collect();
    let links = VirtualWorker::links(cluster, &expanded);
    let plan = PartitionSolver::solve(
        &PartitionProblem::with_schedule(graph, gpus, links, nm, schedule)
            .with_recompute(recompute),
    )
    .expect("feasible");
    VirtualWorker {
        index: 0,
        devices: expanded,
        plan,
        nm,
    }
}

/// The acceptance configuration: one whimpy 4×RTX 2060 node running
/// ResNet-152 — the cluster where ResNet-152 does not even fit a
/// single GPU and pipeline quality matters most.
fn whimpy_resnet() -> (Cluster, ModelGraph, usize) {
    let cluster = Cluster::testbed_subset(&[GpuKind::Rtx2060; 4]);
    let graph = hetpipe::model::resnet152(32);
    let devices: Vec<_> = (0..4).map(DeviceId).collect();
    let gpus: Vec<_> = devices.iter().map(|&d| cluster.spec_of(d)).collect();
    let links = VirtualWorker::links(&cluster, &devices);
    let limit = hetpipe::model::memory::nm_saturation_limit(4);
    let (nm, _) = max_feasible_nm_with(
        &graph,
        &gpus,
        &links,
        limit,
        Schedule::HetPipeWave,
        RecomputePolicy::None,
    )
    .expect("feasible");
    (cluster, graph, nm)
}

#[allow(clippy::too_many_arguments)]
fn runtime_params<'a>(
    cluster: &'a Cluster,
    graph: &'a ModelGraph,
    vws: Vec<VirtualWorker>,
    nm: usize,
    schedule: Schedule,
    recompute: RecomputePolicy,
    script: FaultScript,
    policy: Policy,
) -> RuntimeParams<'a> {
    RuntimeParams {
        cluster,
        graph,
        vws,
        wsp: WspParams::new(nm, 0),
        placement: Placement::Default,
        sync_transfers: false,
        schedule,
        recompute,
        script: script.into(),
        policy,
        monitor: MonitorConfig::default(),
        max_reactions: 8,
        planner: None,
    }
}

// ------------------------------------------------------------------
// (a) Zero-fault invariance.
// ------------------------------------------------------------------

#[test]
fn zero_fault_script_keeps_traces_bit_identical() {
    let (cluster, graph, nm) = whimpy_resnet();
    let horizon = SimTime::from_secs(15.0);
    for schedule in [Schedule::HetPipeWave, Schedule::OneFOneB] {
        let vw = standalone_vw(
            &cluster,
            &graph,
            (0..4).map(DeviceId).collect(),
            nm,
            schedule,
            RecomputePolicy::None,
        );
        let shards = ShardMap::build(Placement::Default, &graph, &cluster, &vw);
        let vws = vec![vw];
        let plain = exec::run(
            ExecParams {
                cluster: &cluster,
                graph: &graph,
                vws: &vws,
                wsp: WspParams::new(nm, 0),
                shards: &shards,
                sync_transfers: false,
                schedule,
                recompute: RecomputePolicy::None,
            },
            horizon,
        );
        for policy in [
            Policy::Static,
            Policy::SkipStraggler { window: 8 },
            Policy::Replan,
        ] {
            let report = runtime::run(
                runtime_params(
                    &cluster,
                    &graph,
                    vws.clone(),
                    nm,
                    schedule,
                    RecomputePolicy::None,
                    FaultScript::none(),
                    policy,
                ),
                horizon,
            );
            assert_eq!(report.epochs.len(), 1, "{schedule} {policy:?}: one epoch");
            assert_eq!(
                plain.trace.len(),
                report.trace.len(),
                "{schedule} {policy:?}: span count"
            );
            for (i, (a, b)) in plain
                .trace
                .spans()
                .iter()
                .zip(report.trace.spans())
                .enumerate()
            {
                assert_eq!(a, b, "{schedule} {policy:?}: span {i}");
            }
            assert_eq!(
                plain.vws[0].completions, report.completions[0],
                "{schedule} {policy:?}: completions"
            );
            assert!(report.audits_sound(), "{schedule} {policy:?}: audit");
            assert!(report.signals.is_empty(), "{schedule} {policy:?}: signals");
        }
    }
}

// ------------------------------------------------------------------
// (b) Determinism across repeats and threads.
// ------------------------------------------------------------------

#[test]
fn same_seed_and_script_is_deterministic_across_threads() {
    let (cluster, graph, nm) = whimpy_resnet();
    let script = FaultScript::seeded(7, 30.0, 4, 1, 3);
    let run_once = || {
        let vw = standalone_vw(
            &cluster,
            &graph,
            (0..4).map(DeviceId).collect(),
            nm,
            Schedule::HetPipeWave,
            RecomputePolicy::None,
        );
        runtime::run(
            runtime_params(
                &cluster,
                &graph,
                vec![vw],
                nm,
                Schedule::HetPipeWave,
                RecomputePolicy::None,
                script.clone(),
                Policy::Replan,
            ),
            SimTime::from_secs(30.0),
        )
    };
    let base = run_once();
    // Repeated in-thread and across a scoped thread pool: bit-equal.
    let repeat = run_once();
    let threaded: Vec<_> = std::thread::scope(|s| {
        let handles: Vec<_> = (0..3).map(|_| s.spawn(run_once)).collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });
    for (which, other) in
        std::iter::once(("repeat", &repeat)).chain(threaded.iter().map(|r| ("thread", r)))
    {
        assert_eq!(base.trace.len(), other.trace.len(), "{which}: span count");
        for (a, b) in base.trace.spans().iter().zip(other.trace.spans()) {
            assert_eq!(a, b, "{which}");
        }
        assert_eq!(base.completions, other.completions, "{which}");
        assert_eq!(base.epochs.len(), other.epochs.len(), "{which}");
        for (a, b) in base.epochs.iter().zip(&other.epochs) {
            assert_eq!(a.start, b.start, "{which}");
            assert_eq!(a.end, b.end, "{which}");
            assert_eq!(a.nm, b.nm, "{which}");
            assert_eq!(a.action, b.action, "{which}");
        }
        assert_eq!(base.signals, other.signals, "{which}");
    }
}

// ------------------------------------------------------------------
// (c) Reaction quality and certification.
// ------------------------------------------------------------------

/// The acceptance bar: on the whimpy ResNet-152 config with the
/// canonical ×1.3 straggler, `Replan` must recover ≥ 15% throughput
/// over `Static` (measured past the fault onset, where the policies
/// actually differ).
#[test]
fn replan_recovers_straggler_throughput() {
    let (cluster, graph, _) = whimpy_resnet();
    // The config the repo's own sweeps use for this cluster: with
    // boundary-only recomputation the 6 GB GPUs can hold a *balanced*
    // ResNet-152 partition at a bottleneck-bound Nm — without it the
    // memory wall pins 48 of 56 layer units on the fused last stage
    // and the pipeline is not even straggler-sensitive.
    let recompute = RecomputePolicy::BoundaryOnly;
    let nm = 4;
    let horizon = SimTime::from_secs(75.0);
    // Slow the GPU hosting stage 0 by 30% from t = 5 s onward. Stage 0
    // is where the wave schedule both injects and completes
    // minibatches, so an unhandled straggler there throttles the whole
    // pipeline; re-planning shifts layers off it (measured ~1.31x
    // here — a mid-pipeline straggler recovers ~1.14x, the fused last
    // stage ~1.09x, all above zero but only stage 0 clears the
    // acceptance bar with margin).
    let script = FaultScript::canonical_straggler(0, 5.0);
    let completed_after = |policy: Policy| {
        let vw = standalone_vw(
            &cluster,
            &graph,
            (0..4).map(DeviceId).collect(),
            nm,
            Schedule::HetPipeWave,
            recompute,
        );
        let report = runtime::run(
            runtime_params(
                &cluster,
                &graph,
                vec![vw],
                nm,
                Schedule::HetPipeWave,
                recompute,
                script.clone(),
                policy,
            ),
            horizon,
        );
        assert!(report.audits_sound(), "{policy:?}: occupancy audits");
        // Count completions once both policies are in their
        // post-fault regime: the fault lands at 5 s and the replan
        // splice (detect → drain → refill) resolves within a few
        // waves, so from 15 s on the comparison is steady state vs
        // steady state — what "recovered throughput" means.
        let cutoff = SimTime::from_secs(15.0);
        let n = report.completions[0]
            .iter()
            .filter(|&&t| t >= cutoff)
            .count();
        (n, report)
    };
    let (static_n, static_report) = completed_after(Policy::Static);
    let (replan_n, replan_report) = completed_after(Policy::Replan);
    assert!(
        !replan_report.epochs.is_empty() && replan_report.epochs.len() >= 2,
        "replan must have spliced at least once: {:?}",
        replan_report
            .epochs
            .iter()
            .map(|e| &e.action)
            .collect::<Vec<_>>()
    );
    assert!(static_report.epochs.len() == 1, "static never splices");
    let recovery = replan_n as f64 / static_n as f64;
    assert!(
        recovery >= 1.15,
        "Replan must recover >= 15% over Static on the canonical straggler: \
         {replan_n} vs {static_n} completions ({recovery:.3}x)"
    );
}

/// `SkipStraggler`'s reorder window must never corrupt a run: on the
/// composite interleaved schedule under the straggler script it keeps
/// every epoch audit-sound and does not lose throughput vs Static.
#[test]
fn skip_straggler_is_sound_on_composite_streams() {
    let cluster = Cluster::testbed_subset(&[GpuKind::Rtx2060; 4]);
    let graph = hetpipe::model::resnet152(32);
    let schedule = Schedule::Interleaved1F1B {
        chunks: 2,
        composite: true,
    };
    let devices: Vec<_> = (0..4).map(DeviceId).collect();
    let k = schedule.virtual_stages(4);
    let expanded: Vec<DeviceId> = (0..k).map(|s| devices[s % 4]).collect();
    let gpus: Vec<_> = expanded.iter().map(|&d| cluster.spec_of(d)).collect();
    let links = VirtualWorker::links(&cluster, &expanded);
    let limit = hetpipe::model::memory::nm_saturation_limit(k);
    let (nm, _) = max_feasible_nm_with(
        &graph,
        &gpus,
        &links,
        limit,
        schedule,
        RecomputePolicy::None,
    )
    .expect("feasible");
    let horizon = SimTime::from_secs(40.0);
    let script = FaultScript::canonical_straggler(2, 5.0);
    let run_policy = |policy: Policy| {
        let vw = standalone_vw(
            &cluster,
            &graph,
            devices.clone(),
            nm,
            schedule,
            RecomputePolicy::None,
        );
        runtime::run(
            runtime_params(
                &cluster,
                &graph,
                vec![vw],
                nm,
                schedule,
                RecomputePolicy::None,
                script.clone(),
                policy,
            ),
            horizon,
        )
    };
    let st = run_policy(Policy::Static);
    let skip = run_policy(Policy::SkipStraggler { window: 8 });
    assert!(st.audits_sound() && skip.audits_sound());
    let (a, b) = (st.total_completed(), skip.total_completed());
    assert!(
        b as f64 >= a as f64 * 0.95,
        "bounded reorder must not lose throughput: {b} vs {a}"
    );
}

/// After a GPU loss, `Replan` shrinks the pipeline to the survivors,
/// the new plan passes the exact joint per-GPU memory check, and
/// every epoch stays audit-sound while completions keep flowing.
#[test]
fn replan_after_gpu_loss_is_certified_and_continues() {
    let cluster = Cluster::testbed_subset(&[GpuKind::Rtx2060; 4]);
    let graph = hetpipe::model::vgg19(32);
    let devices: Vec<_> = (0..4).map(DeviceId).collect();
    let gpus: Vec<_> = devices.iter().map(|&d| cluster.spec_of(d)).collect();
    let links = VirtualWorker::links(&cluster, &devices);
    let limit = hetpipe::model::memory::nm_saturation_limit(4);
    let (nm, _) = max_feasible_nm_with(
        &graph,
        &gpus,
        &links,
        limit,
        Schedule::HetPipeWave,
        RecomputePolicy::None,
    )
    .expect("feasible");
    let horizon = SimTime::from_secs(40.0);
    let script = FaultScript::canonical_gpu_loss(2, 8.0);
    let vw = standalone_vw(
        &cluster,
        &graph,
        devices,
        nm,
        Schedule::HetPipeWave,
        RecomputePolicy::None,
    );
    let report = runtime::run(
        runtime_params(
            &cluster,
            &graph,
            vec![vw],
            nm,
            Schedule::HetPipeWave,
            RecomputePolicy::None,
            script,
            Policy::Replan,
        ),
        horizon,
    );
    assert!(report.audits_sound(), "per-epoch occupancy audits");
    assert!(
        report.epochs.len() >= 2,
        "loss must splice: {:?}",
        report.epochs.iter().map(|e| &e.action).collect::<Vec<_>>()
    );
    // The surviving pipeline excludes the dead GPU.
    let survivor = &report.final_vws[0];
    assert_eq!(survivor.devices.len(), 3, "one GPU dropped");
    assert!(!survivor.devices.contains(&DeviceId(2)), "the dead one");
    // The spliced plan is certified by the exact joint per-GPU check.
    let gpus: Vec<_> = survivor
        .devices
        .iter()
        .map(|&d| cluster.spec_of(d))
        .collect();
    let links = VirtualWorker::links(&cluster, &survivor.devices);
    let problem = PartitionProblem::with_schedule(
        &graph,
        gpus,
        links,
        report.final_nm,
        Schedule::HetPipeWave,
    );
    assert!(
        hetpipe::partition::StageCostModel::new(&problem).plan_fits_per_gpu(&survivor.plan.ranges),
        "spliced plan must pass plan_fits_per_gpu"
    );
    // Completions keep flowing well after the loss.
    let after = report.completions[0]
        .iter()
        .filter(|&&t| t >= SimTime::from_secs(20.0))
        .count();
    assert!(
        after > 10,
        "the shrunk pipeline must keep completing ({after})"
    );
}

/// Service-backed `Replan` equals the in-process replan path, bit for
/// bit, on both canonical fault scripts: same spliced plans, same
/// epochs, same completion instants. The plan service's warm starts
/// are answer-preserving, so routing reactions through it must be
/// behaviorally invisible — and each reaction must land in the cache
/// as a sequence-bumped publish.
#[test]
fn service_backed_replan_matches_in_process_path() {
    use hetpipe::plansvc::{Catalog, PlanService};
    let (cluster, graph, _) = whimpy_resnet();
    let recompute = RecomputePolicy::BoundaryOnly;
    let nm = 4;
    let horizon = SimTime::from_secs(40.0);
    for script in [
        FaultScript::canonical_straggler(0, 5.0),
        FaultScript::canonical_gpu_loss(2, 8.0),
    ] {
        let vw = standalone_vw(
            &cluster,
            &graph,
            (0..4).map(DeviceId).collect(),
            nm,
            Schedule::HetPipeWave,
            recompute,
        );
        let in_process = runtime::run(
            runtime_params(
                &cluster,
                &graph,
                vec![vw.clone()],
                nm,
                Schedule::HetPipeWave,
                recompute,
                script.clone(),
                Policy::Replan,
            ),
            horizon,
        );
        let mut catalog = Catalog::new();
        catalog.register_model(graph.clone());
        catalog.register_cluster(cluster.clone());
        let svc = PlanService::start(catalog, 2);
        let mut params = runtime_params(
            &cluster,
            &graph,
            vec![vw],
            nm,
            Schedule::HetPipeWave,
            recompute,
            script.clone(),
            Policy::Replan,
        );
        params.planner = Some(svc.client());
        let serviced = runtime::run(params, horizon);
        let name = &script.name;
        assert_eq!(serviced.final_nm, in_process.final_nm, "{name}: spliced Nm");
        assert_eq!(
            serviced.final_vws.len(),
            in_process.final_vws.len(),
            "{name}: VW count"
        );
        for (a, b) in serviced.final_vws.iter().zip(&in_process.final_vws) {
            assert_eq!(a.devices, b.devices, "{name}: spliced devices");
            assert_eq!(a.plan.ranges, b.plan.ranges, "{name}: spliced ranges");
            assert_eq!(
                a.plan.stage_secs, b.plan.stage_secs,
                "{name}: spliced stage costs"
            );
        }
        assert_eq!(
            serviced.completions, in_process.completions,
            "{name}: completion instants"
        );
        assert_eq!(
            serviced.epochs.len(),
            in_process.epochs.len(),
            "{name}: epochs"
        );
        // Every reaction published (replans are writes, not reads).
        let (_, _, publishes) = svc.cache_stats();
        assert!(
            publishes > 0,
            "{name}: reactions must publish through the service"
        );
        svc.shutdown();
    }
}
