//! Fleet ↔ legacy executor parity: the per-VW parallel decomposition
//! must be *bit-identical* to the single-engine executor, not merely
//! statistically close.
//!
//! Oracle: a fleet of node-disjoint replicated cells is, by the
//! VW-isolation certificate, equivalent to one flat cluster whose
//! nodes concatenate the cells ([`FleetTopology::expanded`]) driven by
//! the legacy single-engine `exec::run`. The tests compare canonical
//! span-multiset fingerprints and per-VW statistics:
//!
//! 1. a 1-thread fleet reproduces the legacy trace exactly, for every
//!    schedule × recompute policy (on a two-node cell, so activation
//!    transfers exercise the NIC timelines too);
//! 2. an N-thread fleet produces the same partials and fingerprint as
//!    the 1-thread fleet;
//! 3. two 8-thread runs are identical to each other (no wall-clock
//!    interleaving leaks into the simulation).

use hetpipe::cluster::{Cluster, DeviceId, GpuKind, Node};
use hetpipe::core::exec::{run, ExecParams, SegmentOpts};
use hetpipe::core::pserver::ShardMap;
use hetpipe::core::{VirtualWorker, WspParams};
use hetpipe::des::SimTime;
use hetpipe::fleet::{
    merged_spans, run_fleet, trace_fingerprint, FleetConfig, FleetReport, FleetTopology,
};
use hetpipe::model::{resnet50, ModelGraph};
use hetpipe::partition::{PartitionProblem, PartitionSolver};
use hetpipe::schedule::{PipelineSchedule, RecomputePolicy, Schedule};

const NM: usize = 4;

/// A cell of `nodes` single-GPU nodes (inter-node pipeline links, so
/// activation/gradient transfers occupy NICs) replicated `n_vws`
/// times. The cell VW's stage devices follow the schedule's virtual
/// stage expansion, exactly as the system builder lays them out.
fn topology(graph: &ModelGraph, schedule: Schedule, nodes: usize, n_vws: usize) -> FleetTopology {
    let mut cell = Cluster::new();
    for _ in 0..nodes {
        cell.add_node(Node::new(GpuKind::Rtx2060, 1));
    }
    let base: Vec<DeviceId> = cell.devices().collect();
    let vk = schedule.virtual_stages(base.len());
    let devices: Vec<DeviceId> = (0..vk).map(|s| base[s % base.len()]).collect();
    let gpus = devices.iter().map(|&d| cell.spec_of(d)).collect();
    let links = VirtualWorker::links(&cell, &devices);
    let plan = PartitionSolver::solve(&PartitionProblem::new(graph, gpus, links, NM))
        .expect("feasible cell");
    let vw = VirtualWorker {
        index: 0,
        devices,
        plan,
        nm: NM,
    };
    FleetTopology::new(cell, vw, n_vws)
}

/// One parity case: the schedule shape both executors run.
#[derive(Clone, Copy)]
struct Case {
    schedule: Schedule,
    recompute: RecomputePolicy,
    wsp: WspParams,
}

fn fleet(
    topo: &FleetTopology,
    graph: &ModelGraph,
    shards: &ShardMap,
    case: Case,
    threads: usize,
    horizon: SimTime,
) -> FleetReport {
    let vws = topo.cell_vws();
    let cfg = FleetConfig {
        cluster: topo.cell(),
        graph,
        vws: &vws,
        wsp: case.wsp,
        shards,
        sync_transfers: true,
        schedule: case.schedule,
        recompute: case.recompute,
        opts: SegmentOpts::default(),
        threads,
        keep_traces: true,
    };
    run_fleet(&cfg, horizon)
}

/// The legacy oracle: the expanded flat cluster on the single-engine
/// executor, same VW-local shard map.
fn legacy(
    topo: &FleetTopology,
    graph: &ModelGraph,
    shards: &ShardMap,
    case: Case,
    horizon: SimTime,
) -> (u64, hetpipe::core::exec::RunStats) {
    let (cluster, vws) = topo.expanded();
    let stats = run(
        ExecParams {
            cluster: &cluster,
            graph,
            vws: &vws,
            wsp: case.wsp,
            shards,
            sync_transfers: true,
            schedule: case.schedule,
            recompute: case.recompute,
        },
        horizon,
    );
    (trace_fingerprint(stats.trace.spans()), stats)
}

#[test]
fn single_thread_fleet_is_bit_identical_to_the_legacy_executor() {
    let graph = resnet50(32);
    let shards = ShardMap::build_vw_local(&graph);
    // D = 0 is the tightest coupling: every pull blocks on every VW's
    // push of the target wave — the hardest case for the bus.
    let wsp = WspParams::new(NM, 0);
    let horizon = SimTime::from_secs(3.0);
    for schedule in Schedule::ALL {
        for recompute in [RecomputePolicy::None, RecomputePolicy::BoundaryOnly] {
            let case = Case {
                schedule,
                recompute,
                wsp,
            };
            let topo = topology(&graph, schedule, 2, 2);
            let report = fleet(&topo, &graph, &shards, case, 1, horizon);
            let merged = merged_spans(&topo, &report);
            let (legacy_fp, stats) = legacy(&topo, &graph, &shards, case, horizon);
            assert!(!merged.is_empty(), "{schedule}: fleet recorded no spans");
            assert_eq!(
                trace_fingerprint(&merged),
                legacy_fp,
                "{schedule} (recompute {recompute}): fleet trace diverged from legacy"
            );
            for (p, v) in report.partials.iter().zip(&stats.vws) {
                assert_eq!(
                    p.completions,
                    v.completions.len() as u64,
                    "{schedule}: vw {} completions",
                    p.vw
                );
                assert_eq!(
                    p.waves_pushed, v.waves_pushed,
                    "{schedule}: vw {} waves",
                    p.vw
                );
                assert_eq!(
                    p.pull_wait, v.pull_wait,
                    "{schedule}: vw {} pull wait",
                    p.vw
                );
                assert!(
                    p.completions > 0,
                    "{schedule}: vw {} made no progress",
                    p.vw
                );
            }
            assert_eq!(report.end, stats.end, "{schedule}: end instant");
        }
    }
}

#[test]
fn multi_thread_fleet_matches_single_thread() {
    let graph = resnet50(32);
    let shards = ShardMap::build_vw_local(&graph);
    let wsp = WspParams::new(NM, 1);
    let horizon = SimTime::from_secs(3.0);
    for schedule in [Schedule::HetPipeWave, Schedule::OneFOneB] {
        let case = Case {
            schedule,
            recompute: RecomputePolicy::None,
            wsp,
        };
        let topo = topology(&graph, schedule, 2, 4);
        let one = fleet(&topo, &graph, &shards, case, 1, horizon);
        let four = fleet(&topo, &graph, &shards, case, 4, horizon);
        assert_eq!(one.partials, four.partials, "{schedule}: partials diverged");
        assert_eq!(
            trace_fingerprint(&merged_spans(&topo, &one)),
            trace_fingerprint(&merged_spans(&topo, &four)),
            "{schedule}: traces diverged across thread counts"
        );
        assert_eq!(four.threads, 4);
    }
}

#[test]
fn eight_thread_runs_are_deterministic() {
    let graph = resnet50(32);
    let shards = ShardMap::build_vw_local(&graph);
    let wsp = WspParams::new(NM, 0);
    let horizon = SimTime::from_secs(2.0);
    let schedule = Schedule::HetPipeWave;
    let case = Case {
        schedule,
        recompute: RecomputePolicy::None,
        wsp,
    };
    let topo = topology(&graph, schedule, 1, 8);
    let runs: Vec<FleetReport> = (0..2)
        .map(|_| fleet(&topo, &graph, &shards, case, 8, horizon))
        .collect();
    assert_eq!(runs[0].partials, runs[1].partials);
    assert_eq!(
        trace_fingerprint(&merged_spans(&topo, &runs[0])),
        trace_fingerprint(&merged_spans(&topo, &runs[1])),
    );
    assert_eq!(runs[0].events, runs[1].events);
    assert!(runs[0].partials.iter().all(|p| p.completions > 0));
}
