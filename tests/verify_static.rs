//! Cross-checks the static verifier against the dynamic audit, and
//! proves the CI gate actually *gates*: every class of injected
//! violation the `verify_all` bin screens for is demonstrably caught.
//!
//! The positive direction completes the occupancy soundness chain on
//! golden configurations: the DES runs a single-VW pipeline on the
//! paper testbed, `OccupancyAudit` measures realized peaks from the
//! span trace, the static verifier computes structural peaks from the
//! committed op queues alone, and `merge_measured` folds both into one
//! triple per entity so `check_bounds` judges
//! `measured ≤ structural ≤ declared` in a single pass — for every
//! schedule form and recompute policy.
//!
//! The negative direction feeds each verifier a broken fixture — a
//! cyclic committed queue, an under-declared occupancy bound, a stale
//! and an acausal version rule, and the blind-insert cache protocol —
//! and asserts each is rejected with a counterexample, so a regression
//! that made any pass vacuous would fail here before it silently
//! weakened the gate.

use hetpipe::cluster::{Cluster, DeviceId};
use hetpipe::core::{
    AllocationPolicy, HetPipeSystem, OccupancyAudit, Placement, RecomputePolicy, Schedule,
    SystemConfig,
};
use hetpipe::des::FootprintResource;
use hetpipe::des::{check_bounds, BoundEntity, OccupancyBound, SimTime};
use hetpipe::schedule::{
    committed_queues, CommittedQueue, GpuOp, PipelineSchedule, QueueKind, ScheduleOp, WspParams,
};
use hetpipe::verify::{
    check_broken_gate_protocol, check_broken_protocol, check_gate_protocol, dependency_graph,
    structural_occupancy, verify_isolation, verify_isolation_with, verify_lookahead, verify_queues,
    verify_version_rule, DepEdge, DepNode, EdgeKind, FootprintModel, IsolationViolationClass,
    LookaheadWitness,
};

const NM: usize = 4;
const K_GPUS: usize = 4;

/// One golden run: single VW over the paper testbed's first node
/// (4 GPUs), VGG-19, Nm = 4 — the same shape the tier-1 schedule
/// condition tests pin.
fn golden_audit(schedule: Schedule, recompute: RecomputePolicy) -> OccupancyAudit {
    let cluster = Cluster::paper_testbed();
    let graph = hetpipe::model::vgg19(32);
    let config = SystemConfig {
        policy: AllocationPolicy::Custom(vec![(0..K_GPUS).map(DeviceId).collect()]),
        placement: Placement::Default,
        staleness_bound: 0,
        nm_override: Some(NM),
        sync_transfers: false,
        order_search: false,
        schedule,
        recompute,
        ..SystemConfig::default()
    };
    let sys = HetPipeSystem::build(&cluster, &graph, &config).expect("builds");
    let vws = sys.virtual_workers().to_vec();
    let (_, stats) = sys.run_with_stats(SimTime::from_secs(10.0));
    OccupancyAudit::measure(&stats, &vws, &schedule, NM)
}

#[test]
fn measured_structural_declared_chain_holds_on_golden_configs() {
    let wsp = WspParams::new(NM, 0);
    // Horizon: generously past warmup; structural peaks saturate, so
    // any horizon covering the steady state bounds every finite run.
    let max_mb = (NM * 20) as u64;
    for &schedule in Schedule::ALL.iter() {
        for recompute in RecomputePolicy::ALL {
            let label = format!("{} {recompute}", schedule.name());
            let audit = golden_audit(schedule, recompute);
            let mut report = structural_occupancy(&schedule, K_GPUS, wsp, recompute, max_mb);
            audit.merge_measured(&mut report.bounds);
            // Every entity the trace observed must now carry all three
            // components of the chain.
            let merged = report
                .bounds
                .iter()
                .filter(|b| b.measured.is_some())
                .count();
            assert!(merged > 0, "{label}: no measured peaks merged");
            if let Err(errs) = check_bounds(&report.bounds) {
                panic!("{label}: occupancy chain broken:\n  {}", errs.join("\n  "));
            }
        }
    }
}

#[test]
fn injected_cycle_fails_the_graph_pass() {
    // A committed stage queue scheduling mb 1's backward before its
    // own forward: the data edge fwd→bwd opposes program order.
    let wsp = WspParams::new(1, 0);
    let broken = vec![CommittedQueue {
        kind: QueueKind::Stage(0),
        ordered: true,
        ops: vec![
            GpuOp {
                stage: 0,
                op: ScheduleOp::Backward { mb: 1 },
            },
            GpuOp {
                stage: 0,
                op: ScheduleOp::Forward { mb: 1 },
            },
        ],
    }];
    let err = verify_queues(&[broken], 1, wsp).expect_err("cycle must be caught");
    let msg = err.to_string();
    assert!(msg.contains("fwd mb1") && msg.contains("bwd mb1"), "{msg}");
}

#[test]
fn injected_under_declaration_fails_the_bounds_pass() {
    // A healthy schedule's structural peaks, re-judged against a
    // declaration one smaller than the 1F1B warmup window at stage 0:
    // the structural ≤ declared link must break.
    let wsp = WspParams::new(NM, 0);
    let report = structural_occupancy(&Schedule::OneFOneB, K_GPUS, wsp, RecomputePolicy::None, 64);
    let mut bounds: Vec<OccupancyBound> = report.bounds.clone();
    let stage0 = bounds
        .iter_mut()
        .find(|b| b.entity == BoundEntity::Stage { vw: 0, stage: 0 })
        .expect("stage 0 bound present");
    assert!(stage0.structural.unwrap() > 1, "fixture needs a real peak");
    stage0.declared = stage0.structural.unwrap() - 1;
    let errs = check_bounds(&bounds).expect_err("under-declaration must be caught");
    assert!(
        errs.iter().any(|e| e.contains("exceeds declared")),
        "{errs:?}"
    );
    // The unmodified report stays sound.
    check_bounds(&report.bounds).expect("healthy bounds hold");
}

#[test]
fn injected_broken_version_rules_fail_the_staleness_pass() {
    // D = 0 is the tight case: 2BW sits exactly on the freshness
    // floor, so one wave staler must trip it (with D ≥ 1 the bound
    // itself grants that slack and the broken rule would be legal).
    let wsp = WspParams::new(NM, 0);
    // One wave staler than 2BW: misses the freshness floor.
    let stale = verify_version_rule(wsp, |p| wsp.two_bw_version(p) - 1)
        .expect_err("stale rule must be caught");
    assert!(stale.contains("staler"), "{stale}");
    // Reading the current wave before it closes: acausal.
    let acausal = verify_version_rule(wsp, |p| wsp.wave_of(p) as i64)
        .expect_err("acausal rule must be caught");
    assert!(acausal.contains("closed"), "{acausal}");
}

#[test]
fn blind_insert_protocol_is_refuted_with_a_schedule() {
    let counterexample = check_broken_protocol().expect("checker must refute blind insert");
    assert!(
        !counterexample.schedule.is_empty(),
        "counterexample carries its interleaving"
    );
}

#[test]
fn structural_matches_dynamic_audit_keying() {
    // The static pass and the dynamic audit must agree on which
    // entities exist, or merge_measured would silently skip peaks: one
    // stage triple per virtual stage, one GPU triple per physical GPU,
    // including the interleaved depth expansion (8 stages on 4 GPUs).
    let wsp = WspParams::new(NM, 0);
    for &schedule in Schedule::ALL.iter() {
        let k = schedule.virtual_stages(K_GPUS);
        let audit = golden_audit(schedule, RecomputePolicy::None);
        let report = structural_occupancy(&schedule, K_GPUS, wsp, RecomputePolicy::None, 64);
        assert_eq!(audit.stages.len(), k, "{}", schedule.name());
        assert_eq!(audit.gpus.len(), K_GPUS, "{}", schedule.name());
        assert_eq!(report.bounds.len(), k + K_GPUS, "{}", schedule.name());
        for b in &report.bounds {
            let observed = match b.entity {
                BoundEntity::Stage { vw, stage } => {
                    audit.stages.iter().any(|s| s.vw == vw && s.stage == stage)
                }
                BoundEntity::Gpu { vw, gpu } => {
                    audit.gpus.iter().any(|g| g.vw == vw && g.gpu == gpu)
                }
            };
            assert!(observed, "{}: audit lacks {}", schedule.name(), b.entity);
        }
    }
}

/// The wave schedule's dependency graph mirrored across two VWs, with
/// the honest footprint model — the fixture the isolation negative
/// controls corrupt.
fn wave_graph_and_model(vws: usize) -> (hetpipe::verify::DepGraphData, FootprintModel) {
    let schedule = Schedule::HetPipeWave;
    let wsp = WspParams::new(NM, 0);
    let k = schedule.virtual_stages(K_GPUS);
    let queues = committed_queues(&schedule, K_GPUS, wsp, RecomputePolicy::None, 24);
    let sets: Vec<Vec<CommittedQueue>> = vec![queues; vws];
    let model = FootprintModel {
        k,
        gpus: schedule
            .gpu_streams_with(K_GPUS, wsp, RecomputePolicy::None)
            .is_some()
            .then_some(K_GPUS),
    };
    (dependency_graph(&sets, k, wsp), model)
}

#[test]
fn smuggled_cross_vw_edge_fails_the_isolation_pass() {
    // A buggy shared-buffer optimization adds a direct dependence from
    // vw0's forward to vw1's backward of the same (stage, mb) — data
    // crossing VWs outside the PS push→gate channel. The gate must
    // catch it and *name* the edge.
    let (mut graph, model) = wave_graph_and_model(2);
    verify_isolation(&graph, model).expect("uncorrupted graph is isolated");
    let from = graph
        .nodes
        .iter()
        .position(|n| {
            matches!(
                n,
                DepNode::Fwd {
                    vw: 0,
                    stage: 1,
                    mb: 3
                }
            )
        })
        .expect("fixture node");
    let to = graph
        .nodes
        .iter()
        .position(|n| {
            matches!(
                n,
                DepNode::Bwd {
                    vw: 1,
                    stage: 1,
                    mb: 3
                }
            )
        })
        .expect("fixture node");
    graph.edges.push(DepEdge {
        from,
        to,
        kind: EdgeKind::Data,
    });
    // Honest footprints share nothing across VWs, so the smuggled edge
    // surfaces as unexplained…
    let err = verify_isolation(&graph, model).expect_err("smuggled edge must be caught");
    assert_eq!(err.class, IsolationViolationClass::UnderDeclaredFootprint);
    // …and a model that *did* declare the shared buffer is convicted
    // of the leak itself, with both endpoints and the resource named.
    let err = verify_isolation_with(&graph, |n| {
        let mut fp = model.footprint_of(n);
        if matches!(
            n,
            DepNode::Bwd {
                vw: 1,
                stage: 1,
                mb: 3
            }
        ) {
            fp.reads
                .push(FootprintResource::Activations { vw: 0, stage: 1 });
        }
        fp
    })
    .expect_err("declared leak must be caught");
    assert_eq!(err.class, IsolationViolationClass::CrossVwLeak);
    assert!(err.from.contains("vw0 s1 fwd mb3"), "{err}");
    assert!(err.to.contains("vw1 s1 bwd mb3"), "{err}");
    assert!(err.detail.contains("vw0 activations s1"), "{err}");
}

#[test]
fn under_declared_footprint_fails_the_isolation_pass() {
    // Backwards that forget they emit the boundary gradient below:
    // the Bwd(s+1) → Bwd(s) data edge loses its explanation, and the
    // verdict names the under-declaring op.
    let (graph, model) = wave_graph_and_model(2);
    let err = verify_isolation_with(&graph, |n| {
        let mut fp = model.footprint_of(n);
        if matches!(n, DepNode::Bwd { .. }) {
            fp.writes
                .retain(|r| !matches!(r, FootprintResource::Boundary { .. }));
            fp.reads
                .retain(|r| !matches!(r, FootprintResource::Boundary { .. }));
        }
        fp
    })
    .expect_err("under-declared footprint must be caught");
    assert_eq!(err.class, IsolationViolationClass::UnderDeclaredFootprint);
    assert!(err.detail.contains("under-declares"), "{err}");
    assert!(err.from.contains("bwd"), "{err}");
}

#[test]
fn lookahead_witnesses_are_golden_pinned_per_schedule() {
    // The certified lookahead is schedule-independent: every schedule
    // form must produce the *identical* witness for the same (Nm, D,
    // horizon), pinned here in closed form — warmup (D+2)·Nm − 1,
    // steady Nm, gates for every wave whose first dependent minibatch
    // fits the horizon, a push per completed wave.
    let max_mb = 64u64;
    for &(d, gates) in &[(0usize, 15usize), (1, 14)] {
        let wsp = WspParams::new(NM, d);
        let golden = LookaheadWitness {
            warmup: ((d + 2) * NM - 1) as u64,
            steady_segment: NM as u64,
            gates,
            pushes: (max_mb / NM as u64) as usize,
        };
        for &schedule in Schedule::ALL.iter() {
            for recompute in RecomputePolicy::ALL {
                let w = verify_lookahead(&schedule, K_GPUS, wsp, recompute, max_mb)
                    .unwrap_or_else(|e| panic!("{e}"));
                assert_eq!(w, golden, "{} d={d} {recompute}", schedule.name());
            }
        }
    }
}

#[test]
fn gate_protocol_por_counts_are_pinned() {
    // The standing gate-protocol scenarios through the facade: the
    // 3-engine full enumeration pinned to its multinomial (the
    // exhaustiveness check), and the POR trace counts pinned so a
    // change in the reduction — or the protocol — is visible.
    let reports = check_gate_protocol().expect("gate protocol holds");
    let pins: Vec<(u64, u64, bool)> = reports
        .iter()
        .map(|r| (r.unreduced, r.explored, r.por))
        .collect();
    assert_eq!(
        pins,
        vec![
            (34_650, 34_650, false),
            (34_650, 2_083, true),
            (63_063_000, 763_615, true),
        ]
    );
    // Negative control: the advance-past-gate engine is refuted under
    // the same reduction, and the counterexample says why.
    let v = check_broken_gate_protocol().expect("broken gate must be refuted");
    assert!(
        v.message.contains("stale read") || v.message.contains("spread"),
        "{v}"
    );
}

#[test]
fn committed_queues_drive_the_facade_verifier() {
    // End-to-end through the facade: extract the committed queues the
    // executor would run and certify them directly, the same path
    // `verify_all` sweeps.
    let wsp = WspParams::new(NM, 0);
    let queues = committed_queues(
        &Schedule::HetPipeWave,
        K_GPUS,
        wsp,
        RecomputePolicy::None,
        32,
    );
    let sets = vec![queues.clone(), queues];
    let (nodes, edges) = verify_queues(&sets, K_GPUS, wsp).expect("wave schedule is deadlock-free");
    assert!(nodes > 0 && edges > 0);
}
