//! Golden-trace regression: the schedule-generic executor running
//! [`Schedule::HetPipeWave`] must reproduce the pre-refactor (seed)
//! executor's span traces *exactly* — same spans, same resources, same
//! start/end instants, same order — across representative
//! configurations of the paper testbed.
//!
//! The seed executor is frozen verbatim in `hetpipe::core::golden`;
//! this test is what makes "bit-identical event order" a checked
//! property instead of a claim.

use hetpipe::cluster::{Cluster, DeviceId};
use hetpipe::core::exec::{self, ExecParams, RunStats};
use hetpipe::core::golden;
use hetpipe::core::pserver::{Placement, ShardMap};
use hetpipe::core::{RecomputePolicy, Schedule, VirtualWorker, WspParams};
use hetpipe::des::SimTime;
use hetpipe::model::ModelGraph;
use hetpipe::partition::{PartitionProblem, PartitionSolver};

fn build_vws(
    cluster: &Cluster,
    graph: &ModelGraph,
    groups: &[Vec<DeviceId>],
    nm: usize,
) -> Vec<VirtualWorker> {
    groups
        .iter()
        .enumerate()
        .map(|(i, devices)| {
            let gpus = devices.iter().map(|&d| cluster.spec_of(d)).collect();
            let links = VirtualWorker::links(cluster, devices);
            let plan = PartitionSolver::solve(&PartitionProblem::new(graph, gpus, links, nm))
                .expect("feasible");
            VirtualWorker {
                index: i,
                devices: devices.clone(),
                plan,
                nm,
            }
        })
        .collect()
}

fn assert_identical(a: &RunStats, b: &RunStats, label: &str) {
    // Span traces: same length, and element-wise identical.
    assert_eq!(a.trace.len(), b.trace.len(), "{label}: span count");
    for (i, (x, y)) in a.trace.spans().iter().zip(b.trace.spans()).enumerate() {
        assert_eq!(x, y, "{label}: span {i} differs");
    }
    // Per-VW statistics.
    assert_eq!(a.vws.len(), b.vws.len(), "{label}");
    for (i, (x, y)) in a.vws.iter().zip(&b.vws).enumerate() {
        assert_eq!(x.completions, y.completions, "{label}: vw{i} completions");
        assert_eq!(x.waves_pushed, y.waves_pushed, "{label}: vw{i} waves");
        assert_eq!(x.pull_wait, y.pull_wait, "{label}: vw{i} pull_wait");
        assert_eq!(x.wait_windows, y.wait_windows, "{label}: vw{i} windows");
        assert_eq!(
            x.inject_blocked, y.inject_blocked,
            "{label}: vw{i} inject_blocked"
        );
    }
    // Traffic accounting.
    assert_eq!(a.sync_bytes_inter, b.sync_bytes_inter, "{label}");
    assert_eq!(a.sync_bytes_intra, b.sync_bytes_intra, "{label}");
    assert_eq!(a.act_bytes_inter, b.act_bytes_inter, "{label}");
    assert_eq!(a.act_bytes_intra, b.act_bytes_intra, "{label}");
    // Resource busy-time accounting.
    assert_eq!(a.pool.len(), b.pool.len(), "{label}");
    for ((ia, ra), (_, rb)) in a.pool.iter().zip(b.pool.iter()) {
        assert_eq!(
            ra.busy_time(),
            rb.busy_time(),
            "{label}: resource {ia:?} busy time"
        );
        assert_eq!(ra.reservations(), rb.reservations(), "{label}: {ia:?}");
    }
}

#[allow(clippy::too_many_arguments)]
fn compare(
    graph: &ModelGraph,
    groups: &[Vec<DeviceId>],
    nm: usize,
    d: usize,
    placement: Placement,
    sync_transfers: bool,
    secs: f64,
    label: &str,
) {
    let cluster = Cluster::paper_testbed();
    let vws = build_vws(&cluster, graph, groups, nm);
    let shards = ShardMap::build(placement, graph, &cluster, &vws[0]);
    let params = ExecParams {
        cluster: &cluster,
        graph,
        vws: &vws,
        wsp: WspParams::new(nm, d),
        shards: &shards,
        sync_transfers,
        schedule: Schedule::HetPipeWave,
        recompute: RecomputePolicy::None,
    };
    let horizon = SimTime::from_secs(secs);
    let new = exec::run(params.clone(), horizon);
    let old = golden::run(params, horizon);
    assert!(
        new.trace.len() > 100,
        "{label}: trivial trace ({} spans) proves nothing",
        new.trace.len()
    );
    assert_identical(&new, &old, label);
}

fn ed_groups() -> Vec<Vec<DeviceId>> {
    (0..4)
        .map(|j| (0..4).map(|n| DeviceId(n * 4 + j)).collect())
        .collect()
}

fn np_groups() -> Vec<Vec<DeviceId>> {
    (0..4)
        .map(|n| (0..4).map(|j| DeviceId(n * 4 + j)).collect())
        .collect()
}

#[test]
fn golden_ed_local_vgg() {
    let graph = hetpipe::model::vgg19(32);
    compare(
        &graph,
        &ed_groups(),
        4,
        0,
        Placement::Local,
        true,
        15.0,
        "ED-local VGG-19 Nm=4 D=0",
    );
}

#[test]
fn golden_np_default_vgg_with_staleness() {
    let graph = hetpipe::model::vgg19(32);
    compare(
        &graph,
        &np_groups(),
        2,
        2,
        Placement::Default,
        true,
        15.0,
        "NP-default VGG-19 Nm=2 D=2",
    );
}

#[test]
fn golden_np_resnet() {
    let graph = hetpipe::model::resnet152(32);
    compare(
        &graph,
        &np_groups(),
        2,
        0,
        Placement::Default,
        true,
        15.0,
        "NP-default ResNet-152 Nm=2 D=0",
    );
}

#[test]
fn golden_standalone_vw_no_sync_transfers() {
    // The Figure-3 measurement mode (sync transfers free).
    let graph = hetpipe::model::vgg19(32);
    compare(
        &graph,
        &[(0..4).map(DeviceId).collect()],
        4,
        0,
        Placement::Default,
        false,
        10.0,
        "standalone VVVV VGG-19 Nm=4",
    );
}

#[test]
fn golden_single_gpu_vws() {
    let graph = hetpipe::model::vgg19(32);
    compare(
        &graph,
        &[vec![DeviceId(0)], vec![DeviceId(12)]],
        1,
        0,
        Placement::Default,
        true,
        10.0,
        "two single-GPU VWs Nm=1",
    );
}
