//! Convergence integration tests: the real threaded trainer + the
//! accuracy/time composition behind Figures 5 and 6.

use hetpipe::core::convergence::{time_to_accuracy, AccuracyCurve};
use hetpipe::train::{train, Dataset, Mode, TrainConfig};

fn run_mode(mode: Mode, workers: usize, steps: u64) -> (f64, AccuracyCurve) {
    let dataset = Dataset::gaussian_blobs(16, 4, 2048, 512, 0.35, 13);
    let config = TrainConfig {
        mode,
        workers,
        dims: vec![16, 64, 4],
        batch: 32,
        lr: 0.05,
        momentum: 0.9,
        steps_per_worker: steps,
        seed: 42,
        snapshot_every: 64,
    };
    let out = train(&dataset, &config);
    (
        out.final_accuracy,
        AccuracyCurve::new(out.curve_steps, out.curve_accuracy),
    )
}

#[test]
fn wsp_and_bsp_reach_target_accuracy() {
    // Thread interleavings perturb the trajectories; thresholds leave
    // headroom over the observed run-to-run spread.
    let (wsp_acc, _) = run_mode(Mode::Wsp { nm: 4, d: 0 }, 4, 512);
    let (bsp_acc, _) = run_mode(Mode::Bsp, 4, 512);
    assert!(wsp_acc > 0.80, "WSP accuracy {wsp_acc}");
    assert!(bsp_acc > 0.80, "BSP accuracy {bsp_acc}");
}

#[test]
fn composition_orders_configurations_by_throughput() {
    // Same statistical efficiency, different simulated throughput:
    // faster config reaches the target sooner — the Figure 5 mechanism.
    let (_, curve) = run_mode(Mode::Wsp { nm: 4, d: 0 }, 4, 512);
    let target = 0.7;
    let slow = time_to_accuracy(5.0, &curve, target);
    let fast = time_to_accuracy(15.0, &curve, target);
    match (slow, fast) {
        (Some(s), Some(f)) => assert!(f < s, "3x throughput converges sooner"),
        other => panic!("curve never reaches {target}: {other:?}"),
    }
}

#[test]
fn bounded_staleness_still_converges() {
    // Theorem 1's structural guarantee: any bounded D converges. (The
    // *magnitude* of D = 32's statistical penalty is workload-dependent
    // — the paper measures 4.7% on ImageNet, the fig6 harness measures
    // it on the teacher task — so this test asserts convergence, not
    // the ordering.)
    let (tight, _) = run_mode(Mode::Wsp { nm: 4, d: 0 }, 4, 512);
    let (loose, _) = run_mode(Mode::Wsp { nm: 4, d: 32 }, 4, 512);
    assert!(tight > 0.7, "D=0 accuracy {tight}");
    assert!(loose > 0.7, "D=32 accuracy {loose}");
}

#[test]
fn accuracy_curves_are_monotone_in_steps() {
    let (_, curve) = run_mode(Mode::Bsp, 4, 192);
    for w in curve.steps.windows(2) {
        assert!(w[0] < w[1], "snapshot steps strictly increase");
    }
    // Learning happened: the curve's best point clearly beats chance
    // (4 classes => 25%).
    let best = curve.accuracy.iter().cloned().fold(0.0, f64::max);
    assert!(best > 0.6, "best accuracy {best}");
}
