//! Offline stand-in for the `serde_json` crate.
//!
//! The build environment has no network access, so this workspace
//! vendors the small surface it actually uses: the [`Value`] tree, the
//! [`json!`] constructor macro, and [`to_string_pretty`] /
//! [`to_string`]. Output is valid JSON with object keys in insertion
//! order. Nothing here implements serde's `Serialize`/`Deserialize`;
//! the experiment harnesses only ever *build* values and print them.

use std::collections::BTreeMap;
use std::fmt;

/// A JSON value tree.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any JSON number (stored as `f64`; integers that fit print
    /// without a decimal point).
    Number(f64),
    /// A string.
    String(String),
    /// An array.
    Array(Vec<Value>),
    /// An object. Keys keep insertion order.
    Object(Map),
}

/// An order-preserving string-keyed map (insertion order, like
/// `serde_json`'s `preserve_order` feature).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Map {
    keys: Vec<String>,
    values: BTreeMap<String, Value>,
}

impl Map {
    /// Creates an empty map.
    pub fn new() -> Self {
        Self::default()
    }

    /// Inserts `value` under `key`, keeping first-insertion order.
    pub fn insert(&mut self, key: impl Into<String>, value: Value) {
        let key = key.into();
        if !self.values.contains_key(&key) {
            self.keys.push(key.clone());
        }
        self.values.insert(key, value);
    }

    /// Looks up a key.
    pub fn get(&self, key: &str) -> Option<&Value> {
        self.values.get(key)
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.keys.len()
    }

    /// True when no entry exists.
    pub fn is_empty(&self) -> bool {
        self.keys.is_empty()
    }

    /// Iterates `(key, value)` pairs in insertion order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, &Value)> {
        self.keys.iter().map(|k| (k.as_str(), &self.values[k]))
    }
}

impl From<bool> for Value {
    fn from(v: bool) -> Value {
        Value::Bool(v)
    }
}

impl From<f64> for Value {
    fn from(v: f64) -> Value {
        Value::Number(v)
    }
}

impl From<&f64> for Value {
    fn from(v: &f64) -> Value {
        Value::Number(*v)
    }
}

impl From<f32> for Value {
    fn from(v: f32) -> Value {
        Value::Number(v as f64)
    }
}

impl From<&f32> for Value {
    fn from(v: &f32) -> Value {
        Value::Number(*v as f64)
    }
}

macro_rules! from_number {
    ($($t:ty),*) => {$(
        impl From<$t> for Value {
            fn from(v: $t) -> Value {
                Value::Number(v as f64)
            }
        }
        impl From<&$t> for Value {
            fn from(v: &$t) -> Value {
                Value::Number(*v as f64)
            }
        }
    )*};
}
from_number!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl From<&str> for Value {
    fn from(v: &str) -> Value {
        Value::String(v.to_string())
    }
}

impl From<&&str> for Value {
    fn from(v: &&str) -> Value {
        Value::String((*v).to_string())
    }
}

impl From<String> for Value {
    fn from(v: String) -> Value {
        Value::String(v)
    }
}

impl From<&String> for Value {
    fn from(v: &String) -> Value {
        Value::String(v.clone())
    }
}

impl<T: Into<Value>> From<Vec<T>> for Value {
    fn from(v: Vec<T>) -> Value {
        Value::Array(v.into_iter().map(Into::into).collect())
    }
}

impl<T: Into<Value> + Clone> From<&[T]> for Value {
    fn from(v: &[T]) -> Value {
        Value::Array(v.iter().cloned().map(Into::into).collect())
    }
}

impl<T: Into<Value> + Clone, const N: usize> From<[T; N]> for Value {
    fn from(v: [T; N]) -> Value {
        Value::Array(v.into_iter().map(Into::into).collect())
    }
}

impl<T: Into<Value> + Clone, const N: usize> From<&[T; N]> for Value {
    fn from(v: &[T; N]) -> Value {
        Value::Array(v.iter().cloned().map(Into::into).collect())
    }
}

impl<T: Into<Value>> From<Option<T>> for Value {
    fn from(v: Option<T>) -> Value {
        v.map_or(Value::Null, Into::into)
    }
}

fn escape_into(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

fn number_to_string(n: f64) -> String {
    if n.is_finite() && n == n.trunc() && n.abs() < 9.007_199_254_740_992e15 {
        format!("{}", n as i64)
    } else if n.is_finite() {
        // `{:?}` prints the shortest representation that round-trips.
        format!("{n:?}")
    } else {
        // JSON has no NaN/Inf; match serde_json's lossy `null`.
        "null".to_string()
    }
}

fn write_value(out: &mut String, v: &Value, indent: usize, pretty: bool) {
    let pad = |out: &mut String, level: usize| {
        if pretty {
            out.push('\n');
            for _ in 0..level {
                out.push_str("  ");
            }
        }
    };
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::Number(n) => out.push_str(&number_to_string(*n)),
        Value::String(s) => escape_into(out, s),
        Value::Array(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                pad(out, indent + 1);
                write_value(out, item, indent + 1, pretty);
            }
            pad(out, indent);
            out.push(']');
        }
        Value::Object(map) => {
            if map.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push('{');
            for (i, (k, val)) in map.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                pad(out, indent + 1);
                escape_into(out, k);
                out.push(':');
                if pretty {
                    out.push(' ');
                }
                write_value(out, val, indent + 1, pretty);
            }
            pad(out, indent);
            out.push('}');
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut s = String::new();
        write_value(&mut s, self, 0, false);
        f.write_str(&s)
    }
}

/// Serializes a value compactly. Infallible for this value model; the
/// `Result` mirrors serde_json's signature.
pub fn to_string<T: Into<Value> + Clone>(value: &T) -> Result<String, fmt::Error> {
    Ok(value.clone().into().to_string())
}

/// Serializes a value with two-space indentation.
pub fn to_string_pretty<T: Into<Value> + Clone>(value: &T) -> Result<String, fmt::Error> {
    let mut s = String::new();
    write_value(&mut s, &value.clone().into(), 0, true);
    Ok(s)
}

/// Why a JSON document failed to parse.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// Human-readable description.
    pub message: String,
    /// Byte offset of the failure.
    pub offset: usize,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "JSON parse error at byte {}: {}",
            self.offset, self.message
        )
    }
}

impl std::error::Error for ParseError {}

/// Parses a JSON document into a [`Value`] tree — the deserialization
/// half of the vendored surface (fault scripts and other small config
/// documents read this way). Standard JSON: objects, arrays, strings
/// with `\uXXXX` escapes, numbers, booleans, null; trailing garbage is
/// an error.
pub fn from_str(s: &str) -> Result<Value, ParseError> {
    let bytes = s.as_bytes();
    let mut pos = 0usize;
    let value = parse_value(bytes, &mut pos, 0)?;
    skip_ws(bytes, &mut pos);
    if pos != bytes.len() {
        return Err(err("trailing characters", pos));
    }
    Ok(value)
}

fn err(message: &str, offset: usize) -> ParseError {
    ParseError {
        message: message.into(),
        offset,
    }
}

fn skip_ws(b: &[u8], pos: &mut usize) {
    while *pos < b.len() && matches!(b[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn expect(b: &[u8], pos: &mut usize, c: u8) -> Result<(), ParseError> {
    if b.get(*pos) == Some(&c) {
        *pos += 1;
        Ok(())
    } else {
        Err(err(&format!("expected '{}'", c as char), *pos))
    }
}

/// Nesting bound: recursion is per-level, so a depth cap turns what
/// would be a stack overflow on adversarial input (100k `[`s) into a
/// proper [`ParseError`]. Far above any document this shim reads.
const MAX_DEPTH: usize = 128;

fn parse_value(b: &[u8], pos: &mut usize, depth: usize) -> Result<Value, ParseError> {
    if depth > MAX_DEPTH {
        return Err(err("nesting too deep", *pos));
    }
    skip_ws(b, pos);
    match b.get(*pos) {
        None => Err(err("unexpected end of input", *pos)),
        Some(b'{') => {
            *pos += 1;
            let mut map = Map::new();
            skip_ws(b, pos);
            if b.get(*pos) == Some(&b'}') {
                *pos += 1;
                return Ok(Value::Object(map));
            }
            loop {
                skip_ws(b, pos);
                let key = parse_string(b, pos)?;
                skip_ws(b, pos);
                expect(b, pos, b':')?;
                let value = parse_value(b, pos, depth + 1)?;
                map.insert(key, value);
                skip_ws(b, pos);
                match b.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b'}') => {
                        *pos += 1;
                        return Ok(Value::Object(map));
                    }
                    _ => return Err(err("expected ',' or '}'", *pos)),
                }
            }
        }
        Some(b'[') => {
            *pos += 1;
            let mut items = Vec::new();
            skip_ws(b, pos);
            if b.get(*pos) == Some(&b']') {
                *pos += 1;
                return Ok(Value::Array(items));
            }
            loop {
                items.push(parse_value(b, pos, depth + 1)?);
                skip_ws(b, pos);
                match b.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b']') => {
                        *pos += 1;
                        return Ok(Value::Array(items));
                    }
                    _ => return Err(err("expected ',' or ']'", *pos)),
                }
            }
        }
        Some(b'"') => Ok(Value::String(parse_string(b, pos)?)),
        Some(b't') => parse_lit(b, pos, "true", Value::Bool(true)),
        Some(b'f') => parse_lit(b, pos, "false", Value::Bool(false)),
        Some(b'n') => parse_lit(b, pos, "null", Value::Null),
        Some(_) => parse_number(b, pos),
    }
}

fn parse_lit(b: &[u8], pos: &mut usize, lit: &str, value: Value) -> Result<Value, ParseError> {
    if b[*pos..].starts_with(lit.as_bytes()) {
        *pos += lit.len();
        Ok(value)
    } else {
        Err(err(&format!("expected '{lit}'"), *pos))
    }
}

fn parse_number(b: &[u8], pos: &mut usize) -> Result<Value, ParseError> {
    let start = *pos;
    if b.get(*pos) == Some(&b'-') {
        *pos += 1;
    }
    while *pos < b.len() && matches!(b[*pos], b'0'..=b'9' | b'.' | b'e' | b'E' | b'+' | b'-') {
        *pos += 1;
    }
    let text = std::str::from_utf8(&b[start..*pos]).map_err(|_| err("invalid utf-8", start))?;
    text.parse::<f64>()
        .map(Value::Number)
        .map_err(|_| err("invalid number", start))
}

fn parse_string(b: &[u8], pos: &mut usize) -> Result<String, ParseError> {
    expect(b, pos, b'"')?;
    let mut out = String::new();
    loop {
        match b.get(*pos) {
            None => return Err(err("unterminated string", *pos)),
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                match b.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'b') => out.push('\u{0008}'),
                    Some(b'f') => out.push('\u{000C}'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'u') => {
                        let hex = b
                            .get(*pos + 1..*pos + 5)
                            .ok_or_else(|| err("truncated \\u escape", *pos))?;
                        let hex =
                            std::str::from_utf8(hex).map_err(|_| err("invalid utf-8", *pos))?;
                        let code = u32::from_str_radix(hex, 16)
                            .map_err(|_| err("invalid \\u escape", *pos))?;
                        // Surrogates degrade to the replacement char;
                        // the documents this shim reads are ASCII.
                        out.push(char::from_u32(code).unwrap_or('\u{FFFD}'));
                        *pos += 4;
                    }
                    _ => return Err(err("invalid escape", *pos)),
                }
                *pos += 1;
            }
            Some(_) => {
                // Copy the full UTF-8 scalar starting here.
                let tail =
                    std::str::from_utf8(&b[*pos..]).map_err(|_| err("invalid utf-8", *pos))?;
                let c = tail.chars().next().unwrap();
                out.push(c);
                *pos += c.len_utf8();
            }
        }
    }
}

/// Builds a [`Value`] from JSON-looking syntax, mirroring
/// `serde_json::json!` for the object / array / expression forms.
/// Object values may be arbitrary expressions (commas inside
/// parentheses, brackets, or braces are grouped by the tokenizer, so
/// only top-level commas separate entries).
#[macro_export]
macro_rules! json {
    (null) => { $crate::Value::Null };
    ([ $($tt:tt)* ]) => {{
        #[allow(unused_mut)]
        let mut items: Vec<$crate::Value> = Vec::new();
        $crate::json_internal!(@arr items () $($tt)*);
        $crate::Value::Array(items)
    }};
    ({ $($tt:tt)* }) => {{
        #[allow(unused_mut)]
        let mut map = $crate::Map::new();
        $crate::json_internal!(@obj map $($tt)*);
        $crate::Value::Object(map)
    }};
    ($other:expr) => { $crate::Value::from($other) };
}

/// Token munchers backing [`json!`]. Not part of the public API.
#[doc(hidden)]
#[macro_export]
macro_rules! json_internal {
    // ---- object entries: `"key": <expr>, ...` ----
    (@obj $map:ident) => {};
    (@obj $map:ident ,) => {};
    (@obj $map:ident $key:literal : $($rest:tt)*) => {
        $crate::json_internal!(@objval $map $key () $($rest)*);
    };
    // Value complete at a top-level comma.
    (@objval $map:ident $key:literal ($($v:tt)*) , $($rest:tt)*) => {
        $map.insert($key, $crate::json_internal!(@tovalue $($v)*));
        $crate::json_internal!(@obj $map $($rest)*);
    };
    // Value complete at end of input.
    (@objval $map:ident $key:literal ($($v:tt)*)) => {
        $map.insert($key, $crate::json_internal!(@tovalue $($v)*));
    };
    // Keep accumulating the value's tokens.
    (@objval $map:ident $key:literal ($($v:tt)*) $next:tt $($rest:tt)*) => {
        $crate::json_internal!(@objval $map $key ($($v)* $next) $($rest)*);
    };
    // ---- array items ----
    (@arr $vec:ident ()) => {};
    (@arr $vec:ident ($($v:tt)+)) => {
        $vec.push($crate::json_internal!(@tovalue $($v)+));
    };
    (@arr $vec:ident ($($v:tt)+) , $($rest:tt)*) => {
        $vec.push($crate::json_internal!(@tovalue $($v)+));
        $crate::json_internal!(@arr $vec () $($rest)*);
    };
    (@arr $vec:ident ($($v:tt)*) $next:tt $($rest:tt)*) => {
        $crate::json_internal!(@arr $vec ($($v)* $next) $($rest)*);
    };
    // ---- one collected value: recurse for JSON forms, coerce exprs ----
    (@tovalue null) => { $crate::Value::Null };
    (@tovalue { $($tt:tt)* }) => { $crate::json!({ $($tt)* }) };
    (@tovalue [ $($tt:tt)* ]) => { $crate::json!([ $($tt)* ]) };
    (@tovalue $($e:tt)+) => { $crate::Value::from($($e)+) };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn object_macro_and_pretty_print() {
        let v = json!({
            "name": "vgg19",
            "nm": 4usize,
            "throughput": 123.5f64,
            "nested": { "ok": true },
            "series": vec![1u64, 2, 3],
        });
        let s = to_string_pretty(&v).unwrap();
        assert!(s.contains("\"name\": \"vgg19\""));
        assert!(s.contains("\"nm\": 4"));
        assert!(s.contains("\"throughput\": 123.5"));
        assert!(s.contains("\"ok\": true"));
        // Insertion order preserved.
        assert!(s.find("name").unwrap() < s.find("series").unwrap());
    }

    #[test]
    fn arrays_and_scalars() {
        assert_eq!(json!(null).to_string(), "null");
        assert_eq!(json!(1.25f64).to_string(), "1.25");
        assert_eq!(json!(7u64).to_string(), "7");
        assert_eq!(json!("a\"b").to_string(), "\"a\\\"b\"");
        let arr = json!(vec![json!(1u32), json!("x")]);
        assert_eq!(arr.to_string(), "[1,\"x\"]");
    }

    #[test]
    fn vec_of_values_wraps_to_array() {
        let dump = vec![json!({"a": 1u32}), json!({"a": 2u32})];
        let v = json!(dump);
        assert_eq!(v.to_string(), "[{\"a\":1},{\"a\":2}]");
    }

    #[test]
    fn non_finite_numbers_degrade_to_null() {
        assert_eq!(json!(f64::NAN).to_string(), "null");
        assert_eq!(json!(f64::INFINITY).to_string(), "null");
    }

    #[test]
    fn parse_roundtrips_serialized_values() {
        let v = json!({
            "name": "canonical-straggler",
            "faults": vec![
                json!({"kind": "gpu-slowdown", "gpu": 1u32, "factor": 1.3f64, "from": 5.0f64}),
                json!({"kind": "gpu-loss", "gpu": 2u32, "at": 10.0f64}),
            ],
            "none": Value::Null,
            "flag": true,
        });
        for text in [v.to_string(), to_string_pretty(&v).unwrap()] {
            let parsed = from_str(&text).expect("round-trip parses");
            assert_eq!(parsed, v, "round-trip of {text}");
        }
    }

    #[test]
    fn parse_escapes_and_errors() {
        let v = from_str(r#"{"a": "x\n\"yA", "b": [1, -2.5e1, null]}"#).unwrap();
        let Value::Object(map) = &v else { panic!() };
        assert_eq!(map.get("a"), Some(&Value::String("x\n\"yA".into())));
        assert_eq!(
            map.get("b"),
            Some(&Value::Array(vec![
                Value::Number(1.0),
                Value::Number(-25.0),
                Value::Null
            ]))
        );
        assert!(from_str("{\"a\": }").is_err());
        assert!(from_str("[1, 2").is_err());
        assert!(from_str("true false").is_err());
        assert!(from_str("").is_err());
        // Nesting past the depth cap is a ParseError, not a stack
        // overflow.
        let deep = "[".repeat(100_000);
        let e = from_str(&deep).unwrap_err();
        assert!(e.message.contains("nesting"), "{e}");
    }
}
