//! Offline stand-in for the `serde_json` crate.
//!
//! The build environment has no network access, so this workspace
//! vendors the small surface it actually uses: the [`Value`] tree, the
//! [`json!`] constructor macro, and [`to_string_pretty`] /
//! [`to_string`]. Output is valid JSON with object keys in insertion
//! order. Nothing here implements serde's `Serialize`/`Deserialize`;
//! the experiment harnesses only ever *build* values and print them.

use std::collections::BTreeMap;
use std::fmt;

/// A JSON value tree.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any JSON number (stored as `f64`; integers that fit print
    /// without a decimal point).
    Number(f64),
    /// A string.
    String(String),
    /// An array.
    Array(Vec<Value>),
    /// An object. Keys keep insertion order.
    Object(Map),
}

/// An order-preserving string-keyed map (insertion order, like
/// `serde_json`'s `preserve_order` feature).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Map {
    keys: Vec<String>,
    values: BTreeMap<String, Value>,
}

impl Map {
    /// Creates an empty map.
    pub fn new() -> Self {
        Self::default()
    }

    /// Inserts `value` under `key`, keeping first-insertion order.
    pub fn insert(&mut self, key: impl Into<String>, value: Value) {
        let key = key.into();
        if !self.values.contains_key(&key) {
            self.keys.push(key.clone());
        }
        self.values.insert(key, value);
    }

    /// Looks up a key.
    pub fn get(&self, key: &str) -> Option<&Value> {
        self.values.get(key)
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.keys.len()
    }

    /// True when no entry exists.
    pub fn is_empty(&self) -> bool {
        self.keys.is_empty()
    }

    /// Iterates `(key, value)` pairs in insertion order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, &Value)> {
        self.keys.iter().map(|k| (k.as_str(), &self.values[k]))
    }
}

impl From<bool> for Value {
    fn from(v: bool) -> Value {
        Value::Bool(v)
    }
}

impl From<f64> for Value {
    fn from(v: f64) -> Value {
        Value::Number(v)
    }
}

impl From<&f64> for Value {
    fn from(v: &f64) -> Value {
        Value::Number(*v)
    }
}

impl From<f32> for Value {
    fn from(v: f32) -> Value {
        Value::Number(v as f64)
    }
}

impl From<&f32> for Value {
    fn from(v: &f32) -> Value {
        Value::Number(*v as f64)
    }
}

macro_rules! from_number {
    ($($t:ty),*) => {$(
        impl From<$t> for Value {
            fn from(v: $t) -> Value {
                Value::Number(v as f64)
            }
        }
        impl From<&$t> for Value {
            fn from(v: &$t) -> Value {
                Value::Number(*v as f64)
            }
        }
    )*};
}
from_number!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl From<&str> for Value {
    fn from(v: &str) -> Value {
        Value::String(v.to_string())
    }
}

impl From<&&str> for Value {
    fn from(v: &&str) -> Value {
        Value::String((*v).to_string())
    }
}

impl From<String> for Value {
    fn from(v: String) -> Value {
        Value::String(v)
    }
}

impl From<&String> for Value {
    fn from(v: &String) -> Value {
        Value::String(v.clone())
    }
}

impl<T: Into<Value>> From<Vec<T>> for Value {
    fn from(v: Vec<T>) -> Value {
        Value::Array(v.into_iter().map(Into::into).collect())
    }
}

impl<T: Into<Value> + Clone> From<&[T]> for Value {
    fn from(v: &[T]) -> Value {
        Value::Array(v.iter().cloned().map(Into::into).collect())
    }
}

impl<T: Into<Value> + Clone, const N: usize> From<[T; N]> for Value {
    fn from(v: [T; N]) -> Value {
        Value::Array(v.into_iter().map(Into::into).collect())
    }
}

impl<T: Into<Value> + Clone, const N: usize> From<&[T; N]> for Value {
    fn from(v: &[T; N]) -> Value {
        Value::Array(v.iter().cloned().map(Into::into).collect())
    }
}

impl<T: Into<Value>> From<Option<T>> for Value {
    fn from(v: Option<T>) -> Value {
        v.map_or(Value::Null, Into::into)
    }
}

fn escape_into(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

fn number_to_string(n: f64) -> String {
    if n.is_finite() && n == n.trunc() && n.abs() < 9.007_199_254_740_992e15 {
        format!("{}", n as i64)
    } else if n.is_finite() {
        // `{:?}` prints the shortest representation that round-trips.
        format!("{n:?}")
    } else {
        // JSON has no NaN/Inf; match serde_json's lossy `null`.
        "null".to_string()
    }
}

fn write_value(out: &mut String, v: &Value, indent: usize, pretty: bool) {
    let pad = |out: &mut String, level: usize| {
        if pretty {
            out.push('\n');
            for _ in 0..level {
                out.push_str("  ");
            }
        }
    };
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::Number(n) => out.push_str(&number_to_string(*n)),
        Value::String(s) => escape_into(out, s),
        Value::Array(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                pad(out, indent + 1);
                write_value(out, item, indent + 1, pretty);
            }
            pad(out, indent);
            out.push(']');
        }
        Value::Object(map) => {
            if map.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push('{');
            for (i, (k, val)) in map.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                pad(out, indent + 1);
                escape_into(out, k);
                out.push(':');
                if pretty {
                    out.push(' ');
                }
                write_value(out, val, indent + 1, pretty);
            }
            pad(out, indent);
            out.push('}');
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut s = String::new();
        write_value(&mut s, self, 0, false);
        f.write_str(&s)
    }
}

/// Serializes a value compactly. Infallible for this value model; the
/// `Result` mirrors serde_json's signature.
pub fn to_string<T: Into<Value> + Clone>(value: &T) -> Result<String, fmt::Error> {
    Ok(value.clone().into().to_string())
}

/// Serializes a value with two-space indentation.
pub fn to_string_pretty<T: Into<Value> + Clone>(value: &T) -> Result<String, fmt::Error> {
    let mut s = String::new();
    write_value(&mut s, &value.clone().into(), 0, true);
    Ok(s)
}

/// Builds a [`Value`] from JSON-looking syntax, mirroring
/// `serde_json::json!` for the object / array / expression forms.
/// Object values may be arbitrary expressions (commas inside
/// parentheses, brackets, or braces are grouped by the tokenizer, so
/// only top-level commas separate entries).
#[macro_export]
macro_rules! json {
    (null) => { $crate::Value::Null };
    ([ $($tt:tt)* ]) => {{
        #[allow(unused_mut)]
        let mut items: Vec<$crate::Value> = Vec::new();
        $crate::json_internal!(@arr items () $($tt)*);
        $crate::Value::Array(items)
    }};
    ({ $($tt:tt)* }) => {{
        #[allow(unused_mut)]
        let mut map = $crate::Map::new();
        $crate::json_internal!(@obj map $($tt)*);
        $crate::Value::Object(map)
    }};
    ($other:expr) => { $crate::Value::from($other) };
}

/// Token munchers backing [`json!`]. Not part of the public API.
#[doc(hidden)]
#[macro_export]
macro_rules! json_internal {
    // ---- object entries: `"key": <expr>, ...` ----
    (@obj $map:ident) => {};
    (@obj $map:ident ,) => {};
    (@obj $map:ident $key:literal : $($rest:tt)*) => {
        $crate::json_internal!(@objval $map $key () $($rest)*);
    };
    // Value complete at a top-level comma.
    (@objval $map:ident $key:literal ($($v:tt)*) , $($rest:tt)*) => {
        $map.insert($key, $crate::json_internal!(@tovalue $($v)*));
        $crate::json_internal!(@obj $map $($rest)*);
    };
    // Value complete at end of input.
    (@objval $map:ident $key:literal ($($v:tt)*)) => {
        $map.insert($key, $crate::json_internal!(@tovalue $($v)*));
    };
    // Keep accumulating the value's tokens.
    (@objval $map:ident $key:literal ($($v:tt)*) $next:tt $($rest:tt)*) => {
        $crate::json_internal!(@objval $map $key ($($v)* $next) $($rest)*);
    };
    // ---- array items ----
    (@arr $vec:ident ()) => {};
    (@arr $vec:ident ($($v:tt)+)) => {
        $vec.push($crate::json_internal!(@tovalue $($v)+));
    };
    (@arr $vec:ident ($($v:tt)+) , $($rest:tt)*) => {
        $vec.push($crate::json_internal!(@tovalue $($v)+));
        $crate::json_internal!(@arr $vec () $($rest)*);
    };
    (@arr $vec:ident ($($v:tt)*) $next:tt $($rest:tt)*) => {
        $crate::json_internal!(@arr $vec ($($v)* $next) $($rest)*);
    };
    // ---- one collected value: recurse for JSON forms, coerce exprs ----
    (@tovalue null) => { $crate::Value::Null };
    (@tovalue { $($tt:tt)* }) => { $crate::json!({ $($tt)* }) };
    (@tovalue [ $($tt:tt)* ]) => { $crate::json!([ $($tt)* ]) };
    (@tovalue $($e:tt)+) => { $crate::Value::from($($e)+) };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn object_macro_and_pretty_print() {
        let v = json!({
            "name": "vgg19",
            "nm": 4usize,
            "throughput": 123.5f64,
            "nested": { "ok": true },
            "series": vec![1u64, 2, 3],
        });
        let s = to_string_pretty(&v).unwrap();
        assert!(s.contains("\"name\": \"vgg19\""));
        assert!(s.contains("\"nm\": 4"));
        assert!(s.contains("\"throughput\": 123.5"));
        assert!(s.contains("\"ok\": true"));
        // Insertion order preserved.
        assert!(s.find("name").unwrap() < s.find("series").unwrap());
    }

    #[test]
    fn arrays_and_scalars() {
        assert_eq!(json!(null).to_string(), "null");
        assert_eq!(json!(1.25f64).to_string(), "1.25");
        assert_eq!(json!(7u64).to_string(), "7");
        assert_eq!(json!("a\"b").to_string(), "\"a\\\"b\"");
        let arr = json!(vec![json!(1u32), json!("x")]);
        assert_eq!(arr.to_string(), "[1,\"x\"]");
    }

    #[test]
    fn vec_of_values_wraps_to_array() {
        let dump = vec![json!({"a": 1u32}), json!({"a": 2u32})];
        let v = json!(dump);
        assert_eq!(v.to_string(), "[{\"a\":1},{\"a\":2}]");
    }

    #[test]
    fn non_finite_numbers_degrade_to_null() {
        assert_eq!(json!(f64::NAN).to_string(), "null");
        assert_eq!(json!(f64::INFINITY).to_string(), "null");
    }
}
