//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no network access, so this workspace
//! vendors the subset `hetpipe-train` uses: [`rngs::SmallRng`] seeded
//! with [`SeedableRng::seed_from_u64`], and the [`Rng`] methods
//! `gen::<f32/f64>()` and `gen_range(..)` over integer and float
//! ranges. The generator is xoshiro256++ seeded through SplitMix64 —
//! the same construction real `SmallRng` uses on 64-bit targets —
//! though the exact stream is not guaranteed to match the real crate
//! (callers here only rely on determinism and statistical quality).

use std::ops::Range;

/// A source of random 64-bit words.
pub trait RngCore {
    /// The next 64 random bits.
    fn next_u64(&mut self) -> u64;
}

/// Construction of RNGs from seeds.
pub trait SeedableRng: Sized {
    /// Builds a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types samplable uniformly from 64 random bits (the `Standard`
/// distribution of the real crate).
pub trait Standard: Sized {
    /// Maps 64 uniform random bits to a uniform value of `Self`.
    fn from_random_bits(bits: u64) -> Self;
}

impl Standard for f64 {
    fn from_random_bits(bits: u64) -> f64 {
        // 53 mantissa bits -> uniform in [0, 1).
        (bits >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn from_random_bits(bits: u64) -> f32 {
        (bits >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

impl Standard for u64 {
    fn from_random_bits(bits: u64) -> u64 {
        bits
    }
}

impl Standard for bool {
    fn from_random_bits(bits: u64) -> bool {
        bits & 1 == 1
    }
}

/// Ranges samplable by [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draws a uniform sample from the range.
    fn sample(self, rng: &mut impl RngCore) -> T;
}

macro_rules! int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample(self, rng: &mut impl RngCore) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end - self.start) as u64;
                // Modulo bias is negligible for the small spans used
                // here (span << 2^64).
                self.start + (rng.next_u64() % span) as $t
            }
        }
    )*};
}
int_range!(usize, u64, u32, u16, u8);

impl SampleRange<f64> for Range<f64> {
    fn sample(self, rng: &mut impl RngCore) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        self.start + <f64 as Standard>::from_random_bits(rng.next_u64()) * (self.end - self.start)
    }
}

impl SampleRange<f32> for Range<f32> {
    fn sample(self, rng: &mut impl RngCore) -> f32 {
        assert!(self.start < self.end, "cannot sample empty range");
        self.start + <f32 as Standard>::from_random_bits(rng.next_u64()) * (self.end - self.start)
    }
}

/// Convenience sampling methods over any [`RngCore`].
pub trait Rng: RngCore {
    /// A uniform sample of `T` (matches `rand`'s `Standard`
    /// distribution semantics for floats: uniform in `[0, 1)`).
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::from_random_bits(self.next_u64())
    }

    /// A uniform sample from `range`.
    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T
    where
        Self: Sized,
    {
        range.sample(self)
    }

    /// A biased coin flip.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        self.gen::<f64>() < p
    }
}

impl<R: RngCore> Rng for R {}

/// Named RNGs.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// A small, fast, non-cryptographic generator (xoshiro256++).
    #[derive(Debug, Clone)]
    pub struct SmallRng {
        s: [u64; 4],
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(seed: u64) -> Self {
            // SplitMix64 expansion, as rand_core::SeedableRng does.
            let mut x = seed;
            let mut next = || {
                x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            let s = [next(), next(), next(), next()];
            SmallRng { s }
        }
    }

    impl RngCore for SmallRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = SmallRng::seed_from_u64(7);
        let mut b = SmallRng::seed_from_u64(7);
        let mut c = SmallRng::seed_from_u64(8);
        let xs: Vec<u64> = (0..8).map(|_| a.gen::<u64>()).collect();
        let ys: Vec<u64> = (0..8).map(|_| b.gen::<u64>()).collect();
        let zs: Vec<u64> = (0..8).map(|_| c.gen::<u64>()).collect();
        assert_eq!(xs, ys);
        assert_ne!(xs, zs);
    }

    #[test]
    fn floats_in_unit_interval() {
        let mut rng = SmallRng::seed_from_u64(42);
        for _ in 0..10_000 {
            let x: f64 = rng.gen();
            assert!((0.0..1.0).contains(&x));
            let y: f32 = rng.gen();
            assert!((0.0..1.0).contains(&y));
        }
    }

    #[test]
    fn ranges_respected_and_cover() {
        let mut rng = SmallRng::seed_from_u64(3);
        let mut seen = [false; 5];
        for _ in 0..1000 {
            let i = rng.gen_range(0usize..5);
            seen[i] = true;
            let f = rng.gen_range(1e-7..1.0f64);
            assert!((1e-7..1.0).contains(&f));
        }
        assert!(seen.iter().all(|&s| s), "all buckets hit: {seen:?}");
    }
}
