//! Offline stand-in for the `parking_lot` crate.
//!
//! The build environment has no network access, so this workspace
//! vendors the subset `hetpipe-train` uses: a [`Mutex`] whose `lock()`
//! returns the guard directly (no poison `Result`) and a [`Condvar`]
//! whose `wait` takes the guard by `&mut`. Implemented over
//! `std::sync`; lock poisoning is absorbed (a panicking holder does
//! not poison the lock for others, matching parking_lot semantics).

use std::ops::{Deref, DerefMut};
use std::sync;

/// A mutual-exclusion lock with parking_lot's panic-free API.
#[derive(Debug, Default)]
pub struct Mutex<T>(sync::Mutex<T>);

/// Guard returned by [`Mutex::lock`].
pub struct MutexGuard<'a, T> {
    // `Option` so Condvar::wait can move the std guard out and back
    // while the caller keeps holding `&mut MutexGuard`.
    inner: Option<sync::MutexGuard<'a, T>>,
}

impl<T> Mutex<T> {
    /// Creates a mutex holding `value`.
    pub const fn new(value: T) -> Self {
        Mutex(sync::Mutex::new(value))
    }

    /// Acquires the lock, blocking the current thread.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        MutexGuard {
            inner: Some(self.0.lock().unwrap_or_else(sync::PoisonError::into_inner)),
        }
    }

    /// Consumes the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0
            .into_inner()
            .unwrap_or_else(sync::PoisonError::into_inner)
    }
}

impl<T> Deref for MutexGuard<'_, T> {
    type Target = T;

    fn deref(&self) -> &T {
        self.inner.as_ref().expect("guard is live")
    }
}

impl<T> DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.inner.as_mut().expect("guard is live")
    }
}

/// A condition variable pairing with [`Mutex`].
#[derive(Debug, Default)]
pub struct Condvar(sync::Condvar);

impl Condvar {
    /// Creates a condition variable.
    pub const fn new() -> Self {
        Condvar(sync::Condvar::new())
    }

    /// Atomically releases the guard's lock and blocks until notified;
    /// the lock is re-acquired before returning.
    pub fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
        let inner = guard.inner.take().expect("guard is live");
        guard.inner = Some(
            self.0
                .wait(inner)
                .unwrap_or_else(sync::PoisonError::into_inner),
        );
    }

    /// Wakes one waiter.
    pub fn notify_one(&self) {
        self.0.notify_one();
    }

    /// Wakes all waiters.
    pub fn notify_all(&self) {
        self.0.notify_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn lock_and_mutate() {
        let m = Mutex::new(1);
        *m.lock() += 41;
        assert_eq!(*m.lock(), 42);
        assert_eq!(m.into_inner(), 42);
    }

    #[test]
    fn condvar_wakes_waiter() {
        let pair = Arc::new((Mutex::new(false), Condvar::new()));
        let pair2 = Arc::clone(&pair);
        let t = std::thread::spawn(move || {
            let (lock, cvar) = &*pair2;
            let mut g = lock.lock();
            while !*g {
                cvar.wait(&mut g);
            }
            *g
        });
        {
            let (lock, cvar) = &*pair;
            *lock.lock() = true;
            cvar.notify_all();
        }
        assert!(t.join().unwrap());
    }

    #[test]
    fn panicking_holder_does_not_poison() {
        let m = Arc::new(Mutex::new(0));
        let m2 = Arc::clone(&m);
        let _ = std::thread::spawn(move || {
            let _g = m2.lock();
            panic!("holder dies");
        })
        .join();
        assert_eq!(*m.lock(), 0, "lock stays usable after a panic");
    }
}
