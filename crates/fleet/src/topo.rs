//! The fleet topology: homogeneous, node-disjoint replicated cells.
//!
//! A *cell* is one blueprint cluster hosting exactly one virtual
//! worker; the fleet replicates it `n` times. Cells are node-disjoint
//! and parameters are sharded VW-locally
//! ([`hetpipe_core::pserver::ShardMap::build_vw_local`]), so no GPU,
//! NIC, or shard timeline is shared between VWs — the resource half
//! of the VW-isolation certificate holds *by construction*, and the
//! parameter-server clock coupling (the certified sole cross-VW
//! dependency class) is the only thing left for the
//! [`crate::FleetBus`] to carry.
//!
//! The same topology expands to a single flat cluster with globally
//! addressed devices ([`FleetTopology::expanded`]); running the
//! legacy single-engine executor over that expansion is the oracle
//! the fleet's parity tests and bench compare against, and
//! [`FleetTopology::remap_resource`] maps each engine's private
//! resource ids into the expansion's namespace so merged traces line
//! up span-for-span.

use hetpipe_cluster::{Cluster, DeviceId, Node};
use hetpipe_core::VirtualWorker;
use hetpipe_des::ResourceId;

/// A fleet of `n_vws` identical, node-disjoint cells.
#[derive(Debug, Clone)]
pub struct FleetTopology {
    cell: Cluster,
    cell_vw: VirtualWorker,
    n_vws: usize,
}

impl FleetTopology {
    /// A fleet of `n_vws` copies of `cell`, each running a clone of
    /// `cell_vw` (whose stage devices must be cell-local).
    pub fn new(cell: Cluster, cell_vw: VirtualWorker, n_vws: usize) -> FleetTopology {
        assert!(n_vws > 0, "a fleet has at least one VW");
        assert!(
            cell_vw.devices.iter().all(|d| d.0 < cell.device_count()),
            "the blueprint VW must live on the cell"
        );
        FleetTopology {
            cell,
            cell_vw,
            n_vws,
        }
    }

    /// The blueprint cell cluster.
    pub fn cell(&self) -> &Cluster {
        &self.cell
    }

    /// The blueprint VW (cell-local device ids).
    pub fn cell_vw(&self) -> &VirtualWorker {
        &self.cell_vw
    }

    /// Number of VWs (= cells = engines).
    pub fn n_vws(&self) -> usize {
        self.n_vws
    }

    /// GPUs per cell.
    pub fn devices_per_cell(&self) -> usize {
        self.cell.device_count()
    }

    /// Nodes per cell.
    pub fn nodes_per_cell(&self) -> usize {
        self.cell.node_count()
    }

    /// Per-engine VW clones: engine `e` simulates `cell_vws()[e]`,
    /// still addressed in cell-local device ids (each engine owns a
    /// private copy of the cell's resources).
    pub fn cell_vws(&self) -> Vec<VirtualWorker> {
        (0..self.n_vws)
            .map(|e| VirtualWorker {
                index: e,
                ..self.cell_vw.clone()
            })
            .collect()
    }

    /// The equivalent flat topology for the single-engine executor:
    /// one cluster concatenating every cell's nodes, and the VWs
    /// re-addressed to their cell's global device ids.
    pub fn expanded(&self) -> (Cluster, Vec<VirtualWorker>) {
        let mut cluster = Cluster::new();
        for _ in 0..self.n_vws {
            for node in self.cell.nodes() {
                cluster.add_node(Node::new(node.gpu_kind, node.gpu_count));
            }
        }
        let devs = self.devices_per_cell();
        let vws = (0..self.n_vws)
            .map(|e| VirtualWorker {
                index: e,
                devices: self
                    .cell_vw
                    .devices
                    .iter()
                    .map(|d| DeviceId(e * devs + d.0))
                    .collect(),
                plan: self.cell_vw.plan.clone(),
                nm: self.cell_vw.nm,
            })
            .collect();
        (cluster, vws)
    }

    /// Maps engine `e`'s private resource id into the expanded
    /// cluster's resource namespace. Both executors lay pools out
    /// identically — GPUs by device index first, then one NIC per
    /// node — so local GPU `i` is global GPU `e·devs + i` and local
    /// NIC `j` is global NIC `e·nodes + j` after the global GPU
    /// block.
    pub fn remap_resource(&self, e: usize, r: ResourceId) -> ResourceId {
        let devs = self.devices_per_cell();
        let nodes = self.nodes_per_cell();
        debug_assert!(e < self.n_vws);
        if r.0 < devs {
            ResourceId(e * devs + r.0)
        } else {
            let nic = r.0 - devs;
            debug_assert!(nic < nodes, "resource outside the cell pool");
            ResourceId(self.n_vws * devs + e * nodes + nic)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hetpipe_cluster::GpuKind;
    use hetpipe_model::resnet152;
    use hetpipe_partition::{PartitionProblem, PartitionSolver};

    fn topology(nodes: usize, gpus_per_node: usize, n_vws: usize) -> FleetTopology {
        let mut cell = Cluster::new();
        for _ in 0..nodes {
            cell.add_node(Node::new(GpuKind::Rtx2060, gpus_per_node));
        }
        let graph = resnet152(32);
        let devices: Vec<DeviceId> = cell.devices().collect();
        let gpus = devices.iter().map(|&d| cell.spec_of(d)).collect();
        let links = VirtualWorker::links(&cell, &devices);
        let plan = PartitionSolver::solve(&PartitionProblem::new(&graph, gpus, links, 4))
            .expect("feasible cell");
        let vw = VirtualWorker {
            index: 0,
            devices,
            plan,
            nm: 4,
        };
        FleetTopology::new(cell, vw, n_vws)
    }

    #[test]
    fn expansion_replicates_cells_disjointly() {
        let t = topology(2, 2, 3);
        let (cluster, vws) = t.expanded();
        assert_eq!(cluster.node_count(), 6);
        assert_eq!(cluster.device_count(), 12);
        assert_eq!(vws.len(), 3);
        // Every VW's devices live on its own cell's nodes only.
        for (e, vw) in vws.iter().enumerate() {
            for &d in &vw.devices {
                let node = cluster.node_of(d);
                assert!(
                    node.0 / t.nodes_per_cell() == e,
                    "vw {e} device {d:?} strayed to node {node:?}"
                );
            }
        }
    }

    #[test]
    fn resource_remap_is_injective_and_in_range() {
        let t = topology(2, 2, 3);
        let total = 3 * (4 + 2); // 4 GPUs + 2 NICs per cell.
        let mut seen = std::collections::BTreeSet::new();
        for e in 0..3 {
            for r in 0..6 {
                let g = t.remap_resource(e, ResourceId(r));
                assert!(g.0 < total);
                assert!(seen.insert(g.0), "collision at engine {e} resource {r}");
            }
        }
        assert_eq!(seen.len(), total);
    }
}
