//! The parallel fleet simulator: one DES engine per virtual worker.
//!
//! The single-engine executor (`hetpipe_core::exec`) simulates every
//! VW on one event queue; its only cross-VW coupling is the WSP gate
//! (`min_clock` over all VWs' push clocks deciding pull serves) — but
//! each push completion scans every VW's pending pull, so the loop is
//! O(V²) in fleet size and inherently serial. This crate runs each
//! VW's event stream on its own [`hetpipe_des::EngineCore`] instance
//! (one engine per scoped thread-pool slot) and moves the WSP gate
//! state behind a shared [`FleetBus`], the *only* cross-engine
//! channel. Synchronization is conservative: an engine advances past
//! a gate only when the serve is provably decided, so the parallel
//! run is deterministic and bit-identical to the single-engine
//! executor regardless of thread count.
//!
//! # Certificates → runtime sync rules
//!
//! Every runtime rule of the fleet decomposition is the operational
//! form of a statically verified certificate from `hetpipe-verify`:
//!
//! - **VW isolation → the bus message types.** The isolation pass
//!   certifies that every cross-VW dependency edge is a parameter-
//!   server push→gate coupling (all other footprints are VW-private).
//!   Accordingly the [`GateBus`] carries exactly three message kinds:
//!   push-landing announces, monotone action frontiers, and pull-serve
//!   polls — nothing else crosses engines, and the fleet topology
//!   ([`FleetTopology`]) keeps each cell's GPU/NIC timelines
//!   node-disjoint so no *resource* edge crosses either.
//! - **Lookahead → the block points.** `hetpipe_verify::lookahead`
//!   proves the closed form for where gates and pushes sit in every
//!   committed op stream (gate of wave `w` after
//!   `warmup + w·steady` stage-0 forwards; push of wave `w` at the
//!   wave's last backward). [`SyncPlan`] *derives* its constants by
//!   calling that closed form, and engines poll the bus only at those
//!   points: a push's landing time is announced at push *start* (its
//!   chunk arrivals are reserved up front), which is precisely the
//!   lookahead that lets the conservative protocol decide serves
//!   without rollback.
//! - **Gate check → the advance rule.** The POR-model-checked
//!   `ShadowGateProtocol` (`hetpipe_verify::gatecheck`) proves the
//!   gate advance rule safe: a VW passes gate(`w`) only when *all*
//!   VWs' push clocks have reached `w + 1`. [`FleetBus::poll_serve`]
//!   implements the same rule over announced landings — `Ready` is
//!   returned only when every VW's target-wave push has landed *and*
//!   every still-running VW is provably past the serve instant, so
//!   the decided `(time, version)` can never be invalidated by a
//!   future announce.
//!
//! # Memory
//!
//! Each engine's span trace folds into a per-VW [`VwPartial`] (busy
//! time, peak span occupancy, completions) the moment the engine
//! finishes, and the trace is dropped unless the caller asked to keep
//! it — fleet memory is O(VWs), not O(events).

pub mod bus;
pub mod driver;
pub mod parity;
pub mod plan;
pub mod topo;

pub use bus::FleetBus;
pub use driver::{run_fleet, FleetConfig, FleetReport, VwPartial};
pub use hetpipe_core::{GateBus, ServePoll};
pub use parity::{merged_spans, trace_fingerprint};
pub use plan::SyncPlan;
pub use topo::FleetTopology;
