//! The fleet's cross-engine channel: conservative WSP-gate
//! synchronization over announced push landings.
//!
//! # Protocol
//!
//! A pull with target wave `w` is served, in the single-engine
//! executor, at the first instant `S` at which the request is locally
//! ready *and* every VW's push clock has reached `w + 1`; the pull
//! carries version `min_clock(S) − 1`. The bus reconstructs exactly
//! that instant from three monotone per-VW streams:
//!
//! - **Announces**: each push's landing time, reported at push
//!   *start* (chunk arrivals are reserved up front — the certified
//!   lookahead). Waves and landings are monotone per VW.
//! - **Frontiers**: a lock-free monotone lower bound on each VW's
//!   next action, published before every event pop.
//! - **Polls**: a VW with a ready pull asks, before popping its next
//!   local event at `bound`, whether the serve is decided.
//!
//! A poll resolves to [`ServePoll::Ready`] only when (a) every VW's
//! target-wave push is announced — fixing the crossing time
//! `T* = max` of those landings and hence `S = max(ready_since, T*)`
//! — with `S ≤ bound`, and (b) every VW that could still announce a
//! push is provably past `S`, so the version is final. "Provably
//! past" folds the bus's *lookahead*: a push announced during an
//! action at `t` lands no earlier than `t + min_step` (the VW's
//! certified minimum push duration, always positive when transfers
//! are timed), so an unannounced landing from VW `u` is bounded below
//! by `floor(u) + min_step(u)`. If the same fold over every
//! contribution — announced landings exactly, unannounced ones by
//! their floors-plus-lookahead — already exceeds `bound`, the poll
//! resolves to [`ServePoll::NotBefore`] carrying that certified lower
//! bound; the engine caches it and pops every local event strictly
//! before it with no further bus traffic.
//!
//! Otherwise the poll *registers* and returns [`ServePoll::Wait`]. A
//! registration is a standing, sound description of the blocked VW's
//! next action (`min(next local event, its own serve)`): it persists
//! until the VW's next non-`Wait` verdict, so other polls may lean on
//! it without racing. When every live VW is registered the bus
//! applies the **quiescent rule**: the globally earliest candidate
//! action `t*` (over every VW's next event and exactly-computable
//! serve) is found, and the poller acts iff it achieves `t*` —
//! serving at `t* = S` or popping at `t* = t_next` (serve wins ties,
//! matching the in-process executor, which serves inside the crossing
//! push's handler ahead of same-instant events). The earliest action
//! is decidable because any push landing at or before `t*` would have
//! had to start strictly before `t*` — in some VW's past, hence
//! already announced.
//!
//! Every verdict is a pure function of simulated data (announced
//! steps and registration inputs), never of wall-clock interleaving —
//! frontier freshness affects only *when* a verdict becomes
//! available, not its value. That is the determinism argument: any
//! thread count computes the same serves, hence the same simulation.

use crate::plan::SyncPlan;
use hetpipe_core::{GateBus, ServePoll};
use hetpipe_des::SimTime;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Condvar, Mutex};
use std::time::Duration;

/// A registered (blocked) poll: a sound standing description of the
/// VW's next action, valid until its next non-`Wait` verdict.
#[derive(Debug, Clone, Copy)]
struct WaitInfo {
    /// Target wave of the pending pull.
    target: u64,
    /// Instant the pull became locally serveable.
    since: SimTime,
    /// The VW's next local event (its polled bound).
    t_next: SimTime,
}

#[derive(Debug)]
struct VwSlot {
    /// Announced push steps `(wave, lands)`; waves strictly
    /// increasing, landings non-decreasing.
    steps: Vec<(u64, SimTime)>,
    waiting: Option<WaitInfo>,
    done: bool,
}

impl VwSlot {
    /// Landing time of the earliest announced push with wave
    /// `≥ target` (waves are contiguous from 0, so this is wave
    /// `target` itself when announced).
    fn step_lands(&self, target: u64) -> Option<SimTime> {
        let i = self.steps.partition_point(|&(w, _)| w < target);
        self.steps.get(i).map(|&(_, lands)| lands)
    }

    /// This VW's push clock at instant `at`: `wave + 1` of its last
    /// announced step landing at or before `at`.
    fn clock_at(&self, at: SimTime) -> u64 {
        let i = self.steps.partition_point(|&(_, lands)| lands <= at);
        if i == 0 {
            0
        } else {
            self.steps[i - 1].0 + 1
        }
    }
}

#[derive(Debug)]
struct BusState {
    slots: Vec<VwSlot>,
    /// Bumped on every announce, finish, and all-blocked transition;
    /// blocked drivers wait for it to change.
    generation: u64,
}

/// The shared WSP gate state of a fleet run (see the module doc for
/// the protocol). One instance per [`crate::run_fleet`] call.
pub struct FleetBus {
    state: Mutex<BusState>,
    wake: Condvar,
    /// Lock-free monotone lower bounds on each VW's next action
    /// (nanoseconds), published on every event pop.
    frontiers: Vec<AtomicU64>,
    /// The certified gate/push cadence (diagnostics; the landings
    /// themselves carry the timing).
    plan: SyncPlan,
    /// Per-VW lookahead: a certified lower bound on the duration of
    /// any of the VW's pushes (announce → landing). Zero is always
    /// sound (landings still fall strictly after the announcing
    /// action); larger values turn `Wait` verdicts into `NotBefore`
    /// horizons.
    min_step: Vec<SimTime>,
}

impl FleetBus {
    /// A bus for `vws` engines synchronizing under `plan`, with zero
    /// lookahead (see [`FleetBus::set_min_steps`]).
    pub fn new(vws: usize, plan: SyncPlan) -> FleetBus {
        FleetBus {
            state: Mutex::new(BusState {
                slots: (0..vws)
                    .map(|_| VwSlot {
                        steps: Vec::new(),
                        waiting: None,
                        done: false,
                    })
                    .collect(),
                generation: 0,
            }),
            wake: Condvar::new(),
            frontiers: (0..vws).map(|_| AtomicU64::new(0)).collect(),
            plan,
            min_step: vec![SimTime::ZERO; vws],
        }
    }

    /// Installs the per-VW minimum push durations (the conservative
    /// lookahead). Must be called before the bus is shared: the bound
    /// is baked into every subsequent verdict.
    pub fn set_min_steps(&mut self, steps: Vec<SimTime>) {
        assert_eq!(steps.len(), self.frontiers.len());
        self.min_step = steps;
    }

    /// The certified sync-point constants this bus was built with.
    pub fn plan(&self) -> SyncPlan {
        self.plan
    }

    /// Current wake generation (capture before a stepping round;
    /// compare in [`FleetBus::wait_change`]).
    pub fn generation(&self) -> u64 {
        self.state.lock().unwrap().generation
    }

    /// Blocks until the generation differs from `seen` or `timeout`
    /// elapses (the timeout is a liveness safety net — frontier
    /// publishes are lock-free and do not signal).
    pub fn wait_change(&self, seen: u64, timeout: Duration) {
        let st = self.state.lock().unwrap();
        if st.generation != seen {
            return;
        }
        let _unused = self.wake.wait_timeout(st, timeout).unwrap();
    }

    /// A sound lower bound on `u`'s next action: `∞` when done, the
    /// registration's `min(t_next, since)` when blocked (its next
    /// action is its local event or its own serve, which cannot
    /// predate its request), else the published frontier.
    fn action_floor(&self, st: &BusState, u: usize) -> SimTime {
        let slot = &st.slots[u];
        if slot.done {
            return SimTime::MAX;
        }
        if let Some(w) = slot.waiting {
            return w.t_next.min(w.since);
        }
        SimTime::from_nanos(self.frontiers[u].load(Ordering::Acquire))
    }

    /// A certified lower bound on any landing `u` has yet to
    /// announce: the announce happens during an action at or past
    /// `u`'s floor, and the landing follows it by at least `u`'s
    /// minimum push duration — and strictly, since timed transfers
    /// have positive length (the 1 ns fallback keeps zero-lookahead
    /// buses exact).
    fn unannounced_lb(&self, st: &BusState, u: usize) -> SimTime {
        let gap = self.min_step[u].max(SimTime::from_nanos(1));
        self.action_floor(st, u).saturating_add(gap)
    }

    /// The crossing time of `target` — the max of every VW's
    /// target-wave landing — exact only when all are announced. New
    /// announces can only add later steps, so an exact value is
    /// final.
    fn crossing(&self, st: &BusState, target: u64) -> Option<SimTime> {
        let mut s = SimTime::ZERO;
        for slot in &st.slots {
            s = s.max(slot.step_lands(target)?);
        }
        Some(s)
    }

    /// The version a serve at `at` carries: `min_clock(at) − 1` over
    /// the announced steps. Sound only once the caller has proven no
    /// unannounced push can land at or before `at`.
    fn version_at(&self, st: &BusState, at: SimTime) -> i64 {
        st.slots
            .iter()
            .map(|slot| slot.clock_at(at))
            .min()
            .unwrap_or(0) as i64
            - 1
    }

    /// The quiescent rule: with every live VW registered, find the
    /// globally earliest candidate action `t*` and let `v` act iff it
    /// achieves it (serve beats its own same-instant local event).
    fn quiescent_verdict(&self, st: &BusState, v: usize) -> Option<ServePoll> {
        if st.slots.iter().any(|s| !s.done && s.waiting.is_none()) {
            return None;
        }
        // Registered targets all sit inside the WSP staleness window,
        // so memoizing the crossing per distinct target keeps the
        // whole verdict O(V) instead of O(V²).
        let mut crossings: Vec<(u64, Option<SimTime>)> = Vec::new();
        let mut t_star = SimTime::MAX;
        let mut mine = None;
        for (u, slot) in st.slots.iter().enumerate() {
            let Some(w) = slot.waiting.filter(|_| !slot.done) else {
                continue;
            };
            let x = match crossings.iter().find(|&&(t, _)| t == w.target) {
                Some(&(_, x)) => x,
                None => {
                    let x = self.crossing(st, w.target);
                    crossings.push((w.target, x));
                    x
                }
            };
            // An inexact serve needs a future announce, which happens
            // at some VW's action ≥ t* with a landing strictly later —
            // it can never achieve t*, so MAX is a sound stand-in.
            let s_u = x.map_or(SimTime::MAX, |x| x.max(w.since));
            t_star = t_star.min(w.t_next).min(s_u);
            if u == v {
                mine = Some((s_u, w.t_next, w.target));
            }
        }
        let (s_v, t_next_v, target_v) = mine.expect("poller is registered");
        if s_v <= t_next_v && s_v == t_star {
            // All contributions to a t*-earliest serve are announced,
            // and every other VW acts no earlier than t* (landings of
            // anything it still announces fall strictly after) — the
            // version is final.
            return Some(ServePoll::Ready {
                at: s_v,
                version: self.version_at(st, s_v),
            });
        }
        if t_next_v == t_star && t_star < s_v {
            // v's own local event is the globally earliest action. If
            // the serve is exact it happens at s_v itself; otherwise
            // the missing announce occurs at some action ≥ t* and its
            // landing follows by at least the announcer's lookahead.
            let at_least = if s_v < SimTime::MAX {
                s_v
            } else {
                let gap = st
                    .slots
                    .iter()
                    .enumerate()
                    .filter(|(_, s)| !s.done && s.step_lands(target_v).is_none())
                    .map(|(u, _)| self.min_step[u].max(SimTime::from_nanos(1)))
                    .min()
                    .unwrap_or(SimTime::from_nanos(1));
                t_star.saturating_add(gap)
            };
            return Some(ServePoll::NotBefore { at_least });
        }
        None // Another VW achieves t*; stay registered.
    }
}

impl GateBus for FleetBus {
    fn vws(&self) -> usize {
        self.frontiers.len()
    }

    fn announce_push(&self, vw: usize, wave: u64, lands: SimTime) {
        let mut st = self.state.lock().unwrap();
        let slot = &mut st.slots[vw];
        debug_assert!(!slot.done, "announce after finish");
        if let Some(&(last_wave, last_lands)) = slot.steps.last() {
            debug_assert!(wave > last_wave, "waves announce in order");
            debug_assert!(lands >= last_lands, "landings are monotone");
        }
        slot.steps.push((wave, lands));
        st.generation += 1;
        self.wake.notify_all();
    }

    fn publish_frontier(&self, vw: usize, at: SimTime) {
        // Monotone by construction (the engine's clock only moves
        // forward); Release pairs with the Acquire in `action_floor`.
        self.frontiers[vw].store(at.as_nanos(), Ordering::Release);
    }

    fn poll_serve(
        &self,
        vw: usize,
        target: u64,
        ready_since: SimTime,
        bound: SimTime,
    ) -> ServePoll {
        let mut st = self.state.lock().unwrap();
        // Fold a certified lower bound on the serve over every
        // contribution: announced target-wave landings exactly,
        // unannounced ones by floor-plus-lookahead.
        let mut serve_lb = ready_since;
        let mut all_known = true;
        for u in 0..st.slots.len() {
            match st.slots[u].step_lands(target) {
                Some(lands) => serve_lb = serve_lb.max(lands),
                None if st.slots[u].done => {
                    // `u` will never push the target wave: the pull is
                    // permanently unservable, matching the in-process
                    // executor idling an unserved request at the
                    // horizon.
                    st.slots[vw].waiting = None;
                    return ServePoll::NotBefore {
                        at_least: SimTime::MAX,
                    };
                }
                None => {
                    all_known = false;
                    serve_lb = serve_lb.max(self.unannounced_lb(&st, u));
                }
            }
        }
        if serve_lb > bound {
            // The certified lower bound already clears the bound: the
            // engine pops every local event strictly before it with
            // no further polls.
            st.slots[vw].waiting = None;
            return ServePoll::NotBefore { at_least: serve_lb };
        }
        if all_known {
            // S = serve_lb is exact (every landing announced) and
            // within the bound; the verdict is Ready as soon as the
            // version is final — no VW whose pushes are still
            // unbounded may land one at or before S. (The poller
            // itself is covered by its bound: its next local event is
            // at `bound ≥ S`, so it announces nothing before S.)
            let s = serve_lb;
            let version_final = (0..st.slots.len()).all(|u| {
                u == vw
                    || st.slots[u].done
                    || self.action_floor(&st, u) >= s
                    || self.unannounced_lb(&st, u) > s
            });
            if version_final {
                st.slots[vw].waiting = None;
                return ServePoll::Ready {
                    at: s,
                    version: self.version_at(&st, s),
                };
            }
        }
        // Undecided: register (a standing sound bound on v's next
        // action) and try the quiescent rule.
        let was_all_blocked = st
            .slots
            .iter()
            .enumerate()
            .all(|(u, s)| u == vw || s.done || s.waiting.is_some());
        st.slots[vw].waiting = Some(WaitInfo {
            target,
            since: ready_since,
            t_next: bound,
        });
        if let Some(verdict) = self.quiescent_verdict(&st, vw) {
            st.slots[vw].waiting = None;
            return verdict;
        }
        if !was_all_blocked {
            // This registration completed the all-blocked set: wake
            // the other drivers so the achieving VW re-polls into the
            // quiescent rule.
            st.generation += 1;
            self.wake.notify_all();
        }
        ServePoll::Wait
    }

    fn finish(&self, vw: usize) {
        let mut st = self.state.lock().unwrap();
        st.slots[vw].done = true;
        st.slots[vw].waiting = None;
        st.generation += 1;
        self.wake.notify_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hetpipe_core::WspParams;

    fn bus(n: usize) -> FleetBus {
        FleetBus::new(n, SyncPlan::derive(WspParams::new(4, 0)))
    }

    fn bus_with_step(n: usize, step: u64) -> FleetBus {
        let mut b = bus(n);
        b.set_min_steps(vec![SimTime::from_nanos(step); n]);
        b
    }

    fn ns(n: u64) -> SimTime {
        SimTime::from_nanos(n)
    }

    #[test]
    fn serve_decided_once_all_landings_announced_and_frontiers_pass() {
        let b = bus(2);
        b.announce_push(0, 0, ns(100));
        b.announce_push(1, 0, ns(150));
        // VW 1 is past the crossing; VW 0 polls with its next event
        // at 200.
        b.publish_frontier(1, ns(160));
        b.publish_frontier(0, ns(90));
        assert_eq!(
            b.poll_serve(0, 0, ns(90), ns(200)),
            ServePoll::Ready {
                at: ns(150),
                version: 0
            }
        );
    }

    #[test]
    fn unannounced_landing_past_bound_is_not_before() {
        let b = bus(2);
        b.announce_push(0, 0, ns(100));
        // VW 1 has announced nothing but is provably past the bound;
        // with zero lookahead its landing falls strictly after its
        // floor, so the certified horizon is floor + 1 ns.
        b.publish_frontier(1, ns(500));
        assert_eq!(
            b.poll_serve(0, 0, ns(90), ns(400)),
            ServePoll::NotBefore { at_least: ns(501) }
        );
    }

    #[test]
    fn lookahead_excludes_a_lagging_pusher_within_its_min_step() {
        let b = bus_with_step(2, 100);
        b.announce_push(0, 0, ns(150));
        // VW 1's floor is only 50, but its next push cannot land
        // before 50 + 100 > bound — a zero-lookahead bus would Wait
        // here.
        b.publish_frontier(1, ns(50));
        assert_eq!(
            b.poll_serve(0, 0, ns(90), ns(140)),
            ServePoll::NotBefore { at_least: ns(150) }
        );
    }

    #[test]
    fn lookahead_finalizes_the_version_past_lagging_frontiers() {
        let b = bus_with_step(2, 100);
        b.announce_push(0, 0, ns(100));
        b.announce_push(1, 0, ns(150));
        // Both landings are known (S = 150) but VW 1's frontier is
        // still 60: zero lookahead cannot close the version, while
        // 60 + 100 > 150 proves no further landing reaches S.
        b.publish_frontier(0, ns(90));
        b.publish_frontier(1, ns(60));
        assert_eq!(
            b.poll_serve(0, 0, ns(90), ns(200)),
            ServePoll::Ready {
                at: ns(150),
                version: 0
            }
        );
        let zero = bus(2);
        zero.announce_push(0, 0, ns(100));
        zero.announce_push(1, 0, ns(150));
        zero.publish_frontier(0, ns(90));
        zero.publish_frontier(1, ns(60));
        assert_eq!(zero.poll_serve(0, 0, ns(90), ns(200)), ServePoll::Wait);
    }

    #[test]
    fn lagging_frontier_blocks_and_registers() {
        let b = bus(2);
        b.announce_push(0, 0, ns(100));
        b.publish_frontier(1, ns(50)); // Could still announce ≤ bound.
        assert_eq!(b.poll_serve(0, 0, ns(90), ns(400)), ServePoll::Wait);
        // The late announce resolves it.
        b.announce_push(1, 0, ns(120));
        b.publish_frontier(1, ns(130));
        assert_eq!(
            b.poll_serve(0, 0, ns(90), ns(400)),
            ServePoll::Ready {
                at: ns(120),
                version: 0
            }
        );
    }

    #[test]
    fn version_counts_every_wave_landed_by_the_serve() {
        let b = bus(2);
        b.announce_push(0, 0, ns(100));
        b.announce_push(0, 1, ns(110));
        b.announce_push(1, 0, ns(105));
        b.announce_push(1, 1, ns(115));
        b.publish_frontier(0, ns(120));
        b.publish_frontier(1, ns(120));
        // Target wave 0 serves at its crossing (105), but wave-1
        // landings at 110/115 have not landed by then.
        assert_eq!(
            b.poll_serve(0, 0, ns(90), ns(200)),
            ServePoll::Ready {
                at: ns(105),
                version: 0
            }
        );
        // A later-ready request sees both waves in (VW 1 must be
        // provably past the serve instant for the version to close).
        b.publish_frontier(1, ns(160));
        assert_eq!(
            b.poll_serve(0, 0, ns(150), ns(200)),
            ServePoll::Ready {
                at: ns(150),
                version: 1
            }
        );
    }

    #[test]
    fn done_vw_without_target_wave_makes_pull_unservable() {
        let b = bus(2);
        b.announce_push(0, 0, ns(100));
        b.finish(1);
        assert_eq!(
            b.poll_serve(0, 0, ns(90), ns(400)),
            ServePoll::NotBefore {
                at_least: SimTime::MAX
            }
        );
    }

    #[test]
    fn quiescent_rule_decides_the_earliest_serve() {
        let b = bus(2);
        b.announce_push(0, 0, ns(100));
        b.announce_push(1, 0, ns(150));
        // Both registered: VW 1's frontier lags so the opportunistic
        // path cannot finalize VW 0's version, but once both are
        // blocked the earliest action is decidable.
        b.publish_frontier(0, ns(90));
        b.publish_frontier(1, ns(60));
        assert_eq!(b.poll_serve(1, 0, ns(60), ns(600)), ServePoll::Wait);
        // VW 0's poll: S_0 = 150, t_next = 500; VW 1: S_1 = 150,
        // t_next = 600. t* = 150 achieved by VW 0's serve (and VW
        // 1's, on its own re-poll).
        assert_eq!(
            b.poll_serve(0, 0, ns(90), ns(500)),
            ServePoll::Ready {
                at: ns(150),
                version: 0
            }
        );
        // VW 0 advances to its serve and publishes; VW 1's re-poll
        // now closes through the opportunistic path.
        b.publish_frontier(0, ns(150));
        assert_eq!(
            b.poll_serve(1, 0, ns(60), ns(600)),
            ServePoll::Ready {
                at: ns(150),
                version: 0
            }
        );
    }

    #[test]
    fn quiescent_rule_lets_the_earliest_local_event_proceed() {
        let b = bus(2);
        // No landings at all; both block. VW 0's next event at 80 is
        // the globally earliest action; any serve needs an announce at
        // an action ≥ 80 landing strictly later.
        assert_eq!(b.poll_serve(1, 0, ns(10), ns(300)), ServePoll::Wait);
        assert_eq!(
            b.poll_serve(0, 0, ns(20), ns(80)),
            ServePoll::NotBefore { at_least: ns(81) }
        );
    }

    #[test]
    fn generation_bumps_wake_waiters() {
        let b = bus(2);
        let g0 = b.generation();
        b.announce_push(0, 0, ns(10));
        assert_ne!(b.generation(), g0);
        // wait_change returns immediately on a stale generation.
        b.wait_change(g0, Duration::from_secs(5));
    }
}
