//! The fleet's synchronization-point constants, *derived from* the
//! certified lookahead closed form.
//!
//! `hetpipe_verify::lookahead_bound` is the proven closed form for
//! where parameter-server interactions sit in every committed op
//! stream: the first gate opens after `warmup = s_global + 1` stage-0
//! forwards and gates recur every `steady = Nm` forwards; the push of
//! wave `w` starts at the wave's last backward. [`SyncPlan::derive`]
//! obtains its constants by *calling* that closed form (not by
//! restating it), so a change to the certificate changes the runtime
//! constants with it — `verify_all`'s `fleet-sync` section pins this
//! derivation, including a named off-by-one negative control.

use hetpipe_core::WspParams;
use hetpipe_verify::lookahead_bound;

/// The certified gate/push positions the fleet synchronizes at.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SyncPlan {
    /// Stage-0 forwards before the first gate (`s_global + 1`).
    pub warmup: u64,
    /// Stage-0 forwards between consecutive gates (`Nm`).
    pub steady: u64,
    /// The WSP parameters the plan was derived for.
    pub wsp: WspParams,
}

impl SyncPlan {
    /// Derives the plan from the certified lookahead closed form.
    pub fn derive(wsp: WspParams) -> SyncPlan {
        let (warmup, steady) = lookahead_bound(wsp);
        SyncPlan {
            warmup,
            steady,
            wsp,
        }
    }

    /// Stage-0 forwards committed before gate(`wave`) may open.
    pub fn gate_point(&self, wave: u64) -> u64 {
        self.warmup + wave * self.steady
    }

    /// Stage-0 backwards committed before push(`wave`) starts (the
    /// wave's last backward).
    pub fn push_point(&self, wave: u64) -> u64 {
        self.wsp.last_of_wave(wave)
    }

    /// Checks an observed gate position against the certificate,
    /// naming the wave and both positions on mismatch.
    pub fn check_gate(&self, wave: u64, forwards_before: u64) -> Result<(), String> {
        let expect = self.gate_point(wave);
        if forwards_before == expect {
            Ok(())
        } else {
            Err(format!(
                "fleet-sync: gate(wave {wave}) observed after {forwards_before} \
                 stage-0 forwards, certified lookahead places it at {expect}"
            ))
        }
    }

    /// Checks an observed push position against the certificate,
    /// naming the wave and both positions on mismatch.
    pub fn check_push(&self, wave: u64, backwards_before: u64) -> Result<(), String> {
        let expect = self.push_point(wave);
        if backwards_before == expect {
            Ok(())
        } else {
            Err(format!(
                "fleet-sync: push(wave {wave}) observed after {backwards_before} \
                 stage-0 backwards, certified lookahead places it at {expect}"
            ))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hetpipe_schedule::{committed_queues, ps_interaction_points, RecomputePolicy, Schedule};

    /// The runtime constants must match the PS interaction points
    /// extracted from real committed op streams — the same material
    /// the lookahead certificate is proven over.
    #[test]
    fn plan_matches_extracted_interaction_points() {
        let wsp = WspParams::new(4, 1);
        let plan = SyncPlan::derive(wsp);
        for schedule in Schedule::ALL {
            let queues = committed_queues(&schedule, 4, wsp, RecomputePolicy::None, 40);
            let pts = ps_interaction_points(&queues);
            assert!(!pts.gates.is_empty(), "{schedule:?} has gates");
            for g in &pts.gates {
                plan.check_gate(g.wave, g.forwards_before)
                    .unwrap_or_else(|e| panic!("{schedule:?}: {e}"));
            }
            for p in &pts.pushes {
                plan.check_push(p.wave, p.backwards_before)
                    .unwrap_or_else(|e| panic!("{schedule:?}: {e}"));
            }
        }
    }

    #[test]
    fn off_by_one_gate_is_caught_and_named() {
        let plan = SyncPlan::derive(WspParams::new(4, 0));
        let err = plan
            .check_gate(2, plan.gate_point(2) + 1)
            .expect_err("off-by-one must be rejected");
        assert!(err.contains("gate(wave 2)"), "names the wave: {err}");
        assert!(
            err.contains(&plan.gate_point(2).to_string()),
            "names the certified position: {err}"
        );
    }
}
