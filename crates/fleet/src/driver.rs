//! The fleet driver: scoped worker threads stepping per-VW engines.
//!
//! [`run_fleet`] builds one [`VwEngine`] per virtual worker, shares a
//! single [`FleetBus`] between them, and steps the engines on a
//! scoped thread pool (thread `t` owns engines `t, t+T, …`). Engines
//! run in bursts until they block on the bus or finish; a thread with
//! no runnable engine sleeps on the bus generation counter. The
//! moment an engine finishes, its stats fold into a compact
//! [`VwPartial`] and the engine (queue, trace, pool) is dropped —
//! unless the caller asked to keep traces, fleet memory is O(VWs).
//!
//! Determinism: the bus serves every poll with a verdict that is a
//! pure function of announced simulation data, never of wall-clock
//! interleaving, so any thread count — including 1 — produces the
//! same per-VW event streams, traces, and stats.

use crate::bus::FleetBus;
use crate::plan::SyncPlan;
use hetpipe_cluster::network::LinkKind;
use hetpipe_cluster::Cluster;
use hetpipe_core::exec::{
    ExecParams, RateTarget, RunStats, SegmentOpts, SpanTag, StepOutcome, VwEngine,
};
use hetpipe_core::pserver::ShardMap;
use hetpipe_core::{VirtualWorker, WspParams};
use hetpipe_des::{peak_of_events, SimTime, Trace};
use hetpipe_model::ModelGraph;
use hetpipe_schedule::{RecomputePolicy, Schedule};
use std::time::Duration;

/// A fleet run: `vws` identical cell-local virtual workers, one
/// engine each, synchronized through a WSP gate bus.
pub struct FleetConfig<'a> {
    /// The *cell* cluster every engine privately instantiates.
    pub cluster: &'a Cluster,
    /// The model being trained.
    pub graph: &'a ModelGraph,
    /// One cell-local VW per engine (device ids index the cell).
    pub vws: &'a [VirtualWorker],
    /// WSP parameters (`Nm`, `D`).
    pub wsp: WspParams,
    /// Shard placement — must be VW-local so parameter traffic stays
    /// on each cell's own nodes.
    pub shards: &'a ShardMap,
    /// Whether push/pull transfers cost time (see the zero-delay
    /// restriction on [`run_fleet`]).
    pub sync_transfers: bool,
    /// The pipeline schedule every VW runs.
    pub schedule: Schedule,
    /// Activation recomputation policy.
    pub recompute: RecomputePolicy,
    /// Segment options applied identically to every engine.
    pub opts: SegmentOpts,
    /// Worker threads (clamped to `[1, vws]`).
    pub threads: usize,
    /// Keep each engine's span trace in the report (parity tooling);
    /// when false traces are dropped as engines finish.
    pub keep_traces: bool,
}

/// One finished engine, folded to O(1)-ish summary form.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct VwPartial {
    /// Global VW index (= engine index = cell index).
    pub vw: usize,
    /// Minibatches completed.
    pub completions: u64,
    /// Completion instant of the last finished minibatch.
    pub last_completion: SimTime,
    /// Waves pushed (final local WSP clock).
    pub waves_pushed: u64,
    /// Total pull wait (straggler time).
    pub pull_wait: SimTime,
    /// Injection-gate blocked time.
    pub inject_blocked: SimTime,
    /// DES events the engine processed.
    pub events: u64,
    /// Instant of the engine's last event.
    pub end: SimTime,
    /// Busy time per cell GPU (device order).
    pub gpu_busy: Vec<SimTime>,
    /// Busy time per cell NIC (node order).
    pub nic_busy: Vec<SimTime>,
    /// Peak concurrent spans across the cell's resources. Computed
    /// only when the run keeps traces (the parity / diagnostic mode);
    /// timing runs report 0 — the sweep over the full span set costs
    /// as much as the simulation itself.
    pub peak_spans: i64,
}

impl VwPartial {
    fn fold(vw: usize, stats: &RunStats, with_peak: bool) -> VwPartial {
        let s = &stats.vws[0];
        VwPartial {
            vw,
            completions: s.completions.len() as u64,
            last_completion: s.completions.last().copied().unwrap_or(SimTime::ZERO),
            waves_pushed: s.waves_pushed,
            pull_wait: s.pull_wait,
            inject_blocked: s.inject_blocked,
            events: stats.events,
            end: stats.end,
            gpu_busy: stats
                .gpu_resources
                .iter()
                .map(|&r| stats.pool.get(r).busy_time())
                .collect(),
            nic_busy: stats
                .nic_resources
                .iter()
                .map(|&r| stats.pool.get(r).busy_time())
                .collect(),
            peak_spans: if with_peak {
                peak_of_events(
                    stats
                        .trace
                        .spans()
                        .iter()
                        .flat_map(|s| [(s.start, 1), (s.end, -1)])
                        .collect(),
                )
            } else {
                0
            },
        }
    }
}

/// The merged result of a fleet run.
#[derive(Debug, Clone)]
pub struct FleetReport {
    /// Per-VW partials, sorted by VW index.
    pub partials: Vec<VwPartial>,
    /// Per-engine span traces (cell-local resource ids, `vw` tag 0),
    /// sorted by engine index. Empty unless `keep_traces` was set.
    pub traces: Vec<(usize, Trace<SpanTag>)>,
    /// Latest engine end instant.
    pub end: SimTime,
    /// Total DES events processed across all engines.
    pub events: u64,
    /// Worker threads actually used.
    pub threads: usize,
}

/// What one worker thread returns: folded partials plus the kept
/// traces of the engines it drove.
type LaneResult = (Vec<VwPartial>, Vec<(usize, Trace<SpanTag>)>);

/// How many engines a thread steps before re-checking its siblings.
const STEP_BURST: usize = 256;

/// Safety-net poll interval: action frontier stores don't bump the
/// bus generation, so a quiescent-rule verdict that becomes decidable
/// purely by a frontier advance is picked up on this cadence.
const WAIT_SLICE: Duration = Duration::from_millis(2);

/// Runs the fleet to `horizon` and merges the per-engine results.
///
/// The conservative protocol is sound only when every wave push takes
/// positive time (a landing strictly after its announce instant keeps
/// decided serves final); with more than one VW this requires
/// `sync_transfers` and a non-empty chunk set for every VW, which
/// this function asserts. A single-VW fleet has no cross-engine
/// coupling and is exempt.
pub fn run_fleet(cfg: &FleetConfig<'_>, horizon: SimTime) -> FleetReport {
    let n = cfg.vws.len();
    assert!(n > 0, "fleet needs at least one VW");
    if n > 1 {
        assert!(
            cfg.sync_transfers,
            "multi-VW fleets need timed sync transfers (zero-delay \
             pushes would let a landing tie its announce instant)"
        );
        for vw in cfg.vws {
            assert!(
                !cfg.shards.chunks_for(cfg.graph, cfg.cluster, vw).is_empty(),
                "multi-VW fleets need a non-empty push chunk set per VW"
            );
        }
    }
    let threads = cfg.threads.clamp(1, n);
    let bus = {
        let mut bus = FleetBus::new(n, SyncPlan::derive(cfg.wsp));
        bus.set_min_steps(cfg.vws.iter().map(|vw| min_push_step(cfg, vw)).collect());
        bus
    };

    let mut lanes: Vec<LaneResult> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..threads)
            .map(|t| {
                let bus = &bus;
                scope.spawn(move || drive_lane(cfg, horizon, bus, t, threads))
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("fleet worker panicked"))
            .collect()
    });

    let mut partials = Vec::with_capacity(n);
    let mut traces = Vec::new();
    for (p, tr) in lanes.drain(..) {
        partials.extend(p);
        traces.extend(tr);
    }
    partials.sort_by_key(|p| p.vw);
    traces.sort_by_key(|(e, _)| *e);
    FleetReport {
        end: partials
            .iter()
            .map(|p| p.end)
            .max()
            .unwrap_or(SimTime::ZERO),
        events: partials.iter().map(|p| p.events).sum(),
        partials,
        traces,
        threads,
    }
}

/// A certified lower bound on the duration of any of `vw`'s wave
/// pushes (announce → landing), the bus's conservative lookahead. A
/// push lands at the latest chunk arrival, and each chunk arrival is
/// at least its transfer duration past the push start: intra-node
/// chunks take exactly the PCIe time (dedicated lanes carry no
/// timeline resource, so rate events never touch them), inter-node
/// chunks at least the InfiniBand time shrunk by the fastest NIC rate
/// the segment can reach (minus 1 ns against rounding-mode mismatch
/// with the resource timeline integration). Zero — e.g. with sync
/// transfers off — degrades the bus to its exact zero-lookahead
/// behavior.
fn min_push_step(cfg: &FleetConfig<'_>, vw: &VirtualWorker) -> SimTime {
    if !cfg.sync_transfers {
        return SimTime::ZERO;
    }
    let mut max_nic_rate = 1.0f64;
    for &(target, rate) in &cfg.opts.initial_rates {
        if matches!(target, RateTarget::Nic(_)) {
            max_nic_rate = max_nic_rate.max(rate);
        }
    }
    for ev in &cfg.opts.rate_events {
        if matches!(ev.target, RateTarget::Nic(_)) {
            max_nic_rate = max_nic_rate.max(ev.rate);
        }
    }
    let mut step = SimTime::ZERO;
    for ch in cfg.shards.chunks_for(cfg.graph, cfg.cluster, vw) {
        let dur = if ch.crosses_nodes() {
            let nominal = SimTime::from_secs(LinkKind::Infiniband.transfer_secs(ch.bytes));
            SimTime::from_nanos((nominal.as_nanos() as f64 / max_nic_rate) as u64)
                .saturating_sub(SimTime::from_nanos(1))
        } else {
            SimTime::from_secs(LinkKind::Pcie.transfer_secs(ch.bytes))
        };
        step = step.max(dur);
    }
    step
}

/// One worker thread's loop: step owned engines until all finish.
fn drive_lane<'a>(
    cfg: &'a FleetConfig<'a>,
    horizon: SimTime,
    bus: &'a FleetBus,
    lane: usize,
    stride: usize,
) -> LaneResult {
    let mut engines: Vec<(usize, VwEngine<'a>)> = (lane..cfg.vws.len())
        .step_by(stride)
        .map(|e| {
            let params = ExecParams {
                cluster: cfg.cluster,
                graph: cfg.graph,
                vws: std::slice::from_ref(&cfg.vws[e]),
                wsp: cfg.wsp,
                shards: cfg.shards,
                sync_transfers: cfg.sync_transfers,
                schedule: cfg.schedule,
                recompute: cfg.recompute,
            };
            (e, VwEngine::new(params, cfg.opts.clone(), horizon, bus, e))
        })
        .collect();
    let mut partials = Vec::with_capacity(engines.len());
    let mut traces = Vec::new();

    while !engines.is_empty() {
        let seen = bus.generation();
        let mut progressed = false;
        let mut i = 0;
        while i < engines.len() {
            let eng = &mut engines[i].1;
            for _ in 0..STEP_BURST {
                match eng.step() {
                    StepOutcome::Progressed => progressed = true,
                    StepOutcome::Blocked | StepOutcome::Done => break,
                }
            }
            if eng.is_done() {
                let (e, eng) = engines.swap_remove(i);
                let stats = eng.into_stats();
                partials.push(VwPartial::fold(e, &stats, cfg.keep_traces));
                if cfg.keep_traces {
                    traces.push((e, stats.trace));
                }
                progressed = true;
            } else {
                i += 1;
            }
        }
        if !progressed && !engines.is_empty() {
            // Nothing runnable: sleep until the bus state changes.
            // The timeout is the safety net for frontier-only
            // progress (frontier stores are lock-free and don't
            // notify).
            bus.wait_change(seen, WAIT_SLICE);
        }
    }
    (partials, traces)
}
