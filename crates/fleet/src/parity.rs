//! Trace merging and canonical fingerprints for fleet ↔ legacy parity.
//!
//! Each fleet engine records spans against its *private* cell: GPU
//! resources `0..devs`, NIC resources `devs..devs+nodes`, and `vw` tag
//! 0. [`merged_spans`] relabels every engine's spans into the expanded
//! cluster's namespace ([`FleetTopology::remap_resource`] for
//! resources, engine index for the `vw` tag) so the union is directly
//! comparable with a legacy single-engine run over
//! [`FleetTopology::expanded`]. [`trace_fingerprint`] then reduces
//! either span set to an order-independent 64-bit digest — the two
//! executors interleave recording differently, so parity is defined
//! over the *sorted* span multiset, not the recording order.

use crate::driver::FleetReport;
use crate::topo::FleetTopology;
use hetpipe_core::exec::SpanTag;
use hetpipe_des::Span;

/// Relabels one engine's span tag into the global VW namespace.
fn remap_tag(e: usize, tag: SpanTag) -> SpanTag {
    let vw = e as u32;
    match tag {
        SpanTag::Forward { stage, mb, .. } => SpanTag::Forward { vw, stage, mb },
        SpanTag::Backward { stage, mb, .. } => SpanTag::Backward { vw, stage, mb },
        SpanTag::Recompute { stage, mb, .. } => SpanTag::Recompute { vw, stage, mb },
        SpanTag::ActTransfer {
            stage, backward, ..
        } => SpanTag::ActTransfer {
            vw,
            stage,
            backward,
        },
        SpanTag::SyncTransfer { wave, pull, .. } => SpanTag::SyncTransfer { vw, wave, pull },
    }
}

/// The union of every engine's spans, relabelled into the expanded
/// cluster's resource and VW namespaces. Requires the report to have
/// been produced with `keep_traces`.
pub fn merged_spans(topo: &FleetTopology, report: &FleetReport) -> Vec<Span<SpanTag>> {
    let mut out = Vec::new();
    for (e, trace) in &report.traces {
        for s in trace.spans() {
            out.push(Span {
                resource: topo.remap_resource(*e, s.resource),
                start: s.start,
                end: s.end,
                tag: remap_tag(*e, s.tag),
            });
        }
    }
    out
}

/// An order-independent FNV-1a digest of a span multiset: spans are
/// canonicalized to `resource start end tag` lines, sorted, and
/// hashed. Two traces fingerprint equal iff they contain the same
/// spans, regardless of recording order.
pub fn trace_fingerprint(spans: &[Span<SpanTag>]) -> u64 {
    let mut lines: Vec<String> = spans
        .iter()
        .map(|s| format!("{} {:?} {:?} {:?}", s.resource.0, s.start, s.end, s.tag))
        .collect();
    lines.sort_unstable();
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for line in &lines {
        for b in line.as_bytes() {
            h ^= u64::from(*b);
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        h ^= u64::from(b'\n');
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;
    use hetpipe_des::{ResourceId, SimTime};

    fn span(resource: usize, start: f64, vw: u32, mb: u64) -> Span<SpanTag> {
        Span {
            resource: ResourceId(resource),
            start: SimTime::from_secs(start),
            end: SimTime::from_secs(start + 1.0),
            tag: SpanTag::Forward { vw, stage: 0, mb },
        }
    }

    #[test]
    fn fingerprint_ignores_recording_order() {
        let a = vec![span(0, 0.0, 0, 1), span(1, 2.0, 1, 3), span(0, 5.0, 0, 2)];
        let mut b = a.clone();
        b.reverse();
        assert_eq!(trace_fingerprint(&a), trace_fingerprint(&b));
    }

    #[test]
    fn fingerprint_separates_different_span_sets() {
        let a = vec![span(0, 0.0, 0, 1)];
        let b = vec![span(0, 0.0, 0, 2)];
        let c = vec![span(1, 0.0, 0, 1)];
        assert_ne!(trace_fingerprint(&a), trace_fingerprint(&b));
        assert_ne!(trace_fingerprint(&a), trace_fingerprint(&c));
    }

    #[test]
    fn remap_relabels_vw_and_keeps_payload() {
        let t = remap_tag(
            3,
            SpanTag::SyncTransfer {
                vw: 0,
                wave: 7,
                pull: false,
            },
        );
        assert_eq!(
            t,
            SpanTag::SyncTransfer {
                vw: 3,
                wave: 7,
                pull: false,
            }
        );
    }
}
