//! Ablations of HetPipe's design choices (DESIGN.md section 4):
//!
//! 1. **Partitioner** — the min–max DP vs an equal-layer-count split
//!    vs the greedy binary-search variant (planned bottleneck and
//!    simulated throughput).
//! 2. **Wave-aggregated pushes** — parameter bytes pushed per wave vs
//!    the per-minibatch pushing WSP avoids (Section 5: "significantly
//!    reduce the communication overhead").
//! 3. **Stage-order search** — throughput with and without searching
//!    GPU orders inside heterogeneous virtual workers.

use hetpipe_bench::{maybe_write_json, print_table, run_hetpipe, HORIZON_SECS};
use hetpipe_cluster::{Cluster, DeviceId};
use hetpipe_core::vw::VirtualWorker;
use hetpipe_core::{AllocationPolicy, HetPipeSystem, Placement, SystemConfig};
use hetpipe_des::SimTime;
use hetpipe_partition::{PartitionProblem, PartitionSolver};
use serde_json::json;

fn main() {
    let cluster = Cluster::paper_testbed();
    let mut dump = Vec::new();

    // --- Ablation 1: partition quality on a heterogeneous VW (VRGQ).
    let devices: Vec<DeviceId> = vec![DeviceId(0), DeviceId(4), DeviceId(8), DeviceId(12)];
    let gpus: Vec<_> = devices.iter().map(|&d| cluster.spec_of(d)).collect();
    let links = VirtualWorker::links(&cluster, &devices);
    let mut rows = Vec::new();
    for (model_name, graph) in [
        ("ResNet-152", hetpipe_model::resnet152(32)),
        ("VGG-19", hetpipe_model::vgg19(32)),
    ] {
        let problem = PartitionProblem::new(&graph, gpus.clone(), links.clone(), 1);
        let dp = PartitionSolver::solve(&problem).expect("feasible");
        let greedy = PartitionSolver::solve_greedy(&problem).expect("feasible");
        // Naive equal-layer-count split.
        let k = 4;
        let per = graph.len() / k;
        let naive_bneck = {
            let model = hetpipe_partition::StageCostModel::new(&problem);
            (0..k)
                .map(|s| {
                    let lo = s * per;
                    let hi = if s == k - 1 {
                        graph.len()
                    } else {
                        (s + 1) * per
                    };
                    model.stage_secs(s, lo..hi)
                })
                .fold(0.0, f64::max)
        };
        rows.push(vec![
            model_name.to_string(),
            format!("{:.3}s", dp.bottleneck_secs),
            format!("{:.3}s", greedy.bottleneck_secs),
            format!("{naive_bneck:.3}s"),
            format!("{:.2}x", naive_bneck / dp.bottleneck_secs),
        ]);
        dump.push(json!({
            "ablation": "partitioner",
            "model": model_name,
            "dp_bottleneck": dp.bottleneck_secs,
            "greedy_bottleneck": greedy.bottleneck_secs,
            "naive_bottleneck": naive_bneck,
        }));
    }
    print_table(
        "Ablation 1: VRGQ pipeline bottleneck by partitioner (Nm=1)",
        &[
            "model",
            "min-max DP",
            "greedy binsearch",
            "equal layers",
            "naive/DP",
        ],
        &rows,
    );

    // --- Ablation 2: wave-aggregated vs per-minibatch pushes.
    let mut rows = Vec::new();
    for (model_name, graph) in [
        ("ResNet-152", hetpipe_model::resnet152(32)),
        ("VGG-19", hetpipe_model::vgg19(32)),
    ] {
        let (nm, report) = run_hetpipe(
            &cluster,
            &graph,
            AllocationPolicy::EqualDistribution,
            Placement::Default,
            0,
            None,
            HORIZON_SECS,
        )
        .expect("builds");
        let per_wave = report.sync_bytes_inter + report.sync_bytes_intra;
        // Per-minibatch pushing would move Nm times the bytes.
        rows.push(vec![
            format!("{model_name} (Nm={nm})"),
            format!("{:.1} GB", per_wave as f64 / 1e9),
            format!("{:.1} GB", per_wave as f64 * nm as f64 / 1e9),
            format!("{nm}x"),
        ]);
        dump.push(json!({
            "ablation": "wave_aggregation",
            "model": model_name,
            "nm": nm,
            "sync_bytes_wave": per_wave,
        }));
    }
    print_table(
        "Ablation 2: sync traffic, wave-aggregated vs per-minibatch pushes (60s, ED)",
        &["model", "WSP waves", "per-minibatch", "saving"],
        &rows,
    );

    // --- Ablation 3: stage-order search inside heterogeneous VWs.
    let mut rows = Vec::new();
    for (model_name, graph) in [
        ("ResNet-152", hetpipe_model::resnet152(32)),
        ("VGG-19", hetpipe_model::vgg19(32)),
    ] {
        let mut ips = Vec::new();
        for order_search in [true, false] {
            let config = SystemConfig {
                policy: AllocationPolicy::HybridDistribution,
                placement: Placement::Default,
                staleness_bound: 0,
                order_search,
                ..SystemConfig::default()
            };
            let sys = HetPipeSystem::build(&cluster, &graph, &config).expect("builds");
            let r = sys.run(SimTime::from_secs(HORIZON_SECS));
            ips.push(r.throughput_images_per_sec());
        }
        rows.push(vec![
            model_name.to_string(),
            format!("{:.0}", ips[0]),
            format!("{:.0}", ips[1]),
            format!("{:+.1}%", (ips[0] / ips[1] - 1.0) * 100.0),
        ]);
        dump.push(json!({
            "ablation": "order_search",
            "model": model_name,
            "with": ips[0],
            "without": ips[1],
        }));
    }
    print_table(
        "Ablation 3: stage-order search (HD policy)",
        &["model", "with search", "without", "gain"],
        &rows,
    );

    maybe_write_json(&json!(dump));
}
