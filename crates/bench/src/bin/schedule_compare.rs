//! Schedule ablation: how much of HetPipe's profile comes from the
//! *schedule*, as opposed to WSP or the partitioner?
//!
//! Sweeps all five pipeline schedules (HetPipe wave, GPipe
//! fill-drain, PipeDream 1F1B, and interleaved 1F1B in both its
//! depth-expanded and composite per-GPU forms) × activation
//! recomputation {off, boundary-only} over {paper testbed,
//! homogeneous TITAN V cluster, whimpy 4×4 RTX 2060 cluster} ×
//! {VGG-19, ResNet-152}, holding the allocation policy, partitioner,
//! and WSP parameters fixed, and reports throughput plus peak per-GPU
//! training memory for each cell — the compute-vs-memory frontier
//! recomputation trades along, and the depth-expanded vs composite
//! interleaved rows measure the fidelity delta of per-GPU composite
//! streams (on the whimpy cluster, ResNet-152 with chunks = 2 is the
//! paper configuration where the composite stream's warmup handover
//! pays off most).
//!
//! Every simulated cell is audited: trace-measured peak activation
//! occupancy must not exceed the declared memory accounting
//! (per stage and per GPU). Any violation fails the run with a
//! non-zero exit code — this is the CI memory-soundness smoke test.
//!
//! Flags:
//! - `--json <path>`: machine-readable dump.
//! - `--trace-out <prefix>`: write one `chrome://tracing` JSON file
//!   per (cluster, model, schedule, recompute) cell, named
//!   `<prefix>-<cluster>-<model>-<schedule>[-ckpt].json`.
//! - `--horizon <secs>`: simulated horizon (default 60).
//! - `--faults <spec>`: add a perturbed column — every cell re-run
//!   under the fault script with the *static* (non-reactive) policy,
//!   so the composite-vs-depth-expanded adaptivity gap (and every
//!   other schedule delta) is a standing measurement under
//!   perturbation too. `<spec>` is a script JSON path, or
//!   `canonical-straggler` (device 0 ×1.3 from 5 s — the acceptance
//!   scenario's shape), or `seeded:<n>` (a deterministic random
//!   script).

use hetpipe_bench::{maybe_write_json, print_table};
use hetpipe_cluster::{Cluster, GpuKind};
use hetpipe_core::WspParams;
use hetpipe_core::{
    AllocationPolicy, HetPipeSystem, OccupancyAudit, Placement, RecomputePolicy, Schedule,
    SystemConfig,
};
use hetpipe_des::SimTime;
use hetpipe_model::{resnet152, vgg19, ModelGraph};
use hetpipe_runtime::{FaultScript, MonitorConfig, Policy, RuntimeParams, ScenarioScript};
use serde_json::json;

fn arg_value(name: &str) -> Option<String> {
    let args: Vec<String> = std::env::args().collect();
    args.iter()
        .position(|a| a == name)
        .and_then(|i| args.get(i + 1).cloned())
}

/// FNV-1a fingerprint of a run's span trace. Sweep cells whose traces
/// are identical (e.g. recompute on vs off where no stage actually
/// checkpoints) serialize once; later cells copy the already-written
/// file instead of re-serializing the same spans.
fn trace_fingerprint(stats: &hetpipe_core::exec::RunStats) -> u64 {
    use hetpipe_core::exec::SpanTag;
    let mut h: u64 = 0xcbf29ce484222325;
    let mut mix = |v: u64| {
        h ^= v;
        h = h.wrapping_mul(0x100000001b3);
    };
    mix(stats.trace.len() as u64);
    for span in stats.trace.spans() {
        mix(span.resource.0 as u64);
        mix(span.start.as_nanos());
        mix(span.end.as_nanos());
        let (kind, a, b, c) = match span.tag {
            SpanTag::Forward { vw, stage, mb } => (1, vw as u64, stage as u64, mb),
            SpanTag::Backward { vw, stage, mb } => (2, vw as u64, stage as u64, mb),
            SpanTag::Recompute { vw, stage, mb } => (3, vw as u64, stage as u64, mb),
            SpanTag::ActTransfer {
                vw,
                stage,
                backward,
            } => (4, vw as u64, stage as u64, backward as u64),
            SpanTag::SyncTransfer { vw, wave, pull } => (5, vw as u64, wave, pull as u64),
        };
        mix(kind);
        mix(a);
        mix(b);
        mix(c);
    }
    h
}

fn homogeneous_testbed() -> Cluster {
    // Four 4-GPU TITAN V nodes: the "rich" cluster HetPipe's whimpy
    // testbed is usually compared against.
    Cluster::testbed_subset(&[GpuKind::TitanV; 4])
}

fn whimpy_testbed() -> Cluster {
    // Four 4-GPU RTX 2060 nodes: the all-whimpy end of the paper's
    // spectrum (ResNet-152 does not even fit one of these GPUs), where
    // pipeline-schedule quality matters most.
    Cluster::testbed_subset(&[GpuKind::Rtx2060; 4])
}

/// Resolves the `--faults` spec: a named canonical script, a seeded
/// generator, or a JSON file path (scenario or legacy fault form).
fn load_script(spec: &str, horizon_secs: f64) -> ScenarioScript {
    // Canonical onsets land 10% into the run (capped at the acceptance
    // scenario's 5 s) so short CI horizons still see the perturbation.
    let onset = (horizon_secs * 0.1).min(5.0);
    match spec {
        "canonical-straggler" => FaultScript::canonical_straggler(0, onset).into(),
        "canonical-gpu-loss" => FaultScript::canonical_gpu_loss(0, onset).into(),
        // Preempt GPU 0 a tenth into the run, re-grant at 60% of the
        // horizon: the elastic acceptance scenario's lease shape.
        "canonical-lease" => ScenarioScript::canonical_lease(0, onset, horizon_secs * 0.6),
        other => {
            if let Some(seed) = other.strip_prefix("seeded:") {
                let seed: u64 = seed.parse().expect("--faults seeded:<n> needs an integer");
                return FaultScript::seeded(seed, horizon_secs, 16, 4, 4).into();
            }
            let text = std::fs::read_to_string(other)
                .unwrap_or_else(|e| panic!("cannot read fault script {other}: {e}"));
            ScenarioScript::from_json(&text)
                .unwrap_or_else(|e| panic!("cannot parse fault script {other}: {e}"))
        }
    }
}

fn main() {
    let horizon = SimTime::from_secs(
        arg_value("--horizon")
            .and_then(|s| s.parse().ok())
            .unwrap_or(60.0),
    );
    let trace_prefix = arg_value("--trace-out");
    let script = arg_value("--faults").map(|spec| load_script(&spec, horizon.as_secs()));

    let clusters: Vec<(&str, Cluster)> = vec![
        ("paper", Cluster::paper_testbed()),
        ("homogeneous", homogeneous_testbed()),
        ("whimpy", whimpy_testbed()),
    ];
    let models: Vec<(&str, ModelGraph)> =
        vec![("VGG-19", vgg19(32)), ("ResNet-152", resnet152(32))];

    let mut dump = Vec::new();
    let mut violations: Vec<String> = Vec::new();
    // trace fingerprint -> path already written (serialize-once dedupe).
    let mut written_traces: std::collections::HashMap<u64, String> =
        std::collections::HashMap::new();
    for (cluster_name, cluster) in &clusters {
        for (model_name, graph) in &models {
            let mut rows = Vec::new();
            for schedule in Schedule::ALL {
                for recompute in RecomputePolicy::ALL {
                    let config = SystemConfig {
                        policy: AllocationPolicy::EqualDistribution,
                        placement: Placement::Local,
                        staleness_bound: 0,
                        order_search: false,
                        schedule,
                        recompute,
                        ..SystemConfig::default()
                    };
                    let ckpt = if recompute.is_on() { "on" } else { "off" };
                    match HetPipeSystem::build(cluster, graph, &config) {
                        Ok(sys) => {
                            let (report, stats) = sys.run_with_stats(horizon);
                            let ips = report.throughput_images_per_sec();
                            // Peak per-GPU memory across every VW, GiB.
                            let peak_bytes = (0..sys.virtual_workers().len())
                                .flat_map(|i| sys.per_gpu_peak_bytes(i))
                                .max()
                                .unwrap_or(0);
                            let peak_gib = peak_bytes as f64 / (1u64 << 30) as f64;
                            // The memory-soundness smoke check: the
                            // trace must stay within the declared
                            // accounting for every stage and GPU.
                            let audit = OccupancyAudit::measure(
                                &stats,
                                sys.virtual_workers(),
                                &schedule,
                                sys.nm(),
                            );
                            let cell = format!(
                                "{cluster_name}/{model_name}/{schedule}/recompute-{recompute}"
                            );
                            for v in audit.violations() {
                                violations.push(format!("{cell}: {v}"));
                            }
                            // The perturbed column: the same cell under
                            // the fault script with the non-reactive
                            // (static) policy — what each schedule's
                            // structure alone does with a straggler.
                            let faulted_ips = script.as_ref().map(|script| {
                                let fr = hetpipe_runtime::run(
                                    RuntimeParams {
                                        cluster,
                                        graph,
                                        vws: sys.virtual_workers().to_vec(),
                                        wsp: WspParams::new(sys.nm(), 0),
                                        placement: Placement::Local,
                                        sync_transfers: true,
                                        schedule,
                                        recompute,
                                        script: script.clone(),
                                        policy: Policy::Static,
                                        monitor: MonitorConfig::default(),
                                        max_reactions: 0,
                                        planner: None,
                                    },
                                    horizon,
                                );
                                if !fr.audits_sound() {
                                    violations
                                        .push(format!("{cell} (faulted): occupancy violation"));
                                }
                                fr.throughput_images_per_sec(0.15)
                            });
                            rows.push(vec![
                                schedule.to_string(),
                                ckpt.into(),
                                sys.nm().to_string(),
                                format!("{ips:.0}"),
                                faulted_ips.map_or("-".into(), |f| format!("{f:.0}")),
                                format!("{peak_gib:.2}"),
                                if audit.is_sound() { "ok" } else { "VIOLATED" }.into(),
                            ]);
                            dump.push(json!({
                                "cluster": *cluster_name,
                                "model": *model_name,
                                "schedule": schedule.to_string(),
                                "recompute": recompute.to_string(),
                                "nm": sys.nm(),
                                "images_per_sec": ips,
                                "faulted_images_per_sec": faulted_ips
                                    .map(serde_json::Value::Number)
                                    .unwrap_or(serde_json::Value::Null),
                                "peak_gpu_bytes": peak_bytes,
                                "pull_wait_secs": report.total_pull_wait_secs(),
                                "memory_sound": audit.is_sound(),
                            }));
                            if let Some(prefix) = &trace_prefix {
                                // "interleaved-1f1b:2" → ':' is not a
                                // valid filename character everywhere.
                                let path = format!(
                                    "{prefix}-{cluster_name}-{}-{}{}.json",
                                    model_name.to_lowercase().replace('-', ""),
                                    schedule.to_string().replace(':', "-"),
                                    if recompute.is_on() { "-ckpt" } else { "" },
                                );
                                // Serialize each distinct trace once:
                                // a cell whose trace is byte-identical
                                // to an earlier cell's (recompute
                                // on/off with no checkpointing stage,
                                // for instance) copies the file
                                // instead of re-serializing.
                                match written_traces.entry(trace_fingerprint(&stats)) {
                                    std::collections::hash_map::Entry::Occupied(prev) => {
                                        std::fs::copy(prev.get(), &path)
                                            .map(|_| ())
                                            .unwrap_or_else(|e| {
                                                eprintln!("cannot copy to {path}: {e}")
                                            });
                                        println!(
                                            "(trace copied to {path}, identical to {})",
                                            prev.get()
                                        );
                                    }
                                    std::collections::hash_map::Entry::Vacant(slot) => {
                                        let pool = &stats.pool;
                                        match stats.trace.write_chrome_trace_file(
                                            &path,
                                            |rid| pool.get(rid).name.clone(),
                                            |tag| tag.label(),
                                            |tag| tag.category(),
                                        ) {
                                            Ok(()) => {
                                                // Record the path only on a
                                                // successful write — later
                                                // identical cells copy this
                                                // file, which must exist.
                                                slot.insert(path.clone());
                                                println!("(trace written to {path})");
                                            }
                                            Err(e) => eprintln!("cannot write {path}: {e}"),
                                        }
                                    }
                                }
                            }
                        }
                        Err(e) => {
                            rows.push(vec![
                                schedule.to_string(),
                                ckpt.into(),
                                "-".into(),
                                e.to_string(),
                                "-".into(),
                                "-".into(),
                                "-".into(),
                            ]);
                            dump.push(json!({
                                "cluster": *cluster_name,
                                "model": *model_name,
                                "schedule": schedule.to_string(),
                                "recompute": recompute.to_string(),
                                "error": e.to_string(),
                            }));
                        }
                    }
                }
            }
            let fault_col = script.as_ref().map_or("img/s@fault(-)".to_string(), |s| {
                format!("img/s@fault({})", s.name)
            });
            print_table(
                &format!(
                    "Schedule comparison ({cluster_name} cluster, {model_name}, ED-local, D=0)"
                ),
                &[
                    "schedule",
                    "ckpt",
                    "Nm",
                    "img/s",
                    &fault_col,
                    "peak GPU GiB",
                    "mem",
                ],
                &rows,
            );
        }
    }

    println!(
        "\nReading guide: the wave schedule trades memory (weight stashing, deep occupancy) \
         for arrival-driven overlap; fill-drain saves weight versions but pays pipeline \
         bubbles; 1F1B bounds memory by depth and double-buffers weights (PipeDream-2BW: one \
         shadow copy instead of one per in-flight minibatch); interleaving shrinks bubbles \
         at the cost of more boundary traffic. The two interleaved rows measure stream \
         fidelity: `interleaved-1f1b` executes one composite per-GPU stream (Megatron's \
         actual chunk-group order — warmup hands the GPU over after one chunk group), while \
         `interleaved-1f1b-depth` is the depth-expanded variant whose co-located chunks \
         merge by arrival order. Boundary-only recomputation pays one forward re-run per \
         backward to shrink the activation stash — on memory-bound clusters that buys a \
         deeper feasible Nm — and is skipped at window-1 stages where it reclaims nothing. \
         The `mem` column is the trace-audited measured ≤ declared occupancy invariant."
    );
    maybe_write_json(&json!(dump));

    if !violations.is_empty() {
        eprintln!("\nMEMORY SOUNDNESS VIOLATIONS ({}):", violations.len());
        for v in &violations {
            eprintln!("  {v}");
        }
        std::process::exit(1);
    }
}
