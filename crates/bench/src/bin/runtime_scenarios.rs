//! Elastic scenario chaos gate: seeded randomized scenario scripts —
//! lease preemption/re-grant pairs, GPU slowdowns, link degradations —
//! on the acceptance configuration (whimpy 4×RTX 2060, ResNet-152),
//! with chrome-trace export.
//!
//! Checks (non-zero exit on violation — the CI contract):
//!
//! 1. **Zero-scenario parity**: under the empty scenario every
//!    policy's merged trace is bit-identical to the plain one-shot
//!    executor.
//! 2. **Per-epoch occupancy audits**: every committed plan segment of
//!    every scenario run satisfies measured ≤ declared.
//! 3. **Liveness**: every scenario run keeps completing minibatches,
//!    including after the last lease transition has settled (the
//!    chaos generator guarantees every preemption is re-granted by
//!    95% of the horizon and at least two GPUs stay available).
//! 4. **Canonical-lease sanity**: `Replan` completes at least as much
//!    as `Static` on the canonical grant → preempt → re-grant trace
//!    (the ≥ 15% acceptance bar itself is pinned in
//!    `tests/runtime_scenarios.rs`).
//!
//! Flags:
//! - `--seeds <n>`: number of chaos scripts (default 32).
//! - `--horizon <secs>`: simulated horizon (default 60).
//! - `--trace-out <prefix>`: write chrome traces for the canonical
//!   lease cells and the first few chaos seeds.

use hetpipe_bench::print_table;
use hetpipe_cluster::{Cluster, DeviceId, GpuKind};
use hetpipe_core::exec::{self, ExecParams};
use hetpipe_core::pserver::{Placement, ShardMap};
use hetpipe_core::{RecomputePolicy, Schedule, VirtualWorker, WspParams};
use hetpipe_des::SimTime;
use hetpipe_fleet::trace_fingerprint;
use hetpipe_partition::{PartitionProblem, PartitionSolver};
use hetpipe_runtime::{self as runtime, MonitorConfig, Policy, RuntimeParams, ScenarioScript};

fn arg_value(name: &str) -> Option<String> {
    let args: Vec<String> = std::env::args().collect();
    args.iter()
        .position(|a| a == name)
        .and_then(|i| args.get(i + 1).cloned())
}

fn main() {
    let horizon_secs: f64 = arg_value("--horizon")
        .and_then(|s| s.parse().ok())
        .unwrap_or(60.0);
    let horizon = SimTime::from_secs(horizon_secs);
    let seeds: u64 = arg_value("--seeds")
        .and_then(|s| s.parse().ok())
        .unwrap_or(32);
    let trace_prefix = arg_value("--trace-out");

    // The acceptance configuration: one whimpy 4×RTX 2060 node,
    // ResNet-152, boundary-only recompute.
    let cluster = Cluster::testbed_subset(&[GpuKind::Rtx2060; 4]);
    let graph = hetpipe_model::resnet152(32);
    let devices: Vec<_> = (0..4).map(DeviceId).collect();
    let recompute = RecomputePolicy::BoundaryOnly;
    let nm = 4;
    let schedule = Schedule::HetPipeWave;
    let gpus: Vec<_> = devices.iter().map(|&d| cluster.spec_of(d)).collect();
    let links = VirtualWorker::links(&cluster, &devices);
    let plan = PartitionSolver::solve(
        &PartitionProblem::with_schedule(&graph, gpus, links, nm, schedule)
            .with_recompute(recompute),
    )
    .expect("whimpy ResNet-152 must be feasible with recompute");
    let vw = VirtualWorker {
        index: 0,
        devices: devices.clone(),
        plan,
        nm,
    };

    let run_scenario = |script: ScenarioScript, policy: Policy| {
        runtime::run(
            RuntimeParams {
                cluster: &cluster,
                graph: &graph,
                vws: vec![vw.clone()],
                wsp: WspParams::new(nm, 0),
                placement: Placement::Default,
                sync_transfers: false,
                schedule,
                recompute,
                script,
                policy,
                monitor: MonitorConfig::default(),
                max_reactions: 8,
                planner: None,
            },
            horizon,
        )
    };

    let mut failures: Vec<String> = Vec::new();
    let mut rows = Vec::new();

    // ---- 1. Zero-scenario parity against the one-shot executor. ----
    let shards = ShardMap::build(Placement::Default, &graph, &cluster, &vw);
    let vws = vec![vw.clone()];
    let plain = exec::run(
        ExecParams {
            cluster: &cluster,
            graph: &graph,
            vws: &vws,
            wsp: WspParams::new(nm, 0),
            shards: &shards,
            sync_transfers: false,
            schedule,
            recompute,
        },
        horizon,
    );
    // The golden fingerprint is hoisted out of the loop: the oracle
    // trace is the same for every policy (and every chaos seed), so
    // it reduces to a hash once and each run compares against that.
    let golden_fp = trace_fingerprint(plain.trace.spans());
    for policy in [
        Policy::Static,
        Policy::SkipStraggler { window: 8 },
        Policy::Replan,
    ] {
        let report = run_scenario(ScenarioScript::none(), policy);
        if trace_fingerprint(report.trace.spans()) != golden_fp {
            failures.push(format!(
                "none/{}: zero-scenario trace diverged from the one-shot executor",
                policy.name()
            ));
        }
    }

    // ---- 4. Canonical lease: Replan >= Static, plus the table. ----
    let onset = (horizon_secs * 0.1).min(8.0);
    let regrant = horizon_secs * 0.5;
    let lease = ScenarioScript::canonical_lease(2, onset, regrant);
    let mut lease_static = None;
    for policy in [Policy::Static, Policy::Replan] {
        let report = run_scenario(lease.clone(), policy);
        let cell = format!("{}/{}", lease.name, policy.name());
        if !report.audits_sound() {
            failures.push(format!("{cell}: per-epoch occupancy audit violated"));
        }
        let completed = report.total_completed();
        match policy {
            Policy::Static => lease_static = Some(completed),
            Policy::Replan => {
                if let Some(st) = lease_static {
                    if completed < st {
                        failures.push(format!(
                            "{cell}: replan completed {completed} < static {st}"
                        ));
                    }
                }
            }
            _ => {}
        }
        rows.push(vec![
            lease.name.clone(),
            policy.name().into(),
            completed.to_string(),
            report.epochs.len().to_string(),
            report.signals.len().to_string(),
            if report.audits_sound() {
                "ok"
            } else {
                "VIOLATED"
            }
            .into(),
            "-".into(),
        ]);
        if let Some(prefix) = &trace_prefix {
            let path = format!("{prefix}-{}-{}.json", lease.name, policy.name());
            match report.write_chrome_trace(&path) {
                Ok(()) => println!("(trace written to {path})"),
                Err(e) => eprintln!("cannot write {path}: {e}"),
            }
        }
    }

    // ---- 2 + 3. Seeded chaos sweep under Replan. ----
    let hysteresis = MonitorConfig::default().lease_hysteresis_secs;
    for seed in 1..=seeds {
        let script = ScenarioScript::chaos(seed, horizon_secs, 4, 1, 3);
        let events = script.events.len();
        let report = run_scenario(script.clone(), Policy::Replan);
        let cell = format!("{}/replan", script.name);
        if !report.audits_sound() {
            failures.push(format!("{cell}: per-epoch occupancy audit violated"));
        }
        let completed = report.total_completed();
        if completed == 0 {
            failures.push(format!("{cell}: no minibatch ever completed"));
        }
        // Tail liveness: once the last *preemption* has settled (plus
        // the controller's hysteresis and a splice's worth of slack),
        // the pipeline must be completing again — a preempted GPU must
        // never wedge the survivors. Preemptions are the wedge risk;
        // re-grants only ever add capacity.
        let settle = script
            .lease_transitions()
            .iter()
            .filter(|t| !t.available)
            .map(|t| t.at)
            .max()
            .map(|t| t + SimTime::from_secs(hysteresis + 3.0));
        let live = match settle {
            Some(s) if s < horizon => {
                let after = report.completions[0].iter().filter(|&&t| t >= s).count();
                if after == 0 {
                    failures.push(format!(
                        "{cell}: no completions after leases settled at {:.1}s",
                        s.as_secs()
                    ));
                }
                if after > 0 {
                    "live"
                } else {
                    "WEDGED"
                }
            }
            _ => "n/a",
        };
        rows.push(vec![
            format!("chaos-{seed}"),
            "replan".into(),
            completed.to_string(),
            report.epochs.len().to_string(),
            report.signals.len().to_string(),
            if report.audits_sound() {
                "ok"
            } else {
                "VIOLATED"
            }
            .into(),
            format!("{live} ({events} ev)"),
        ]);
        if let Some(prefix) = &trace_prefix {
            if seed <= 4 {
                let path = format!("{prefix}-chaos-{seed}-replan.json");
                match report.write_chrome_trace(&path) {
                    Ok(()) => println!("(trace written to {path})"),
                    Err(e) => eprintln!("cannot write {path}: {e}"),
                }
            }
        }
    }

    print_table(
        &format!(
            "Elastic scenario chaos gate (whimpy 4xRTX 2060, ResNet-152, Nm={nm}, \
             {seeds} seeds, horizon {horizon})"
        ),
        &[
            "script", "policy", "mb done", "epochs", "signals", "audit", "liveness",
        ],
        &rows,
    );
    println!(
        "\nReading guide: every chaos script mixes lease preemption/re-grant pairs with \
         slowdown faults under the invariants the generator enforces (GPU 0 is never \
         preempted, at least two GPUs stay available, every preemption is re-granted by \
         95% of the horizon). `replan` evicts preempted GPUs at wave boundaries and \
         re-admits them after the lease hysteresis; per-epoch occupancy audits keep the \
         measured <= declared memory invariant live across every splice."
    );

    if !failures.is_empty() {
        eprintln!("\nSCENARIO CHAOS FAILURES ({}):", failures.len());
        for f in &failures {
            eprintln!("  {f}");
        }
        std::process::exit(1);
    }
}
