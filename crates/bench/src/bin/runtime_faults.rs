//! Fault-aware runtime smoke: the canonical straggler and GPU-loss
//! scripts on the acceptance configuration (whimpy 4×RTX 2060,
//! ResNet-152), across all three reactive policies, with chrome-trace
//! export.
//!
//! Checks (non-zero exit on violation — the CI contract):
//!
//! 1. **Zero-fault parity**: under the empty script every policy's
//!    merged trace is bit-identical to the plain one-shot executor.
//! 2. **Per-epoch occupancy audits**: every committed plan segment of
//!    every cell satisfies measured ≤ declared.
//! 3. **Reaction sanity**: under the canonical straggler, `Replan`
//!    completes at least as much as `Static` (the ≥ 15% acceptance
//!    bar itself is pinned in `tests/runtime_faults.rs`).
//!
//! Flags:
//! - `--horizon <secs>`: simulated horizon (default 40).
//! - `--trace-out <prefix>`: write one chrome trace per
//!   (script, policy) cell, fault edges / signals / splices included
//!   as instant markers.

use hetpipe_bench::print_table;
use hetpipe_cluster::{Cluster, DeviceId, GpuKind};
use hetpipe_core::exec::{self, ExecParams};
use hetpipe_core::pserver::{Placement, ShardMap};
use hetpipe_core::{RecomputePolicy, Schedule, VirtualWorker, WspParams};
use hetpipe_des::SimTime;
use hetpipe_partition::{PartitionProblem, PartitionSolver};
use hetpipe_runtime::{self as runtime, FaultScript, MonitorConfig, Policy, RuntimeParams};

fn arg_value(name: &str) -> Option<String> {
    let args: Vec<String> = std::env::args().collect();
    args.iter()
        .position(|a| a == name)
        .and_then(|i| args.get(i + 1).cloned())
}

fn main() {
    let horizon = SimTime::from_secs(
        arg_value("--horizon")
            .and_then(|s| s.parse().ok())
            .unwrap_or(40.0),
    );
    let trace_prefix = arg_value("--trace-out");

    // The acceptance configuration: one whimpy 4×RTX 2060 node,
    // ResNet-152, boundary-only recompute (the lever that buys the
    // 6 GB GPUs a balanced partition), standalone measurement mode.
    let cluster = Cluster::testbed_subset(&[GpuKind::Rtx2060; 4]);
    let graph = hetpipe_model::resnet152(32);
    let devices: Vec<_> = (0..4).map(DeviceId).collect();
    let recompute = RecomputePolicy::BoundaryOnly;
    let nm = 4;
    let schedule = Schedule::HetPipeWave;
    let gpus: Vec<_> = devices.iter().map(|&d| cluster.spec_of(d)).collect();
    let links = VirtualWorker::links(&cluster, &devices);
    let plan = PartitionSolver::solve(
        &PartitionProblem::with_schedule(&graph, gpus, links, nm, schedule)
            .with_recompute(recompute),
    )
    .expect("whimpy ResNet-152 must be feasible with recompute");
    let vw = VirtualWorker {
        index: 0,
        devices: devices.clone(),
        plan,
        nm,
    };

    let onset = (horizon.as_secs() * 0.125).min(5.0);
    let scripts = vec![
        FaultScript::none(),
        FaultScript::canonical_straggler(0, onset),
        FaultScript::canonical_gpu_loss(2, onset),
    ];
    let policies = [
        Policy::Static,
        Policy::SkipStraggler { window: 8 },
        Policy::Replan,
    ];

    // The plain one-shot run: the zero-fault parity oracle.
    let shards = ShardMap::build(Placement::Default, &graph, &cluster, &vw);
    let vws = vec![vw.clone()];
    let plain = exec::run(
        ExecParams {
            cluster: &cluster,
            graph: &graph,
            vws: &vws,
            wsp: WspParams::new(nm, 0),
            shards: &shards,
            sync_transfers: false,
            schedule,
            recompute,
        },
        horizon,
    );

    let mut failures: Vec<String> = Vec::new();
    let mut rows = Vec::new();
    let mut static_straggler_completed = None;
    for script in &scripts {
        for policy in policies {
            let report = runtime::run(
                RuntimeParams {
                    cluster: &cluster,
                    graph: &graph,
                    vws: vec![vw.clone()],
                    wsp: WspParams::new(nm, 0),
                    placement: Placement::Default,
                    sync_transfers: false,
                    schedule,
                    recompute,
                    script: script.clone().into(),
                    policy,
                    monitor: MonitorConfig::default(),
                    max_reactions: 8,
                    planner: None,
                },
                horizon,
            );
            let cell = format!("{}/{}", script.name, policy.name());
            if !report.audits_sound() {
                failures.push(format!("{cell}: per-epoch occupancy audit violated"));
            }
            if script.faults.is_empty() {
                let identical = plain.trace.len() == report.trace.len()
                    && plain
                        .trace
                        .spans()
                        .iter()
                        .zip(report.trace.spans())
                        .all(|(a, b)| a == b);
                if !identical {
                    failures.push(format!(
                        "{cell}: zero-fault trace diverged from the one-shot executor"
                    ));
                }
            }
            let completed = report.total_completed();
            if script.name == "canonical-straggler" {
                match policy {
                    Policy::Static => static_straggler_completed = Some(completed),
                    Policy::Replan => {
                        if let Some(st) = static_straggler_completed {
                            if completed < st {
                                failures.push(format!(
                                    "{cell}: replan completed {completed} < static {st}"
                                ));
                            }
                        }
                    }
                    _ => {}
                }
            }
            rows.push(vec![
                script.name.clone(),
                policy.name().into(),
                completed.to_string(),
                format!("{:.0}", report.throughput_images_per_sec(0.15)),
                report.epochs.len().to_string(),
                report.signals.len().to_string(),
                if report.audits_sound() {
                    "ok"
                } else {
                    "VIOLATED"
                }
                .into(),
            ]);
            if let Some(prefix) = &trace_prefix {
                let path = format!("{prefix}-{}-{}.json", script.name, policy.name());
                match report.write_chrome_trace(&path) {
                    Ok(()) => println!("(trace written to {path})"),
                    Err(e) => eprintln!("cannot write {path}: {e}"),
                }
            }
        }
    }

    print_table(
        &format!(
            "Fault-aware runtime (whimpy 4xRTX 2060, ResNet-152, Nm={nm}, \
             recompute on, horizon {horizon})"
        ),
        &[
            "script", "policy", "mb done", "img/s", "epochs", "signals", "audit",
        ],
        &rows,
    );
    println!(
        "\nReading guide: `static` rides every fault out; `skip-straggler` lets a blocked \
         composite GPU stream serve ready backwards out of line (composite schedules only — \
         identical to static here on the wave schedule); `replan` re-partitions from observed \
         costs at the next wave boundary (and drops dead GPUs, shrinking the pipeline). \
         Epochs > 1 means the controller spliced; per-epoch occupancy audits keep the \
         measured <= declared memory invariant live under perturbation."
    );

    if !failures.is_empty() {
        eprintln!("\nRUNTIME SMOKE FAILURES ({}):", failures.len());
        for f in &failures {
            eprintln!("  {f}");
        }
        std::process::exit(1);
    }
}
