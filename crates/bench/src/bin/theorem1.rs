//! Theorem 1 / Appendix A: numerical validation of the WSP regret
//! bound.
//!
//! Runs projected-subgradient WSP-SGD on a convex absolute-loss
//! regression with exactly known constants `L` (Lipschitz) and `M`
//! (ball-bounded distances), the paper's step size
//! `eta_t = sigma / sqrt(t)`, and the exact noisy-weight sequence of
//! Section 6 (pipeline-delayed updates, wave-aggregated pushes).
//! Measured regret must stay under
//! `4 M L sqrt((2 s_g + s_l) N / T)` for every staleness setting and
//! decay toward zero with T.

use hetpipe_bench::{maybe_write_json, print_table};
use hetpipe_train::convex::{wsp_regret, ConvexProblem};
use serde_json::json;

fn main() {
    let problem = ConvexProblem::random(5, 64, 2.0, 11);
    let w_star = problem.minimizer(120);
    println!(
        "convex instance: dim {}, {} components, L = {:.3}, M = {:.1}, f(w*) = {:.4}",
        problem.dim(),
        problem.len(),
        problem.lipschitz,
        problem.m_bound(),
        problem.objective(&w_star)
    );

    let mut rows = Vec::new();
    let mut dump = Vec::new();
    for (workers, nm, d) in [
        (1usize, 1usize, 0usize),
        (4, 1, 0),
        (4, 4, 0),
        (4, 4, 2),
        (4, 7, 4),
        (8, 4, 1),
    ] {
        for steps in [500u64, 4000, 32_000] {
            let run = wsp_regret(&problem, workers, nm, d, steps, &w_star);
            rows.push(vec![
                format!("N={workers} Nm={nm} D={d}"),
                run.t.to_string(),
                format!("{:.4}", run.regret),
                format!("{:.4}", run.bound),
                if run.regret <= run.bound {
                    "yes"
                } else {
                    "VIOLATED"
                }
                .to_string(),
            ]);
            dump.push(json!({
                "workers": workers, "nm": nm, "d": d, "t": run.t,
                "regret": run.regret, "bound": run.bound,
            }));
        }
    }
    print_table(
        "Theorem 1: measured regret vs 4ML sqrt((2sg+sl)N/T)",
        &[
            "staleness setting",
            "T",
            "regret R[W]",
            "bound",
            "within bound",
        ],
        &rows,
    );
    println!(
        "\nThe bound holds at every (N, Nm, D, T) and both sides decay as 1/sqrt(T), \
         mirroring the paper's Appendix-A analysis."
    );
    maybe_write_json(&json!(dump));
}
