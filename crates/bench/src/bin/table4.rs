//! Table 4: throughput as whimpy GPUs are added — Horovod vs HetPipe
//! (ED-local) over the GPU sets 4[V], 8[VR], 12[VRQ], 16[VRQG].
//!
//! HetPipe uses four virtual workers except on the 4-GPU set, where a
//! single VVVV virtual worker runs (matching the paper's setup). The
//! parenthesized number reproduces the paper's "total number of
//! concurrent minibatches" = virtual workers x Nm.
//!
//! Expected shape (paper): both systems speed up with more GPUs;
//! HetPipe beats Horovod at every rung (VGG-19: 164->339 vs 300->606;
//! ResNet-152: 233->415 then X vs 256->580); ResNet-152 Horovod cannot
//! use the 16-GPU set (RTX 2060s cannot hold the model) while HetPipe
//! can — whimpy GPUs still contribute.

use hetpipe_allreduce::HorovodBaseline;
use hetpipe_bench::{
    fmt_ips, maybe_write_json, print_table, run_hetpipe, table4_sets, HORIZON_SECS,
};
use hetpipe_cluster::Cluster;
use hetpipe_core::{AllocationPolicy, Placement};
use serde_json::json;

fn main() {
    let mut dump = Vec::new();
    for (model_name, graph) in [
        ("VGG-19", hetpipe_model::vgg19(32)),
        ("ResNet-152", hetpipe_model::resnet152(32)),
    ] {
        let mut rows = Vec::new();
        for (label, kinds) in table4_sets() {
            let cluster = Cluster::testbed_subset(&kinds);

            let horovod_cell = match HorovodBaseline::evaluate_all(&cluster, &graph) {
                Ok(h) if h.excluded.is_empty() => fmt_ips(h.images_per_sec),
                // The paper's "X": the set contains GPUs that cannot
                // hold the model, so Horovod cannot use the whole set.
                Ok(h) => format!("X ({} usable)", h.devices.len()),
                Err(_) => "X".to_string(),
            };

            // HetPipe: ED-local; one VW on the single-node set.
            let policy = if cluster.node_count() == 1 {
                AllocationPolicy::Custom(vec![cluster.devices().collect()])
            } else {
                AllocationPolicy::EqualDistribution
            };
            let vws = if cluster.node_count() == 1 { 1 } else { 4 };
            let hetpipe_cell = match run_hetpipe(
                &cluster,
                &graph,
                policy,
                Placement::Local,
                0,
                None,
                HORIZON_SECS,
            ) {
                Ok((nm, report)) => {
                    let ips = report.throughput_images_per_sec();
                    dump.push(json!({
                        "model": model_name,
                        "set": label,
                        "hetpipe_images_per_sec": ips,
                        "nm": nm,
                        "total_concurrent": nm * vws,
                    }));
                    format!("{} ({})", fmt_ips(ips), nm * vws)
                }
                Err(e) => e,
            };
            rows.push(vec![label.to_string(), horovod_cell, hetpipe_cell]);
        }
        print_table(
            &format!("Table 4 ({model_name}): adding whimpy GPUs (img/s, HetPipe = ED-local)"),
            &[
                "GPU set",
                "Horovod",
                "HetPipe (total concurrent minibatches)",
            ],
            &rows,
        );
    }
    println!(
        "\nPaper reference: VGG-19 Horovod 164/205/265/339 vs HetPipe 300(5)/530(16)/572(20)/606(20); \
         ResNet-152 Horovod 233/353/415/X vs HetPipe 256(5)/516(20)/538(24)/580(28)."
    );
    maybe_write_json(&json!(dump));
}
