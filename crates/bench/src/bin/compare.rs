//! Table 2 + Section 2's synchronization-model taxonomy: HetPipe vs
//! GPipe vs PipeDream qualitatively, and BSP/ASP/SSP/WSP statistical
//! efficiency measured with the real threaded trainer.

use hetpipe_bench::{maybe_write_json, print_table};
use hetpipe_train::{train, Dataset, Mode, TrainConfig};
use serde_json::json;

fn main() {
    print_table(
        "Table 2: HetPipe vs GPipe vs PipeDream",
        &["dimension", "GPipe", "PipeDream", "HetPipe"],
        &[
            vec![
                "Heterogeneous cluster support".into(),
                "No".into(),
                "No".into(),
                "Yes".into(),
            ],
            vec![
                "Target large model training".into(),
                "Yes".into(),
                "No".into(),
                "Yes".into(),
            ],
            vec![
                "Number of (virtual) workers".into(),
                "1".into(),
                "1".into(),
                "n".into(),
            ],
            vec![
                "Data parallelism".into(),
                "Extensible".into(),
                "Partition".into(),
                "Virtual workers".into(),
            ],
            vec![
                "Proof of convergence".into(),
                "Analytical".into(),
                "Empirical".into(),
                "Analytical".into(),
            ],
        ],
    );

    // Statistical efficiency per update of the four synchronization
    // models, measured on a real threaded run (Section 2.2 taxonomy).
    let dataset = Dataset::teacher(24, 8, 32, 8192, 2048, 7);
    let total: u64 = 16_000;
    let mut rows = Vec::new();
    let mut dump = Vec::new();
    for (label, mode) in [
        ("BSP", Mode::Bsp),
        ("ASP", Mode::Asp),
        ("SSP (s=3)", Mode::Ssp { s: 3 }),
        ("WSP (Nm=4, D=0)", Mode::Wsp { nm: 4, d: 0 }),
        ("WSP (Nm=4, D=4)", Mode::Wsp { nm: 4, d: 4 }),
    ] {
        let config = TrainConfig {
            mode,
            workers: 4,
            dims: vec![24, 64, 32, 8],
            batch: 32,
            lr: 0.03,
            momentum: 0.0,
            steps_per_worker: total / 4,
            seed: 42,
            snapshot_every: 0,
        };
        let out = train(&dataset, &config);
        rows.push(vec![
            label.to_string(),
            format!("{:.3}", out.final_accuracy),
            out.max_clock_distance.to_string(),
        ]);
        dump.push(json!({
            "mode": label,
            "final_accuracy": out.final_accuracy,
            "max_clock_distance": out.max_clock_distance,
            "updates": out.total_updates,
        }));
    }
    print_table(
        &format!("Synchronization models: accuracy after {total} real updates (4 workers)"),
        &["model", "final accuracy", "max clock distance"],
        &rows,
    );
    println!(
        "\nExpected: BSP and WSP(D=0) comparable; WSP tolerates pipelining staleness; \
         ASP unbounded distance; SSP/WSP distances within their bounds."
    );
    maybe_write_json(&json!(dump));
}
