//! Figure 5: ResNet-152 top-1 accuracy vs wall-clock time — Horovod
//! (12 GPUs) vs HetPipe (12 GPUs) vs HetPipe (16 GPUs), D = 0.
//!
//! Composition methodology (see DESIGN.md): the discrete-event
//! simulator provides *updates per second* for each configuration on
//! the simulated testbed; the real threaded trainer provides *accuracy
//! per update* under the same synchronization semantics (BSP with 12
//! workers for Horovod, WSP with 4 pipelined virtual workers for
//! HetPipe). `accuracy(t) = curve(throughput x t)`.
//!
//! Expected shape (paper): HetPipe-12 reaches the target ~35% faster
//! than Horovod-12; adding 4 whimpy RTX 2060s (HetPipe-16) makes it
//! ~39% faster (to 74% top-1 on ImageNet).

use hetpipe_allreduce::HorovodBaseline;
use hetpipe_bench::{maybe_write_json, print_table, run_hetpipe, HORIZON_SECS};
use hetpipe_cluster::{Cluster, GpuKind};
use hetpipe_core::convergence::{time_to_accuracy, AccuracyCurve};
use hetpipe_core::{AllocationPolicy, Placement};
use hetpipe_train::{train, Dataset, Mode, TrainConfig};
use serde_json::json;

/// Targets to report (the paper uses a single 74% top-1 target; we
/// report several to show where the wall-clock advantage holds on the
/// synthetic task).
const TARGETS: [f64; 3] = [0.50, 0.60, 0.70];
const TOTAL_UPDATES: u64 = 16_000;

fn curve_of(mode: Mode, workers: usize, dataset: &Dataset) -> AccuracyCurve {
    let config = TrainConfig {
        mode,
        workers,
        dims: vec![24, 64, 32, 8],
        batch: 32,
        lr: 0.03,
        momentum: 0.0,
        steps_per_worker: TOTAL_UPDATES / workers as u64,
        seed: 42,
        snapshot_every: 100,
    };
    let out = train(dataset, &config);
    AccuracyCurve::new(out.curve_steps, out.curve_accuracy)
}

fn main() {
    let dataset = Dataset::teacher(24, 8, 32, 8192, 2048, 7);

    // Throughputs (updates/second) from the simulator.
    let cluster16 = Cluster::paper_testbed();
    let cluster12 =
        Cluster::testbed_subset(&[GpuKind::TitanV, GpuKind::TitanRtx, GpuKind::QuadroP4000]);

    let graph = hetpipe_model::resnet152(32);
    let horovod = HorovodBaseline::evaluate_all(&cluster16, &graph)
        .expect("Horovod runs on the 12 capable GPUs");
    let horovod_ups = horovod.images_per_sec / 32.0;

    let (nm12, rep12) = run_hetpipe(
        &cluster12,
        &graph,
        AllocationPolicy::EqualDistribution,
        Placement::Local,
        0,
        None,
        HORIZON_SECS,
    )
    .expect("HetPipe-12 builds");
    let (nm16, rep16) = run_hetpipe(
        &cluster16,
        &graph,
        AllocationPolicy::EqualDistribution,
        Placement::Local,
        0,
        None,
        HORIZON_SECS,
    )
    .expect("HetPipe-16 builds");

    // Statistical efficiency from the real threaded trainer.
    let bsp_curve = curve_of(Mode::Bsp, 12, &dataset);
    let wsp12_curve = curve_of(Mode::Wsp { nm: nm12, d: 0 }, 4, &dataset);
    let wsp16_curve = curve_of(Mode::Wsp { nm: nm16, d: 0 }, 4, &dataset);

    let series = [
        ("Horovod (12 GPUs)", horovod_ups, &bsp_curve),
        (
            "HetPipe (12 GPUs)",
            rep12.throughput_minibatches_per_sec(),
            &wsp12_curve,
        ),
        (
            "HetPipe (16 GPUs)",
            rep16.throughput_minibatches_per_sec(),
            &wsp16_curve,
        ),
    ];

    let mut rows = Vec::new();
    let mut dump = Vec::new();
    for (label, ups, curve) in series {
        let final_acc = *curve.accuracy.last().expect("non-empty curve");
        let mut cells = vec![
            label.to_string(),
            format!("{ups:.1}"),
            format!("{final_acc:.3}"),
        ];
        let mut times = Vec::new();
        for target in TARGETS {
            let t = time_to_accuracy(ups, curve, target);
            let h = time_to_accuracy(horovod_ups, &bsp_curve, target);
            let cell = match (t, h) {
                (Some(t), Some(h)) => format!("{t:.0}s ({:+.0}%)", (1.0 - t / h) * 100.0),
                (Some(t), None) => format!("{t:.0}s"),
                _ => "never".to_string(),
            };
            cells.push(cell);
            times.push(t);
        }
        rows.push(cells);
        dump.push(json!({
            "config": label,
            "updates_per_sec": ups,
            "final_accuracy": final_acc,
            "times_to_targets": times,
            "targets": TARGETS,
        }));
    }
    print_table(
        "Figure 5 (ResNet-152 convergence): time to target (vs Horovod)",
        &[
            "configuration",
            "updates/s",
            "final acc",
            "to 50%",
            "to 60%",
            "to 70%",
        ],
        &rows,
    );
    println!(
        "\n(nm12 = {nm12}, nm16 = {nm16}.) Paper reference: HetPipe-12 converges ~35% faster \
         than Horovod-12, HetPipe-16 ~39% faster (to 74% top-1 on ImageNet)."
    );
    maybe_write_json(&json!(dump));
}
