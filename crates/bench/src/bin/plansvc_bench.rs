//! The plan service's perf harness: cold vs cache-hit vs warm-miss
//! latency histograms, and sustained plans/sec under concurrent
//! clients — with in-bin parity checks against a cold solve oracle.
//!
//! Three per-request latency populations, sampled per replan instance
//! on a running [`PlanService`]:
//!
//! - **cold** — cache cleared before every request, so each reply is
//!   a from-scratch solve plus the full request/reply round-trip;
//! - **hit** — the same key requested repeatedly; served from the
//!   client's read-through fast path against the shared cache;
//! - **warm** — a nominal plan seeds the family, then each request
//!   carries a fresh derate vector: every reply is a `WarmMiss`
//!   (neighbor-seeded [`PartitionSolver::solve_warm`]) paying the
//!   same round-trip as cold.
//!
//! Then a throughput phase drives 1 / 8 / 64 concurrent clients with
//! a deterministic 90% hot-key / 10% fresh-derate mix and reports
//! sustained plans/sec. **Every** reply from both phases is checked
//! bit-identical against a cold oracle solve of its instance; any
//! parity violation — or a warm-miss median slower than cold — exits
//! non-zero (the CI smoke contract). The measured section is merged
//! into `BENCH_planner.json` under `"plansvc"` (the file's other
//! sections are preserved).
//!
//! Flags: `--quick` (fewer samples, CI smoke), `--out <path>`
//! (default `BENCH_planner.json`).

use hetpipe_cluster::{Cluster, DeviceId, GpuKind};
use hetpipe_core::VirtualWorker;
use hetpipe_model::ModelGraph;
use hetpipe_partition::{PartitionPlan, PartitionProblem, PartitionSolver};
use hetpipe_plansvc::{Catalog, PlanKey, PlanRequest, PlanService, Provenance};
use hetpipe_schedule::{RecomputePolicy, Schedule};
use serde_json::{json, Value};
use std::collections::HashMap;
use std::time::Instant;

/// One benchmarked planning instance.
struct Instance {
    label: &'static str,
    cluster: Cluster,
    graph: ModelGraph,
    model_fp: u64,
    cluster_fp: u64,
    devices: Vec<DeviceId>,
    nm: usize,
    schedule: Schedule,
    recompute: RecomputePolicy,
    /// Counted toward the warm-vs-cold acceptance ratio (the replan
    /// instances: ResNet-depth solves where online re-planning runs).
    replan_acceptance: bool,
}

impl Instance {
    fn request(&self, derates: Vec<f64>) -> PlanRequest {
        PlanRequest {
            model_fp: self.model_fp,
            cluster_fp: self.cluster_fp,
            devices: self.devices.clone(),
            nm: self.nm,
            schedule: self.schedule,
            recompute: self.recompute,
            observed_derates: derates,
        }
    }

    /// The `i`-th observation of a drifting straggler on stage 0 —
    /// the replan stream the runtime controller emits as its EWMA
    /// derate estimate evolves. Distinct `i` ⇒ distinct key, and each
    /// key's nearest family neighbor (the previous observation) is a
    /// near-optimal warm-start incumbent, as in a real replan run.
    fn derate_vector(&self, i: usize) -> Vec<f64> {
        let mut v = vec![1.0; self.devices.len()];
        v[0] = 1.05 + 0.005 * (i as f64);
        v
    }
}

/// Cold oracle: a from-scratch solve of exactly the instance the
/// service builds from a request.
fn cold_oracle(inst: &Instance, derates: &[f64]) -> Result<PartitionPlan, String> {
    // An empty derate vector means nominal, as in the service.
    let nominal = vec![1.0; inst.devices.len()];
    let derates = if derates.is_empty() {
        &nominal
    } else {
        derates
    };
    let gpus = inst
        .devices
        .iter()
        .zip(derates)
        .map(|(&d, &r)| inst.cluster.spec_of(d).derated(r.max(1.0)))
        .collect();
    let links = VirtualWorker::links(&inst.cluster, &inst.devices);
    PartitionSolver::solve(
        &PartitionProblem::with_schedule(&inst.graph, gpus, links, inst.nm, inst.schedule)
            .with_recompute(inst.recompute),
    )
    .map_err(|e| format!("{e}"))
}

fn percentile(sorted: &[f64], q: f64) -> f64 {
    if sorted.is_empty() {
        return f64::NAN;
    }
    let idx = ((sorted.len() - 1) as f64 * q).round() as usize;
    sorted[idx]
}

/// Power-of-two microsecond buckets: `[0,1µs) [1,2µs) [2,4µs) … [8.192ms, ∞)`.
fn histogram(samples: &[f64]) -> Vec<Value> {
    const BUCKETS: usize = 15;
    let mut counts = [0u64; BUCKETS];
    for &s in samples {
        let us = s * 1e6;
        let mut b = 0;
        while b + 1 < BUCKETS && us >= (1u64 << b) as f64 {
            b += 1;
        }
        counts[b] += 1;
    }
    counts
        .iter()
        .enumerate()
        .map(|(b, &n)| {
            let lo = if b == 0 { 0 } else { 1u64 << (b - 1) };
            let hi = if b + 1 == BUCKETS {
                Value::Null
            } else {
                json!(1u64 << b)
            };
            json!({ "lo_us": lo, "hi_us": hi, "count": n })
        })
        .collect()
}

fn summarize(mut samples: Vec<f64>) -> (f64, Value) {
    samples.sort_by(f64::total_cmp);
    let mean = samples.iter().sum::<f64>() / samples.len() as f64;
    let p50 = percentile(&samples, 0.50);
    let summary = json!({
        "n": samples.len(),
        "p50_us": p50 * 1e6,
        "p90_us": percentile(&samples, 0.90) * 1e6,
        "p99_us": percentile(&samples, 0.99) * 1e6,
        "mean_us": mean * 1e6,
        "histogram": histogram(&samples),
    });
    (p50, summary)
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let quick = args.iter().any(|a| a == "--quick");
    let out = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1).cloned())
        .unwrap_or_else(|| "BENCH_planner.json".into());
    let lat_samples = if quick { 200 } else { 600 };
    let requests_per_client = if quick { 40 } else { 150 };

    let mut violations: Vec<String> = Vec::new();

    // ------------------------------------------------------------------
    // Catalog and instances.
    // ------------------------------------------------------------------
    let paper = Cluster::paper_testbed();
    let whimpy = Cluster::testbed_subset(&[GpuKind::Rtx2060; 4]);
    let vgg = hetpipe_model::vgg19(32);
    let resnet = hetpipe_model::resnet152(32);
    let mut catalog = Catalog::new();
    let paper_fp = catalog.register_cluster(paper.clone());
    let whimpy_fp = catalog.register_cluster(whimpy.clone());
    let vgg_fp = catalog.register_model(vgg.clone());
    let resnet_fp = catalog.register_model(resnet.clone());
    // One GPU of each kind across the paper testbed's nodes (the VRGQ
    // heterogeneous pipeline), plus the whimpy replan acceptance
    // configuration from tests/runtime_faults.rs.
    let vrgq: Vec<DeviceId> = vec![DeviceId(0), DeviceId(4), DeviceId(8), DeviceId(12)];
    let instances = vec![
        Instance {
            label: "paper-vrgq/VGG-19",
            cluster: paper.clone(),
            graph: vgg.clone(),
            model_fp: vgg_fp,
            cluster_fp: paper_fp,
            devices: vrgq.clone(),
            nm: 4,
            schedule: Schedule::HetPipeWave,
            recompute: RecomputePolicy::None,
            replan_acceptance: false,
        },
        Instance {
            label: "paper-vrgq/ResNet-152",
            cluster: paper.clone(),
            graph: resnet.clone(),
            model_fp: resnet_fp,
            cluster_fp: paper_fp,
            devices: vrgq.clone(),
            nm: 4,
            schedule: Schedule::HetPipeWave,
            recompute: RecomputePolicy::None,
            replan_acceptance: false,
        },
        // The two configurations online replanning actually solves in
        // tests/runtime_faults.rs: the canonical-straggler instance
        // (all four whimpy GPUs) and the post-GPU-loss instance (the
        // surviving three after device 2 dies). These carry the
        // warm-vs-cold acceptance gate.
        Instance {
            label: "whimpy-gggg/ResNet-152",
            cluster: whimpy.clone(),
            graph: resnet.clone(),
            model_fp: resnet_fp,
            cluster_fp: whimpy_fp,
            devices: (0..4).map(DeviceId).collect(),
            nm: 4,
            schedule: Schedule::HetPipeWave,
            recompute: RecomputePolicy::BoundaryOnly,
            replan_acceptance: true,
        },
        Instance {
            label: "whimpy-ggg-lost/ResNet-152",
            cluster: whimpy.clone(),
            graph: resnet.clone(),
            model_fp: resnet_fp,
            cluster_fp: whimpy_fp,
            devices: [0, 1, 3].map(DeviceId).to_vec(),
            nm: 4,
            schedule: Schedule::HetPipeWave,
            recompute: RecomputePolicy::BoundaryOnly,
            replan_acceptance: true,
        },
    ];

    let svc = PlanService::start(catalog, 2);
    let client = svc.client();

    // Memoized oracle: every reply across both phases is verified
    // against a cold solve of its key's instance.
    let mut oracle_memo: HashMap<PlanKey, PartitionPlan> = HashMap::new();
    let verify = |memo: &mut HashMap<PlanKey, PartitionPlan>,
                  inst: &Instance,
                  req: &PlanRequest,
                  plan: &PartitionPlan,
                  what: &str,
                  violations: &mut Vec<String>| {
        let key = req.key().expect("benchmark requests are well-formed");
        let oracle = memo
            .entry(key)
            .or_insert_with(|| cold_oracle(inst, &req.observed_derates).expect("oracle feasible"));
        let same = plan.ranges == oracle.ranges && plan.stage_secs == oracle.stage_secs;
        if !same {
            let msg = format!("{}: {what}: reply != cold oracle", inst.label);
            eprintln!("PARITY VIOLATION: {msg}");
            violations.push(msg);
        }
    };

    // ------------------------------------------------------------------
    // Phase A: latency histograms per instance and provenance.
    //
    // The three populations are sampled *interleaved* — every
    // iteration times one cold solve, then one warm miss, then one
    // cache hit — so slow drift in the machine (frequency scaling,
    // neighboring load) hits all three equally instead of biasing
    // whichever phase ran last. The warm-not-slower gate uses the
    // median of the per-iteration (cold − warm) deltas, which cancels
    // that drift entirely.
    // ------------------------------------------------------------------
    let mut latency_rows = Vec::new();
    let mut hit_ratios: Vec<(f64, &str)> = Vec::new();
    let mut warm_ratios: Vec<(f64, &str, bool)> = Vec::new();
    let mut warm_deltas: Vec<(f64, &str)> = Vec::new();
    for inst in &instances {
        let mut cold = Vec::with_capacity(lat_samples);
        let mut warm = Vec::with_capacity(lat_samples);
        let mut hit = Vec::with_capacity(lat_samples);
        let mut deltas = Vec::with_capacity(lat_samples);
        for i in 0..lat_samples {
            // Cold: fully cleared cache, a fresh drift observation.
            svc.clear_cache();
            let cold_req = inst.request(inst.derate_vector(2 * i));
            let t = Instant::now();
            let reply = client.plan(&cold_req).expect("cold plan");
            let cold_secs = t.elapsed().as_secs_f64();
            cold.push(cold_secs);
            if reply.provenance != Provenance::Cold {
                violations.push(format!(
                    "{}: cleared-cache request served {:?}",
                    inst.label, reply.provenance
                ));
            }
            verify(
                &mut oracle_memo,
                inst,
                &cold_req,
                &reply.plan,
                "cold",
                &mut violations,
            );
            // Warm: the next drift observation; its nearest family
            // neighbor is the plan the cold request just published.
            let warm_req = inst.request(inst.derate_vector(2 * i + 1));
            let t = Instant::now();
            let reply = client.plan(&warm_req).expect("warm plan");
            let warm_secs = t.elapsed().as_secs_f64();
            warm.push(warm_secs);
            deltas.push(cold_secs - warm_secs);
            if reply.provenance != Provenance::WarmMiss {
                violations.push(format!(
                    "{}: derated family miss served {:?}",
                    inst.label, reply.provenance
                ));
            }
            verify(
                &mut oracle_memo,
                inst,
                &warm_req,
                &reply.plan,
                "warm",
                &mut violations,
            );
            // Hit: the warm key again, served read-through.
            let t = Instant::now();
            let reply = client.plan(&warm_req).expect("hit plan");
            hit.push(t.elapsed().as_secs_f64());
            if reply.provenance != Provenance::CacheHit {
                violations.push(format!(
                    "{}: repeated request served {:?}",
                    inst.label, reply.provenance
                ));
            }
            verify(
                &mut oracle_memo,
                inst,
                &warm_req,
                &reply.plan,
                "hit",
                &mut violations,
            );
        }
        let (cold_p50, cold_summary) = summarize(cold);
        let (hit_p50, hit_summary) = summarize(hit);
        let (warm_p50, warm_summary) = summarize(warm);
        deltas.sort_by(f64::total_cmp);
        let paired_delta_p50 = percentile(&deltas, 0.50);
        let hit_ratio = cold_p50 / hit_p50;
        let warm_ratio = cold_p50 / warm_p50;
        hit_ratios.push((hit_ratio, inst.label));
        warm_ratios.push((warm_ratio, inst.label, inst.replan_acceptance));
        warm_deltas.push((paired_delta_p50, inst.label));
        println!(
            "latency      {:<26} cold {:>8.1}µs  hit {:>7.2}µs ({hit_ratio:>5.1}x)  warm {:>8.1}µs ({warm_ratio:>4.2}x, paired Δ {:>+6.1}µs)",
            inst.label,
            cold_p50 * 1e6,
            hit_p50 * 1e6,
            warm_p50 * 1e6,
            paired_delta_p50 * 1e6,
        );
        latency_rows.push(json!({
            "instance": inst.label,
            "nm": inst.nm,
            "cold": cold_summary,
            "hit": hit_summary,
            "warm": warm_summary,
            "hit_speedup_vs_cold_p50": hit_ratio,
            "warm_speedup_vs_cold_p50": warm_ratio,
            "paired_cold_minus_warm_p50_us": paired_delta_p50 * 1e6,
            "replan_acceptance_instance": inst.replan_acceptance,
        }));
    }

    // ------------------------------------------------------------------
    // Phase B: sustained plans/sec at 1 / 8 / 64 concurrent clients,
    // deterministic 90% hot / 10% fresh-derate mix. Parity is checked
    // after the timed window (the oracle must not distort timing).
    // ------------------------------------------------------------------
    const HOT_VARIANTS: usize = 8;
    svc.clear_cache();
    for inst in &instances {
        for v in 0..HOT_VARIANTS {
            let derates = if v == 0 {
                Vec::new()
            } else {
                inst.derate_vector(v - 1)
            };
            client.plan(&inst.request(derates)).expect("hot-set seed");
        }
    }
    let mut throughput_rows = Vec::new();
    for clients in [1usize, 8, 64] {
        let wall = Instant::now();
        let replies: Vec<Vec<(usize, PlanRequest, PartitionPlan, Provenance)>> =
            std::thread::scope(|s| {
                let handles: Vec<_> = (0..clients)
                    .map(|c| {
                        let client = svc.client();
                        let instances = &instances;
                        s.spawn(move || {
                            let mut got = Vec::with_capacity(requests_per_client);
                            for q in 0..requests_per_client {
                                let tag = c * 7919 + q * 31;
                                let inst_idx = tag % instances.len();
                                let inst = &instances[inst_idx];
                                let req = if q % 10 == 9 {
                                    // Fresh derate: unique to (c, q), far
                                    // past the hot-set variants.
                                    inst.request(
                                        inst.derate_vector(1000 + c * requests_per_client + q),
                                    )
                                } else {
                                    let v = tag % HOT_VARIANTS;
                                    let derates = if v == 0 {
                                        Vec::new()
                                    } else {
                                        inst.derate_vector(v - 1)
                                    };
                                    inst.request(derates)
                                };
                                let reply = client.plan(&req).expect("throughput plan");
                                got.push((inst_idx, req, reply.plan, reply.provenance));
                            }
                            got
                        })
                    })
                    .collect();
                handles.into_iter().map(|h| h.join().unwrap()).collect()
            });
        let wall = wall.elapsed().as_secs_f64();
        let total = clients * requests_per_client;
        let plans_per_sec = total as f64 / wall;
        let mut by_provenance = [0u64; 3];
        for (inst_idx, req, plan, provenance) in replies.iter().flatten() {
            by_provenance[match provenance {
                Provenance::Cold => 0,
                Provenance::CacheHit => 1,
                Provenance::WarmMiss => 2,
            }] += 1;
            verify(
                &mut oracle_memo,
                &instances[*inst_idx],
                req,
                plan,
                "throughput",
                &mut violations,
            );
        }
        println!(
            "throughput   {clients:>2} client(s)            {plans_per_sec:>10.0} plans/s  ({total} requests: {} hit / {} warm / {} cold)",
            by_provenance[1], by_provenance[2], by_provenance[0]
        );
        throughput_rows.push(json!({
            "clients": clients,
            "requests": total,
            "wall_secs": wall,
            "plans_per_sec": plans_per_sec,
            "cache_hits": by_provenance[1],
            "warm_misses": by_provenance[2],
            "cold_solves": by_provenance[0],
        }));
    }
    let (cache_hits, cache_misses, publishes) = svc.cache_stats();

    // ------------------------------------------------------------------
    // Acceptance gates.
    // ------------------------------------------------------------------
    let min_hit_ratio = hit_ratios
        .iter()
        .map(|(r, _)| *r)
        .fold(f64::INFINITY, f64::min);
    let min_warm_ratio_replan = warm_ratios
        .iter()
        .filter(|(_, _, acc)| *acc)
        .map(|(r, _, _)| *r)
        .fold(f64::INFINITY, f64::min);
    let min_paired_delta = warm_deltas
        .iter()
        .map(|(d, _)| *d)
        .fold(f64::INFINITY, f64::min);
    if min_hit_ratio < 10.0 {
        violations.push(format!(
            "cache-hit p50 only {min_hit_ratio:.1}x faster than cold (target >= 10x)"
        ));
    }
    for (d, label) in &warm_deltas {
        if *d < 0.0 {
            violations.push(format!(
                "{label}: warm-miss slower than cold (paired median delta {:.1}us)",
                d * 1e6
            ));
        }
    }
    if min_warm_ratio_replan < 1.3 {
        violations.push(format!(
            "replan-instance warm-miss p50 only {min_warm_ratio_replan:.2}x faster than cold (target >= 1.3x)"
        ));
    }
    println!(
        "\nacceptance: hit {min_hit_ratio:.1}x (target ≥10x), warm {min_warm_ratio_replan:.2}x on replan instances \
         (target ≥1.3x; min paired cold−warm Δ {:+.1}µs, must be ≥0), parity {}",
        min_paired_delta * 1e6,
        if violations.is_empty() { "ok" } else { "VIOLATED" }
    );

    // ------------------------------------------------------------------
    // Merge into BENCH_planner.json under "plansvc", preserving the
    // planner_bench sections.
    // ------------------------------------------------------------------
    let section = json!({
        "quick": quick,
        "threads": std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1),
        "workers": 2,
        "latency": latency_rows,
        "throughput": throughput_rows,
        "cache": {
            "hits": cache_hits,
            "misses": cache_misses,
            "publishes": publishes,
            "len": svc.cache_len(),
        },
        "acceptance": {
            "hit_min_speedup_p50": min_hit_ratio,
            "hit_target": 10.0,
            "warm_min_speedup_p50_replan_instances": min_warm_ratio_replan,
            "warm_target": 1.3,
            "warm_min_paired_delta_us": min_paired_delta * 1e6,
            "parity_ok": violations.is_empty(),
            "violations": violations.clone(),
        },
    });
    let merged = match std::fs::read_to_string(&out)
        .ok()
        .and_then(|s| serde_json::from_str(&s).ok())
    {
        Some(Value::Object(existing)) => {
            // The vendored Value has no in-place object mutation;
            // rebuild the map with the section appended/replaced.
            let mut doc = serde_json::Map::new();
            for (k, v) in existing.iter() {
                if k != "plansvc" {
                    doc.insert(k, v.clone());
                }
            }
            doc.insert("plansvc", section);
            Value::Object(doc)
        }
        _ => json!({ "plansvc": section }),
    };
    std::fs::write(
        &out,
        serde_json::to_string_pretty(&merged).expect("serializable"),
    )
    .unwrap_or_else(|e| {
        eprintln!("cannot write {out}: {e}");
        std::process::exit(1);
    });
    println!("(json merged into {out})");

    drop(client);
    svc.shutdown();

    if !violations.is_empty() {
        eprintln!("\nACCEPTANCE FAILURES ({}):", violations.len());
        for v in &violations {
            eprintln!("  {v}");
        }
        std::process::exit(1);
    }
}
