//! The static-verification gate: sweeps the standing configuration
//! matrix through `hetpipe-verify`'s proof passes and exits non-zero
//! on any violation. CI runs it next to the planner and plan-service
//! benchmark gates.
//!
//! Six passes, none of which executes the DES:
//!
//! 1. **Deadlock freedom** — every schedule × pipeline depth × WSP
//!    config × recompute policy gets a machine-checked certificate:
//!    the committed op queues of two WSP-coupled virtual workers form
//!    an acyclic dependency graph (program order + data edges + cross-
//!    worker push/gate coupling), with the wave-shift periodicity
//!    witness extending the finite horizon to the infinite stream.
//! 2. **Occupancy soundness** — the structural peak implied by the
//!    committed op order satisfies `structural ≤ declared` per stage
//!    and per GPU; over-reservations looser than 2× are reported as
//!    lints (non-fatal), and the full declared/structural ratio table
//!    is ranked in the report artifact.
//! 3. **VW isolation + lookahead** — every dependency edge is
//!    explained by its endpoints' declared footprints, cross-VW
//!    traffic is confined to the PS push→gate coupling
//!    (`IsolationCertificate` per config, with the canonical fault
//!    scripts composed in as environment rate edges), and every gate
//!    and push sits exactly where the closed-form lookahead bound
//!    `(warmup (D+2)·Nm−1, steady Nm)` says.
//! 4. **Fleet sync** — the fleet bus's [`SyncPlan`] constants are
//!    *derived* from the `verify::lookahead` closed form (the plan
//!    calls `lookahead_bound`, it does not restate it); this pass pins
//!    the derivation against the PS interaction points extracted from
//!    real committed op streams across every schedule and WSP config,
//!    and runs a negative control: a deliberately off-by-one gate
//!    position must be rejected with the wave and both positions
//!    named.
//! 5. **Staleness** — the WSP start condition and the 2BW version rule
//!    are checked at every minibatch of a warmup-covering horizon for
//!    each (Nm, D), plus the interleaved per-chunk 2BW version-demand
//!    proof.
//! 6. **Model checking** — the plan-cache MatchSeq invariant over
//!    every interleaving of the standing 2- and 3-thread scenarios
//!    (pinned to the multinomials), and the per-VW gate protocol over
//!    3 engines in full plus 4 engines under sleep-set POR (63M
//!    unreduced interleavings; the POR trace count is pinned). Both
//!    checkers run their deliberately broken variants as negative
//!    controls — if a checker *fails to find* that counterexample,
//!    the gate fails.
//!
//! Flags: `--report <path>` writes the full output (including the
//! complete ranked ratio table) as a CI artifact; `--budget-secs <s>`
//! fails the gate when the whole sweep exceeds the pinned wall-clock
//! budget, so the static gate cannot silently grow unbounded.
//!
//! The pipeline depths swept (3 and 4 stages) are the standing
//! instance shapes of the benchmark suite (the paper testbed's VRGQ
//! pipeline and the whimpy 4-GPU / 3-survivor replan configurations).
//! The certificates are model-independent by construction: the
//! dependency DAG, the footprint model, and the staleness algebra
//! depend only on the schedule shape (depth, Nm, D, recompute), not
//! on which zoo model's layers fill the stages — one proof per shape
//! covers every model.

use hetpipe_des::check_bounds;
use hetpipe_fleet::SyncPlan;
use hetpipe_runtime::{FaultScript, ScenarioScript};
use hetpipe_schedule::{PipelineSchedule, RecomputePolicy, Schedule, WspParams};
use hetpipe_verify::{
    check_broken_gate_protocol, check_broken_protocol, check_gate_protocol, check_seq_protocol,
    interleaved_chunk_versions, structural_occupancy, verify_deadlock_free, verify_lookahead,
    verify_script_isolation, verify_version_rule, verify_vw_isolation, verify_wsp_bound,
};
use std::time::Instant;

/// Collected gate output: mirrored to stdout and, under `--report`,
/// to the artifact file.
#[derive(Default)]
struct Gate {
    out: Vec<String>,
    violations: Vec<String>,
    lints: Vec<String>,
}

impl Gate {
    fn say(&mut self, line: String) {
        println!("{line}");
        self.out.push(line);
    }
    /// Artifact-only detail: written to `--report`, not stdout.
    fn artifact(&mut self, line: String) {
        self.out.push(line);
    }
}

fn main() {
    let started = Instant::now();
    let mut report_path: Option<String> = None;
    let mut budget_secs: Option<f64> = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--report" => report_path = args.next(),
            "--budget-secs" => {
                budget_secs = args.next().and_then(|v| v.parse().ok());
            }
            other => {
                eprintln!("verify_all: unknown flag {other}");
                std::process::exit(2);
            }
        }
    }

    let mut gate = Gate::default();

    // The canonical fault and scenario scripts composed into every
    // isolation certificate: environment rate edges must stay
    // write-only and External-owned (replicable to every engine
    // without coupling). The lease script exercises the full
    // grant → preempt → re-grant edge shape the elastic controller
    // splices around, so its footprints are certified by the same
    // gate as the pure-fault ones.
    let straggler = FaultScript::canonical_straggler(0, 5.0);
    let gpu_loss = FaultScript::canonical_gpu_loss(0, 5.0);
    let lease = ScenarioScript::canonical_lease(0, 5.0, 12.0);
    let scripts: [(&str, Vec<hetpipe_des::Footprint>); 3] = [
        (&straggler.name, straggler.edge_footprints()),
        (&gpu_loss.name, gpu_loss.edge_footprints()),
        (&lease.name, lease.edge_footprints()),
    ];

    // ------------------------------------------------------------------
    // Passes 1–3: deadlock certificates, occupancy soundness, and the
    // VW-isolation + lookahead certificates across the standing
    // schedule matrix.
    // ------------------------------------------------------------------
    let depths = [3usize, 4];
    let wsp_configs = [(2usize, 0usize), (4, 0), (4, 1)];
    let mut certificates = 0usize;
    let mut total_nodes = 0usize;
    let mut total_edges = 0usize;
    let mut iso_certs = 0usize;
    let mut iso_cross = 0usize;
    let mut iso_fault_edges = 0usize;
    let mut la_gates = 0usize;
    let mut la_pushes = 0usize;
    // (worst declared/structural ratio, entity, label) per config, for
    // the ranked table.
    let mut ratios: Vec<(f64, String, String)> = Vec::new();
    for &schedule in Schedule::ALL.iter() {
        for &k_gpus in &depths {
            for &(nm, d) in &wsp_configs {
                let wsp = WspParams::new(nm, d);
                // Horizon: enough complete waves for warmup plus two
                // full periods for the periodicity witness (composite
                // timetables can have periods up to k_gpus waves).
                let max_mb = (nm * (d + 6 + 2 * k_gpus)) as u64;
                for recompute in RecomputePolicy::ALL {
                    let label = format!("{} k={k_gpus} nm={nm} d={d} {recompute}", schedule.name());
                    match verify_deadlock_free(&schedule, k_gpus, wsp, recompute, max_mb, 2) {
                        Ok(proof) => {
                            certificates += 1;
                            total_nodes += proof.nodes;
                            total_edges += proof.edges;
                            if proof.wave_period.is_none() {
                                gate.violations.push(format!(
                                    "{label}: no steady-state wave period found — finite \
                                     proof does not extend to the infinite stream"
                                ));
                            }
                        }
                        Err(cycle) => gate.violations.push(format!("{label}: {cycle}")),
                    }
                    let report = structural_occupancy(&schedule, k_gpus, wsp, recompute, max_mb);
                    if let Err(errs) = check_bounds(&report.bounds) {
                        for e in errs {
                            gate.violations.push(format!("{label}: {e}"));
                        }
                    }
                    for lint in &report.lints {
                        gate.lints.push(format!("{label}: {lint}"));
                    }
                    if let Some((ratio, entity)) = report
                        .bounds
                        .iter()
                        .filter_map(|b| {
                            let s = b.structural?;
                            (s > 0).then(|| (b.declared as f64 / s as f64, format!("{}", b.entity)))
                        })
                        .max_by(|a, b| a.0.total_cmp(&b.0))
                    {
                        ratios.push((ratio, entity, label.clone()));
                    }

                    // VW isolation: the fault-free certificate, then
                    // the canonical scripts composed in.
                    match verify_vw_isolation(&schedule, k_gpus, wsp, recompute, max_mb, 2) {
                        Ok(cert) => {
                            iso_certs += 1;
                            iso_cross += cert.cross_vw_edges;
                            for (name, footprints) in &scripts {
                                match verify_script_isolation(cert.clone(), name, footprints) {
                                    Ok(faulted) => {
                                        iso_certs += 1;
                                        iso_fault_edges += faulted.fault_edges;
                                    }
                                    Err(v) => {
                                        gate.violations.push(format!("{label} faults={name}: {v}"))
                                    }
                                }
                            }
                        }
                        Err(v) => gate.violations.push(format!("{label}: {v}")),
                    }

                    // Lookahead: committed gates/pushes against the
                    // closed form.
                    match verify_lookahead(&schedule, k_gpus, wsp, recompute, max_mb) {
                        Ok(w) => {
                            la_gates += w.gates;
                            la_pushes += w.pushes;
                        }
                        Err(e) => gate.violations.push(format!("{label}: {e}")),
                    }
                }
            }
        }
    }
    gate.say(format!(
        "deadlock     {certificates} certificates ({total_nodes} ops, {total_edges} dependency \
         edges), all acyclic and wave-periodic"
    ));
    gate.say(format!(
        "isolation    {iso_certs} certificates: every dependency edge footprint-explained, \
         {iso_cross} cross-VW edges all PS push→gate, {iso_fault_edges} fault rate-edges \
         composed (write-only, environment-owned)"
    ));
    gate.say(format!(
        "lookahead    {la_gates} gates + {la_pushes} pushes match the closed form: warmup \
         (D+2)·Nm−1 stage-0 forwards, then exactly Nm per gate-to-gate segment"
    ));

    // Ranked declared/structural table: top of the table to stdout,
    // the full ranking to the artifact.
    ratios.sort_by(|a, b| b.0.total_cmp(&a.0));
    gate.say(format!(
        "occupancy    declared/structural ratios ranked across {} configs (loosest first):",
        ratios.len()
    ));
    for (i, (ratio, entity, label)) in ratios.iter().enumerate() {
        let line = format!(
            "occupancy      #{:<3} {ratio:>5.2}x  {entity:<12} {label}",
            i + 1
        );
        if i < 8 {
            gate.say(line);
        } else {
            gate.artifact(line);
        }
    }
    if ratios.len() > 8 {
        gate.say(format!(
            "occupancy      … {} more rows in the report artifact",
            ratios.len() - 8
        ));
    }

    // ------------------------------------------------------------------
    // Pass 4: the fleet bus constants against the lookahead closed
    // form — derivation pinned on real committed op streams, plus the
    // off-by-one negative control.
    // ------------------------------------------------------------------
    let mut fleet_gates = 0usize;
    let mut fleet_pushes = 0usize;
    for &(nm, d) in &wsp_configs {
        let wsp = WspParams::new(nm, d);
        let plan = SyncPlan::derive(wsp);
        // The derivation itself: the plan's constants must be exactly
        // what the certified closed form returns for this config (the
        // plan *calls* `lookahead_bound`; this pins that it keeps
        // doing so).
        let (warmup, steady) = hetpipe_verify::lookahead_bound(wsp);
        if (plan.warmup, plan.steady) != (warmup, steady) {
            gate.violations.push(format!(
                "fleet-sync nm={nm} d={d}: SyncPlan ({}, {}) is not the certified \
                 closed form ({warmup}, {steady})",
                plan.warmup, plan.steady
            ));
        }
        // The derived constants against the PS interaction points of
        // real committed streams — the same material the lookahead
        // certificate is proven over.
        for &schedule in Schedule::ALL.iter() {
            for &k_gpus in &depths {
                let max_mb = (nm * (d + 6 + 2 * k_gpus)) as u64;
                let queues = hetpipe_schedule::committed_queues(
                    &schedule,
                    k_gpus,
                    wsp,
                    RecomputePolicy::None,
                    max_mb,
                );
                let pts = hetpipe_schedule::ps_interaction_points(&queues);
                let label = format!("{} k={k_gpus} nm={nm} d={d}", schedule.name());
                if pts.gates.is_empty() {
                    gate.violations
                        .push(format!("fleet-sync {label}: no gates extracted"));
                }
                for g in &pts.gates {
                    fleet_gates += 1;
                    if let Err(e) = plan.check_gate(g.wave, g.forwards_before) {
                        gate.violations.push(format!("{label}: {e}"));
                    }
                }
                for p in &pts.pushes {
                    fleet_pushes += 1;
                    if let Err(e) = plan.check_push(p.wave, p.backwards_before) {
                        gate.violations.push(format!("{label}: {e}"));
                    }
                }
            }
        }
    }
    // Negative control: a gate one forward late must be rejected, and
    // the rejection must name the wave and the certified position.
    {
        let plan = SyncPlan::derive(WspParams::new(4, 0));
        match plan.check_gate(2, plan.gate_point(2) + 1) {
            Err(e) if e.contains("gate(wave 2)") && e.contains(&plan.gate_point(2).to_string()) => {
                gate.say(format!(
                    "fleet-sync   {fleet_gates} gates + {fleet_pushes} pushes match the \
                     bus constants derived from the lookahead closed form; negative \
                     control: off-by-one gate rejected and named ({e:?})"
                ));
            }
            Err(e) => gate.violations.push(format!(
                "negative control FAILED: off-by-one gate rejected but unnamed \
                 (got {e:?}) — the fleet-sync check cannot localize a drift"
            )),
            Ok(()) => gate.violations.push(
                "negative control FAILED: a deliberately off-by-one gate position \
                 passed the fleet-sync check — the derivation pin is vacuous"
                    .into(),
            ),
        }
    }

    // ------------------------------------------------------------------
    // Pass 5: exhaustive staleness proofs.
    // ------------------------------------------------------------------
    let mut staleness_checked = 0u64;
    for nm in [1usize, 2, 4, 8] {
        for d in [0usize, 1, 2] {
            let wsp = WspParams::new(nm, d);
            match verify_wsp_bound(wsp) {
                Ok(proof) => {
                    staleness_checked += proof.horizon;
                    if !proof.shift_invariant {
                        gate.violations
                            .push(format!("nm={nm} d={d}: required_wave not shift-invariant"));
                    }
                }
                Err(e) => gate.violations.push(format!("nm={nm} d={d}: {e}")),
            }
            match verify_version_rule(wsp, |p| wsp.two_bw_version(p)) {
                Ok(proof) => {
                    staleness_checked += proof.horizon;
                    if !proof.shift_invariant {
                        gate.violations.push(format!(
                            "nm={nm} d={d}: 2BW version rule not shift-invariant"
                        ));
                    }
                }
                Err(e) => gate.violations.push(format!("nm={nm} d={d} 2BW: {e}")),
            }
        }
    }
    for chunks in [2usize, 4] {
        let sched = hetpipe_schedule::Interleaved1F1B {
            chunks,
            composite: true,
        };
        let wsp = WspParams::new(4, 0);
        match interleaved_chunk_versions(&sched, 4, wsp) {
            Ok(demand) => {
                gate.say(format!(
                    "staleness    interleaved chunks={chunks}: per-chunk 2BW pins ≤1 extra \
                     version/stage, saves {} copies vs w_p stashing (proof horizon {})",
                    demand.versions_saved, demand.proof.horizon
                ));
            }
            Err(e) => gate
                .violations
                .push(format!("interleaved chunks={chunks}: {e}")),
        }
    }
    gate.say(format!(
        "staleness    WSP bound + 2BW rule proven exhaustively at {staleness_checked} \
         minibatch positions (12 configs, all shift-invariant)"
    ));

    // ------------------------------------------------------------------
    // Pass 6: model checking — MatchSeq and the gate protocol, each
    // with its negative control.
    // ------------------------------------------------------------------
    match check_seq_protocol() {
        Ok(reports) => {
            for r in &reports {
                gate.say(format!(
                    "matchseq     {:<52} {} threads, {} ops: {} interleavings, all hold",
                    r.scenario, r.threads, r.ops, r.interleavings
                ));
            }
        }
        Err(e) => gate.violations.push(format!("MatchSeq: {e}")),
    }
    match check_broken_protocol() {
        Some(counterexample) => {
            let steps = counterexample.schedule.len();
            gate.say(format!(
                "matchseq     negative control: blind-insert protocol refuted in {steps} steps \
                 (checker is not vacuous)"
            ));
        }
        None => gate.violations.push(
            "negative control FAILED: the checker passed the deliberately broken \
             blind-insert protocol — exploration is vacuous"
                .into(),
        ),
    }
    match check_gate_protocol() {
        Ok(reports) => {
            for r in &reports {
                let how = if r.por {
                    format!(
                        "{} POR traces of {} unreduced ({:.0}x reduction)",
                        r.explored,
                        r.unreduced,
                        r.unreduced as f64 / r.explored as f64
                    )
                } else {
                    format!("{} interleavings, pinned to the multinomial", r.explored)
                };
                gate.say(format!(
                    "gate         {:<52} {} engines, {} ops: {how}, invariant holds",
                    r.scenario, r.vws, r.ops
                ));
            }
        }
        Err(e) => gate.violations.push(format!("gate protocol: {e}")),
    }
    match check_broken_gate_protocol() {
        Some(counterexample) => {
            let steps = counterexample.schedule.len();
            gate.say(format!(
                "gate         negative control: advance-past-gate engine refuted in {steps} \
                 steps under POR (reduction preserves the counterexample)"
            ));
        }
        None => gate.violations.push(
            "negative control FAILED: the checker passed the deliberately broken \
             advance-past-gate engine — the POR exploration is vacuous"
                .into(),
        ),
    }

    // ------------------------------------------------------------------
    // Verdict.
    // ------------------------------------------------------------------
    let lints = std::mem::take(&mut gate.lints);
    for lint in &lints {
        gate.say(format!("lint         {lint}"));
    }
    let elapsed = started.elapsed().as_secs_f64();
    if let Some(budget) = budget_secs {
        if elapsed > budget {
            gate.violations.push(format!(
                "wall-clock budget exceeded: {elapsed:.1}s > {budget:.1}s — the static gate \
                 grew past its pinned budget; speed it up or re-pin deliberately"
            ));
        }
    }
    let verdict = if gate.violations.is_empty() {
        format!(
            "\nverify_all: all static proofs hold ({} lints, {elapsed:.1}s{})",
            lints.len(),
            budget_secs
                .map(|b| format!(" of {b:.0}s budget"))
                .unwrap_or_default()
        )
    } else {
        let mut v = format!("\nverify_all: {} VIOLATIONS:", gate.violations.len());
        for violation in &gate.violations {
            v.push_str(&format!("\n  {violation}"));
        }
        v
    };
    let failed = !gate.violations.is_empty();
    if failed {
        eprintln!("{verdict}");
        gate.out.push(verdict);
    } else {
        gate.say(verdict);
    }
    if let Some(path) = report_path {
        let body = gate.out.join("\n") + "\n";
        if let Err(e) = std::fs::write(&path, body) {
            eprintln!("verify_all: could not write report {path}: {e}");
            std::process::exit(1);
        }
        println!("verify_all: report written to {path}");
    }
    if failed {
        std::process::exit(1);
    }
}
