//! The static-verification gate: sweeps the standing configuration
//! matrix through `hetpipe-verify`'s three proof passes and exits
//! non-zero on any violation. CI runs it next to the planner and
//! plan-service benchmark gates.
//!
//! Three passes, none of which executes the DES:
//!
//! 1. **Deadlock freedom** — every schedule × pipeline depth × WSP
//!    config × recompute policy gets a machine-checked certificate:
//!    the committed op queues of two WSP-coupled virtual workers form
//!    an acyclic dependency graph (program order + data edges + cross-
//!    worker push/gate coupling), with the wave-shift periodicity
//!    witness extending the finite horizon to the infinite stream.
//! 2. **Occupancy soundness** — the structural peak implied by the
//!    committed op order satisfies `structural ≤ declared` per stage
//!    and per GPU; over-reservations looser than 2× are reported as
//!    lints (non-fatal).
//! 3. **Staleness** — the WSP start condition and the 2BW version rule
//!    are checked at every minibatch of a warmup-covering horizon for
//!    each (Nm, D), plus the interleaved per-chunk 2BW version-demand
//!    proof.
//!
//! Then the **model checker** proves the plan-cache MatchSeq invariant
//! over every interleaving of the standing 2- and 3-thread scenarios
//! (counts reported and pinned to the multinomials), and runs the
//! deliberately broken blind-insert protocol as a negative control —
//! if the checker *fails to find* that counterexample, the gate fails.
//!
//! The pipeline depths swept (3 and 4 stages) are the standing
//! instance shapes of the benchmark suite (the paper testbed's VRGQ
//! pipeline and the whimpy 4-GPU / 3-survivor replan configurations).
//! The certificates are model-independent by construction: the
//! dependency DAG and the staleness algebra depend only on the
//! schedule shape (depth, Nm, D, recompute), not on which zoo model's
//! layers fill the stages — one proof per shape covers every model.

use hetpipe_des::check_bounds;
use hetpipe_schedule::{PipelineSchedule, RecomputePolicy, Schedule, WspParams};
use hetpipe_verify::{
    check_broken_protocol, check_seq_protocol, interleaved_chunk_versions, structural_occupancy,
    verify_deadlock_free, verify_version_rule, verify_wsp_bound,
};

fn main() {
    let mut violations: Vec<String> = Vec::new();
    let mut lints: Vec<String> = Vec::new();

    // ------------------------------------------------------------------
    // Pass 1 + 2: deadlock certificates and occupancy soundness across
    // the standing schedule matrix.
    // ------------------------------------------------------------------
    let depths = [3usize, 4];
    let wsp_configs = [(2usize, 0usize), (4, 0), (4, 1)];
    let mut certificates = 0usize;
    let mut total_nodes = 0usize;
    let mut total_edges = 0usize;
    for &schedule in Schedule::ALL.iter() {
        for &k_gpus in &depths {
            for &(nm, d) in &wsp_configs {
                let wsp = WspParams::new(nm, d);
                // Horizon: enough complete waves for warmup plus two
                // full periods for the periodicity witness (composite
                // timetables can have periods up to k_gpus waves).
                let max_mb = (nm * (d + 6 + 2 * k_gpus)) as u64;
                for recompute in RecomputePolicy::ALL {
                    let label = format!("{} k={k_gpus} nm={nm} d={d} {recompute}", schedule.name());
                    match verify_deadlock_free(&schedule, k_gpus, wsp, recompute, max_mb, 2) {
                        Ok(proof) => {
                            certificates += 1;
                            total_nodes += proof.nodes;
                            total_edges += proof.edges;
                            if proof.wave_period.is_none() {
                                violations.push(format!(
                                    "{label}: no steady-state wave period found — finite \
                                     proof does not extend to the infinite stream"
                                ));
                            }
                        }
                        Err(cycle) => violations.push(format!("{label}: {cycle}")),
                    }
                    let report = structural_occupancy(&schedule, k_gpus, wsp, recompute, max_mb);
                    if let Err(errs) = check_bounds(&report.bounds) {
                        for e in errs {
                            violations.push(format!("{label}: {e}"));
                        }
                    }
                    for lint in &report.lints {
                        lints.push(format!("{label}: {lint}"));
                    }
                }
            }
        }
    }
    println!(
        "deadlock     {certificates} certificates ({total_nodes} ops, {total_edges} dependency \
         edges), all acyclic and wave-periodic"
    );

    // ------------------------------------------------------------------
    // Pass 3: exhaustive staleness proofs.
    // ------------------------------------------------------------------
    let mut staleness_checked = 0u64;
    for nm in [1usize, 2, 4, 8] {
        for d in [0usize, 1, 2] {
            let wsp = WspParams::new(nm, d);
            match verify_wsp_bound(wsp) {
                Ok(proof) => {
                    staleness_checked += proof.horizon;
                    if !proof.shift_invariant {
                        violations
                            .push(format!("nm={nm} d={d}: required_wave not shift-invariant"));
                    }
                }
                Err(e) => violations.push(format!("nm={nm} d={d}: {e}")),
            }
            match verify_version_rule(wsp, |p| wsp.two_bw_version(p)) {
                Ok(proof) => {
                    staleness_checked += proof.horizon;
                    if !proof.shift_invariant {
                        violations.push(format!(
                            "nm={nm} d={d}: 2BW version rule not shift-invariant"
                        ));
                    }
                }
                Err(e) => violations.push(format!("nm={nm} d={d} 2BW: {e}")),
            }
        }
    }
    for chunks in [2usize, 4] {
        let sched = hetpipe_schedule::Interleaved1F1B {
            chunks,
            composite: true,
        };
        let wsp = WspParams::new(4, 0);
        match interleaved_chunk_versions(&sched, 4, wsp) {
            Ok(demand) => {
                println!(
                    "staleness    interleaved chunks={chunks}: per-chunk 2BW pins ≤1 extra \
                     version/stage, saves {} copies vs w_p stashing (proof horizon {})",
                    demand.versions_saved, demand.proof.horizon
                );
            }
            Err(e) => violations.push(format!("interleaved chunks={chunks}: {e}")),
        }
    }
    println!(
        "staleness    WSP bound + 2BW rule proven exhaustively at {staleness_checked} \
         minibatch positions (12 configs, all shift-invariant)"
    );

    // ------------------------------------------------------------------
    // Model checker: MatchSeq over all interleavings, plus the broken
    // protocol as the negative control.
    // ------------------------------------------------------------------
    match check_seq_protocol() {
        Ok(reports) => {
            for r in &reports {
                println!(
                    "matchseq     {:<52} {} threads, {} ops: {} interleavings, all hold",
                    r.scenario, r.threads, r.ops, r.interleavings
                );
            }
        }
        Err(e) => violations.push(format!("MatchSeq: {e}")),
    }
    match check_broken_protocol() {
        Some(counterexample) => {
            let steps = counterexample.schedule.len();
            println!(
                "matchseq     negative control: blind-insert protocol refuted in {steps} steps \
                 (checker is not vacuous)"
            );
        }
        None => violations.push(
            "negative control FAILED: the checker passed the deliberately broken \
             blind-insert protocol — exploration is vacuous"
                .into(),
        ),
    }

    // ------------------------------------------------------------------
    // Verdict.
    // ------------------------------------------------------------------
    for lint in &lints {
        println!("lint         {lint}");
    }
    if violations.is_empty() {
        println!(
            "\nverify_all: all static proofs hold ({} lints)",
            lints.len()
        );
    } else {
        eprintln!("\nverify_all: {} VIOLATIONS:", violations.len());
        for v in &violations {
            eprintln!("  {v}");
        }
        std::process::exit(1);
    }
}
