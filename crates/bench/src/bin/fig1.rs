//! Figure 1: the pipelined execution schedule of one virtual worker.
//!
//! Renders the simulated schedule of a 4-GPU virtual worker processing
//! minibatches `M_{p,k}` as an ASCII Gantt chart, directly from the
//! discrete-event trace — forward passes (F) flow down the stages,
//! backward passes (B) flow back up, the last stage fuses F+B, and the
//! three scheduling conditions of Section 4 are visible: forwards in
//! minibatch order, backwards in minibatch order, FIFO per GPU.

use hetpipe_cluster::{Cluster, DeviceId};
use hetpipe_core::exec::SpanTag;
use hetpipe_core::{AllocationPolicy, HetPipeSystem, Placement, SystemConfig};
use hetpipe_des::SimTime;

fn main() {
    let cluster = Cluster::paper_testbed();
    let graph = hetpipe_model::vgg19(32);
    let config = SystemConfig {
        policy: AllocationPolicy::Custom(vec![(0..4).map(DeviceId).collect()]),
        placement: Placement::Default,
        staleness_bound: 0,
        nm_override: Some(4),
        sync_transfers: false,
        ..SystemConfig::default()
    };
    let sys = HetPipeSystem::build(&cluster, &graph, &config).expect("builds");
    let (_, stats) = sys.run_with_stats(SimTime::from_secs(3.0));

    println!("Figure 1: pipeline schedule of one VVVV virtual worker (VGG-19, Nm = 4)\n");
    // One row per stage GPU; one column slot per task, in start order.
    for stage in 0..4usize {
        let rid = stats.gpu_resources[stage];
        let mut tasks: Vec<(SimTime, String)> = stats
            .trace
            .spans()
            .iter()
            .filter(|s| s.resource == rid)
            .filter_map(|s| match s.tag {
                SpanTag::Forward { mb, .. } => Some((s.start, format!("F{mb}"))),
                SpanTag::Backward { mb, stage: st, .. } => {
                    // The last stage's span is the fused F+B task.
                    let label = if st == 3 {
                        format!("FB{mb}")
                    } else {
                        format!("B{mb}")
                    };
                    Some((s.start, label))
                }
                _ => None,
            })
            .collect();
        tasks.sort_by_key(|(t, _)| *t);
        let line: Vec<String> = tasks.into_iter().take(18).map(|(_, l)| l).collect();
        println!("GPU{}: {}", stage + 1, line.join(" "));
    }
    println!(
        "\nRead: F = forward, B = backward, FB = fused forward+backward (last stage).\n\
         Forwards and backwards each appear in minibatch order per GPU (conditions 1-2)\n\
         and interleave FIFO (condition 3); GPU1 holds up to Nm in-flight minibatches\n\
         while GPU4 finishes each immediately — the memory asymmetry of Section 4."
    );
}
