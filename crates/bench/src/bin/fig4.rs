//! Figure 4: throughput of the three resource-allocation policies
//! (plus ED-local) against the Horovod baseline, `D = 0`.
//!
//! Two HetPipe rows per policy:
//!
//! - **auto-Nm** — this reproduction's memory model chooses the
//!   performance-maximizing `Nm` (Section 8.3's stated methodology);
//! - **paper-Nm** — the `Nm` annotated on the paper's Figure-4 bars
//!   (ResNet-152: NP 2 / ED 7 / ED-local 7 / HD 4; VGG-19: NP 2 /
//!   ED 5 / ED-local 5 / HD 2), for a like-for-like shape comparison
//!   (the authors' TensorFlow memory footprint capped NP/HD deeper
//!   than our analytic model does).
//!
//! Expected shape (paper): ResNet-152 — ED/HD roughly match Horovod's
//! 12 GPUs, ED-local beats it ~1.4x, NP is worst; VGG-19 — Horovod
//! beats NP/ED/HD but ED-local wins ~1.8x.

use hetpipe_allreduce::HorovodBaseline;
use hetpipe_bench::{fmt_ips, maybe_write_json, print_table, run_hetpipe, HORIZON_SECS};
use hetpipe_cluster::Cluster;
use hetpipe_core::{AllocationPolicy, Placement};
use serde_json::json;

fn policies() -> Vec<(&'static str, AllocationPolicy, Placement)> {
    vec![
        ("NP", AllocationPolicy::NodePartition, Placement::Default),
        (
            "ED",
            AllocationPolicy::EqualDistribution,
            Placement::Default,
        ),
        (
            "ED-local",
            AllocationPolicy::EqualDistribution,
            Placement::Local,
        ),
        (
            "HD",
            AllocationPolicy::HybridDistribution,
            Placement::Default,
        ),
    ]
}

fn main() {
    let cluster = Cluster::paper_testbed();
    let paper_nm: &[(&str, [usize; 4])] = &[("ResNet-152", [2, 7, 7, 4]), ("VGG-19", [2, 5, 5, 2])];
    let mut dump = Vec::new();

    for (model_name, nms) in paper_nm {
        let graph = if *model_name == "VGG-19" {
            hetpipe_model::vgg19(32)
        } else {
            hetpipe_model::resnet152(32)
        };

        let horovod = HorovodBaseline::evaluate_all(&cluster, &graph);
        let mut rows = Vec::new();
        match &horovod {
            Ok(h) => rows.push(vec![
                format!("Horovod ({} GPUs)", h.devices.len()),
                "-".into(),
                fmt_ips(h.images_per_sec),
                "1.00".into(),
            ]),
            Err(e) => rows.push(vec![
                "Horovod".into(),
                "-".into(),
                format!("{e}"),
                "-".into(),
            ]),
        }
        let base = horovod.as_ref().map(|h| h.images_per_sec).unwrap_or(1.0);

        for (mode, fixed) in [("auto", None), ("paper", Some(nms))] {
            for (i, (label, policy, placement)) in policies().into_iter().enumerate() {
                let nm_override = fixed.map(|f| f[i]);
                match run_hetpipe(
                    &cluster,
                    &graph,
                    policy,
                    placement,
                    0,
                    nm_override,
                    HORIZON_SECS,
                ) {
                    Ok((nm, report)) => {
                        let ips = report.throughput_images_per_sec();
                        rows.push(vec![
                            format!("HetPipe {label} ({mode}-Nm)"),
                            nm.to_string(),
                            fmt_ips(ips),
                            format!("{:.2}", ips / base),
                        ]);
                        dump.push(json!({
                            "model": model_name,
                            "policy": label,
                            "nm_mode": mode,
                            "nm": nm,
                            "images_per_sec": ips,
                            "vs_horovod": ips / base,
                            "sync_bytes_inter": report.sync_bytes_inter,
                            "act_bytes_inter": report.act_bytes_inter,
                        }));
                    }
                    Err(e) => rows.push(vec![
                        format!("HetPipe {label} ({mode}-Nm)"),
                        "-".into(),
                        e,
                        "-".into(),
                    ]),
                }
            }
        }
        print_table(
            &format!("Figure 4 ({model_name}): policies vs Horovod, D = 0"),
            &["configuration", "Nm", "img/s", "vs Horovod"],
            &rows,
        );
    }

    println!(
        "\nPaper reference: ResNet-152 Horovod(12) ~415 img/s with ED/HD comparable and \
         ED-local ~1.4x; VGG-19 Horovod ~339 img/s, NP/ED/HD below it, ED-local ~1.8x."
    );
    maybe_write_json(&json!(dump));
}
