//! The fleet simulator's perf harness: events/sec and parallel
//! scaling vs the single-engine executor, with in-bin parity gates.
//!
//! For each fleet size (16 / 64 / 256 VWs; 4 / 16 under `--quick`)
//! the harness times three simulations of the *same* workload — a
//! fleet of two-node replicated cells running ResNet-50 under the
//! wave schedule with timed parameter sync:
//!
//! - **legacy** — the single-engine executor over the expanded flat
//!   cluster (the O(V²)-fanout baseline loop);
//! - **fleet ×1** — one engine per VW driven by a single thread
//!   through the WSP gate bus;
//! - **fleet ×T** — the same engines on all available cores.
//!
//! Parity is enforced in-bin: at the smallest fleet size the merged
//! fleet trace must fingerprint bit-identical to the legacy trace
//! (over a short dedicated run, so the trace stays bounded), and at
//! *every* size the per-VW statistics (completions, waves, pull
//! wait, end instant) must match legacy and be identical between
//! thread counts. The timing runs use per-size horizons (simulated
//! work scaled inversely with fleet size) so every wall time is
//! measurable, and each wall is the minimum over a few repeats —
//! virtualized hosts charge wildly variable page-fault service time
//! (system time can exceed simulation time tenfold between identical
//! runs), and the minimum is the run the fault storms missed. Scaling gates apply only where the machine can
//! express them: parallel efficiency ≥ 0.5 at 16 VWs needs ≥ 4
//! cores, and the ≥ 3× events/sec speedup over legacy at 64 VWs
//! needs ≥ 8 cores — the measured core count is recorded either way.
//! Any violated gate exits non-zero (the CI smoke contract).
//!
//! Flags: `--quick` (small fleets, CI smoke), `--out <path>` (default
//! `BENCH_fleet.json`), `--trace <path>` (merged chrome trace of the
//! smallest fleet).

use hetpipe_cluster::{Cluster, DeviceId, GpuKind, Node};
use hetpipe_core::exec::{run, ExecParams, RunStats, SegmentOpts};
use hetpipe_core::pserver::ShardMap;
use hetpipe_core::{VirtualWorker, WspParams};
use hetpipe_des::{SimTime, Trace};
use hetpipe_fleet::{
    merged_spans, run_fleet, trace_fingerprint, FleetConfig, FleetReport, FleetTopology,
};
use hetpipe_model::ModelGraph;
use hetpipe_schedule::{RecomputePolicy, Schedule};
use serde_json::json;
use std::time::Instant;

const NM: usize = 4;
const D: usize = 0;
const SCHEDULE: Schedule = Schedule::HetPipeWave;

/// Timing repeats per configuration; each reported wall is the
/// minimum (see the module doc on virtualized-host fault noise).
const REPS: usize = 3;

/// Runs `f` `REPS` times; returns the last result and the best wall.
fn best_of<R>(mut f: impl FnMut() -> (R, f64)) -> (R, f64) {
    let (mut r, mut w) = f();
    for _ in 1..REPS {
        let (r2, w2) = f();
        r = r2;
        w = w.min(w2);
    }
    (r, w)
}

/// A two-node single-GPU-per-node cell (pipeline activations cross
/// the NIC) replicated `n_vws` times.
fn topology(graph: &ModelGraph, n_vws: usize) -> FleetTopology {
    let mut cell = Cluster::new();
    for _ in 0..2 {
        cell.add_node(Node::new(GpuKind::Rtx2060, 1));
    }
    let devices: Vec<DeviceId> = cell.devices().collect();
    let gpus = devices.iter().map(|&d| cell.spec_of(d)).collect();
    let links = VirtualWorker::links(&cell, &devices);
    let plan = hetpipe_partition::PartitionSolver::solve(
        &hetpipe_partition::PartitionProblem::new(graph, gpus, links, NM),
    )
    .expect("feasible cell");
    let vw = VirtualWorker {
        index: 0,
        devices,
        plan,
        nm: NM,
    };
    FleetTopology::new(cell, vw, n_vws)
}

fn fleet(
    topo: &FleetTopology,
    graph: &ModelGraph,
    shards: &ShardMap,
    threads: usize,
    keep_traces: bool,
    horizon: SimTime,
) -> (FleetReport, f64) {
    let vws = topo.cell_vws();
    let cfg = FleetConfig {
        cluster: topo.cell(),
        graph,
        vws: &vws,
        wsp: WspParams::new(NM, D),
        shards,
        sync_transfers: true,
        schedule: SCHEDULE,
        recompute: RecomputePolicy::None,
        opts: SegmentOpts::default(),
        threads,
        keep_traces,
    };
    let t = Instant::now();
    let report = run_fleet(&cfg, horizon);
    (report, t.elapsed().as_secs_f64())
}

fn legacy(
    topo: &FleetTopology,
    graph: &ModelGraph,
    shards: &ShardMap,
    horizon: SimTime,
) -> (RunStats, f64) {
    let (cluster, vws) = topo.expanded();
    let t = Instant::now();
    let stats = run(
        ExecParams {
            cluster: &cluster,
            graph,
            vws: &vws,
            wsp: WspParams::new(NM, D),
            shards,
            sync_transfers: true,
            schedule: SCHEDULE,
            recompute: RecomputePolicy::None,
        },
        horizon,
    );
    (stats, t.elapsed().as_secs_f64())
}

/// Per-VW stats parity between a fleet report and the legacy oracle.
fn check_stats_parity(
    n: usize,
    report: &FleetReport,
    stats: &RunStats,
    violations: &mut Vec<String>,
) {
    for (p, v) in report.partials.iter().zip(&stats.vws) {
        if p.completions != v.completions.len() as u64
            || p.waves_pushed != v.waves_pushed
            || p.pull_wait != v.pull_wait
        {
            violations.push(format!(
                "{n} VWs: vw {} stats diverged from legacy (completions {} vs {}, \
                 waves {} vs {}, pull wait {:?} vs {:?})",
                p.vw,
                p.completions,
                v.completions.len(),
                p.waves_pushed,
                v.waves_pushed,
                p.pull_wait,
                v.pull_wait
            ));
        }
    }
    if report.end != stats.end {
        violations.push(format!(
            "{n} VWs: end instant diverged ({:?} fleet vs {:?} legacy)",
            report.end, stats.end
        ));
    }
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let quick = args.iter().any(|a| a == "--quick");
    let arg_after = |flag: &str| {
        args.iter()
            .position(|a| a == flag)
            .and_then(|i| args.get(i + 1).cloned())
    };
    let out = arg_after("--out").unwrap_or_else(|| "BENCH_fleet.json".into());
    let trace_out = arg_after("--trace");
    let counts: &[usize] = if quick { &[4, 16] } else { &[16, 64, 256] };
    // Per-size timing horizon: simulated work scales inversely with
    // fleet size so every wall time is measurable without the large
    // fleets dominating the run.
    let sim_budget = if quick { 1_600.0 } else { 32_000.0 };
    let cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);

    let graph = hetpipe_model::resnet50(32);
    let shards = ShardMap::build_vw_local(&graph);
    let mut violations: Vec<String> = Vec::new();
    let mut rows = Vec::new();

    println!("fleet_bench: ResNet-50, 2-node cells, Nm={NM} D={D}, {cores} core(s)");

    // Trace parity at the smallest size over a short dedicated run
    // (bounds the span sets and the exported chrome trace).
    {
        let n = counts[0];
        let fp_horizon = SimTime::from_secs(20.0);
        let topo = topology(&graph, n);
        let (stats, _) = legacy(&topo, &graph, &shards, fp_horizon);
        let (one, _) = fleet(&topo, &graph, &shards, 1, true, fp_horizon);
        let merged = merged_spans(&topo, &one);
        let fleet_fp = trace_fingerprint(&merged);
        let legacy_fp = trace_fingerprint(stats.trace.spans());
        if fleet_fp != legacy_fp {
            violations.push(format!(
                "{n} VWs: merged fleet trace != legacy trace \
                 ({fleet_fp:#018x} vs {legacy_fp:#018x})"
            ));
        }
        if let Some(path) = &trace_out {
            let mut t: Trace<_> = Trace::new();
            for s in &merged {
                t.record(s.resource, s.start, s.end, s.tag);
            }
            let devs = topo.devices_per_cell();
            let nodes = topo.nodes_per_cell();
            let named = t.write_chrome_trace_file(
                path,
                |rid| {
                    if rid.0 < n * devs {
                        format!("vw{} gpu{}", rid.0 / devs, rid.0 % devs)
                    } else {
                        let j = rid.0 - n * devs;
                        format!("vw{} nic{}", j / nodes, j % nodes)
                    }
                },
                |tag| tag.label(),
                |tag| tag.category(),
            );
            match named {
                Ok(()) => println!("(merged trace written to {path})"),
                Err(e) => eprintln!("cannot write {path}: {e}"),
            }
        }
    }

    for &n in counts {
        let horizon = SimTime::from_secs(sim_budget / n as f64);
        let topo = topology(&graph, n);
        let (stats, legacy_wall) = best_of(|| legacy(&topo, &graph, &shards, horizon));
        let (one, one_wall) = best_of(|| fleet(&topo, &graph, &shards, 1, false, horizon));
        let (many, many_wall) = best_of(|| fleet(&topo, &graph, &shards, cores, false, horizon));

        // Parity: per-VW stats vs legacy, and thread-count
        // determinism, at every size.
        check_stats_parity(n, &one, &stats, &mut violations);
        check_stats_parity(n, &many, &stats, &mut violations);
        if one.partials != many.partials {
            violations.push(format!(
                "{n} VWs: partials differ between 1 and {} threads",
                many.threads
            ));
        }

        let threads_used = many.threads.min(n);
        let self_speedup = one_wall / many_wall;
        let efficiency = self_speedup / threads_used as f64;
        let speedup_vs_legacy = legacy_wall / many_wall;
        println!(
            "{n:>4} VWs  legacy {:>8.0} ev/s ({legacy_wall:>6.2}s)  fleet x1 {:>8.0} ev/s \
             ({one_wall:>6.2}s)  fleet x{threads_used} {:>8.0} ev/s ({many_wall:>6.2}s)  \
             speedup {speedup_vs_legacy:>5.2}x  eff {efficiency:>4.2}",
            stats.events as f64 / legacy_wall,
            one.events as f64 / one_wall,
            many.events as f64 / many_wall,
        );
        rows.push(json!({
            "vws": n,
            "threads": threads_used,
            "horizon_secs": horizon.as_secs(),
            "legacy_wall_secs": legacy_wall,
            "legacy_events": stats.events,
            "legacy_events_per_sec": stats.events as f64 / legacy_wall,
            "fleet1_wall_secs": one_wall,
            "fleet1_events": one.events,
            "fleet1_events_per_sec": one.events as f64 / one_wall,
            "fleetN_wall_secs": many_wall,
            "fleetN_events": many.events,
            "fleetN_events_per_sec": many.events as f64 / many_wall,
            "speedup_vs_legacy": speedup_vs_legacy,
            "self_speedup": self_speedup,
            "parallel_efficiency": efficiency,
        }));

        // Scaling gates, applied only where the machine can express
        // them; the JSON records the cores so absent gates are
        // auditable.
        if n == 16 && cores >= 4 && efficiency < 0.5 {
            violations.push(format!(
                "16 VWs: parallel efficiency {efficiency:.2} < 0.5 on {cores} cores"
            ));
        }
        if n == 64 && cores >= 8 && speedup_vs_legacy < 3.0 {
            violations.push(format!(
                "64 VWs: speedup over legacy {speedup_vs_legacy:.2}x < 3x on {cores} cores"
            ));
        }
    }

    let doc = json!({
        "quick": quick,
        "cores": cores,
        "model": "ResNet-50/32",
        "cell": "2 nodes x 1 RTX 2060",
        "nm": NM,
        "d": D,
        "schedule": format!("{SCHEDULE}"),
        "rows": rows,
        "gates": {
            "parity": "always",
            "efficiency_at_16_vws": { "target": 0.5, "applies": cores >= 4 },
            "speedup_vs_legacy_at_64_vws": { "target": 3.0, "applies": cores >= 8 && !quick },
        },
        "parity_ok": violations.is_empty(),
        "violations": violations.clone(),
    });
    match std::fs::write(
        &out,
        serde_json::to_string_pretty(&doc).expect("serializable"),
    ) {
        Ok(()) => println!("(json written to {out})"),
        Err(e) => {
            eprintln!("cannot write {out}: {e}");
            std::process::exit(1);
        }
    }

    if !violations.is_empty() {
        eprintln!("\nACCEPTANCE FAILURES ({}):", violations.len());
        for v in &violations {
            eprintln!("  {v}");
        }
        std::process::exit(1);
    }
}
