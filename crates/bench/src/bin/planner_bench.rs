//! The planner's perf harness: baseline vs optimized plan-time, with
//! in-bin parity checks.
//!
//! The plan→simulate pipeline is the system's hot path (the order
//! search alone runs hundreds of DP solves per build), and the
//! Criterion benches are gated off in this offline workspace
//! (`autobenches = false`). This dependency-free bin keeps the perf
//! trajectory measurable anyway: it times
//!
//! - **solve** — one interval-DP partition solve
//!   ([`PartitionSolver::solve`]: O(1) prefix-sum probes + frontier
//!   prune) against [`PartitionSolver::solve_reference`] (naive
//!   per-probe layer re-summation, no prune — the pre-optimization
//!   planner);
//! - **nm-search** — the binary-searched `Max_m`
//!   ([`max_feasible_nm_with`]) against the linear rescan
//!   ([`max_feasible_nm_linear`]);
//! - **order-search** — the paper's 4-node heterogeneous cluster
//!   configuration (a VRGQ virtual worker, `order_search = true`):
//!   every distinct kind-order scored by its best proxy rate over the
//!   feasible `Nm` range, optimized (parallel fan-out + fast solver)
//!   vs baseline (serial + reference solver);
//! - **timetable** — the interleaved composite streams: one shared
//!   joint timetable per virtual worker ([`GpuStream::shared_set`])
//!   vs G independent per-GPU replays;
//! - **end-to-end** — wall-clock `HetPipeSystem::build` (+ a short
//!   simulate) on the paper and whimpy clusters, recorded for the
//!   trajectory (no baseline counterpart).
//!
//! Every timed pair is also a **parity check**: identical plans,
//! identical `Max_m`, identical winning order, identical op
//! sequences. Any parity violation exits non-zero — this is the CI
//! smoke contract.
//!
//! Flags: `--quick` (fewer repetitions, CI smoke), `--out <path>`
//! (default `BENCH_planner.json`).

use hetpipe_cluster::{Cluster, GpuKind, LinkKind};
use hetpipe_core::{AllocationPolicy, HetPipeSystem, Placement, SystemConfig};
use hetpipe_des::SimTime;
use hetpipe_model::memory::nm_saturation_limit;
use hetpipe_model::{resnet152, vgg19, ModelGraph};
use hetpipe_partition::order::{search_orders, search_orders_par};
use hetpipe_partition::{
    max_feasible_nm_linear, max_feasible_nm_with, PartitionProblem, PartitionSolver,
};
use hetpipe_schedule::{GpuOp, GpuStream, PipelineSchedule, RecomputePolicy, Schedule, WspParams};
use serde_json::json;
use std::time::Instant;

/// Times `f` as the best (minimum) per-call seconds over `reps`
/// repetitions, returning `(secs_per_call, last_result)`.
fn time_best_of<R>(reps: usize, mut f: impl FnMut() -> R) -> (f64, R) {
    assert!(reps >= 1);
    let mut best = f64::INFINITY;
    let mut result = None;
    for _ in 0..reps {
        let t = Instant::now();
        let r = f();
        best = best.min(t.elapsed().as_secs_f64());
        result = Some(r);
    }
    (best, result.unwrap())
}

/// The paper's heterogeneous virtual worker: one GPU of each testbed
/// kind (the ED allocation on the 4-node cluster).
fn vrgq() -> Vec<hetpipe_cluster::gpu::GpuSpec> {
    vec![
        GpuKind::TitanV.spec(),
        GpuKind::TitanRtx.spec(),
        GpuKind::QuadroP4000.spec(),
        GpuKind::Rtx2060.spec(),
    ]
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let quick = args.iter().any(|a| a == "--quick");
    let out = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1).cloned())
        .unwrap_or_else(|| "BENCH_planner.json".into());
    let (solve_reps, search_reps, tt_reps) = if quick { (5, 2, 2) } else { (60, 8, 6) };

    let mut parity_failures: Vec<String> = Vec::new();
    let mut parity = |ok: bool, what: String| {
        if !ok {
            eprintln!("PARITY VIOLATION: {what}");
            parity_failures.push(what);
        }
    };

    // ------------------------------------------------------------------
    // 1. Plain DP solves.
    // ------------------------------------------------------------------
    let models: Vec<(&str, ModelGraph)> =
        vec![("VGG-19", vgg19(32)), ("ResNet-152", resnet152(32))];
    let mut solve_rows = Vec::new();
    let mut solve_speedups = Vec::new();
    for (name, graph) in &models {
        let problem = PartitionProblem::new(graph, vrgq(), vec![LinkKind::Pcie; 3], 4);
        let (base_secs, base_plan) =
            time_best_of(solve_reps, || PartitionSolver::solve_reference(&problem));
        let (opt_secs, opt_plan) = time_best_of(solve_reps, || PartitionSolver::solve(&problem));
        let (base_plan, opt_plan) = (base_plan.unwrap(), opt_plan.unwrap());
        let same = base_plan.ranges == opt_plan.ranges
            && (base_plan.bottleneck_secs - opt_plan.bottleneck_secs).abs()
                <= 1e-9 * opt_plan.bottleneck_secs.abs();
        parity(
            same,
            format!("solve {name}: reference and optimized plans differ"),
        );
        let speedup = base_secs / opt_secs;
        solve_speedups.push(speedup);
        println!(
            "solve        paper-vrgq {name:<11} baseline {:>9.1}µs  optimized {:>9.1}µs  {speedup:>5.1}x",
            base_secs * 1e6,
            opt_secs * 1e6
        );
        solve_rows.push(json!({
            "cluster": "paper-vrgq",
            "model": name,
            "nm": 4,
            "baseline_secs": base_secs,
            "optimized_secs": opt_secs,
            "speedup": speedup,
            "parity": same,
        }));
    }

    // ------------------------------------------------------------------
    // 2. Max_m searches (binary vs linear), paper + whimpy clusters.
    // ------------------------------------------------------------------
    let mut nm_rows = Vec::new();
    let whimpy_gpus = vec![GpuKind::Rtx2060.spec(); 4];
    let rn64 = resnet152(64);
    let nm_configs: Vec<(&str, &ModelGraph, Vec<_>)> = vec![
        ("paper-vrgq/VGG-19", &models[0].1, vrgq()),
        ("paper-vrgq/ResNet-152", &models[1].1, vrgq()),
        ("whimpy-gggg/ResNet-152@64", &rn64, whimpy_gpus),
    ];
    for (label, graph, gpus) in &nm_configs {
        let links = vec![LinkKind::Pcie; 3];
        let limit = nm_saturation_limit(4);
        let (base_secs, base) = time_best_of(search_reps, || {
            max_feasible_nm_linear(
                graph,
                gpus,
                &links,
                limit,
                Schedule::HetPipeWave,
                RecomputePolicy::None,
            )
        });
        let (opt_secs, opt) = time_best_of(search_reps, || {
            max_feasible_nm_with(
                graph,
                gpus,
                &links,
                limit,
                Schedule::HetPipeWave,
                RecomputePolicy::None,
            )
        });
        let same = match (&base, &opt) {
            (None, None) => true,
            (Some((a, pa)), Some((b, pb))) => a == b && pa.ranges == pb.ranges,
            _ => false,
        };
        parity(same, format!("nm-search {label}: binary != linear"));
        let speedup = base_secs / opt_secs;
        println!(
            "nm-search    {label:<27} baseline {:>9.1}µs  optimized {:>9.1}µs  {speedup:>5.1}x",
            base_secs * 1e6,
            opt_secs * 1e6
        );
        nm_rows.push(json!({
            "config": label,
            "limit": limit,
            "max_m": opt.as_ref().map(|(nm, _)| *nm),
            "baseline_secs": base_secs,
            "optimized_secs": opt_secs,
            "speedup": speedup,
            "parity": same,
        }));
    }

    // ------------------------------------------------------------------
    // 3. The acceptance configuration: order search over the paper's
    //    4-node heterogeneous cluster (order_search=true — every
    //    distinct kind-order of a VRGQ virtual worker scored by its
    //    best proxy rate over the feasible Nm range, exactly the
    //    system builder's pass-1 objective).
    // ------------------------------------------------------------------
    let gpus = vrgq();
    let limit = nm_saturation_limit(4);
    let rate_of = |plan: &hetpipe_partition::PartitionPlan, nm: usize| {
        let latency: f64 = plan.stage_secs.iter().sum();
        (1.0 / plan.bottleneck_secs).min(nm as f64 / latency)
    };
    // The pre-optimization pass-1 objective: a fresh naive solve per
    // Nm (memory is monotone in Nm, so the first infeasible Nm ends
    // the sweep).
    let baseline_proxy = |order: &[usize], graph: &ModelGraph| -> Option<f64> {
        let ordered: Vec<_> = order.iter().map(|&i| gpus[i].clone()).collect();
        let links = vec![LinkKind::Pcie; 3];
        let mut best: Option<f64> = None;
        for nm in 1..=limit {
            let problem = PartitionProblem::new(graph, ordered.clone(), links.clone(), nm);
            let Some(plan) = PartitionSolver::solve_reference(&problem).ok() else {
                break;
            };
            let rate = rate_of(&plan, nm);
            if best.is_none_or(|r| rate > r) {
                best = Some(rate);
            }
        }
        best
    };
    // The optimized pass-1 objective: an incremental NmSweep (O(1)
    // probes, frontier prune, answer-preserving reuse across Nm).
    let optimized_proxy = |order: &[usize], graph: &ModelGraph| -> Option<f64> {
        let ordered: Vec<_> = order.iter().map(|&i| gpus[i].clone()).collect();
        let links = vec![LinkKind::Pcie; 3];
        let mut sweep = hetpipe_partition::NmSweep::new(
            graph,
            &ordered,
            &links,
            Schedule::HetPipeWave,
            RecomputePolicy::None,
        );
        let mut best: Option<f64> = None;
        for nm in 1..=limit {
            let Ok(plan) = sweep.solve(nm) else { break };
            let rate = rate_of(&plan, nm);
            if best.is_none_or(|r| rate > r) {
                best = Some(rate);
            }
        }
        best
    };
    let mut order_rows = Vec::new();
    let mut order_speedups = Vec::new();
    for (name, graph) in &models {
        let (base_secs, base) = time_best_of(search_reps, || {
            search_orders(&gpus, |order| baseline_proxy(order, graph))
        });
        let (opt_secs, opt) = time_best_of(search_reps, || {
            search_orders_par(&gpus, |order| optimized_proxy(order, graph))
        });
        let (base, opt) = (base.unwrap(), opt.unwrap());
        let same =
            base.0 == opt.0 && (base.1 - opt.1).abs() <= 1e-9 * opt.1.abs() && base.2 == opt.2;
        parity(
            same,
            format!("order-search {name}: serial+reference != parallel+optimized"),
        );
        let speedup = base_secs / opt_secs;
        order_speedups.push(speedup);
        println!(
            "order-search paper-vrgq {name:<11} baseline {:>9.1}ms  optimized {:>9.1}ms  {speedup:>5.1}x",
            base_secs * 1e3,
            opt_secs * 1e3
        );
        order_rows.push(json!({
            "cluster": "paper-vrgq",
            "model": name,
            "order_search": true,
            "orders": opt.2,
            "baseline_secs": base_secs,
            "optimized_secs": opt_secs,
            "speedup": speedup,
            "parity": same,
        }));
    }

    // ------------------------------------------------------------------
    // 4. Shared joint timetable vs per-GPU independent replays.
    // ------------------------------------------------------------------
    let mut timetable_rows = Vec::new();
    for (gpus_n, chunks, nm, ops_per_gpu) in [(4usize, 2usize, 8usize, 4000usize), (8, 3, 8, 4000)]
    {
        let sched = hetpipe_schedule::Interleaved1F1B {
            chunks,
            composite: true,
        };
        let wsp = WspParams::new(nm, 0);
        let k = sched.virtual_stages(gpus_n);
        let caps: Vec<u64> = (0..k)
            .map(|s| sched.max_in_flight(s, k, nm) as u64)
            .collect();
        let (base_secs, base_ops) = time_best_of(tt_reps, || {
            // The pre-optimization form: every GPU's stream replays the
            // whole joint timetable independently (G× the slot work).
            let mut all: Vec<Vec<GpuOp>> = Vec::new();
            for g in 0..gpus_n {
                let stream = GpuStream::new(g, gpus_n, chunks, wsp, caps.clone());
                all.push(stream.take(ops_per_gpu).collect());
            }
            all
        });
        let (opt_secs, opt_ops) = time_best_of(tt_reps, || {
            let mut set = GpuStream::shared_set(gpus_n, chunks, wsp, caps.clone(), vec![false; k]);
            let mut all: Vec<Vec<GpuOp>> = vec![Vec::with_capacity(ops_per_gpu); gpus_n];
            // Round-robin consumption, as the executor's event loop does.
            for _ in 0..ops_per_gpu {
                for (g, stream) in set.iter_mut().enumerate() {
                    all[g].push(stream.next().unwrap());
                }
            }
            all
        });
        let same = base_ops == opt_ops;
        parity(
            same,
            format!("timetable {gpus_n}x{chunks}: shared set diverged from independent replays"),
        );
        let speedup = base_secs / opt_secs;
        println!(
            "timetable    {gpus_n} GPUs x {chunks} chunks      baseline {:>9.1}ms  optimized {:>9.1}ms  {speedup:>5.1}x",
            base_secs * 1e3,
            opt_secs * 1e3
        );
        timetable_rows.push(json!({
            "gpus": gpus_n,
            "chunks": chunks,
            "nm": nm,
            "ops_per_gpu": ops_per_gpu,
            "baseline_secs": base_secs,
            "optimized_secs": opt_secs,
            "speedup": speedup,
            "parity": same,
        }));
    }

    // ------------------------------------------------------------------
    // 5. Online re-planning: warm-started solve (incumbent-bounded DP,
    //    what the fault-aware runtime runs at a splice) vs a cold
    //    solve of the same derated instance. Parity: identical plans.
    // ------------------------------------------------------------------
    let mut replan_rows = Vec::new();
    for (name, graph) in &models {
        // The replan shape: the incumbent plan was solved at nominal
        // specs; a 30% straggler derates one GPU and the planner
        // re-solves with observed costs.
        let links = vec![LinkKind::Pcie; 3];
        let nominal = PartitionProblem::new(graph, vrgq(), links.clone(), 4);
        let incumbent = PartitionSolver::solve(&nominal).expect("feasible");
        let mut derated = vrgq();
        derated[0] = derated[0].derated(1.3);
        let problem = PartitionProblem::new(graph, derated, links, 4);
        let (cold_secs, cold) = time_best_of(solve_reps, || PartitionSolver::solve(&problem));
        let (warm_secs, warm) = time_best_of(solve_reps, || {
            PartitionSolver::solve_warm(&problem, Some(&incumbent.ranges))
        });
        let (cold, warm) = (cold.unwrap(), warm.unwrap());
        let same = cold.ranges == warm.ranges
            && (cold.bottleneck_secs - warm.bottleneck_secs).abs()
                <= 1e-9 * warm.bottleneck_secs.abs();
        parity(
            same,
            format!("replan {name}: warm-started and cold plans differ"),
        );
        let speedup = cold_secs / warm_secs;
        println!(
            "replan       paper-vrgq {name:<11} cold     {:>9.1}µs  warm      {:>9.1}µs  {speedup:>5.1}x",
            cold_secs * 1e6,
            warm_secs * 1e6
        );
        replan_rows.push(json!({
            "cluster": "paper-vrgq",
            "model": name,
            "nm": 4,
            "derate": 1.3,
            "cold_secs": cold_secs,
            "warm_secs": warm_secs,
            "speedup": speedup,
            "parity": same,
        }));
    }

    // ------------------------------------------------------------------
    // 6. End-to-end plan + short simulate on the paper and whimpy
    //    clusters (trajectory rows; no baseline counterpart).
    // ------------------------------------------------------------------
    let mut e2e_rows = Vec::new();
    let clusters: Vec<(&str, Cluster)> = vec![
        ("paper", Cluster::paper_testbed()),
        ("whimpy", Cluster::testbed_subset(&[GpuKind::Rtx2060; 4])),
    ];
    for (cluster_name, cluster) in &clusters {
        let graph = vgg19(32);
        let config = SystemConfig {
            policy: AllocationPolicy::EqualDistribution,
            placement: Placement::Local,
            order_search: true,
            ..SystemConfig::default()
        };
        let (build_secs, sys) = time_best_of(if quick { 1 } else { 3 }, || {
            HetPipeSystem::build(cluster, &graph, &config).expect("buildable")
        });
        let (sim_secs, _) = time_best_of(if quick { 1 } else { 3 }, || {
            sys.run(SimTime::from_secs(10.0))
        });
        println!(
            "end-to-end   {cluster_name:<7} VGG-19 ED      build {:>9.1}ms  simulate(10s) {:>7.1}ms",
            build_secs * 1e3,
            sim_secs * 1e3
        );
        e2e_rows.push(json!({
            "cluster": cluster_name,
            "model": "VGG-19",
            "order_search": true,
            "build_secs": build_secs,
            "simulate_horizon_secs": 10.0,
            "simulate_secs": sim_secs,
            "nm": sys.nm(),
        }));
    }

    let min_order = order_speedups.iter().cloned().fold(f64::INFINITY, f64::min);
    let min_solve = solve_speedups.iter().cloned().fold(f64::INFINITY, f64::min);
    println!(
        "\nacceptance: order-search speedup {min_order:.1}x (target ≥5x), \
         plain solve speedup {min_solve:.1}x (target ≥2x), parity {}",
        if parity_failures.is_empty() {
            "ok"
        } else {
            "VIOLATED"
        }
    );

    let doc = json!({
        "bench": "planner",
        "quick": quick,
        "threads": std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1),
        "solve": solve_rows,
        "nm_search": nm_rows,
        "order_search": order_rows,
        "timetable": timetable_rows,
        "replan": replan_rows,
        "end_to_end": e2e_rows,
        "acceptance": {
            "order_search_min_speedup": min_order,
            "order_search_target": 5.0,
            "solve_min_speedup": min_solve,
            "solve_target": 2.0,
            "parity_ok": parity_failures.is_empty(),
            "parity_failures": parity_failures.clone(),
        },
    });
    std::fs::write(
        &out,
        serde_json::to_string_pretty(&doc).expect("serializable"),
    )
    .unwrap_or_else(|e| {
        eprintln!("cannot write {out}: {e}");
        std::process::exit(1);
    });
    println!("(json written to {out})");

    if !parity_failures.is_empty() {
        eprintln!("\nPARITY FAILURES ({}):", parity_failures.len());
        for f in &parity_failures {
            eprintln!("  {f}");
        }
        std::process::exit(1);
    }
}
