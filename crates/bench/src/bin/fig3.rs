//! Figure 3: single-virtual-worker throughput and GPU utilization as
//! the number of concurrent minibatches `Nm` varies.
//!
//! Reproduces both panels for ResNet-152 and VGG-19 across the seven
//! VW configurations of Table 3 (`VVVV`, `RRRR`, `GGGG`, `QQQQ`,
//! `VRGQ`, `VVQQ`, `RRGG`). For each `(config, Nm)` the harness builds
//! a single-VW HetPipe system (Custom allocation) and simulates it;
//! memory-infeasible points print as `x` — the paper's missing data
//! points ("the GPU memory cannot accommodate such situations").
//!
//! Expected shape (paper): throughput rises with `Nm` and saturates;
//! `Nm = 1` absolute img/s ordering `VVVV > RRRR > GGGG ~ RRGG >
//! VVQQ > QQQQ > VRGQ`-ish; heterogeneous VWs show skewed per-stage
//! utilization.

use hetpipe_bench::{fig3_configs, fmt_ips, maybe_write_json, print_table};
use hetpipe_cluster::Cluster;
use hetpipe_core::{AllocationPolicy, HetPipeSystem, Placement, SystemConfig};
use hetpipe_des::SimTime;
use serde_json::json;

fn main() {
    let cluster = Cluster::paper_testbed();
    let mut dump = Vec::new();

    for (model_name, graph) in [
        ("ResNet-152", hetpipe_model::resnet152(32)),
        ("VGG-19", hetpipe_model::vgg19(32)),
    ] {
        let mut rows = Vec::new();
        for (label, devices) in fig3_configs() {
            let mut cells = vec![label.to_string()];
            let mut base = None;
            let mut series = Vec::new();
            for nm in 1..=7usize {
                let config = SystemConfig {
                    policy: AllocationPolicy::Custom(vec![devices.clone()]),
                    placement: Placement::Default,
                    staleness_bound: 0,
                    nm_override: Some(nm),
                    // Figure 3 measures standalone virtual workers.
                    sync_transfers: false,
                    ..SystemConfig::default()
                };
                match HetPipeSystem::build(&cluster, &graph, &config) {
                    Ok(sys) => {
                        let report = sys.run(SimTime::from_secs(40.0));
                        let ips = report.throughput_images_per_sec();
                        let util = report.max_stage_utilization[0];
                        if base.is_none() {
                            base = Some(ips);
                        }
                        let norm = ips / base.expect("set above");
                        cells.push(format!("{:.2}x/{:.0}%", norm, util * 100.0));
                        series.push(json!({
                            "nm": nm,
                            "images_per_sec": ips,
                            "normalized": norm,
                            "max_stage_utilization": util,
                        }));
                    }
                    Err(_) => {
                        cells.push("x".to_string());
                    }
                }
            }
            cells.push(base.map_or("-".into(), fmt_ips));
            rows.push(cells);
            dump.push(json!({
                "model": model_name,
                "config": label,
                "series": series,
            }));
        }
        print_table(
            &format!("Figure 3 ({model_name}): normalized throughput / max stage GPU util vs Nm"),
            &[
                "config",
                "Nm=1",
                "Nm=2",
                "Nm=3",
                "Nm=4",
                "Nm=5",
                "Nm=6",
                "Nm=7",
                "abs@Nm=1 (img/s)",
            ],
            &rows,
        );
    }

    println!(
        "\nPaper reference (Nm = 1 absolute img/s): ResNet-152 VVVV 96, RRRR 87, GGGG 58, \
         QQQQ 43, VRGQ 42, VVQQ 53, RRGG 58; VGG-19 VVVV 119, RRRR 107, GGGG 62, QQQQ 51, \
         VRGQ 60, VVQQ 116, RRGG 68."
    );
    maybe_write_json(&json!(dump));
}
