//! Figure 6: VGG-19 top-1 accuracy vs time as the clock-distance bound
//! `D` varies (0, 4, 32) against Horovod, 16 GPUs, ED-local.
//!
//! Composition as in Figure 5: simulated updates/second x real
//! accuracy-per-update from the threaded trainer running the actual
//! staleness semantics (with D = 32 the workers pull global weights
//! only every 33 waves, so their replicas drift — the statistical cost
//! the paper measures as a 4.7% slowdown vs D = 4).
//!
//! Expected shape (paper): D = 0 converges ~29% faster than Horovod;
//! D = 4 is best (~49% faster than Horovod, ~28% faster than D = 0 —
//! less waiting, same statistical efficiency); D = 32 degrades
//! convergence slightly vs D = 4.

use hetpipe_allreduce::HorovodBaseline;
use hetpipe_bench::{maybe_write_json, print_table, run_hetpipe, HORIZON_SECS};
use hetpipe_cluster::Cluster;
use hetpipe_core::convergence::{time_to_accuracy, AccuracyCurve};
use hetpipe_core::{AllocationPolicy, Placement};
use hetpipe_train::{train, Dataset, Mode, TrainConfig};
use serde_json::json;

/// Targets to report (the paper uses a single 67% top-1 target for
/// VGG-19; several targets show where the advantage holds).
const TARGETS: [f64; 3] = [0.50, 0.60, 0.70];
const TOTAL_UPDATES: u64 = 16_000;

fn trainer_curve(mode: Mode, workers: usize, dataset: &Dataset) -> AccuracyCurve {
    let config = TrainConfig {
        mode,
        workers,
        dims: vec![24, 64, 32, 8],
        batch: 32,
        lr: 0.03,
        momentum: 0.0,
        steps_per_worker: TOTAL_UPDATES / workers as u64,
        seed: 42,
        snapshot_every: 100,
    };
    let out = train(dataset, &config);
    AccuracyCurve::new(out.curve_steps, out.curve_accuracy)
}

fn main() {
    let dataset = Dataset::teacher(24, 8, 32, 8192, 2048, 7);
    let cluster = Cluster::paper_testbed();
    let graph = hetpipe_model::vgg19(32);

    let horovod = HorovodBaseline::evaluate_all(&cluster, &graph).expect("VGG fits all GPUs");
    let horovod_ups = horovod.images_per_sec / 32.0;
    let bsp_curve = trainer_curve(Mode::Bsp, 16, &dataset);

    // (label, updates/s, curve) series: Horovod first, then D sweeps.
    let mut series: Vec<(String, f64, AccuracyCurve)> =
        vec![("Horovod (16 GPUs)".into(), horovod_ups, bsp_curve.clone())];
    let mut sim_stats = Vec::new();
    for d in [0usize, 4, 32] {
        let (nm, report) = run_hetpipe(
            &cluster,
            &graph,
            AllocationPolicy::EqualDistribution,
            Placement::Local,
            d,
            None,
            HORIZON_SECS,
        )
        .expect("ED-local builds");
        let ups = report.throughput_minibatches_per_sec();
        sim_stats.push((d, nm, report.total_pull_wait_secs()));
        series.push((
            format!("HetPipe D={d} (Nm={nm})"),
            ups,
            trainer_curve(Mode::Wsp { nm, d }, 4, &dataset),
        ));
    }

    let mut rows = Vec::new();
    let mut dump = Vec::new();
    for (label, ups, curve) in &series {
        let final_acc = *curve.accuracy.last().expect("non-empty curve");
        let mut cells = vec![
            label.clone(),
            format!("{ups:.1}"),
            format!("{final_acc:.3}"),
        ];
        let mut times = Vec::new();
        for target in TARGETS {
            let t = time_to_accuracy(*ups, curve, target);
            let h = time_to_accuracy(horovod_ups, &bsp_curve, target);
            cells.push(match (t, h) {
                (Some(t), Some(h)) => format!("{t:.0}s ({:+.0}%)", (1.0 - t / h) * 100.0),
                (Some(t), None) => format!("{t:.0}s"),
                _ => "never".to_string(),
            });
            times.push(t);
        }
        rows.push(cells);
        dump.push(json!({
            "config": label,
            "updates_per_sec": ups,
            "final_accuracy": final_acc,
            "times_to_targets": times,
            "targets": TARGETS,
        }));
    }

    print_table(
        "Figure 6 (VGG-19 convergence): staleness bound D vs Horovod, ED-local",
        &[
            "configuration",
            "updates/s",
            "final acc",
            "to 50%",
            "to 60%",
            "to 70%",
        ],
        &rows,
    );
    for (d, nm, wait) in sim_stats {
        println!("  D={d}: Nm={nm}, total pull waiting {wait:.2}s over the simulated minute");
    }
    println!(
        "\nPaper reference: D=0 ~29% faster than Horovod; D=4 ~49% faster than Horovod \
         (and ~28% faster than D=0); D=32 ~4.7% slower to converge than D=4."
    );
    maybe_write_json(&json!(dump));
}
