//! Section 8.4's synchronization-overhead analysis: waiting time vs
//! true idle time as `D` varies.
//!
//! The paper reports (VGG-19, ED-local): average waiting time at D = 4
//! is ~62% of that at D = 0, and only ~18% of waiting time is true
//! idleness because the pipeline keeps executing already-admitted
//! minibatches while waiting.
//!
//! ED-local virtual workers are identical, so in a perfectly
//! deterministic simulation they barely wait; the NP policy's
//! heterogeneous VWs show the effect at full strength, so both are
//! reported.

use hetpipe_bench::{maybe_write_json, print_table, run_hetpipe, HORIZON_SECS};
use hetpipe_cluster::Cluster;
use hetpipe_core::{AllocationPolicy, Placement};
use serde_json::json;

fn main() {
    let cluster = Cluster::paper_testbed();
    let graph = hetpipe_model::vgg19(32);

    let mut rows = Vec::new();
    let mut dump = Vec::new();

    for (policy_name, policy, placement) in [
        ("NP", AllocationPolicy::NodePartition, Placement::Default),
        (
            "ED-local",
            AllocationPolicy::EqualDistribution,
            Placement::Local,
        ),
    ] {
        let mut d0_wait: Option<f64> = None;
        for d in [0usize, 4] {
            let (nm, report) = run_hetpipe(
                &cluster,
                &graph,
                policy.clone(),
                placement,
                d,
                None,
                HORIZON_SECS,
            )
            .expect("builds");
            let wait = report.total_pull_wait_secs();
            let idle = report.total_idle_in_wait_secs();
            let vs_d0 = match d0_wait {
                None => {
                    d0_wait = Some(wait);
                    "100%".to_string()
                }
                Some(w0) if w0 > 0.0 => format!("{:.0}%", wait / w0 * 100.0),
                Some(_) => "-".to_string(),
            };
            let idle_frac = report
                .idle_fraction_of_wait()
                .map_or("-".to_string(), |f| format!("{:.0}%", f * 100.0));
            rows.push(vec![
                format!("{policy_name} D={d} (Nm={nm})"),
                format!("{:.0}", report.throughput_images_per_sec()),
                format!("{wait:.2}s"),
                vs_d0,
                idle_frac,
            ]);
            dump.push(json!({
                "policy": policy_name,
                "d": d,
                "waiting_secs": wait,
                "idle_secs": idle,
                "throughput": report.throughput_images_per_sec(),
            }));
        }
    }

    print_table(
        "Section 8.4: pull waiting vs true idle time (VGG-19, 60s simulated)",
        &[
            "configuration",
            "img/s",
            "total waiting",
            "vs D=0",
            "idle/waiting",
        ],
        &rows,
    );
    println!(
        "\nPaper reference (ED-local): waiting at D=4 is ~62% of D=0; true idle is only \
         ~18% of waiting because the pipeline continues while waiting. Heterogeneous \
         policies (NP) show the effect at full strength in a deterministic simulation."
    );
    maybe_write_json(&json!(dump));
}
