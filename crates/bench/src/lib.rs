//! Shared utilities for the experiment harnesses.
//!
//! Every binary in this crate regenerates one table or figure of the
//! paper (see DESIGN.md's per-experiment index) and prints a
//! human-readable table plus, when `--json <path>` is given, a
//! machine-readable JSON dump recorded in EXPERIMENTS.md.

use hetpipe_cluster::{Cluster, DeviceId, GpuKind};
use hetpipe_core::{AllocationPolicy, HetPipeSystem, Placement, SystemConfig, SystemReport};
use hetpipe_des::SimTime;
use hetpipe_model::ModelGraph;

/// Default simulated horizon for throughput experiments.
pub const HORIZON_SECS: f64 = 60.0;

/// Prints a fixed-width table.
pub fn print_table(title: &str, headers: &[&str], rows: &[Vec<String>]) {
    println!("\n=== {title} ===");
    let widths: Vec<usize> = headers
        .iter()
        .enumerate()
        .map(|(i, h)| {
            rows.iter()
                .map(|r| r.get(i).map_or(0, |c| c.len()))
                .chain(std::iter::once(h.len()))
                .max()
                .unwrap_or(0)
        })
        .collect();
    let line = |cells: Vec<String>| {
        let mut s = String::new();
        for (i, c) in cells.iter().enumerate() {
            s.push_str(&format!("{:<w$}  ", c, w = widths[i]));
        }
        println!("{}", s.trim_end());
    };
    line(headers.iter().map(|h| h.to_string()).collect());
    line(widths.iter().map(|w| "-".repeat(*w)).collect());
    for r in rows {
        line(r.clone());
    }
}

/// Writes a JSON value to the path given after a `--json` CLI flag, if
/// present.
pub fn maybe_write_json(value: &serde_json::Value) {
    let args: Vec<String> = std::env::args().collect();
    if let Some(i) = args.iter().position(|a| a == "--json") {
        if let Some(path) = args.get(i + 1) {
            std::fs::write(
                path,
                serde_json::to_string_pretty(value).expect("serializable"),
            )
            .unwrap_or_else(|e| eprintln!("cannot write {path}: {e}"));
            println!("(json written to {path})");
        }
    }
}

/// The seven single-VW configurations of Figure 3 as device lists on
/// the paper testbed.
pub fn fig3_configs() -> Vec<(&'static str, Vec<DeviceId>)> {
    vec![
        (
            "VVVV",
            vec![DeviceId(0), DeviceId(1), DeviceId(2), DeviceId(3)],
        ),
        (
            "RRRR",
            vec![DeviceId(4), DeviceId(5), DeviceId(6), DeviceId(7)],
        ),
        (
            "GGGG",
            vec![DeviceId(8), DeviceId(9), DeviceId(10), DeviceId(11)],
        ),
        (
            "QQQQ",
            vec![DeviceId(12), DeviceId(13), DeviceId(14), DeviceId(15)],
        ),
        (
            "VRGQ",
            vec![DeviceId(0), DeviceId(4), DeviceId(8), DeviceId(12)],
        ),
        (
            "VVQQ",
            vec![DeviceId(0), DeviceId(1), DeviceId(12), DeviceId(13)],
        ),
        (
            "RRGG",
            vec![DeviceId(4), DeviceId(5), DeviceId(8), DeviceId(9)],
        ),
    ]
}

/// Builds and runs one HetPipe configuration, returning `(Nm, report)`.
pub fn run_hetpipe(
    cluster: &Cluster,
    graph: &ModelGraph,
    policy: AllocationPolicy,
    placement: Placement,
    d: usize,
    nm_override: Option<usize>,
    horizon_secs: f64,
) -> Result<(usize, SystemReport), String> {
    let config = SystemConfig {
        policy,
        placement,
        staleness_bound: d,
        nm_override,
        ..SystemConfig::default()
    };
    let sys = HetPipeSystem::build(cluster, graph, &config).map_err(|e| e.to_string())?;
    let report = sys.run(SimTime::from_secs(horizon_secs));
    Ok((sys.nm(), report))
}

/// The Table-4 GPU sets: `(label, node kinds)` in the paper's order.
pub fn table4_sets() -> Vec<(&'static str, Vec<GpuKind>)> {
    use GpuKind::*;
    vec![
        ("4 GPUs 4[V]", vec![TitanV]),
        ("8 GPUs 4[VR]", vec![TitanV, TitanRtx]),
        ("12 GPUs 4[VRQ]", vec![TitanV, TitanRtx, QuadroP4000]),
        (
            "16 GPUs 4[VRQG]",
            vec![TitanV, TitanRtx, QuadroP4000, Rtx2060],
        ),
    ]
}

/// Formats images/second for a table cell.
pub fn fmt_ips(v: f64) -> String {
    format!("{v:.0}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig3_configs_match_labels() {
        let cluster = Cluster::paper_testbed();
        for (label, devices) in fig3_configs() {
            let derived: String = devices.iter().map(|&d| cluster.kind_of(d).code()).collect();
            assert_eq!(derived, label);
        }
    }

    #[test]
    fn table4_sets_grow() {
        let sets = table4_sets();
        assert_eq!(sets.len(), 4);
        for (i, (_, kinds)) in sets.iter().enumerate() {
            assert_eq!(kinds.len(), i + 1);
        }
    }
}
