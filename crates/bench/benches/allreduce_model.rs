//! Criterion micro-bench: Horovod baseline evaluation.
//!
//! The Table-4 harness evaluates the baseline for every GPU subset;
//! each evaluation profiles the whole model on each GPU.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use hetpipe_allreduce::{HorovodBaseline, RingAllreduce};
use hetpipe_cluster::{Cluster, DeviceId};

fn bench_allreduce(c: &mut Criterion) {
    let cluster = Cluster::paper_testbed();
    let vgg = hetpipe_model::vgg19(32);
    let resnet = hetpipe_model::resnet152(32);

    let mut group = c.benchmark_group("allreduce");
    group.bench_function("ring_model_16gpus", |b| {
        let devices: Vec<DeviceId> = cluster.devices().collect();
        let ring = RingAllreduce::new(&cluster, &devices);
        b.iter(|| ring.allreduce_secs(548 << 20));
    });
    for (name, graph) in [("vgg19", &vgg), ("resnet152", &resnet)] {
        group.bench_with_input(BenchmarkId::new("horovod_evaluate", name), graph, |b, g| {
            b.iter(|| HorovodBaseline::evaluate_all(&cluster, g).expect("capable GPUs exist"));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_allreduce);
criterion_main!(benches);
