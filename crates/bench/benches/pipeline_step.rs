//! Criterion micro-bench: end-to-end simulation cost.
//!
//! Measures full HetPipe system builds (allocation + order search +
//! Max_m probing + partitioning) and short simulation runs.

use criterion::{criterion_group, criterion_main, Criterion};
use hetpipe_cluster::Cluster;
use hetpipe_core::{AllocationPolicy, HetPipeSystem, Placement, SystemConfig};
use hetpipe_des::SimTime;

fn bench_pipeline(c: &mut Criterion) {
    let cluster = Cluster::paper_testbed();
    let graph = hetpipe_model::vgg19(32);
    let config = SystemConfig {
        policy: AllocationPolicy::EqualDistribution,
        placement: Placement::Local,
        staleness_bound: 0,
        ..SystemConfig::default()
    };

    c.bench_function("system_build_ed_vgg19", |b| {
        b.iter(|| HetPipeSystem::build(&cluster, &graph, &config).expect("builds"));
    });

    let sys = HetPipeSystem::build(&cluster, &graph, &config).expect("builds");
    c.bench_function("simulate_10s_ed_local_vgg19", |b| {
        b.iter(|| sys.run(SimTime::from_secs(10.0)));
    });
}

criterion_group!(benches, bench_pipeline);
criterion_main!(benches);
