//! Criterion micro-bench: the trainer's tensor kernels.
//!
//! The convergence experiments run hundreds of thousands of MLP steps;
//! the matmul and backprop kernels dominate that time.

use criterion::{criterion_group, criterion_main, Criterion};
use hetpipe_train::{Matrix, Mlp};

fn bench_kernels(c: &mut Criterion) {
    let a = Matrix::from_fn(32, 128, |r, cc| ((r * 7 + cc) as f32 * 0.01).sin());
    let w = Matrix::from_fn(128, 64, |r, cc| ((r + cc * 3) as f32 * 0.01).cos());
    c.bench_function("matmul_32x128x64", |b| b.iter(|| a.matmul(&w)));

    let model = Mlp::new(&[24, 48, 32, 8], 1);
    let x = Matrix::from_fn(32, 24, |r, cc| ((r + cc) as f32 * 0.13).sin());
    let y: Vec<usize> = (0..32).map(|i| i % 8).collect();
    c.bench_function("mlp_loss_and_gradients_b32", |b| {
        b.iter(|| model.loss_and_gradients(&x, &y));
    });

    let flat = model.to_flat();
    c.bench_function("mlp_flat_roundtrip", |b| {
        let mut m = model.clone();
        b.iter(|| {
            m.load_flat(&flat);
            m.to_flat()
        });
    });
}

criterion_group!(benches, bench_kernels);
criterion_main!(benches);
