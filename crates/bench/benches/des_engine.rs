//! Criterion micro-bench: discrete-event engine throughput.
//!
//! The Figure-4 harness simulates minutes of cluster time; the engine
//! needs to process millions of events per second for the experiment
//! suite to stay interactive.

use criterion::{criterion_group, criterion_main, Criterion};
use hetpipe_des::{Engine, SimTime};

fn bench_engine(c: &mut Criterion) {
    c.bench_function("engine_cascade_100k_events", |b| {
        b.iter(|| {
            let mut e: Engine<u64> = Engine::new();
            e.schedule_in(SimTime::from_nanos(1), 0);
            let mut count = 0u64;
            while let Some(n) = e.next_event() {
                count += 1;
                if n < 100_000 {
                    e.schedule_in(SimTime::from_nanos(1), n + 1);
                }
            }
            count
        });
    });

    c.bench_function("queue_mixed_push_pop_10k", |b| {
        b.iter(|| {
            let mut e: Engine<u32> = Engine::new();
            for i in 0..10_000u32 {
                // Pseudo-random interleave of times.
                e.schedule_at(
                    SimTime::from_nanos(((i as u64).wrapping_mul(2654435761)) % 1_000_000),
                    i,
                );
            }
            let mut last = SimTime::ZERO;
            while let Some(_) = e.next_event() {
                debug_assert!(e.now() >= last);
                last = e.now();
            }
            last
        });
    });
}

criterion_group!(benches, bench_engine);
criterion_main!(benches);
