//! Criterion micro-bench: the real threaded WSP parameter server.
//!
//! Measures a short four-worker WSP training burst (lock + condvar
//! coordination plus real gradient computation) and the bare
//! push/pull-wait cycle.

use criterion::{criterion_group, criterion_main, Criterion};
use hetpipe_train::{train, Dataset, Mode, ParameterServer, TrainConfig};

fn bench_wsp(c: &mut Criterion) {
    let dataset = Dataset::gaussian_blobs(16, 4, 1024, 128, 0.4, 3);

    c.bench_function("threaded_wsp_4workers_64steps", |b| {
        let config = TrainConfig {
            mode: Mode::Wsp { nm: 4, d: 0 },
            workers: 4,
            dims: vec![16, 32, 4],
            batch: 32,
            lr: 0.05,
            momentum: 0.9,
            steps_per_worker: 64,
            seed: 1,
            snapshot_every: 0,
            ..TrainConfig::default()
        };
        b.iter(|| train(&dataset, &config));
    });

    c.bench_function("ps_push_pull_cycle", |b| {
        let ps = ParameterServer::new(vec![0.0f32; 4096], 1, 0);
        let delta = vec![0.001f32; 4096];
        let mut wave = 0u64;
        b.iter(|| {
            ps.push(0, &delta, 4);
            wave += 1;
            ps.pull_wait(wave - 1)
        });
    });
}

criterion_group!(benches, bench_wsp);
criterion_main!(benches);
