//! Criterion micro-bench: the min–max partition solvers.
//!
//! The paper solves this with CPLEX offline; our exact DP must be fast
//! enough to run inside `Max_m` probing and stage-order search (up to
//! 24 orders x 7 Nm values per virtual worker at build time).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use hetpipe_cluster::{GpuKind, LinkKind};
use hetpipe_partition::{PartitionProblem, PartitionSolver};

fn bench_solvers(c: &mut Criterion) {
    let resnet = hetpipe_model::resnet152(32);
    let vgg = hetpipe_model::vgg19(32);
    let gpus = vec![
        GpuKind::TitanV.spec(),
        GpuKind::TitanRtx.spec(),
        GpuKind::Rtx2060.spec(),
        GpuKind::QuadroP4000.spec(),
    ];
    let links = vec![LinkKind::Pcie, LinkKind::Infiniband, LinkKind::Pcie];

    let mut group = c.benchmark_group("partition_solver");
    for (name, graph) in [("resnet152", &resnet), ("vgg19", &vgg)] {
        group.bench_with_input(BenchmarkId::new("dp_exact", name), graph, |b, g| {
            let p = PartitionProblem::new(g, gpus.clone(), links.clone(), 4);
            b.iter(|| PartitionSolver::solve(&p).expect("feasible"));
        });
        group.bench_with_input(BenchmarkId::new("greedy_binsearch", name), graph, |b, g| {
            let p = PartitionProblem::new(g, gpus.clone(), links.clone(), 4);
            b.iter(|| PartitionSolver::solve_greedy(&p).expect("feasible"));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_solvers);
criterion_main!(benches);
