//! Deterministic synthetic classification datasets.
//!
//! The paper trains on ImageNet; convergence *behaviour under
//! staleness* does not depend on the specific dataset, so the threaded
//! trainer uses seeded synthetic tasks: Gaussian class blobs (linearly
//! separable-ish, fast) and a teacher-network task (non-linear decision
//! boundary, harder).

use crate::mlp::Mlp;
use crate::tensor::Matrix;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// A labelled dataset split into train and test parts.
#[derive(Debug, Clone)]
pub struct Dataset {
    /// Training inputs, `n_train x dim`.
    pub train_x: Matrix,
    /// Training labels.
    pub train_y: Vec<usize>,
    /// Test inputs.
    pub test_x: Matrix,
    /// Test labels.
    pub test_y: Vec<usize>,
    /// Number of classes.
    pub classes: usize,
}

impl Dataset {
    /// Gaussian blobs: `classes` cluster means on a sphere, isotropic
    /// noise of width `noise`.
    pub fn gaussian_blobs(
        dim: usize,
        classes: usize,
        n_train: usize,
        n_test: usize,
        noise: f32,
        seed: u64,
    ) -> Dataset {
        let mut rng = SmallRng::seed_from_u64(seed);
        // Random unit-ish means, scaled.
        let means: Vec<Vec<f32>> = (0..classes)
            .map(|_| {
                let v: Vec<f32> = (0..dim).map(|_| rng.gen::<f32>() * 2.0 - 1.0).collect();
                let norm = v.iter().map(|x| x * x).sum::<f32>().sqrt().max(1e-6);
                v.into_iter().map(|x| 2.0 * x / norm).collect()
            })
            .collect();

        let sample = |rng: &mut SmallRng, n: usize| {
            let mut xs = Matrix::zeros(n, dim);
            let mut ys = Vec::with_capacity(n);
            for i in 0..n {
                let c = rng.gen_range(0..classes);
                ys.push(c);
                for (d, &mean) in means[c].iter().enumerate() {
                    // Box-Muller normal sample.
                    let u1: f32 = rng.gen_range(1e-7..1.0);
                    let u2: f32 = rng.gen::<f32>();
                    let z = (-2.0 * u1.ln()).sqrt() * (std::f32::consts::TAU * u2).cos();
                    *xs.get_mut(i, d) = mean + noise * z;
                }
            }
            (xs, ys)
        };

        let (train_x, train_y) = sample(&mut rng, n_train);
        let (test_x, test_y) = sample(&mut rng, n_test);
        Dataset {
            train_x,
            train_y,
            test_x,
            test_y,
            classes,
        }
    }

    /// Teacher-network task: inputs are uniform noise, labels come from
    /// a random MLP's argmax — a non-linear decision boundary that a
    /// student of equal or larger capacity can fit.
    pub fn teacher(
        dim: usize,
        classes: usize,
        teacher_hidden: usize,
        n_train: usize,
        n_test: usize,
        seed: u64,
    ) -> Dataset {
        let mut rng = SmallRng::seed_from_u64(seed);
        let teacher = Mlp::new(&[dim, teacher_hidden, classes], seed ^ 0xD00D);
        let sample = |rng: &mut SmallRng, n: usize| {
            let xs = Matrix::from_fn(n, dim, |_, _| rng.gen::<f32>() * 2.0 - 1.0);
            let ys = teacher.forward(&xs).argmax_rows();
            (xs, ys)
        };
        let (train_x, train_y) = sample(&mut rng, n_train);
        let (test_x, test_y) = sample(&mut rng, n_test);
        Dataset {
            train_x,
            train_y,
            test_x,
            test_y,
            classes,
        }
    }

    /// Number of training samples.
    pub fn train_len(&self) -> usize {
        self.train_y.len()
    }

    /// Input dimensionality.
    pub fn dim(&self) -> usize {
        self.train_x.cols
    }

    /// Copies minibatch `index` (wrapping) of size `batch` from the
    /// training set, using a per-worker stride so concurrent workers
    /// see disjoint streams (data parallelism splits the dataset,
    /// Section 2.2).
    pub fn minibatch(
        &self,
        worker: usize,
        workers: usize,
        index: u64,
        batch: usize,
    ) -> (Matrix, Vec<usize>) {
        let n = self.train_len();
        let mut xs = Matrix::zeros(batch, self.dim());
        let mut ys = Vec::with_capacity(batch);
        for i in 0..batch {
            // Worker-strided wrap-around sampling.
            let j = ((index as usize * batch + i) * workers + worker) % n;
            for d in 0..self.dim() {
                *xs.get_mut(i, d) = self.train_x.get(j, d);
            }
            ys.push(self.train_y[j]);
        }
        (xs, ys)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn blobs_are_deterministic() {
        let a = Dataset::gaussian_blobs(8, 4, 100, 50, 0.3, 7);
        let b = Dataset::gaussian_blobs(8, 4, 100, 50, 0.3, 7);
        assert_eq!(a.train_x, b.train_x);
        assert_eq!(a.train_y, b.train_y);
        let c = Dataset::gaussian_blobs(8, 4, 100, 50, 0.3, 8);
        assert_ne!(a.train_x, c.train_x);
    }

    #[test]
    fn labels_in_range() {
        let d = Dataset::gaussian_blobs(4, 5, 200, 100, 0.5, 3);
        assert!(d.train_y.iter().all(|&y| y < 5));
        assert!(d.test_y.iter().all(|&y| y < 5));
        assert_eq!(d.train_len(), 200);
        assert_eq!(d.dim(), 4);
    }

    #[test]
    fn blobs_learnable_by_small_mlp() {
        let d = Dataset::gaussian_blobs(16, 4, 512, 256, 0.4, 11);
        let mut m = Mlp::new(&[16, 32, 4], 1);
        // A few epochs of plain SGD should separate the blobs well.
        for step in 0..400u64 {
            let (x, y) = d.minibatch(0, 1, step, 32);
            let (_, g) = m.loss_and_gradients(&x, &y);
            let mut flat = m.to_flat();
            for (p, gv) in flat.iter_mut().zip(g.to_flat()) {
                *p -= 0.1 * gv;
            }
            m.load_flat(&flat);
        }
        let acc = m.accuracy(&d.test_x, &d.test_y);
        assert!(acc > 0.9, "blob accuracy = {acc}");
    }

    #[test]
    fn teacher_labels_consistent() {
        let a = Dataset::teacher(8, 4, 16, 64, 32, 5);
        let b = Dataset::teacher(8, 4, 16, 64, 32, 5);
        assert_eq!(a.train_y, b.train_y);
    }

    #[test]
    fn worker_strided_minibatches_are_disjoint() {
        let d = Dataset::gaussian_blobs(4, 3, 1000, 10, 0.2, 9);
        let (x0, _) = d.minibatch(0, 4, 0, 8);
        let (x1, _) = d.minibatch(1, 4, 0, 8);
        assert_ne!(x0, x1, "different workers draw different samples");
    }
}
