//! The shared parameter server.
//!
//! A real (lock + condition variable) parameter server shared by the
//! worker threads. It maintains the global weights, a per-worker push
//! clock, and periodic weight snapshots for offline accuracy curves.
//! Under WSP a "push" is one *wave* (the aggregated delta of `Nm`
//! minibatches, Section 5); under BSP/SSP/ASP a push is one minibatch.
//!
//! `pull_wait(target)` implements the paper's straggler wait: it blocks
//! until *every* worker's clock is past `target` — the distance-`D`
//! rule — and returns a snapshot of the weights plus the clock it
//! covers.

use parking_lot::{Condvar, Mutex};

struct Inner {
    weights: Vec<f32>,
    clocks: Vec<u64>,
    total_updates: u64,
    last_snapshot_at: u64,
    snapshots: Vec<(u64, Vec<f32>)>,
    max_clock_distance: u64,
}

/// The shared parameter server.
pub struct ParameterServer {
    inner: Mutex<Inner>,
    cond: Condvar,
    snapshot_every: u64,
}

impl ParameterServer {
    /// Creates a server for `workers` workers with initial weights and
    /// a snapshot interval in minibatch updates (0 disables snapshots).
    pub fn new(init: Vec<f32>, workers: usize, snapshot_every: u64) -> ParameterServer {
        ParameterServer {
            inner: Mutex::new(Inner {
                weights: init,
                clocks: vec![0; workers],
                total_updates: 0,
                last_snapshot_at: 0,
                snapshots: Vec::new(),
                max_clock_distance: 0,
            }),
            cond: Condvar::new(),
            snapshot_every,
        }
    }

    /// Applies a pushed delta covering `minibatches` updates and
    /// advances `worker`'s clock.
    pub fn push(&self, worker: usize, delta: &[f32], minibatches: u64) {
        let mut g = self.inner.lock();
        assert_eq!(g.weights.len(), delta.len(), "delta size mismatch");
        for (w, &d) in g.weights.iter_mut().zip(delta) {
            *w += d;
        }
        g.clocks[worker] += 1;
        g.total_updates += minibatches;

        let max = *g.clocks.iter().max().expect("at least one worker");
        let min = *g.clocks.iter().min().expect("at least one worker");
        g.max_clock_distance = g.max_clock_distance.max(max - min);

        if self.snapshot_every > 0 && g.total_updates - g.last_snapshot_at >= self.snapshot_every {
            g.last_snapshot_at = g.total_updates;
            let snap = (g.total_updates, g.weights.clone());
            g.snapshots.push(snap);
        }
        self.cond.notify_all();
    }

    /// Blocks until every worker's clock exceeds `target` (i.e. all
    /// have pushed wave/update `target`, 0-indexed), then returns the
    /// weights and the newest clock fully covered (`min_clock - 1`).
    pub fn pull_wait(&self, target: u64) -> (Vec<f32>, u64) {
        let mut g = self.inner.lock();
        while g.clocks.iter().min().copied().unwrap_or(0) < target + 1 {
            self.cond.wait(&mut g);
        }
        let covered = g.clocks.iter().min().copied().expect("non-empty") - 1;
        (g.weights.clone(), covered)
    }

    /// Returns the current weights without waiting (ASP).
    pub fn pull_now(&self) -> Vec<f32> {
        self.inner.lock().weights.clone()
    }

    /// Total minibatch updates applied so far.
    pub fn total_updates(&self) -> u64 {
        self.inner.lock().total_updates
    }

    /// The largest clock distance ever observed between the fastest and
    /// slowest worker (the quantity WSP bounds by `D`, modulo the
    /// in-flight push that makes the observable bound `D + 1`).
    pub fn max_clock_distance(&self) -> u64 {
        self.inner.lock().max_clock_distance
    }

    /// Drains the recorded `(total_updates, weights)` snapshots.
    pub fn take_snapshots(&self) -> Vec<(u64, Vec<f32>)> {
        std::mem::take(&mut self.inner.lock().snapshots)
    }

    /// Current weights (final result).
    pub fn final_weights(&self) -> Vec<f32> {
        self.inner.lock().weights.clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn push_applies_delta_and_advances_clock() {
        let ps = ParameterServer::new(vec![0.0; 3], 2, 0);
        ps.push(0, &[1.0, 2.0, 3.0], 4);
        assert_eq!(ps.pull_now(), vec![1.0, 2.0, 3.0]);
        assert_eq!(ps.total_updates(), 4);
    }

    #[test]
    fn pull_wait_returns_when_all_pushed() {
        let ps = Arc::new(ParameterServer::new(vec![0.0], 2, 0));
        let ps2 = Arc::clone(&ps);
        let waiter = std::thread::spawn(move || ps2.pull_wait(0));
        // The waiter needs both workers past clock 0.
        ps.push(0, &[1.0], 1);
        std::thread::sleep(std::time::Duration::from_millis(20));
        assert!(!waiter.is_finished(), "must still wait for worker 1");
        ps.push(1, &[1.0], 1);
        let (w, covered) = waiter.join().expect("no panic");
        assert_eq!(w, vec![2.0]);
        assert_eq!(covered, 0);
    }

    #[test]
    fn clock_distance_tracked() {
        let ps = ParameterServer::new(vec![0.0], 3, 0);
        ps.push(0, &[0.0], 1);
        ps.push(0, &[0.0], 1);
        ps.push(0, &[0.0], 1);
        assert_eq!(ps.max_clock_distance(), 3);
        ps.push(1, &[0.0], 1);
        ps.push(2, &[0.0], 1);
        // Distance never shrinks retroactively.
        assert_eq!(ps.max_clock_distance(), 3);
    }

    #[test]
    fn snapshots_at_interval() {
        let ps = ParameterServer::new(vec![0.0], 1, 8);
        for _ in 0..4 {
            ps.push(0, &[1.0], 4);
        }
        let snaps = ps.take_snapshots();
        // Updates 8 and 16 trigger snapshots.
        assert_eq!(snaps.len(), 2);
        assert_eq!(snaps[0].0, 8);
        assert_eq!(snaps[1].0, 16);
        assert!(ps.take_snapshots().is_empty(), "drained");
    }
}
