//! A multi-layer perceptron with manual backpropagation.
//!
//! Parameters are a flat list of (weight, bias) pairs; gradients come
//! back in the same layout, so the parameter server can treat a model
//! as one flat `Vec<f32>` delta. Layers are `Linear -> ReLU` except the
//! last, which feeds softmax cross-entropy.

use crate::tensor::{softmax_cross_entropy, Matrix};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// One dense layer's parameters.
#[derive(Debug, Clone, PartialEq)]
pub struct Dense {
    /// Weight matrix, `in_dim x out_dim`.
    pub w: Matrix,
    /// Bias vector, `out_dim` long.
    pub b: Vec<f32>,
}

/// An MLP: a stack of dense layers with ReLU between them.
#[derive(Debug, Clone, PartialEq)]
pub struct Mlp {
    /// The layers, input to output.
    pub layers: Vec<Dense>,
}

/// Gradients in the same layout as [`Mlp`].
#[derive(Debug, Clone)]
pub struct Gradients {
    /// Per-layer (dW, db).
    pub layers: Vec<(Matrix, Vec<f32>)>,
}

impl Mlp {
    /// Random (He) initialization for the given layer widths, seeded
    /// for reproducibility.
    ///
    /// # Panics
    ///
    /// Panics if fewer than two widths are given.
    pub fn new(dims: &[usize], seed: u64) -> Mlp {
        assert!(dims.len() >= 2, "an MLP needs at least one layer");
        let mut rng = SmallRng::seed_from_u64(seed);
        let layers = dims
            .windows(2)
            .map(|w| {
                let (d_in, d_out) = (w[0], w[1]);
                let scale = (2.0 / d_in as f32).sqrt();
                Dense {
                    w: Matrix::from_fn(d_in, d_out, |_, _| (rng.gen::<f32>() * 2.0 - 1.0) * scale),
                    b: vec![0.0; d_out],
                }
            })
            .collect();
        Mlp { layers }
    }

    /// Forward pass returning the logits (no loss).
    pub fn forward(&self, x: &Matrix) -> Matrix {
        let mut h = x.clone();
        let last = self.layers.len() - 1;
        for (i, layer) in self.layers.iter().enumerate() {
            h = h.matmul(&layer.w);
            h.add_row(&layer.b);
            if i != last {
                h.relu();
            }
        }
        h
    }

    /// Forward + backward for one minibatch; returns `(loss, gradients)`.
    pub fn loss_and_gradients(&self, x: &Matrix, labels: &[usize]) -> (f32, Gradients) {
        // Forward, stashing inputs of every layer and post-ReLU
        // activations.
        let last = self.layers.len() - 1;
        let mut inputs: Vec<Matrix> = Vec::with_capacity(self.layers.len());
        let mut h = x.clone();
        for (i, layer) in self.layers.iter().enumerate() {
            inputs.push(h.clone());
            h = h.matmul(&layer.w);
            h.add_row(&layer.b);
            if i != last {
                h.relu();
            }
        }
        let (loss, mut grad) = softmax_cross_entropy(&h, labels);

        // Backward.
        let mut grads: Vec<(Matrix, Vec<f32>)> = Vec::with_capacity(self.layers.len());
        for i in (0..self.layers.len()).rev() {
            let dw = inputs[i].t_matmul(&grad);
            let db = grad.col_sums();
            if i > 0 {
                grad = grad.matmul_t(&self.layers[i].w);
                // ReLU sat between layer i-1's affine output and layer
                // i's input; `inputs[i]` is exactly the post-ReLU value.
                grad.relu_backward(&inputs[i]);
            }
            grads.push((dw, db));
        }
        grads.reverse();
        (loss, Gradients { layers: grads })
    }

    /// Mean top-1 accuracy over a labelled set.
    pub fn accuracy(&self, x: &Matrix, labels: &[usize]) -> f64 {
        let logits = self.forward(x);
        let preds = logits.argmax_rows();
        let correct = preds.iter().zip(labels).filter(|(p, l)| p == l).count();
        correct as f64 / labels.len() as f64
    }

    /// Total parameter count.
    pub fn param_count(&self) -> usize {
        self.layers.iter().map(|l| l.w.data.len() + l.b.len()).sum()
    }

    /// Flattens all parameters into one vector (weight-major, layer
    /// order).
    pub fn to_flat(&self) -> Vec<f32> {
        let mut out = Vec::with_capacity(self.param_count());
        for l in &self.layers {
            out.extend_from_slice(&l.w.data);
            out.extend_from_slice(&l.b);
        }
        out
    }

    /// Overwrites all parameters from a flat vector (inverse of
    /// [`Mlp::to_flat`]).
    ///
    /// # Panics
    ///
    /// Panics if `flat.len()` does not match the parameter count.
    pub fn load_flat(&mut self, flat: &[f32]) {
        assert_eq!(flat.len(), self.param_count(), "flat size mismatch");
        let mut off = 0;
        for l in &mut self.layers {
            let wn = l.w.data.len();
            l.w.data.copy_from_slice(&flat[off..off + wn]);
            off += wn;
            let bn = l.b.len();
            l.b.copy_from_slice(&flat[off..off + bn]);
            off += bn;
        }
    }
}

impl Gradients {
    /// Flattens gradients in the [`Mlp::to_flat`] layout.
    pub fn to_flat(&self) -> Vec<f32> {
        let mut out = Vec::new();
        for (dw, db) in &self.layers {
            out.extend_from_slice(&dw.data);
            out.extend_from_slice(db);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_batch() -> (Matrix, Vec<usize>) {
        let x = Matrix::from_fn(4, 3, |r, c| ((r + c) as f32 * 0.37).sin());
        (x, vec![0, 1, 2, 1])
    }

    #[test]
    fn forward_shapes() {
        let m = Mlp::new(&[3, 8, 3], 1);
        let (x, _) = tiny_batch();
        let logits = m.forward(&x);
        assert_eq!((logits.rows, logits.cols), (4, 3));
    }

    #[test]
    fn gradients_match_numerical() {
        let m = Mlp::new(&[3, 5, 3], 7);
        let (x, y) = tiny_batch();
        let (_, grads) = m.loss_and_gradients(&x, &y);
        let flat_grad = grads.to_flat();
        let flat = m.to_flat();
        let eps = 2e-3f32;
        // Spot-check a spread of parameter indices.
        for &i in &[0usize, 3, 7, 14, 15, 20, 30, flat.len() - 1] {
            let mut mp = m.clone();
            let mut fp = flat.clone();
            fp[i] += eps;
            mp.load_flat(&fp);
            let (lp, _) = mp.loss_and_gradients(&x, &y);
            let mut fm = flat.clone();
            fm[i] -= eps;
            mp.load_flat(&fm);
            let (lm, _) = mp.loss_and_gradients(&x, &y);
            let numeric = (lp - lm) / (2.0 * eps);
            assert!(
                (numeric - flat_grad[i]).abs() < 2e-2,
                "param {i}: numeric {numeric} vs analytic {}",
                flat_grad[i]
            );
        }
    }

    #[test]
    fn flat_roundtrip() {
        let m = Mlp::new(&[4, 6, 2], 42);
        let flat = m.to_flat();
        assert_eq!(flat.len(), m.param_count());
        let mut m2 = Mlp::new(&[4, 6, 2], 43);
        assert_ne!(m, m2, "different seeds differ");
        m2.load_flat(&flat);
        assert_eq!(m, m2);
    }

    #[test]
    fn one_sgd_step_reduces_loss() {
        let mut m = Mlp::new(&[3, 16, 3], 3);
        let (x, y) = tiny_batch();
        let (l0, grads) = m.loss_and_gradients(&x, &y);
        let mut flat = m.to_flat();
        for (p, g) in flat.iter_mut().zip(grads.to_flat()) {
            *p -= 0.1 * g;
        }
        m.load_flat(&flat);
        let (l1, _) = m.loss_and_gradients(&x, &y);
        assert!(l1 < l0, "loss must drop: {l0} -> {l1}");
    }

    #[test]
    fn accuracy_bounds() {
        let m = Mlp::new(&[3, 8, 3], 5);
        let (x, y) = tiny_batch();
        let acc = m.accuracy(&x, &y);
        assert!((0.0..=1.0).contains(&acc));
    }

    #[test]
    fn deterministic_init() {
        assert_eq!(Mlp::new(&[3, 4, 2], 9), Mlp::new(&[3, 4, 2], 9));
        assert_ne!(Mlp::new(&[3, 4, 2], 9), Mlp::new(&[3, 4, 2], 10));
    }
}
