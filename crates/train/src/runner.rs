//! The threaded training harness.
//!
//! `N` OS threads play `N` virtual workers. The WSP mode reproduces the
//! paper's semantics exactly:
//!
//! - minibatch `p`'s gradient is computed against the local weights as
//!   of `p`'s *injection* (HetPipe keeps `w_p` until `p`'s backward,
//!   Section 4) and applied locally `s_local = Nm − 1` injections later
//!   — the pipeline's inherent local staleness;
//! - every `Nm` completions, the *aggregated* wave delta is pushed to
//!   the parameter server as one unit (Section 5);
//! - injection of minibatch `p` blocks until the local weights cover
//!   the globally-required wave (the `s_global` gate), which is a real
//!   blocking wait on the server's condition variable — the same
//!   distance-`D` coordination the simulator models in time.
//!
//! BSP, ASP, and classic SSP are provided as convergence baselines
//! (Section 2.2's taxonomy).

use crate::data::Dataset;
use crate::mlp::Mlp;
use crate::ps::ParameterServer;
use crate::sgd::{accumulate, apply_delta, Sgd};
use std::collections::VecDeque;
use std::sync::Arc;

/// Synchronization mode of a training run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Mode {
    /// Wave Synchronous Parallel with pipeline depth `nm` and clock
    /// distance bound `d`.
    Wsp {
        /// Minibatches concurrently in flight per worker (`Nm`).
        nm: usize,
        /// Clock-distance bound (`D`).
        d: usize,
    },
    /// Bulk Synchronous Parallel (barrier per minibatch).
    Bsp,
    /// Asynchronous Parallel (no coordination).
    Asp,
    /// Stale Synchronous Parallel with per-minibatch staleness `s`.
    Ssp {
        /// Staleness threshold in minibatches.
        s: usize,
    },
}

/// Configuration of a threaded training run.
#[derive(Debug, Clone)]
pub struct TrainConfig {
    /// Synchronization mode.
    pub mode: Mode,
    /// Number of worker threads (virtual workers).
    pub workers: usize,
    /// MLP layer widths (input first, classes last).
    pub dims: Vec<usize>,
    /// Minibatch size.
    pub batch: usize,
    /// Learning rate.
    pub lr: f32,
    /// Momentum coefficient.
    pub momentum: f32,
    /// Minibatches each worker processes.
    pub steps_per_worker: u64,
    /// RNG seed for model initialization.
    pub seed: u64,
    /// Snapshot interval for the accuracy curve, in total minibatch
    /// updates (0 = only the final point).
    pub snapshot_every: u64,
}

impl Default for TrainConfig {
    fn default() -> Self {
        TrainConfig {
            mode: Mode::Wsp { nm: 4, d: 0 },
            workers: 4,
            dims: vec![16, 64, 32, 4],
            batch: 32,
            lr: 0.05,
            momentum: 0.9,
            steps_per_worker: 500,
            seed: 42,
            snapshot_every: 100,
        }
    }
}

/// Results of a training run.
#[derive(Debug, Clone)]
pub struct TrainOutcome {
    /// Cumulative update counts at which accuracy was sampled.
    pub curve_steps: Vec<u64>,
    /// Test accuracy at each sampled point.
    pub curve_accuracy: Vec<f64>,
    /// Final test accuracy (global weights).
    pub final_accuracy: f64,
    /// Total minibatch updates applied to the global weights.
    pub total_updates: u64,
    /// Maximum observed clock distance (staleness audit: WSP must keep
    /// this within `D + 1`).
    pub max_clock_distance: u64,
}

/// The newest wave whose global updates minibatch `p` (1-indexed) must
/// see under WSP, or `None` for the initial unconstrained minibatches.
///
/// Mirrors `hetpipe_core::WspParams::required_wave`; duplicated here so
/// the trainer stays independent of the simulator crates (the unit
/// tests cross-check the two implementations via shared examples).
fn required_wave(p: u64, nm: usize, d: usize) -> Option<u64> {
    let s_local = nm as u64 - 1;
    let s_global = (d as u64 + 1) * (s_local + 1) + s_local - 1;
    if p <= s_global + 1 {
        return None;
    }
    Some((p - s_global - 2) / nm as u64)
}

/// Runs a threaded training session and returns the accuracy curve.
///
/// # Panics
///
/// Panics if `workers == 0` or the dataset class count disagrees with
/// the model's output width.
pub fn train(dataset: &Dataset, config: &TrainConfig) -> TrainOutcome {
    assert!(config.workers >= 1, "need at least one worker");
    assert_eq!(
        *config.dims.last().expect("non-empty dims"),
        dataset.classes,
        "model output width must equal the class count"
    );

    let init = Mlp::new(&config.dims, config.seed);
    let ps = Arc::new(ParameterServer::new(
        init.to_flat(),
        config.workers,
        config.snapshot_every,
    ));

    std::thread::scope(|scope| {
        for worker in 0..config.workers {
            let ps = Arc::clone(&ps);
            let config = config.clone();
            scope.spawn(move || match config.mode {
                Mode::Wsp { nm, d } => run_wsp(worker, &ps, dataset, &config, nm, d),
                Mode::Bsp => run_bsp(worker, &ps, dataset, &config),
                Mode::Asp => run_asp(worker, &ps, dataset, &config),
                Mode::Ssp { s } => run_ssp(worker, &ps, dataset, &config, s),
            });
        }
    });

    // Offline: evaluate the snapshots into an accuracy curve.
    let mut model = init;
    let mut curve_steps = Vec::new();
    let mut curve_accuracy = Vec::new();
    for (updates, weights) in ps.take_snapshots() {
        model.load_flat(&weights);
        curve_steps.push(updates);
        curve_accuracy.push(model.accuracy(&dataset.test_x, &dataset.test_y));
    }
    let final_weights = ps.final_weights();
    model.load_flat(&final_weights);
    let final_accuracy = model.accuracy(&dataset.test_x, &dataset.test_y);
    let total = ps.total_updates();
    if curve_steps.last() != Some(&total) {
        curve_steps.push(total);
        curve_accuracy.push(final_accuracy);
    }

    TrainOutcome {
        curve_steps,
        curve_accuracy,
        final_accuracy,
        total_updates: total,
        max_clock_distance: ps.max_clock_distance(),
    }
}

/// The WSP worker loop (pipelined SGD with wave pushes).
fn run_wsp(
    worker: usize,
    ps: &ParameterServer,
    dataset: &Dataset,
    config: &TrainConfig,
    nm: usize,
    d: usize,
) {
    let mut model = Mlp::new(&config.dims, config.seed);
    let mut local = model.to_flat();
    let mut opt = Sgd::new(local.len(), config.lr, config.momentum);
    // Deltas of injected-but-not-completed minibatches (pipeline).
    let mut pending: VecDeque<Vec<f32>> = VecDeque::with_capacity(nm);
    // Aggregated deltas of the current wave (applied locally, unpushed).
    let mut wave_acc = vec![0.0f32; local.len()];
    let mut pulled: i64 = -1;
    let mut completed: u64 = 0;
    let s_local = nm - 1;

    let complete_one = |pending: &mut VecDeque<Vec<f32>>,
                        local: &mut Vec<f32>,
                        wave_acc: &mut Vec<f32>,
                        completed: &mut u64| {
        let delta = pending.pop_front().expect("pipeline non-empty");
        apply_delta(local, &delta);
        accumulate(wave_acc, &delta);
        *completed += 1;
        if (*completed).is_multiple_of(nm as u64) {
            ps.push(worker, wave_acc, nm as u64);
            wave_acc.iter_mut().for_each(|v| *v = 0.0);
        }
    };

    for p in 1..=config.steps_per_worker {
        // The WSP start gate (Section 5): block until the local weights
        // cover the required global wave.
        if let Some(req) = required_wave(p, nm, d) {
            if pulled < req as i64 {
                let (global, covered) = ps.pull_wait(req);
                // Local view = global weights + this worker's local
                // updates that are not yet part of a pushed wave.
                local = global;
                apply_delta(&mut local, &wave_acc);
                pulled = covered as i64;
            }
        }
        // Inject minibatch p: gradient against the *current* local
        // weights (w_p), applied s_local injections later.
        model.load_flat(&local);
        let (x, y) = dataset.minibatch(worker, config.workers, p - 1, config.batch);
        let (_, grads) = model.loss_and_gradients(&x, &y);
        pending.push_back(opt.delta(&grads.to_flat()));

        if pending.len() > s_local {
            complete_one(&mut pending, &mut local, &mut wave_acc, &mut completed);
        }
    }
    // Drain the pipeline (the run ends cleanly on a wave boundary when
    // steps_per_worker is a multiple of nm).
    while !pending.is_empty() {
        complete_one(&mut pending, &mut local, &mut wave_acc, &mut completed);
    }
}

/// BSP: compute, push, barrier, pull — per minibatch.
fn run_bsp(worker: usize, ps: &ParameterServer, dataset: &Dataset, config: &TrainConfig) {
    let mut model = Mlp::new(&config.dims, config.seed);
    let mut local = model.to_flat();
    let mut opt = Sgd::new(local.len(), config.lr, config.momentum);
    for p in 1..=config.steps_per_worker {
        model.load_flat(&local);
        let (x, y) = dataset.minibatch(worker, config.workers, p - 1, config.batch);
        let (_, grads) = model.loss_and_gradients(&x, &y);
        let delta = opt.delta(&grads.to_flat());
        ps.push(worker, &delta, 1);
        // Barrier: wait until every worker pushed minibatch p.
        let (global, _) = ps.pull_wait(p - 1);
        local = global;
    }
}

/// ASP: push and pull without any coordination.
fn run_asp(worker: usize, ps: &ParameterServer, dataset: &Dataset, config: &TrainConfig) {
    let mut model = Mlp::new(&config.dims, config.seed);
    let mut opt = Sgd::new(model.param_count(), config.lr, config.momentum);
    for p in 1..=config.steps_per_worker {
        let local = ps.pull_now();
        model.load_flat(&local);
        let (x, y) = dataset.minibatch(worker, config.workers, p - 1, config.batch);
        let (_, grads) = model.loss_and_gradients(&x, &y);
        let delta = opt.delta(&grads.to_flat());
        ps.push(worker, &delta, 1);
    }
}

/// Classic SSP (Ho et al.): per-minibatch pushes, proceed while within
/// `s` clocks of the slowest worker.
fn run_ssp(worker: usize, ps: &ParameterServer, dataset: &Dataset, config: &TrainConfig, s: usize) {
    let mut model = Mlp::new(&config.dims, config.seed);
    let mut local = model.to_flat();
    let mut opt = Sgd::new(local.len(), config.lr, config.momentum);
    for p in 1..=config.steps_per_worker {
        // Worker clock is p-1; it may run while p-1 <= min + s.
        if p - 1 > s as u64 {
            let (global, _) = ps.pull_wait(p - 1 - s as u64 - 1);
            local = global;
        }
        model.load_flat(&local);
        let (x, y) = dataset.minibatch(worker, config.workers, p - 1, config.batch);
        let (_, grads) = model.loss_and_gradients(&x, &y);
        let delta = opt.delta(&grads.to_flat());
        apply_delta(&mut local, &delta);
        ps.push(worker, &delta, 1);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn blob_config(mode: Mode, steps: u64) -> (Dataset, TrainConfig) {
        let dataset = Dataset::gaussian_blobs(16, 4, 2048, 512, 0.5, 13);
        let config = TrainConfig {
            mode,
            workers: 4,
            dims: vec![16, 48, 4],
            batch: 32,
            lr: 0.05,
            momentum: 0.9,
            steps_per_worker: steps,
            seed: 42,
            snapshot_every: 200,
        };
        (dataset, config)
    }

    #[test]
    fn required_wave_matches_core_examples() {
        // The shared examples from the paper (Nm = 4, D = 0).
        assert_eq!(required_wave(7, 4, 0), None);
        assert_eq!(required_wave(8, 4, 0), Some(0));
        assert_eq!(required_wave(11, 4, 0), Some(0));
        assert_eq!(required_wave(12, 4, 0), Some(1));
        assert_eq!(required_wave(12, 4, 1), Some(0));
    }

    #[test]
    fn wsp_converges_on_blobs() {
        let (dataset, config) = blob_config(Mode::Wsp { nm: 4, d: 0 }, 512);
        let out = train(&dataset, &config);
        // Thread interleavings perturb the trajectory run-to-run (and
        // more so under full-suite CPU load); the threshold leaves
        // headroom over the observed spread (dips to ~0.75 seen with
        // the vendored SmallRng stream) while still far above the
        // 3-class chance level.
        assert!(
            out.final_accuracy > 0.70,
            "WSP accuracy = {}",
            out.final_accuracy
        );
        assert_eq!(out.total_updates, 4 * 512);
        assert!(!out.curve_steps.is_empty());
    }

    #[test]
    fn wsp_clock_distance_respects_d() {
        for d in [0usize, 2] {
            let (dataset, config) = blob_config(Mode::Wsp { nm: 4, d }, 128);
            let out = train(&dataset, &config);
            assert!(
                out.max_clock_distance <= d as u64 + 1,
                "D={d}: observed distance {}",
                out.max_clock_distance
            );
        }
    }

    #[test]
    fn bsp_lockstep_distance_one() {
        let (dataset, config) = blob_config(Mode::Bsp, 64);
        let out = train(&dataset, &config);
        assert!(out.max_clock_distance <= 1);
        assert!(
            out.final_accuracy > 0.85,
            "BSP accuracy = {}",
            out.final_accuracy
        );
    }

    #[test]
    fn asp_and_ssp_also_converge_on_easy_task() {
        let (dataset, config) = blob_config(Mode::Asp, 256);
        let out = train(&dataset, &config);
        assert!(
            out.final_accuracy > 0.85,
            "ASP accuracy = {}",
            out.final_accuracy
        );

        let (dataset, config) = blob_config(Mode::Ssp { s: 3 }, 256);
        let out = train(&dataset, &config);
        assert!(
            out.final_accuracy > 0.85,
            "SSP accuracy = {}",
            out.final_accuracy
        );
    }

    #[test]
    fn wsp_single_worker_nm1_equals_sequential_sgd() {
        // With one worker, Nm = 1, D = 0, WSP degrades to exact
        // sequential SGD: verify bit-identical weights.
        let dataset = Dataset::gaussian_blobs(8, 3, 512, 64, 0.4, 21);
        let config = TrainConfig {
            mode: Mode::Wsp { nm: 1, d: 0 },
            workers: 1,
            dims: vec![8, 16, 3],
            batch: 16,
            lr: 0.1,
            momentum: 0.9,
            steps_per_worker: 50,
            seed: 7,
            snapshot_every: 0,
        };
        let out = train(&dataset, &config);

        // Sequential reference.
        let mut model = Mlp::new(&config.dims, config.seed);
        let mut w = model.to_flat();
        let mut opt = Sgd::new(w.len(), config.lr, config.momentum);
        for p in 0..config.steps_per_worker {
            model.load_flat(&w);
            let (x, y) = dataset.minibatch(0, 1, p, config.batch);
            let (_, grads) = model.loss_and_gradients(&x, &y);
            let delta = opt.delta(&grads.to_flat());
            apply_delta(&mut w, &delta);
        }
        model.load_flat(&w);
        let seq_acc = model.accuracy(&dataset.test_x, &dataset.test_y);
        assert_eq!(out.final_accuracy, seq_acc, "bit-identical trajectories");
    }

    #[test]
    fn deeper_pipelines_still_converge() {
        // Larger Nm = more local staleness; convergence survives with a
        // staleness-appropriate learning rate (Section 4: "typically Nm
        // will not be large enough to affect convergence"; the regret
        // bound of Theorem 1 scales the step size with 1/sqrt(s)).
        let (dataset, mut config) = blob_config(Mode::Wsp { nm: 8, d: 0 }, 768);
        config.lr = 0.03;
        config.momentum = 0.0;
        let out = train(&dataset, &config);
        assert!(
            out.final_accuracy > 0.85,
            "Nm=8 accuracy = {}",
            out.final_accuracy
        );
    }

    #[test]
    #[should_panic(expected = "output width")]
    fn class_mismatch_rejected() {
        let dataset = Dataset::gaussian_blobs(8, 3, 64, 16, 0.4, 1);
        let config = TrainConfig {
            dims: vec![8, 16, 5],
            ..TrainConfig::default()
        };
        let _ = train(&dataset, &config);
    }
}
