//! Learning-rate schedules.
//!
//! The paper (Section 9) notes that learning-rate techniques such as
//! Goyal et al.'s warmup can be applied to HetPipe to converge faster;
//! this module provides the standard schedules used with large-batch
//! and stale-gradient training, including the `1/sqrt(t)` decay the
//! convergence proof of Theorem 1 assumes.

/// A learning-rate schedule: maps a (1-indexed) step to a rate.
#[derive(Debug, Clone, PartialEq)]
pub enum LrSchedule {
    /// Constant rate.
    Constant(f32),
    /// Linear warmup from `start` to `peak` over `warmup_steps`, then
    /// constant (Goyal et al.).
    Warmup {
        /// Initial rate.
        start: f32,
        /// Rate after warmup.
        peak: f32,
        /// Steps to reach `peak`.
        warmup_steps: u64,
    },
    /// Step decay: `base * factor^(step / every)`.
    StepDecay {
        /// Initial rate.
        base: f32,
        /// Multiplicative factor per interval (e.g. 0.1).
        factor: f32,
        /// Interval in steps.
        every: u64,
    },
    /// `sigma / sqrt(t)` — the schedule of Theorem 1.
    InverseSqrt {
        /// The numerator `sigma`.
        sigma: f32,
    },
}

impl LrSchedule {
    /// The learning rate at `step` (1-indexed).
    ///
    /// # Panics
    ///
    /// Panics in debug builds if `step == 0`.
    pub fn at(&self, step: u64) -> f32 {
        debug_assert!(step >= 1, "steps are 1-indexed");
        match *self {
            LrSchedule::Constant(lr) => lr,
            LrSchedule::Warmup {
                start,
                peak,
                warmup_steps,
            } => {
                if step >= warmup_steps {
                    peak
                } else {
                    start + (peak - start) * step as f32 / warmup_steps as f32
                }
            }
            LrSchedule::StepDecay {
                base,
                factor,
                every,
            } => base * factor.powi((step / every.max(1)) as i32),
            LrSchedule::InverseSqrt { sigma } => sigma / (step as f32).sqrt(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constant_is_constant() {
        let s = LrSchedule::Constant(0.1);
        assert_eq!(s.at(1), 0.1);
        assert_eq!(s.at(1_000_000), 0.1);
    }

    #[test]
    fn warmup_ramps_then_holds() {
        let s = LrSchedule::Warmup {
            start: 0.0,
            peak: 0.4,
            warmup_steps: 100,
        };
        assert!(s.at(1) < 0.01);
        assert!((s.at(50) - 0.2).abs() < 1e-6);
        assert_eq!(s.at(100), 0.4);
        assert_eq!(s.at(500), 0.4);
    }

    #[test]
    fn step_decay_steps() {
        let s = LrSchedule::StepDecay {
            base: 1.0,
            factor: 0.1,
            every: 10,
        };
        assert_eq!(s.at(9), 1.0);
        assert!((s.at(10) - 0.1).abs() < 1e-7);
        assert!((s.at(25) - 0.01).abs() < 1e-8);
    }

    #[test]
    fn inverse_sqrt_matches_theorem1() {
        let s = LrSchedule::InverseSqrt { sigma: 2.0 };
        assert_eq!(s.at(1), 2.0);
        assert_eq!(s.at(4), 1.0);
        assert_eq!(s.at(16), 0.5);
        // Monotone decreasing.
        for t in 1..100u64 {
            assert!(s.at(t + 1) <= s.at(t));
        }
    }
}
