//! SGD with momentum on flat parameter vectors.

/// SGD with classical momentum.
///
/// Operating on flat `Vec<f32>` parameter/gradient vectors (the
/// [`crate::mlp::Mlp::to_flat`] layout) keeps the optimizer independent
/// of the model structure — the same shape the parameter server works
/// with.
#[derive(Debug, Clone)]
pub struct Sgd {
    /// Learning rate.
    pub lr: f32,
    /// Momentum coefficient (0 disables momentum).
    pub momentum: f32,
    velocity: Vec<f32>,
}

impl Sgd {
    /// Creates an optimizer for `param_count` parameters.
    pub fn new(param_count: usize, lr: f32, momentum: f32) -> Sgd {
        Sgd {
            lr,
            momentum,
            velocity: vec![0.0; param_count],
        }
    }

    /// Computes the update *delta* for a gradient (to be added to the
    /// weights), updating internal momentum state.
    ///
    /// Returned delta is `-lr * v` where `v = momentum * v + grad` —
    /// callers apply it with `w += delta`, and the same delta is what a
    /// WSP wave aggregates and pushes.
    ///
    /// # Panics
    ///
    /// Panics if `grad` length differs from the optimizer's size.
    pub fn delta(&mut self, grad: &[f32]) -> Vec<f32> {
        assert_eq!(grad.len(), self.velocity.len(), "gradient size mismatch");
        let mut out = Vec::with_capacity(grad.len());
        for (v, &g) in self.velocity.iter_mut().zip(grad) {
            *v = self.momentum * *v + g;
            out.push(-self.lr * *v);
        }
        out
    }
}

/// Adds `delta` into `w` element-wise.
///
/// # Panics
///
/// Panics on length mismatch.
pub fn apply_delta(w: &mut [f32], delta: &[f32]) {
    assert_eq!(w.len(), delta.len(), "delta size mismatch");
    for (wi, &d) in w.iter_mut().zip(delta) {
        *wi += d;
    }
}

/// Element-wise accumulation `acc += x`.
///
/// # Panics
///
/// Panics on length mismatch.
pub fn accumulate(acc: &mut [f32], x: &[f32]) {
    assert_eq!(acc.len(), x.len(), "accumulator size mismatch");
    for (a, &v) in acc.iter_mut().zip(x) {
        *a += v;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plain_sgd_delta() {
        let mut opt = Sgd::new(3, 0.1, 0.0);
        let d = opt.delta(&[1.0, -2.0, 0.0]);
        assert_eq!(d, vec![-0.1, 0.2, 0.0]);
    }

    #[test]
    fn momentum_accumulates() {
        let mut opt = Sgd::new(1, 1.0, 0.9);
        let d1 = opt.delta(&[1.0]);
        assert_eq!(d1, vec![-1.0]);
        let d2 = opt.delta(&[1.0]);
        // v = 0.9 * 1 + 1 = 1.9.
        assert!((d2[0] + 1.9).abs() < 1e-6);
    }

    #[test]
    fn apply_and_accumulate() {
        let mut w = vec![1.0, 2.0];
        apply_delta(&mut w, &[0.5, -1.0]);
        assert_eq!(w, vec![1.5, 1.0]);
        let mut acc = vec![0.0, 0.0];
        accumulate(&mut acc, &[1.0, 2.0]);
        accumulate(&mut acc, &[0.5, 0.5]);
        assert_eq!(acc, vec![1.5, 2.5]);
    }

    #[test]
    #[should_panic(expected = "gradient size mismatch")]
    fn size_mismatch_rejected() {
        let mut opt = Sgd::new(2, 0.1, 0.0);
        let _ = opt.delta(&[1.0]);
    }
}
