//! Real SGD training under WSP staleness semantics.
//!
//! The paper's convergence experiments (Figures 5–6) train real models
//! on real hardware; this crate is the laptop-scale substitute that
//! preserves what matters for convergence: *the staleness pattern of
//! gradients*. `N` OS threads play the virtual workers; each runs a
//! *pipelined* SGD loop in which minibatch `p`'s gradient is computed
//! against the weights as of `p`'s injection and applied `s_local`
//! injections later (exactly HetPipe's `w_p` semantics), waves of `Nm`
//! updates are pushed to a shared parameter server as one aggregated
//! delta, and the clock-distance bound `D` gates progress — real
//! waiting on a real condition variable.
//!
//! - [`tensor`] — a minimal dense matrix with the kernels an MLP needs,
//!   backward passes checked against numerical gradients.
//! - [`mlp`] — a multi-layer perceptron with manual backprop.
//! - [`sgd`] — SGD with momentum.
//! - [`data`] — deterministic synthetic classification datasets.
//! - [`ps`] — the shared parameter server (clocks, waves, condvars).
//! - [`runner`] — the threaded training harness for WSP / BSP / SSP /
//!   ASP, with a staleness audit trail.
//! - [`convex`] — convex problem instances and a deterministic
//!   noisy-weight executor for validating the Theorem-1 regret bound.
//! - [`decentral`] — the paper's future-work extension: AD-PSGD-style
//!   decentralized (gossip) training without a parameter server.

pub mod convex;
pub mod data;
pub mod decentral;
pub mod mlp;
pub mod ps;
pub mod runner;
pub mod schedule;
pub mod sgd;
pub mod tensor;

pub use data::Dataset;
pub use decentral::{train_gossip, GossipConfig, GossipOutcome};
pub use mlp::Mlp;
pub use ps::ParameterServer;
pub use runner::{train, Mode, TrainConfig, TrainOutcome};
pub use schedule::LrSchedule;
pub use tensor::Matrix;
