//! Decentralized training — the paper's future-work direction.
//!
//! Section 3: *"We believe HetPipe can be further optimized by taking
//! decentralized approaches, but leave this for future work"*, citing
//! AD-PSGD (Lian et al.). This module implements that extension at the
//! trainer level: instead of pushing waves to a central parameter
//! server, each virtual worker — still running pipelined SGD with
//! HetPipe's local staleness — periodically *averages its weights with
//! one neighbour* chosen round-robin, the gossip step of AD-PSGD.
//!
//! No central server means no straggler-wait at all (the paper's D
//! bound becomes unnecessary); the price is slower information
//! propagation (averaging mixes two replicas at a time instead of all
//! `N` through the server).

use crate::data::Dataset;
use crate::mlp::Mlp;
use crate::sgd::{apply_delta, Sgd};
use parking_lot::Mutex;
use std::collections::VecDeque;
use std::sync::Arc;

/// Configuration of a decentralized (gossip) run.
#[derive(Debug, Clone)]
pub struct GossipConfig {
    /// Number of worker threads.
    pub workers: usize,
    /// MLP layer widths.
    pub dims: Vec<usize>,
    /// Minibatch size.
    pub batch: usize,
    /// Learning rate.
    pub lr: f32,
    /// Pipeline depth per worker (HetPipe's `Nm`; gradients are
    /// delayed `Nm - 1` injections exactly as in WSP mode).
    pub nm: usize,
    /// Average with a neighbour every `gossip_every` completions
    /// (the wave cadence: `Nm` matches WSP's per-wave sync).
    pub gossip_every: u64,
    /// Minibatches per worker.
    pub steps_per_worker: u64,
    /// Model seed.
    pub seed: u64,
}

impl Default for GossipConfig {
    fn default() -> Self {
        GossipConfig {
            workers: 4,
            dims: vec![16, 48, 4],
            batch: 32,
            lr: 0.05,
            nm: 4,
            gossip_every: 4,
            steps_per_worker: 512,
            seed: 42,
        }
    }
}

/// Result of a gossip run.
#[derive(Debug, Clone)]
pub struct GossipOutcome {
    /// Test accuracy of the averaged final model.
    pub final_accuracy: f64,
    /// Total minibatch updates across workers.
    pub total_updates: u64,
    /// Number of pairwise averaging operations performed.
    pub gossip_rounds: u64,
}

/// Applies the oldest pending delta to `worker`'s replica and, on the
/// gossip cadence, averages with the next neighbour (AD-PSGD's
/// pairwise step; ordered lock acquisition avoids deadlock).
fn complete_one(
    worker: usize,
    replicas: &[Mutex<Vec<f32>>],
    gossip_count: &Mutex<u64>,
    config: &GossipConfig,
    pending: &mut VecDeque<Vec<f32>>,
    completed: &mut u64,
) {
    let delta = pending.pop_front().expect("pipeline non-empty");
    {
        let mut w = replicas[worker].lock();
        apply_delta(&mut w, &delta);
    }
    *completed += 1;
    if (*completed).is_multiple_of(config.gossip_every) {
        let peer = (worker + 1) % config.workers;
        let (a, b) = (worker.min(peer), worker.max(peer));
        let mut wa = replicas[a].lock();
        let mut wb = replicas[b].lock();
        for (x, y) in wa.iter_mut().zip(wb.iter_mut()) {
            let avg = 0.5 * (*x + *y);
            *x = avg;
            *y = avg;
        }
        *gossip_count.lock() += 1;
    }
}

/// Runs decentralized pipelined SGD: per-worker weight replicas under
/// a shared lock table, pairwise-averaged round-robin.
pub fn train_gossip(dataset: &Dataset, config: &GossipConfig) -> GossipOutcome {
    assert!(config.workers >= 2, "gossip needs at least two workers");
    assert_eq!(
        *config.dims.last().expect("non-empty dims"),
        dataset.classes,
        "model output width must equal the class count"
    );

    let init = Mlp::new(&config.dims, config.seed);
    let replicas: Arc<Vec<Mutex<Vec<f32>>>> = Arc::new(
        (0..config.workers)
            .map(|_| Mutex::new(init.to_flat()))
            .collect(),
    );
    let gossip_count = Arc::new(Mutex::new(0u64));

    std::thread::scope(|scope| {
        for worker in 0..config.workers {
            let replicas = Arc::clone(&replicas);
            let gossip_count = Arc::clone(&gossip_count);
            let config = config.clone();
            scope.spawn(move || {
                let mut model = Mlp::new(&config.dims, config.seed);
                let mut opt = Sgd::new(model.param_count(), config.lr, 0.0);
                let mut pending: VecDeque<Vec<f32>> = VecDeque::new();
                let mut completed = 0u64;
                let s_local = config.nm - 1;

                for p in 1..=config.steps_per_worker {
                    // Inject: gradient at the current replica (copy out
                    // under the lock, compute outside it).
                    let local = replicas[worker].lock().clone();
                    model.load_flat(&local);
                    let (x, y) = dataset.minibatch(worker, config.workers, p - 1, config.batch);
                    let (_, grads) = model.loss_and_gradients(&x, &y);
                    pending.push_back(opt.delta(&grads.to_flat()));

                    // Completion with HetPipe's pipeline delay.
                    if pending.len() > s_local {
                        complete_one(
                            worker,
                            &replicas,
                            &gossip_count,
                            &config,
                            &mut pending,
                            &mut completed,
                        );
                    }
                }
                // Drain the pipeline.
                while !pending.is_empty() {
                    complete_one(
                        worker,
                        &replicas,
                        &gossip_count,
                        &config,
                        &mut pending,
                        &mut completed,
                    );
                }
            });
        }
    });

    // Evaluate the average of all replicas (the consensus model).
    let dim = init.param_count();
    let mut avg = vec![0.0f32; dim];
    for r in replicas.iter() {
        let w = r.lock();
        for (a, &v) in avg.iter_mut().zip(w.iter()) {
            *a += v / config.workers as f32;
        }
    }
    let mut model = init;
    model.load_flat(&avg);
    let gossip_rounds = *gossip_count.lock();
    GossipOutcome {
        final_accuracy: model.accuracy(&dataset.test_x, &dataset.test_y),
        total_updates: config.steps_per_worker * config.workers as u64,
        gossip_rounds,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::data::Dataset;

    #[test]
    fn gossip_converges_on_blobs() {
        let dataset = Dataset::gaussian_blobs(16, 4, 2048, 512, 0.35, 13);
        let config = GossipConfig {
            dims: vec![16, 64, 4],
            steps_per_worker: 512,
            ..GossipConfig::default()
        };
        let out = train_gossip(&dataset, &config);
        assert!(
            out.final_accuracy > 0.8,
            "gossip accuracy = {}",
            out.final_accuracy
        );
        assert_eq!(out.total_updates, 4 * 512);
        assert!(out.gossip_rounds > 0);
    }

    #[test]
    fn gossip_rounds_follow_cadence() {
        let dataset = Dataset::gaussian_blobs(8, 3, 256, 64, 0.4, 5);
        let config = GossipConfig {
            workers: 2,
            dims: vec![8, 16, 3],
            nm: 2,
            gossip_every: 8,
            steps_per_worker: 64,
            ..GossipConfig::default()
        };
        let out = train_gossip(&dataset, &config);
        // Each worker completes 64 minibatches; every 8th gossips.
        assert_eq!(out.gossip_rounds, 2 * 64 / 8);
    }

    #[test]
    #[should_panic(expected = "at least two workers")]
    fn single_worker_rejected() {
        let dataset = Dataset::gaussian_blobs(8, 3, 64, 16, 0.4, 1);
        let config = GossipConfig {
            workers: 1,
            dims: vec![8, 16, 3],
            ..GossipConfig::default()
        };
        let _ = train_gossip(&dataset, &config);
    }
}
