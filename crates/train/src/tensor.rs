//! A minimal dense matrix type with the kernels an MLP needs.
//!
//! Row-major `f32` storage; just enough operations for forward and
//! backward passes of linear + ReLU + softmax-cross-entropy networks.
//! Backward formulas are verified against numerical differentiation in
//! the tests.

/// A row-major dense matrix of `f32`.
#[derive(Debug, Clone, PartialEq)]
pub struct Matrix {
    /// Number of rows.
    pub rows: usize,
    /// Number of columns.
    pub cols: usize,
    /// Row-major data, `rows * cols` long.
    pub data: Vec<f32>,
}

impl Matrix {
    /// A zero matrix.
    pub fn zeros(rows: usize, cols: usize) -> Matrix {
        Matrix {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Builds from a closure over `(row, col)`.
    pub fn from_fn(rows: usize, cols: usize, mut f: impl FnMut(usize, usize) -> f32) -> Matrix {
        let mut data = Vec::with_capacity(rows * cols);
        for r in 0..rows {
            for c in 0..cols {
                data.push(f(r, c));
            }
        }
        Matrix { rows, cols, data }
    }

    /// Element access.
    #[inline]
    pub fn get(&self, r: usize, c: usize) -> f32 {
        self.data[r * self.cols + c]
    }

    /// Mutable element access.
    #[inline]
    pub fn get_mut(&mut self, r: usize, c: usize) -> &mut f32 {
        &mut self.data[r * self.cols + c]
    }

    /// `self @ other` — matrix product.
    ///
    /// # Panics
    ///
    /// Panics if inner dimensions disagree.
    pub fn matmul(&self, other: &Matrix) -> Matrix {
        assert_eq!(self.cols, other.rows, "inner dimensions must agree");
        let mut out = Matrix::zeros(self.rows, other.cols);
        // i-k-j loop order for cache-friendly row-major access.
        for i in 0..self.rows {
            for k in 0..self.cols {
                let a = self.get(i, k);
                if a == 0.0 {
                    continue;
                }
                let orow = k * other.cols;
                let out_row = i * other.cols;
                for j in 0..other.cols {
                    out.data[out_row + j] += a * other.data[orow + j];
                }
            }
        }
        out
    }

    /// `self^T @ other`.
    pub fn t_matmul(&self, other: &Matrix) -> Matrix {
        assert_eq!(self.rows, other.rows, "outer dimensions must agree");
        let mut out = Matrix::zeros(self.cols, other.cols);
        for r in 0..self.rows {
            for i in 0..self.cols {
                let a = self.get(r, i);
                if a == 0.0 {
                    continue;
                }
                let orow = r * other.cols;
                let out_row = i * other.cols;
                for j in 0..other.cols {
                    out.data[out_row + j] += a * other.data[orow + j];
                }
            }
        }
        out
    }

    /// `self @ other^T`.
    pub fn matmul_t(&self, other: &Matrix) -> Matrix {
        assert_eq!(self.cols, other.cols, "inner dimensions must agree");
        let mut out = Matrix::zeros(self.rows, other.rows);
        for i in 0..self.rows {
            for j in 0..other.rows {
                let mut acc = 0.0;
                let arow = i * self.cols;
                let brow = j * other.cols;
                for k in 0..self.cols {
                    acc += self.data[arow + k] * other.data[brow + k];
                }
                out.data[i * other.rows + j] = acc;
            }
        }
        out
    }

    /// Adds a row vector (bias) to every row, in place.
    ///
    /// # Panics
    ///
    /// Panics if `bias.len() != self.cols`.
    pub fn add_row(&mut self, bias: &[f32]) {
        assert_eq!(bias.len(), self.cols, "bias width must match");
        for row in self.data.chunks_mut(self.cols) {
            for (v, b) in row.iter_mut().zip(bias) {
                *v += b;
            }
        }
    }

    /// Column sums (gradient of a broadcast bias).
    pub fn col_sums(&self) -> Vec<f32> {
        let mut out = vec![0.0; self.cols];
        for row in self.data.chunks(self.cols) {
            for (o, v) in out.iter_mut().zip(row) {
                *o += v;
            }
        }
        out
    }

    /// ReLU forward, in place.
    pub fn relu(&mut self) {
        for v in &mut self.data {
            if *v < 0.0 {
                *v = 0.0;
            }
        }
    }

    /// ReLU backward: zeroes gradient entries where the forward output
    /// was zero.
    ///
    /// # Panics
    ///
    /// Panics on shape mismatch.
    pub fn relu_backward(&mut self, forward_output: &Matrix) {
        assert_eq!(self.data.len(), forward_output.data.len(), "shape mismatch");
        for (g, &a) in self.data.iter_mut().zip(&forward_output.data) {
            if a <= 0.0 {
                *g = 0.0;
            }
        }
    }

    /// Row-wise argmax (predicted class per sample).
    pub fn argmax_rows(&self) -> Vec<usize> {
        (0..self.rows)
            .map(|r| {
                let row = &self.data[r * self.cols..(r + 1) * self.cols];
                row.iter()
                    .enumerate()
                    .max_by(|a, b| a.1.partial_cmp(b.1).expect("no NaNs in logits"))
                    .map(|(i, _)| i)
                    .expect("non-empty row")
            })
            .collect()
    }
}

/// Softmax + cross-entropy over logits, returning `(mean loss, dLogits)`.
///
/// The gradient is already divided by the batch size (mean reduction).
///
/// # Panics
///
/// Panics if `labels.len() != logits.rows`.
pub fn softmax_cross_entropy(logits: &Matrix, labels: &[usize]) -> (f32, Matrix) {
    assert_eq!(labels.len(), logits.rows, "one label per row");
    let mut grad = Matrix::zeros(logits.rows, logits.cols);
    let mut loss = 0.0;
    let inv_batch = 1.0 / logits.rows as f32;
    for (r, &label) in labels.iter().enumerate() {
        let row = &logits.data[r * logits.cols..(r + 1) * logits.cols];
        let max = row.iter().cloned().fold(f32::NEG_INFINITY, f32::max);
        let exps: Vec<f32> = row.iter().map(|&v| (v - max).exp()).collect();
        let sum: f32 = exps.iter().sum();
        debug_assert!(label < logits.cols, "label out of range");
        loss -= (exps[label] / sum).ln();
        for (c, &e) in exps.iter().enumerate() {
            let p = e / sum;
            let y = if c == label { 1.0 } else { 0.0 };
            *grad.get_mut(r, c) = (p - y) * inv_batch;
        }
    }
    (loss * inv_batch, grad)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matmul_small() {
        let a = Matrix::from_fn(2, 3, |r, c| (r * 3 + c) as f32);
        let b = Matrix::from_fn(3, 2, |r, c| (r * 2 + c) as f32);
        let c = a.matmul(&b);
        // [[0,1,2],[3,4,5]] @ [[0,1],[2,3],[4,5]] = [[10,13],[28,40]].
        assert_eq!(c.data, vec![10.0, 13.0, 28.0, 40.0]);
    }

    #[test]
    fn transposed_products_agree_with_explicit() {
        let a = Matrix::from_fn(4, 3, |r, c| (r + 2 * c) as f32 * 0.5);
        let b = Matrix::from_fn(4, 5, |r, c| (2 * r + c) as f32 * 0.25);
        // a^T @ b computed directly vs via an explicit transpose.
        let at = Matrix::from_fn(3, 4, |r, c| a.get(c, r));
        assert_eq!(a.t_matmul(&b), at.matmul(&b));

        // a @ c^T computed directly vs via an explicit transpose.
        let c = Matrix::from_fn(5, 3, |r, cc| (r * 3 + cc) as f32);
        let ct = Matrix::from_fn(3, 5, |r, cc| c.get(cc, r));
        assert_eq!(a.matmul_t(&c), a.matmul(&ct));
    }

    #[test]
    fn bias_and_col_sums_roundtrip() {
        let mut m = Matrix::zeros(3, 2);
        m.add_row(&[1.0, -2.0]);
        assert_eq!(m.col_sums(), vec![3.0, -6.0]);
    }

    #[test]
    fn relu_and_backward() {
        let mut m = Matrix {
            rows: 1,
            cols: 4,
            data: vec![-1.0, 0.0, 2.0, -3.0],
        };
        m.relu();
        assert_eq!(m.data, vec![0.0, 0.0, 2.0, 0.0]);
        let mut g = Matrix {
            rows: 1,
            cols: 4,
            data: vec![1.0, 1.0, 1.0, 1.0],
        };
        g.relu_backward(&m);
        assert_eq!(g.data, vec![0.0, 0.0, 1.0, 0.0]);
    }

    #[test]
    fn softmax_xent_uniform() {
        // All-zero logits over 4 classes: loss = ln 4.
        let logits = Matrix::zeros(2, 4);
        let (loss, grad) = softmax_cross_entropy(&logits, &[0, 3]);
        assert!((loss - (4.0f32).ln()).abs() < 1e-6);
        // Gradient rows sum to zero (softmax property).
        for r in 0..2 {
            let s: f32 = (0..4).map(|c| grad.get(r, c)).sum();
            assert!(s.abs() < 1e-6);
        }
    }

    #[test]
    fn softmax_xent_numerical_gradient() {
        let logits = Matrix {
            rows: 2,
            cols: 3,
            data: vec![0.2, -0.5, 0.9, 1.4, 0.3, -0.7],
        };
        let labels = vec![2usize, 0];
        let (_, grad) = softmax_cross_entropy(&logits, &labels);
        let eps = 1e-3f32;
        for i in 0..logits.data.len() {
            let mut plus = logits.clone();
            plus.data[i] += eps;
            let mut minus = logits.clone();
            minus.data[i] -= eps;
            let (lp, _) = softmax_cross_entropy(&plus, &labels);
            let (lm, _) = softmax_cross_entropy(&minus, &labels);
            let numeric = (lp - lm) / (2.0 * eps);
            assert!(
                (numeric - grad.data[i]).abs() < 1e-3,
                "grad[{i}]: numeric {numeric} vs analytic {}",
                grad.data[i]
            );
        }
    }

    #[test]
    fn argmax_rows() {
        let m = Matrix {
            rows: 2,
            cols: 3,
            data: vec![0.1, 0.9, 0.3, 2.0, -1.0, 0.0],
        };
        assert_eq!(m.argmax_rows(), vec![1, 0]);
    }

    #[test]
    #[should_panic(expected = "inner dimensions")]
    fn matmul_shape_mismatch() {
        let a = Matrix::zeros(2, 3);
        let b = Matrix::zeros(2, 3);
        let _ = a.matmul(&b);
    }
}
