//! The reactive controller: policies, splices, and epochs.
//!
//! The controller turns the one-shot executor into a *dynamic* one by
//! running it in **segments** spliced at wave boundaries:
//!
//! 1. **Probe.** Simulate the remaining horizon under the current
//!    configuration (plans, derates, reorder window) with the fault
//!    script's rate edges injected as DES events.
//! 2. **Observe.** Feed the probe's span trace to the
//!    [`Monitor`] and collect typed signals.
//! 3. **React (policy).** If the policy answers a signal, pick the
//!    first wave boundary at/after the detection instant, re-run the
//!    segment in *drain mode* ([`SegmentOpts::stop_after_mb`]) so it
//!    ends exactly at that boundary, commit it as an **epoch**, apply
//!    the action, and continue from the splice. If nothing is
//!    actionable, the probe itself is the final epoch — so a
//!    zero-fault run under any policy commits exactly the trace a
//!    plain [`hetpipe_core::exec::run`] produces, bit for bit.
//!
//! **Why wave boundaries?** At a boundary every virtual worker has
//! completed — and pushed — the same whole number of waves and holds
//! no in-flight minibatch. PipeDream-2BW's double buffering (the
//! `two_bw_version` semantics PR 3 pinned) means the only weight state
//! a continuation needs is the version closed by the boundary wave —
//! the shadow copy — so the spliced run starts from a *fully
//! synchronized* state. WSP's staleness gate is monotone in wave
//! distance, and a synchronized start is its most conservative
//! configuration: every bound that held for an uninterrupted run holds
//! (with slack) for the spliced one. Each epoch carries its own
//! [`OccupancyAudit`], so the measured ≤ declared memory invariant is
//! certified per plan segment, not just per run.
//!
//! Policies:
//!
//! - [`Policy::Static`] — today's behaviour: observe, never react.
//! - [`Policy::SkipStraggler`] — on a straggler, enable the
//!   executor's bounded composite-stream reorder window
//!   ([`SegmentOpts::reorder_window`]): GPUs blocked on the
//!   straggler's late gradients serve ready backwards from other
//!   chunks instead of head-of-line blocking (the ROADMAP's
//!   composite-vs-arrival adaptivity lever).
//! - [`Policy::Replan`] — re-run the fast planner
//!   ([`hetpipe_core::replan_vw_from_observed`], warm-started from
//!   the incumbent plan) with every straggler's GPU derated to its
//!   observed speed, and with lost GPUs dropped from the pipeline
//!   (shrinking `Nm` when the smaller pipeline demands it); splice
//!   the new plan in at the boundary.
//!
//! # Elastic leases
//!
//! Under a [`ScenarioScript`], lease transitions are a *control
//! plane*: the lease manager tells the controller when a GPU is
//! preempted or (re-)granted, so reacting to them reads the script —
//! unlike fault detection, which stays purely observational. A
//! transition is actionable only when it is **stable** (no opposite
//! transition on the same GPU within the lease hysteresis window —
//! a flapping lease produces zero splices) and its detection instant
//! is the end of that window. A stable preemption marks the device
//! dead (converging with the monitor's observational `GpuLost`, which
//! the executor's rate-timeline integration keeps flap-safe); a
//! stable grant revives it — or admits a brand-new device — and the
//! replan runs over the *grown* roster, re-raising `Nm` up to its
//! initial value when the widened pipeline allows it. Both reshapes
//! splice at a drained wave boundary, so the WSP soundness argument
//! is direction-independent (see the crate docs).

use crate::monitor::{Monitor, MonitorConfig, Signal};
use crate::scenario::ScenarioScript;
use hetpipe_cluster::{Cluster, DeviceId};
use hetpipe_core::exec::{self, ExecParams, RunStats, SegmentOpts, SpanTag};
use hetpipe_core::pserver::{Placement, ShardMap};
use hetpipe_core::{replan_vw_from_observed, OccupancyAudit, VirtualWorker, WspParams};
use hetpipe_des::{SimTime, Trace};
use hetpipe_model::ModelGraph;
use hetpipe_schedule::{PipelineSchedule, RecomputePolicy, Schedule};
use std::collections::{BTreeMap, BTreeSet};

/// A reactive policy: what the controller does with monitor signals.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Policy {
    /// Never react (today's static behaviour; the baseline).
    Static,
    /// On a straggler, enable bounded out-of-order service of ready
    /// backwards within `window` ops of each composite GPU stream.
    /// Only composite-stream schedules (`Dispatch::GpuStreamOrder`)
    /// have a stream to reorder; for others this behaves like
    /// [`Policy::Static`].
    SkipStraggler {
        /// Lookahead window, in stream ops.
        window: usize,
    },
    /// Re-plan with observed costs / surviving GPUs and splice at the
    /// next wave boundary.
    Replan,
}

impl Policy {
    /// A short name for reports.
    pub fn name(&self) -> &'static str {
        match self {
            Policy::Static => "static",
            Policy::SkipStraggler { .. } => "skip-straggler",
            Policy::Replan => "replan",
        }
    }

    /// Parses a CLI name: `static` | `skip-straggler[:window]` |
    /// `replan`.
    pub fn parse(s: &str) -> Option<Policy> {
        match s {
            "static" => Some(Policy::Static),
            "skip-straggler" => Some(Policy::SkipStraggler { window: 8 }),
            "replan" => Some(Policy::Replan),
            _ => {
                let rest = s.strip_prefix("skip-straggler:")?;
                let window: usize = rest.parse().ok().filter(|&w| w >= 1)?;
                Some(Policy::SkipStraggler { window })
            }
        }
    }
}

/// Inputs of a fault-aware run.
#[derive(Debug, Clone)]
pub struct RuntimeParams<'a> {
    /// The cluster.
    pub cluster: &'a Cluster,
    /// The model.
    pub graph: &'a ModelGraph,
    /// Initial virtual workers (plans resolved, as for the executor).
    pub vws: Vec<VirtualWorker>,
    /// WSP parameters of the initial configuration.
    pub wsp: WspParams,
    /// Parameter-server shard placement (rebuilt after a re-plan).
    pub placement: Placement,
    /// Model sync transfers (see `ExecParams::sync_transfers`).
    pub sync_transfers: bool,
    /// The pipeline schedule.
    pub schedule: Schedule,
    /// Activation recomputation policy.
    pub recompute: RecomputePolicy,
    /// The scenario script to inject (fault scripts convert with
    /// `.into()`).
    pub script: ScenarioScript,
    /// The reactive policy.
    pub policy: Policy,
    /// Monitor tuning.
    pub monitor: MonitorConfig,
    /// Reaction budget (backstop against pathological oscillation).
    pub max_reactions: usize,
    /// When set, `Replan` reactions route through this plan-service
    /// client ([`hetpipe_plansvc::PlanClient::replan`], published as a
    /// cache-invalidating write) instead of solving in-process. The
    /// service's warm starts are answer-preserving, so the spliced
    /// plans are bit-identical either way; on service loss the
    /// controller falls back to the in-process path. The service's
    /// catalog must contain this run's model and cluster.
    pub planner: Option<hetpipe_plansvc::PlanClient>,
}

/// One committed plan segment.
#[derive(Debug, Clone)]
pub struct Epoch {
    /// Epoch index (0-based).
    pub index: usize,
    /// Global start time.
    pub start: SimTime,
    /// Global end time (the splice point, or the horizon).
    pub end: SimTime,
    /// The `Nm` this epoch ran with.
    pub nm: usize,
    /// Minibatches completed per VW within the epoch.
    pub completed: Vec<u64>,
    /// The epoch's own measured ≤ declared occupancy audit.
    pub audit: OccupancyAudit,
    /// The action that ended this epoch (`None` for the final epoch).
    pub action: Option<String>,
}

/// The merged result of a fault-aware run.
#[derive(Debug, Clone)]
pub struct RuntimeReport {
    /// Requested horizon.
    pub horizon: SimTime,
    /// Batch size (throughput conversions).
    pub batch_size: usize,
    /// Committed epochs, in order.
    pub epochs: Vec<Epoch>,
    /// Per-VW minibatch completion times, global, across all epochs.
    pub completions: Vec<Vec<SimTime>>,
    /// The merged span trace (tags rebased to global minibatch/wave
    /// numbering, times rebased to global time).
    pub trace: Trace<SpanTag>,
    /// Resource names by `ResourceId` index (chrome-trace tracks).
    pub resource_names: Vec<String>,
    /// Instant markers: fault edges, monitor signals, splices.
    pub instants: Vec<(SimTime, String, &'static str)>,
    /// Every signal observed (global detection time + label).
    pub signals: Vec<(SimTime, String)>,
    /// The virtual workers in effect at the end of the run (after any
    /// re-planning; what the last epoch executed).
    pub final_vws: Vec<VirtualWorker>,
    /// The common `Nm` in effect at the end of the run.
    pub final_nm: usize,
}

impl RuntimeReport {
    /// Total minibatches completed across VWs.
    pub fn total_completed(&self) -> usize {
        self.completions.iter().map(Vec::len).sum()
    }

    /// System throughput in minibatches per second, excluding the
    /// leading `warmup_fraction` of the horizon.
    pub fn throughput_minibatches_per_sec(&self, warmup_fraction: f64) -> f64 {
        let warmup = SimTime::from_secs(self.horizon.as_secs() * warmup_fraction);
        let window = (self.horizon - warmup).as_secs();
        if window <= 0.0 {
            return 0.0;
        }
        let counted: usize = self
            .completions
            .iter()
            .map(|c| c.iter().filter(|&&t| t >= warmup).count())
            .sum();
        counted as f64 / window
    }

    /// System throughput in images per second (minibatch rate × batch
    /// size).
    pub fn throughput_images_per_sec(&self, warmup_fraction: f64) -> f64 {
        self.throughput_minibatches_per_sec(warmup_fraction) * self.batch_size as f64
    }

    /// True when every epoch's occupancy audit is sound.
    pub fn audits_sound(&self) -> bool {
        self.epochs.iter().all(|e| e.audit.is_sound())
    }

    /// Writes the merged trace as a `chrome://tracing` JSON file with
    /// fault edges, monitor signals, and plan-splice epochs as
    /// instant markers.
    pub fn write_chrome_trace(&self, path: impl AsRef<std::path::Path>) -> std::io::Result<()> {
        let file = std::fs::File::create(path)?;
        self.trace.write_chrome_trace_with_instants(
            file,
            |rid| {
                self.resource_names
                    .get(rid.0)
                    .cloned()
                    .unwrap_or_else(|| format!("res{}", rid.0))
            },
            |tag| tag.label(),
            |tag| tag.category(),
            &self.instants,
        )
    }
}

/// A stable, actionable lease transition — the control-plane side of
/// the feedback loop (the lease manager tells us; the monitor only
/// observes).
#[derive(Debug, Clone, PartialEq)]
enum LeaseSignal {
    /// `device` is leased to the job (a revival or a new admission).
    Granted { device: DeviceId, at: SimTime },
    /// `device`'s lease was revoked.
    Preempted { device: DeviceId, at: SimTime },
}

impl LeaseSignal {
    /// Segment-local detection time (transition + hysteresis).
    fn at(&self) -> SimTime {
        match self {
            LeaseSignal::Granted { at, .. } | LeaseSignal::Preempted { at, .. } => *at,
        }
    }

    fn label(&self) -> String {
        match self {
            LeaseSignal::Granted { device, .. } => format!("lease granted: gpu{}", device.0),
            LeaseSignal::Preempted { device, .. } => format!("lease preempted: gpu{}", device.0),
        }
    }
}

/// The action a policy chose for one probe.
enum Action {
    EnableReorder {
        window: usize,
        trigger: Signal,
    },
    Replan {
        signals: Vec<Signal>,
        lease: Vec<LeaseSignal>,
    },
}

impl Action {
    fn label(&self) -> String {
        match self {
            Action::EnableReorder { window, trigger } => {
                format!("enable reorder window {window} on [{}]", trigger.label())
            }
            Action::Replan { signals, lease } => {
                let parts: Vec<String> = signals
                    .iter()
                    .map(Signal::label)
                    .chain(lease.iter().map(LeaseSignal::label))
                    .collect();
                format!("replan on [{}]", parts.join(", "))
            }
        }
    }

    /// The signals that caused this action — what the reaction branch
    /// commits to the report (the rest of the probe's observations
    /// belong to a discarded timeline).
    fn triggers(&self) -> (Vec<Signal>, Vec<LeaseSignal>) {
        match self {
            Action::EnableReorder { trigger, .. } => (vec![trigger.clone()], Vec::new()),
            Action::Replan { signals, lease } => (signals.clone(), lease.clone()),
        }
    }
}

/// Mutable controller state across epochs.
struct Controller<'a> {
    p: RuntimeParams<'a>,
    monitor: Monitor,
    vws: Vec<VirtualWorker>,
    nm: usize,
    /// Derates already reacted to, keyed by stage (what the monitor
    /// compares against) and by device (survives re-planning, which
    /// renumbers stages).
    applied: BTreeMap<(usize, usize), f64>,
    applied_dev: BTreeMap<(usize, DeviceId), f64>,
    dead: BTreeSet<DeviceId>,
    /// The initial common `Nm` — the ceiling a grow-splice may
    /// re-raise to after a shrink lowered `self.nm`.
    initial_nm: usize,
    /// Per-VW device roster: every physical device that has ever been
    /// part of (or granted to) the VW, in pipeline order. Replans
    /// draw survivors from here rather than from the current plan, so
    /// a dropped GPU keeps its position and can be re-admitted.
    roster: Vec<Vec<DeviceId>>,
    reorder: usize,
    // Global accumulators.
    offset: SimTime,
    mb_offset: u64,
    wave_offset: u64,
    reactions: usize,
    report: RuntimeReport,
    /// `(model_fp, cluster_fp)` for service-routed replans; computed
    /// once at construction when a planner client is attached.
    plan_fps: Option<(u64, u64)>,
}

impl<'a> Controller<'a> {
    fn new(p: RuntimeParams<'a>, horizon: SimTime) -> Self {
        let monitor = Monitor::new(p.monitor);
        let vws = p.vws.clone();
        let nm = p.wsp.nm;
        let mut instants: Vec<(SimTime, String, &'static str)> = p
            .script
            .instants()
            .into_iter()
            .filter(|(at, _, _)| *at <= horizon)
            .collect();
        instants.sort_by_key(|i| i.0);
        let report = RuntimeReport {
            horizon,
            batch_size: p.graph.batch_size,
            epochs: Vec::new(),
            completions: vec![Vec::new(); vws.len()],
            trace: Trace::new(),
            resource_names: Vec::new(),
            instants,
            signals: Vec::new(),
            final_vws: Vec::new(),
            final_nm: nm,
        };
        let plan_fps = p.planner.as_ref().map(|_| {
            (
                hetpipe_core::plankey::graph_fingerprint(p.graph),
                hetpipe_core::plankey::cluster_fingerprint(p.cluster),
            )
        });
        let roster = vws
            .iter()
            .map(|vw| {
                let mut phys: Vec<DeviceId> = Vec::new();
                for &d in &vw.devices {
                    if !phys.contains(&d) {
                        phys.push(d);
                    }
                }
                phys
            })
            .collect();
        Controller {
            monitor,
            vws,
            nm,
            applied: BTreeMap::new(),
            applied_dev: BTreeMap::new(),
            dead: BTreeSet::new(),
            initial_nm: nm,
            roster,
            reorder: 0,
            offset: SimTime::ZERO,
            mb_offset: 0,
            wave_offset: 0,
            reactions: 0,
            report,
            plan_fps,
            p,
        }
    }

    /// One segment's executor options under the current config.
    fn segment_opts(&self, stop_after_mb: Option<u64>) -> SegmentOpts {
        let (initial_rates, rate_events) = self.p.script.segment_rates(self.offset);
        SegmentOpts {
            stop_after_mb,
            initial_rates,
            rate_events,
            reorder_window: self.reorder,
        }
    }

    fn run_segment(&self, opts: SegmentOpts, remaining: SimTime) -> RunStats {
        let shards = ShardMap::build(self.p.placement, self.p.graph, self.p.cluster, &self.vws[0]);
        exec::run_segment(
            ExecParams {
                cluster: self.p.cluster,
                graph: self.p.graph,
                vws: &self.vws,
                wsp: WspParams::new(self.nm, self.p.wsp.d),
                shards: &shards,
                sync_transfers: self.p.sync_transfers,
                schedule: self.p.schedule,
                recompute: self.p.recompute,
            },
            opts,
            remaining,
        )
    }

    /// Folds a committed segment into the global report.
    fn commit(&mut self, stats: &RunStats, action: Option<String>) {
        let off = self.offset;
        if self.report.resource_names.is_empty() {
            self.report.resource_names = stats.pool.iter().map(|(_, r)| r.name.clone()).collect();
        }
        for span in stats.trace.spans() {
            let tag = match span.tag {
                SpanTag::Forward { vw, stage, mb } => SpanTag::Forward {
                    vw,
                    stage,
                    mb: mb + self.mb_offset,
                },
                SpanTag::Backward { vw, stage, mb } => SpanTag::Backward {
                    vw,
                    stage,
                    mb: mb + self.mb_offset,
                },
                SpanTag::Recompute { vw, stage, mb } => SpanTag::Recompute {
                    vw,
                    stage,
                    mb: mb + self.mb_offset,
                },
                SpanTag::SyncTransfer { vw, wave, pull } => SpanTag::SyncTransfer {
                    vw,
                    wave: wave + self.wave_offset,
                    pull,
                },
                other => other,
            };
            self.report
                .trace
                .record(span.resource, span.start + off, span.end + off, tag);
        }
        let mut completed = Vec::with_capacity(stats.vws.len());
        for (i, vw) in stats.vws.iter().enumerate() {
            completed.push(vw.completions.len() as u64);
            self.report.completions[i].extend(vw.completions.iter().map(|&t| t + off));
        }
        let audit = OccupancyAudit::measure(stats, &self.vws, &self.p.schedule, self.nm);
        let end = off + stats.end;
        if let Some(action) = &action {
            self.report
                .instants
                .push((end, format!("splice: {action}"), "epoch"));
        }
        self.report.epochs.push(Epoch {
            index: self.report.epochs.len(),
            start: off,
            end,
            nm: self.nm,
            completed,
            audit,
            action,
        });
    }

    /// Logs a probe's signals (global times) into the report.
    fn log_signals(&mut self, signals: &[Signal]) {
        for s in signals {
            let at = s.at() + self.offset;
            self.report.signals.push((at, s.label()));
            self.report.instants.push((at, s.label(), "signal"));
        }
    }

    /// Logs acted-on lease signals (global times) into the report.
    fn log_lease(&mut self, lease: &[LeaseSignal]) {
        for s in lease {
            let at = s.at() + self.offset;
            self.report.signals.push((at, s.label()));
            self.report.instants.push((at, s.label(), "signal"));
        }
    }

    /// The stable, actionable lease transitions visible to this
    /// probe, in segment-local detection time.
    ///
    /// A transition at global `t` is **stable** iff no opposite
    /// transition of the same GPU falls within `(t, t + hysteresis]`;
    /// its detection instant is `t + hysteresis` (the controller
    /// waits the window out before believing the lease manager), so
    /// a flapping lease is never acted on at all.
    ///
    /// Only transitions whose detection instant falls *after* the
    /// current segment started are considered: older ones were either
    /// acted on or deliberately suppressed by an earlier segment's
    /// decision, and re-arming them once the device state flips back
    /// would ping-pong the controller between a stale grant and a
    /// stale preemption forever. On top of that, conditions
    /// self-suppress: a preemption is actionable only while the
    /// device is active, a grant only while the device is dead or not
    /// yet admitted.
    fn lease_signals(&self, probe_end: SimTime) -> Vec<LeaseSignal> {
        let transitions = self.p.script.lease_transitions();
        if transitions.is_empty() {
            return Vec::new();
        }
        let hysteresis = SimTime::from_secs(self.p.monitor.lease_hysteresis_secs);
        let devices = self.p.cluster.devices().count();
        let active: BTreeSet<DeviceId> = self
            .vws
            .iter()
            .flat_map(|vw| vw.devices.iter().copied())
            .collect();
        let mut out = Vec::new();
        for t in &transitions {
            if t.gpu >= devices {
                continue; // Not a device of this cluster.
            }
            let stable = !transitions.iter().any(|o| {
                o.gpu == t.gpu
                    && o.available != t.available
                    && o.at > t.at
                    && o.at - t.at <= hysteresis
            });
            if !stable {
                continue;
            }
            let detect = t.at + hysteresis;
            let end = self.offset + probe_end;
            if detect > end {
                continue; // Not yet detected within this run.
            }
            if detect <= self.offset {
                // Settled by an earlier segment (acted on or
                // suppressed); never re-armed.
                continue;
            }
            let local = detect - self.offset;
            let device = DeviceId(t.gpu);
            if t.available {
                if self.dead.contains(&device) || !active.contains(&device) {
                    out.push(LeaseSignal::Granted { device, at: local });
                }
            } else if active.contains(&device) && !self.dead.contains(&device) {
                out.push(LeaseSignal::Preempted { device, at: local });
            }
        }
        out.sort_by_key(LeaseSignal::at);
        out
    }

    /// What, if anything, the policy does with this probe's signals.
    /// Lease transitions are actionable by [`Policy::Replan`] only —
    /// the static and reorder policies keep today's behaviour, which
    /// is what makes them honest baselines under lease scenarios.
    fn decide(&self, signals: &[Signal], lease: &[LeaseSignal]) -> Option<(SimTime, Action)> {
        if self.reactions >= self.p.max_reactions {
            return None;
        }
        match self.p.policy {
            Policy::Static => None,
            Policy::SkipStraggler { window } => {
                if self.reorder > 0 {
                    return None; // Already reordering; nothing to add.
                }
                signals
                    .iter()
                    .find(|s| matches!(s, Signal::Straggler { .. }))
                    .map(|s| {
                        (
                            s.at(),
                            Action::EnableReorder {
                                window,
                                trigger: s.clone(),
                            },
                        )
                    })
            }
            Policy::Replan => {
                let actionable: Vec<Signal> = signals
                    .iter()
                    .filter(|s| {
                        matches!(
                            s,
                            Signal::Straggler { .. }
                                | Signal::GpuLost { .. }
                                | Signal::Recovered { .. }
                        )
                    })
                    .cloned()
                    .collect();
                let first = actionable
                    .first()
                    .map(Signal::at)
                    .into_iter()
                    .chain(lease.first().map(LeaseSignal::at))
                    .min()?;
                Some((
                    first,
                    Action::Replan {
                        signals: actionable,
                        lease: lease.to_vec(),
                    },
                ))
            }
        }
    }

    /// The first wave boundary (as a segment-local minibatch count)
    /// at/after `t_sig` that the probe shows *every* VW completing —
    /// falling back to the last fully completed wave when the
    /// pipeline stalled (GPU loss), or 0 (an immediate, zero-length
    /// splice epoch) when no wave completed at all; the 0 case cannot
    /// loop because every action changes the configuration and the
    /// reaction budget bounds it regardless.
    ///
    /// One guard: under the executor's rate-timeline integration, a
    /// wave whose task *crosses* an outage window completes only when
    /// the outage lifts, so the first boundary at/after the signal
    /// can sit far beyond it — draining there would ride out the
    /// whole outage under the old plan and make the reaction
    /// worthless. When the chosen boundary lies more than two typical
    /// wave periods past the signal, splice at the *previous* (last
    /// pre-outage) boundary instead: any drained boundary is fully
    /// synchronized, so an earlier one is just as sound.
    fn splice_boundary(&self, probe: &RunStats, t_sig: SimTime) -> u64 {
        let nm = self.nm as u64;
        let full_waves = probe
            .vws
            .iter()
            .map(|v| v.completions.len() as u64 / nm)
            .min()
            .unwrap_or(0);
        if full_waves == 0 {
            return 0;
        }
        // Boundary instant of each whole wave (max across VWs).
        let times: Vec<SimTime> = (0..full_waves)
            .map(|w| {
                let last_mb = ((w + 1) * nm - 1) as usize;
                probe
                    .vws
                    .iter()
                    .map(|v| v.completions[last_mb])
                    .max()
                    .expect("at least one VW")
            })
            .collect();
        // Typical inter-boundary gap: the median is robust to the
        // few outage-inflated waves.
        let mut gaps: Vec<SimTime> = times.windows(2).map(|w| w[1] - w[0]).collect();
        gaps.sort();
        let period = gaps.get(gaps.len() / 2).copied().unwrap_or(times[0]);
        for (w, &boundary) in times.iter().enumerate() {
            if boundary >= t_sig {
                let w = w as u64;
                if boundary - t_sig > period + period {
                    // Outage-inflated boundary: take the previous one.
                    return w * nm;
                }
                return (w + 1) * nm;
            }
        }
        // Completions ceased before the signal (a stalled pipeline):
        // splice at the last whole wave.
        full_waves * nm
    }

    /// Applies a decided action at a committed splice.
    fn apply(&mut self, action: Action) {
        match action {
            Action::EnableReorder { window, .. } => {
                self.reorder = window;
            }
            Action::Replan { signals, lease } => {
                for s in &signals {
                    let (vw, stage) = s.stage_key();
                    let device = self.vws[vw].devices[stage];
                    match s {
                        Signal::Straggler { severity, .. } => {
                            self.applied_dev.insert((vw, device), *severity);
                        }
                        Signal::Recovered { .. } => {
                            self.applied_dev.remove(&(vw, device));
                        }
                        Signal::GpuLost { .. } => {
                            self.dead.insert(device);
                        }
                    }
                }
                let mut grew = false;
                for s in &lease {
                    match *s {
                        LeaseSignal::Preempted { device, .. } => {
                            // Converges with the monitor's
                            // observational GpuLost (idempotent).
                            self.dead.insert(device);
                        }
                        LeaseSignal::Granted { device, .. } => {
                            grew = true;
                            self.dead.remove(&device);
                            // A re-admitted GPU starts at nominal:
                            // stale derates belong to its old lease.
                            for i in 0..self.vws.len() {
                                self.applied_dev.remove(&(i, device));
                            }
                            if !self.roster.iter().any(|r| r.contains(&device)) {
                                // A brand-new grant joins the
                                // narrowest pipeline.
                                if let Some(r) = self.roster.iter_mut().min_by_key(|r| r.len()) {
                                    r.push(device);
                                }
                            }
                        }
                    }
                }
                // A grow-splice may re-raise Nm up to the initial
                // value: the widened pipeline restored the memory
                // headroom the shrink had taken away.
                let ceiling = if grew {
                    self.initial_nm.max(self.nm)
                } else {
                    self.nm
                };
                self.replan(ceiling);
            }
        }
    }

    /// One VW's replan attempt at `nm`: through the attached plan
    /// service (published as a cache-invalidating write) when one is
    /// configured, in-process otherwise. The service's warm start is
    /// answer-preserving, so both paths return bit-identical plans for
    /// the same observed costs; a partition error (infeasible `nm`)
    /// surfaces either way so the caller can lower `nm`, while
    /// service-transport failures (stopped service, stale catalog, a
    /// deadline-bounded client reporting `DeadlineExceeded` on a slow
    /// pool) fall back to the in-process solve rather than killing the
    /// reaction — degraded mode costs latency headroom, never plan
    /// fidelity, because both paths are bit-identical by construction.
    fn solve_replan(
        &self,
        i: usize,
        expanded: &[DeviceId],
        derate: &[f64],
        nm: usize,
    ) -> Result<hetpipe_partition::PartitionPlan, hetpipe_partition::PartitionError> {
        if let (Some(client), Some((model_fp, cluster_fp))) = (&self.p.planner, self.plan_fps) {
            let req = hetpipe_plansvc::PlanRequest {
                model_fp,
                cluster_fp,
                devices: expanded.to_vec(),
                nm,
                schedule: self.p.schedule,
                recompute: self.p.recompute,
                observed_derates: derate.to_vec(),
            };
            match client.replan(&req) {
                Ok(reply) => return Ok(reply.plan),
                Err(hetpipe_plansvc::PlanError::Partition(e)) => return Err(e),
                // Service gone or misconfigured: degrade to in-process.
                Err(_) => {}
            }
        }
        let incumbent = (self.vws[i].devices == expanded && self.vws[i].nm == nm)
            .then(|| self.vws[i].plan.ranges.clone());
        replan_vw_from_observed(
            self.p.cluster,
            self.p.graph,
            expanded,
            derate,
            nm,
            self.p.schedule,
            self.p.recompute,
            incumbent.as_deref(),
        )
    }

    /// Rebuilds every VW's plan from observed costs and surviving
    /// GPUs, starting at `ceiling` and lowering the common `Nm` until
    /// the pipeline solves (`ceiling` exceeds the current `Nm` only
    /// for a grow-splice). Survivors come from the *roster*, not the
    /// current plan, so a GPU dropped by an earlier shrink keeps its
    /// pipeline position and is re-admitted the moment it leaves the
    /// dead set. On total failure the old configuration is kept (the
    /// reaction budget stops the loop).
    fn replan(&mut self, ceiling: usize) {
        let schedule = self.p.schedule;
        // Per VW: surviving physical devices (roster order preserved).
        let mut survivors: Vec<Vec<DeviceId>> = Vec::with_capacity(self.vws.len());
        for roster in &self.roster {
            let phys: Vec<DeviceId> = roster
                .iter()
                .copied()
                .filter(|d| !self.dead.contains(d))
                .collect();
            if phys.is_empty() {
                return; // Nothing left to run on; keep the old config.
            }
            survivors.push(phys);
        }
        // Try the highest Nm first, lowering until every VW solves.
        'nm: for nm in (1..=ceiling).rev() {
            let mut new_vws = Vec::with_capacity(self.vws.len());
            for (i, phys) in survivors.iter().enumerate() {
                let vk = schedule.virtual_stages(phys.len());
                let expanded: Vec<DeviceId> = (0..vk).map(|s| phys[s % phys.len()]).collect();
                let derate: Vec<f64> = expanded
                    .iter()
                    .map(|d| self.applied_dev.get(&(i, *d)).copied().unwrap_or(1.0))
                    .collect();
                let plan = self.solve_replan(i, &expanded, &derate, nm);
                match plan {
                    Ok(plan) => new_vws.push(VirtualWorker {
                        index: i,
                        devices: expanded,
                        plan,
                        nm,
                    }),
                    Err(_) => continue 'nm,
                }
            }
            self.vws = new_vws;
            self.nm = nm;
            // Re-key the monitor baseline to the (possibly renumbered)
            // stages of the new pipelines.
            let mut applied = BTreeMap::new();
            for (i, vw) in self.vws.iter().enumerate() {
                for (s, d) in vw.devices.iter().enumerate() {
                    if let Some(&r) = self.applied_dev.get(&(i, *d)) {
                        applied.insert((i, s), r);
                    }
                }
            }
            self.applied = applied;
            return;
        }
        // No feasible Nm: keep the old configuration.
    }

    fn run(mut self, horizon: SimTime) -> RuntimeReport {
        loop {
            let remaining = horizon - self.offset;
            if remaining.is_zero() {
                break;
            }
            let probe = self.run_segment(self.segment_opts(None), remaining);
            let signals = self
                .monitor
                .analyze(&probe, &self.vws, self.p.schedule, &self.applied);
            let lease = self.lease_signals(probe.end);
            match self.decide(&signals, &lease) {
                None => {
                    // Nothing to react to: the probe is the final
                    // epoch (for a zero-fault script this is exactly
                    // the plain one-shot run), and its signals are
                    // observations of the committed timeline.
                    self.log_signals(&signals);
                    self.commit(&probe, None);
                    break;
                }
                Some((t_sig, action)) => {
                    let stop = self.splice_boundary(&probe, t_sig);
                    let stats = self.run_segment(self.segment_opts(Some(stop)), remaining);
                    // Log only the signals the policy acted on:
                    // everything else the probe observed belongs to a
                    // discarded timeline and would leave phantom
                    // markers in the report.
                    let (sig_triggers, lease_triggers) = action.triggers();
                    self.log_signals(&sig_triggers);
                    self.log_lease(&lease_triggers);
                    self.commit(&stats, Some(action.label()));
                    self.offset += stats.end;
                    self.mb_offset += stop;
                    self.wave_offset += stop / self.nm as u64;
                    self.apply(action);
                    self.reactions += 1;
                }
            }
        }
        self.report.instants.sort_by_key(|i| i.0);
        self.report.signals.sort_by_key(|i| i.0);
        self.report.final_vws = self.vws;
        self.report.final_nm = self.nm;
        self.report
    }
}

/// Runs a fault-aware simulation: fault injection, monitoring, and
/// the reactive policy, merged into one global report.
pub fn run(params: RuntimeParams<'_>, horizon: SimTime) -> RuntimeReport {
    Controller::new(params, horizon).run(horizon)
}
