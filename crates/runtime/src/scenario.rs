//! The elastic scenario model: leases, preemptions, and faults in
//! one replayable script.
//!
//! A [`ScenarioScript`] is a strict superset of [`FaultScript`]: on
//! top of the perturbation classes ([`Fault::GpuSlowdown`],
//! [`Fault::LinkDegrade`], [`Fault::GpuLoss`]/[`Fault::GpuRecovery`])
//! it adds *lease* events — [`ScenarioEvent::GpuGranted`] and
//! [`ScenarioEvent::GpuPreempted`] — modelling spot-instance GPUs
//! that are handed to the job, taken back, and handed out again.
//!
//! The two layers compile to the same substrate. A GPU is *available*
//! while its lease holds and *unavailable* otherwise; unavailable
//! intervals become rate-0 windows min-composed with the fault
//! windows, so the executor needs no new mechanism — a preempted GPU
//! looks exactly like a lost one until its re-grant. What leases add
//! is the **control plane**: [`ScenarioScript::lease_transitions`]
//! exposes the grant/preempt schedule as typed transitions the
//! controller can react to (dropping a preempted GPU at a wave
//! boundary, re-admitting it on re-grant), which pure fault windows —
//! observable only through the trace — cannot express.
//!
//! Like fault scripts, scenarios are data: a canonical lease trace
//! ([`ScenarioScript::canonical_lease`]) anchors the acceptance
//! measurements, the seeded chaos generator
//! ([`ScenarioScript::chaos`]) covers the space deterministically
//! (same seed ⇒ same script ⇒ same simulation), and JSON
//! round-tripping ([`ScenarioScript::to_json`] /
//! [`ScenarioScript::from_json`]) lets the CI bins load them from
//! files; the parser also accepts the legacy [`FaultScript`] form.

use crate::fault::{
    compile_edges, fault_from_json, fault_to_json, footprints_from_edges, split_segment_rates,
    Fault, FaultScript, RateWindow,
};
use hetpipe_core::exec::{RateEvent, RateTarget};
use hetpipe_des::SimTime;
use serde_json::{json, Value};

/// One scripted scenario event, in *global* simulated seconds.
#[derive(Debug, Clone, PartialEq)]
pub enum ScenarioEvent {
    /// A classic perturbation (slowdown, link degrade, loss,
    /// recovery) — see [`Fault`].
    Fault(Fault),
    /// GPU `gpu` (cluster device index) is leased to the job at
    /// `at_secs`. A grant at time 0 states the GPU is part of the
    /// initial lease; a later first grant means the GPU joins a
    /// running job (it is unavailable before it).
    GpuGranted {
        /// Cluster device index.
        gpu: usize,
        /// Grant instant, seconds.
        at_secs: f64,
    },
    /// GPU `gpu`'s lease is revoked at `at_secs`: the device is
    /// unavailable (rate 0) until a later [`ScenarioEvent::GpuGranted`]
    /// returns it.
    GpuPreempted {
        /// Cluster device index.
        gpu: usize,
        /// Preemption instant, seconds.
        at_secs: f64,
    },
}

impl ScenarioEvent {
    /// A short human-readable label for trace markers.
    pub fn label(&self) -> String {
        match self {
            ScenarioEvent::Fault(f) => f.label(),
            ScenarioEvent::GpuGranted { gpu, .. } => format!("lease: gpu{gpu} granted"),
            ScenarioEvent::GpuPreempted { gpu, .. } => format!("lease: gpu{gpu} preempted"),
        }
    }
}

/// One lease-state change: at `at`, GPU `gpu` became available
/// (`true`) or unavailable (`false`).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LeaseTransition {
    /// Global transition instant.
    pub at: SimTime,
    /// Cluster device index.
    pub gpu: usize,
    /// The availability the transition switches *to*.
    pub available: bool,
}

/// A named, deterministic sequence of [`ScenarioEvent`]s.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct ScenarioScript {
    /// Script name (reports, trace markers, CI artifacts).
    pub name: String,
    /// The events, in any order (edges are sorted at compile time).
    pub events: Vec<ScenarioEvent>,
}

impl From<FaultScript> for ScenarioScript {
    fn from(s: FaultScript) -> Self {
        ScenarioScript {
            name: s.name,
            events: s.faults.into_iter().map(ScenarioEvent::Fault).collect(),
        }
    }
}

impl ScenarioScript {
    /// The empty (zero-scenario) script: running under it must leave
    /// every trace bit-identical to a fault-free run.
    pub fn none() -> ScenarioScript {
        ScenarioScript {
            name: "none".into(),
            events: Vec::new(),
        }
    }

    /// True when the script perturbs nothing.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// The canonical lease trace: `gpu` is part of the initial lease,
    /// is preempted at `preempt_secs`, and re-granted at
    /// `regrant_secs` — the acceptance scenario of the elastic
    /// controller (drop at a wave boundary, re-admit on re-grant).
    pub fn canonical_lease(gpu: usize, preempt_secs: f64, regrant_secs: f64) -> ScenarioScript {
        assert!(
            preempt_secs < regrant_secs,
            "re-grant must follow the preemption"
        );
        ScenarioScript {
            name: "canonical-lease".into(),
            events: vec![
                ScenarioEvent::GpuGranted { gpu, at_secs: 0.0 },
                ScenarioEvent::GpuPreempted {
                    gpu,
                    at_secs: preempt_secs,
                },
                ScenarioEvent::GpuGranted {
                    gpu,
                    at_secs: regrant_secs,
                },
            ],
        }
    }

    /// A deterministic seeded chaos script: `count` events drawn over
    /// `[0, horizon_secs)` mixing slowdown windows, link degradation,
    /// and preempt/re-grant lease pairs across `gpus` devices and
    /// `nodes` NICs. Two liveness invariants are enforced by
    /// construction so every chaos run can be gated on progress:
    /// GPU 0 is never preempted, and preemption windows never leave
    /// fewer than two GPUs available at any instant (a candidate
    /// window that would is skipped). Same seed ⇒ same script.
    pub fn chaos(seed: u64, horizon_secs: f64, gpus: usize, nodes: usize, count: usize) -> Self {
        // SplitMix64: dependency-free, stable across platforms.
        let mut state = seed.wrapping_add(0x9e3779b97f4a7c15);
        let mut next = move || {
            let mut z = state;
            state = state.wrapping_add(0x9e3779b97f4a7c15);
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
            z ^ (z >> 31)
        };
        let unit = move |r: &mut dyn FnMut() -> u64| (r() >> 11) as f64 / (1u64 << 53) as f64;
        let mut events = Vec::with_capacity(count);
        // Closed preemption windows already committed, for the
        // ≥2-available invariant (every preemption here is paired
        // with a re-grant, so intervals are closed).
        let mut outages: Vec<(usize, f64, f64)> = Vec::new();
        for _ in 0..count {
            let from = unit(&mut next) * horizon_secs * 0.8;
            let len = 0.05 * horizon_secs + unit(&mut next) * 0.3 * horizon_secs;
            let until = (from + len).min(horizon_secs * 0.95);
            match next() % 4 {
                0 if nodes > 0 => events.push(ScenarioEvent::Fault(Fault::LinkDegrade {
                    node: (next() % nodes as u64) as usize,
                    factor: 1.1 + unit(&mut next) * 0.9,
                    from_secs: from,
                    until_secs: Some(until),
                })),
                1 if gpus > 1 => {
                    // gpu 0 is exempt: a preemption target in 1..gpus.
                    let gpu = 1 + (next() % (gpus as u64 - 1)) as usize;
                    let overlap =
                        |&(g, f, u): &(usize, f64, f64)| g != gpu && f < until && from < u;
                    let concurrent = outages.iter().filter(|o| overlap(o)).count();
                    // Including this window, `concurrent + 1` GPUs can
                    // be down at once; keep at least 2 of `gpus` up.
                    if gpus >= concurrent + 3 {
                        outages.push((gpu, from, until));
                        events.push(ScenarioEvent::GpuPreempted { gpu, at_secs: from });
                        events.push(ScenarioEvent::GpuGranted {
                            gpu,
                            at_secs: until,
                        });
                    }
                }
                _ => events.push(ScenarioEvent::Fault(Fault::GpuSlowdown {
                    gpu: (next() % gpus.max(1) as u64) as usize,
                    factor: 1.1 + unit(&mut next) * 0.9,
                    from_secs: from,
                    until_secs: Some(until),
                })),
            }
        }
        ScenarioScript {
            name: format!("chaos-{seed}"),
            events,
        }
    }

    /// The plain-fault view of the script (lease events excluded).
    fn fault_windows(&self) -> Vec<RateWindow> {
        let faults: Vec<Fault> = self
            .events
            .iter()
            .filter_map(|e| match e {
                ScenarioEvent::Fault(f) => Some(f.clone()),
                _ => None,
            })
            .collect();
        FaultScript {
            name: self.name.clone(),
            faults,
        }
        .windows()
    }

    /// Every lease event of one GPU, sorted by time (preemptions
    /// before grants at the same instant, so a zero-length flap
    /// resolves to "available").
    fn lease_events(&self) -> Vec<(usize, f64, bool)> {
        let mut lease: Vec<(usize, f64, bool)> = self
            .events
            .iter()
            .filter_map(|e| match *e {
                ScenarioEvent::GpuGranted { gpu, at_secs } => Some((gpu, at_secs, true)),
                ScenarioEvent::GpuPreempted { gpu, at_secs } => Some((gpu, at_secs, false)),
                ScenarioEvent::Fault(_) => None,
            })
            .collect();
        lease.sort_by(|a, b| {
            (a.0, a.1, a.2)
                .partial_cmp(&(b.0, b.1, b.2))
                .expect("lease times are finite")
        });
        lease
    }

    /// The lease-state changes of the script, sorted by time: GPUs
    /// with no lease events never appear (they are plain cluster
    /// devices, always available). A GPU whose first lease event is a
    /// grant is unavailable before it — so an initial grant at time 0
    /// produces a (vacuous) transition to available at 0, and a GPU
    /// that joins mid-run transitions when it arrives. Duplicate
    /// same-state events collapse: only actual changes are reported.
    pub fn lease_transitions(&self) -> Vec<LeaseTransition> {
        let mut out = Vec::new();
        let mut cur: Option<(usize, bool)> = None; // (gpu, available)
        for (gpu, at, avail) in self.lease_events() {
            let changed = match cur {
                Some((g, a)) if g == gpu => a != avail,
                // First event of this GPU: it was unavailable before a
                // first grant, available before a first preemption.
                _ => true,
            };
            cur = Some((gpu, avail));
            if changed {
                out.push(LeaseTransition {
                    at: SimTime::from_secs(at),
                    gpu,
                    available: avail,
                });
            }
        }
        out.sort_by_key(|t| t.at);
        out
    }

    /// All rate windows of the script: the fault windows plus one
    /// rate-0 window per unavailable lease interval (a preempted GPU
    /// is indistinguishable from a lost one until its re-grant, and
    /// a late-joining GPU is dead until its first grant).
    fn windows(&self) -> Vec<RateWindow> {
        let mut windows = self.fault_windows();
        let mut open: Option<f64> = None; // unavailable since
        let mut cur: Option<(usize, bool)> = None;
        let mut flush = |gpu: usize, open: &mut Option<f64>, until: Option<f64>| {
            if let Some(from) = open.take() {
                windows.push((
                    (0u8, gpu),
                    SimTime::from_secs(from),
                    until.map(SimTime::from_secs),
                    0.0,
                ));
            }
        };
        for (gpu, at, avail) in self.lease_events() {
            if let Some((g, _)) = cur {
                if g != gpu {
                    // Previous GPU's trailing unavailable interval is
                    // open-ended.
                    flush(g, &mut open, None);
                }
            }
            let first = !matches!(cur, Some((g, _)) if g == gpu);
            match (avail, first) {
                // First grant: unavailable from the start of time.
                (true, true) => {
                    if at > 0.0 {
                        open = Some(0.0);
                    }
                    flush(gpu, &mut open, Some(at));
                }
                (true, false) => flush(gpu, &mut open, Some(at)),
                (false, _) => {
                    if open.is_none() {
                        open = Some(at);
                    }
                }
            }
            cur = Some((gpu, avail));
        }
        if let Some((g, _)) = cur {
            flush(g, &mut open, None);
        }
        windows
    }

    /// All effective rate edges of the script, sorted by time; lease
    /// unavailability min-composes with fault windows exactly like
    /// [`FaultScript::edges`] (the worst active window dominates).
    pub fn edges(&self) -> Vec<(SimTime, RateTarget, f64)> {
        compile_edges(&self.windows())
    }

    /// The declared footprint of every rate edge, in edge order — the
    /// successor of [`FaultScript::edge_footprints`] for the static
    /// VW-isolation pass: lease edges, like fault edges, write exactly
    /// one environment-owned rate register and read nothing, so a
    /// scenario script replicated into every per-VW engine leaves the
    /// dependency DAG untouched.
    pub fn edge_footprints(&self) -> Vec<hetpipe_des::Footprint> {
        footprints_from_edges(&self.edges())
    }

    /// Compiles the script for a segment starting at global time
    /// `offset` (see [`FaultScript::segment_rates`]).
    pub fn segment_rates(&self, offset: SimTime) -> (Vec<(RateTarget, f64)>, Vec<RateEvent>) {
        split_segment_rates(self.edges(), offset)
    }

    /// Trace markers (global time + label) for every event onset and
    /// window end, for chrome-trace instant events.
    pub fn instants(&self) -> Vec<(SimTime, String, &'static str)> {
        let faults: Vec<Fault> = self
            .events
            .iter()
            .filter_map(|e| match e {
                ScenarioEvent::Fault(f) => Some(f.clone()),
                _ => None,
            })
            .collect();
        let mut out = FaultScript {
            name: self.name.clone(),
            faults,
        }
        .instants();
        for e in &self.events {
            match *e {
                ScenarioEvent::GpuGranted { at_secs, .. }
                | ScenarioEvent::GpuPreempted { at_secs, .. } => {
                    out.push((SimTime::from_secs(at_secs), e.label(), "lease"));
                }
                ScenarioEvent::Fault(_) => {}
            }
        }
        out.sort_by_key(|i| i.0);
        out
    }

    /// Serializes the script as JSON (an `events` array; fault events
    /// use their [`FaultScript`] encoding).
    pub fn to_json(&self) -> Value {
        let events: Vec<Value> = self
            .events
            .iter()
            .map(|e| match *e {
                ScenarioEvent::Fault(ref f) => fault_to_json(f),
                ScenarioEvent::GpuGranted { gpu, at_secs } => json!({
                    "kind": "gpu-granted",
                    "gpu": gpu as u64,
                    "at": at_secs,
                }),
                ScenarioEvent::GpuPreempted { gpu, at_secs } => json!({
                    "kind": "gpu-preempted",
                    "gpu": gpu as u64,
                    "at": at_secs,
                }),
            })
            .collect();
        json!({ "name": self.name.clone(), "events": events })
    }

    /// Parses a script from its JSON form; a legacy [`FaultScript`]
    /// object (a `faults` array) is accepted and upgraded. Returns a
    /// description of the first problem on malformed input.
    pub fn from_json(text: &str) -> Result<ScenarioScript, String> {
        let value: Value = serde_json::from_str(text).map_err(|e| e.to_string())?;
        let Value::Object(map) = &value else {
            return Err("scenario script must be a JSON object".into());
        };
        if map.get("faults").is_some() && map.get("events").is_none() {
            return FaultScript::from_json(text).map(ScenarioScript::from);
        }
        let name = match map.get("name") {
            Some(Value::String(s)) => s.clone(),
            None => "unnamed".into(),
            _ => return Err("'name' must be a string".into()),
        };
        let Some(Value::Array(items)) = map.get("events") else {
            return Err("'events' must be an array".into());
        };
        let mut events = Vec::with_capacity(items.len());
        for item in items {
            let Value::Object(m) = item else {
                return Err("each event must be an object".into());
            };
            let kind = match m.get("kind") {
                Some(Value::String(s)) => s.as_str(),
                _ => return Err("each event needs a string 'kind'".into()),
            };
            let lease = |key: &str| -> Result<(usize, f64), String> {
                let gpu = match m.get("gpu") {
                    Some(Value::Number(n)) if *n >= 0.0 && n.fract() == 0.0 => *n as usize,
                    _ => return Err("'gpu' must be a non-negative integer".into()),
                };
                let at = match m.get(key) {
                    Some(Value::Number(n)) => *n,
                    _ => return Err(format!("'{key}' must be a number")),
                };
                Ok((gpu, at))
            };
            events.push(match kind {
                "gpu-granted" => {
                    let (gpu, at_secs) = lease("at")?;
                    ScenarioEvent::GpuGranted { gpu, at_secs }
                }
                "gpu-preempted" => {
                    let (gpu, at_secs) = lease("at")?;
                    ScenarioEvent::GpuPreempted { gpu, at_secs }
                }
                // Anything else must be a fault kind: delegate to the
                // fault parser (which also validates factors ≥ 1).
                _ => ScenarioEvent::Fault(fault_from_json(item)?),
            });
        }
        Ok(ScenarioScript { name, events })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn canonical_lease_compiles_to_loss_recovery_edges() {
        let s = ScenarioScript::canonical_lease(2, 8.0, 16.0);
        let edges = s.edges();
        // The initial grant at 0 contributes no edge (the GPU is
        // available from the start); the preempt/re-grant pair is a
        // rate-0 window.
        assert_eq!(
            edges,
            vec![
                (SimTime::from_secs(8.0), RateTarget::Gpu(2), 0.0),
                (SimTime::from_secs(16.0), RateTarget::Gpu(2), 1.0),
            ]
        );
        // ...exactly the edges of the equivalent loss/recovery script.
        let f = FaultScript {
            name: "x".into(),
            faults: vec![
                Fault::GpuLoss {
                    gpu: 2,
                    at_secs: 8.0,
                },
                Fault::GpuRecovery {
                    gpu: 2,
                    at_secs: 16.0,
                },
            ],
        };
        assert_eq!(edges, f.edges());
    }

    #[test]
    fn lease_transitions_collapse_to_state_changes() {
        let s = ScenarioScript::canonical_lease(2, 8.0, 16.0);
        let tr = s.lease_transitions();
        assert_eq!(
            tr,
            vec![
                LeaseTransition {
                    at: SimTime::ZERO,
                    gpu: 2,
                    available: true
                },
                LeaseTransition {
                    at: SimTime::from_secs(8.0),
                    gpu: 2,
                    available: false
                },
                LeaseTransition {
                    at: SimTime::from_secs(16.0),
                    gpu: 2,
                    available: true
                },
            ]
        );
        // A duplicate grant is not a transition.
        let mut dup = s.clone();
        dup.events.push(ScenarioEvent::GpuGranted {
            gpu: 2,
            at_secs: 20.0,
        });
        assert_eq!(dup.lease_transitions(), tr);
    }

    #[test]
    fn late_join_gpu_is_dead_until_first_grant() {
        let s = ScenarioScript {
            name: "join".into(),
            events: vec![ScenarioEvent::GpuGranted {
                gpu: 3,
                at_secs: 12.0,
            }],
        };
        let edges = s.edges();
        assert_eq!(
            edges,
            vec![
                (SimTime::ZERO, RateTarget::Gpu(3), 0.0),
                (SimTime::from_secs(12.0), RateTarget::Gpu(3), 1.0),
            ]
        );
        // A trailing preemption with no re-grant stays dead.
        let s = ScenarioScript {
            name: "gone".into(),
            events: vec![ScenarioEvent::GpuPreempted {
                gpu: 1,
                at_secs: 5.0,
            }],
        };
        let (initial, future) = s.segment_rates(SimTime::from_secs(9.0));
        assert_eq!(initial, vec![(RateTarget::Gpu(1), 0.0)]);
        assert!(future.is_empty());
    }

    #[test]
    fn lease_and_fault_windows_min_compose() {
        // A slowdown expiring while the GPU is preempted must not
        // revive it.
        let s = ScenarioScript {
            name: "mix".into(),
            events: vec![
                ScenarioEvent::Fault(Fault::GpuSlowdown {
                    gpu: 0,
                    factor: 2.0,
                    from_secs: 1.0,
                    until_secs: Some(6.0),
                }),
                ScenarioEvent::GpuPreempted {
                    gpu: 0,
                    at_secs: 3.0,
                },
                ScenarioEvent::GpuGranted {
                    gpu: 0,
                    at_secs: 9.0,
                },
            ],
        };
        let edges = s.edges();
        assert_eq!(
            edges,
            vec![
                (SimTime::from_secs(1.0), RateTarget::Gpu(0), 0.5),
                (SimTime::from_secs(3.0), RateTarget::Gpu(0), 0.0),
                // 6.0: slowdown ends — still preempted, no edge.
                (SimTime::from_secs(9.0), RateTarget::Gpu(0), 1.0),
            ]
        );
    }

    #[test]
    fn scenario_json_roundtrip_and_legacy_upgrade() {
        let s = ScenarioScript {
            name: "mix".into(),
            events: vec![
                ScenarioEvent::Fault(Fault::GpuSlowdown {
                    gpu: 1,
                    factor: 1.3,
                    from_secs: 5.0,
                    until_secs: None,
                }),
                ScenarioEvent::GpuPreempted {
                    gpu: 2,
                    at_secs: 8.0,
                },
                ScenarioEvent::GpuGranted {
                    gpu: 2,
                    at_secs: 16.0,
                },
            ],
        };
        let text = s.to_json().to_string();
        let back = ScenarioScript::from_json(&text).unwrap();
        assert_eq!(back, s);
        // A legacy FaultScript document upgrades transparently.
        let f = FaultScript::canonical_straggler(0, 5.0);
        let upgraded = ScenarioScript::from_json(&f.to_json().to_string()).unwrap();
        assert_eq!(upgraded, ScenarioScript::from(f));
        // Bad inputs still fail loudly, including through the fault
        // delegation (sub-unit factors).
        assert!(ScenarioScript::from_json("{\"events\": 3}").is_err());
        let typo =
            r#"{"name":"t","events":[{"kind":"gpu-slowdown","gpu":1,"factor":0.13,"from":5.0}]}"#;
        assert!(ScenarioScript::from_json(typo)
            .unwrap_err()
            .contains("factor"));
    }

    #[test]
    fn chaos_scripts_are_deterministic_and_liveness_safe() {
        let a = ScenarioScript::chaos(7, 60.0, 4, 2, 12);
        let b = ScenarioScript::chaos(7, 60.0, 4, 2, 12);
        assert_eq!(a, b);
        assert_ne!(a, ScenarioScript::chaos(8, 60.0, 4, 2, 12));
        let mut saw_lease = false;
        for seed in 0..64u64 {
            let s = ScenarioScript::chaos(seed, 60.0, 4, 2, 12);
            // GPU 0 is never preempted; every preemption is re-granted.
            let mut down: std::collections::BTreeSet<usize> = std::collections::BTreeSet::new();
            for t in s.lease_transitions() {
                assert_ne!(t.gpu, 0, "gpu0 must stay leased ({})", s.name);
                if t.available {
                    down.remove(&t.gpu);
                } else {
                    down.insert(t.gpu);
                    saw_lease = true;
                }
                assert!(down.len() <= 2, "≥2 of 4 GPUs must stay up ({})", s.name);
            }
            assert!(down.is_empty(), "trailing preemption ({})", s.name);
        }
        assert!(saw_lease, "the sweep must actually exercise leases");
    }
}
