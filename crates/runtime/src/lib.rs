//! Fault-aware dynamic execution for the HetPipe reproduction.
//!
//! HetPipe's premise is throughput on *whimpy, heterogeneous*
//! clusters — exactly the hardware where GPUs throttle, links degrade,
//! and nodes die mid-epoch. Every schedule in `hetpipe-schedule` is a
//! static infinite iterator; this crate adds the dynamic layer that
//! reacts when the hardware stops matching the plan:
//!
//! - [`FaultScript`] / [`Fault`] — a deterministic, replayable
//!   perturbation model (GPU slowdown windows, link degradation, GPU
//!   loss and recovery) compiled to resource service-rate edges the
//!   executor fires as first-class DES events
//!   (`hetpipe_core::exec::SegmentOpts`).
//! - [`ScenarioScript`] / [`ScenarioEvent`] — the elastic superset:
//!   lease events ([`ScenarioEvent::GpuGranted`] /
//!   [`ScenarioEvent::GpuPreempted`]) model spot GPUs handed to the
//!   job and taken back. Unavailable lease intervals compile to the
//!   same rate-0 windows as GPU loss (min-composed with fault
//!   windows), but leases also surface as *control-plane* transitions
//!   ([`ScenarioScript::lease_transitions`]) the controller reacts to
//!   with hysteresis: a preemption drops the GPU at a wave boundary,
//!   a re-grant re-admits it (a **grow-splice**), and a flap shorter
//!   than the hysteresis window produces no splice at all.
//! - [`Monitor`] / [`Signal`] — the feedback path: a per-stage EWMA
//!   of observed vs planned task durations folded from the span
//!   trace, raising `Straggler` / `GpuLost` / `Recovered` signals.
//!   Purely observational — the monitor never reads the script.
//! - [`Policy`] / [`run`] — the reactive controller:
//!   [`Policy::Static`] (baseline), [`Policy::SkipStraggler`]
//!   (bounded out-of-order service of ready backwards in the
//!   composite per-GPU streams), and [`Policy::Replan`] (re-run the
//!   fast planner with observed costs and surviving GPUs —
//!   warm-started from the incumbent plan — and splice the new plan
//!   at a wave boundary). With [`RuntimeParams::planner`] set,
//!   `Replan` routes through a `hetpipe-plansvc` plan service
//!   instead: each reaction publishes a sequence-bumped,
//!   cache-invalidating write, and the spliced plans stay
//!   bit-identical to the in-process path (the service's warm starts
//!   are answer-preserving).
//!
//! # Grow-splices: re-admission is as sound as eviction
//!
//! PR 5's splice argument was only exercised *shrinking* (dropping a
//! straggler or a dead GPU); the elastic controller also splices to a
//! **wider** pipeline (a re-granted or newly-granted GPU, with `Nm`
//! re-raised when the widened pipeline allows it). The WSP soundness
//! argument carries over unchanged because it never depended on the
//! direction of the reshape: a drained wave boundary leaves *no*
//! in-flight minibatch and every VW at the same wave count, so the
//! continuation — whatever its shape — starts from the fully
//! synchronized state, the most conservative configuration the
//! staleness gate can see. The re-admitted GPU needs no weight
//! history: it starts from the boundary wave's shadow-copy version
//! exactly like every surviving GPU (PipeDream-2BW double buffering),
//! and the grown plan is re-certified (`plan_fits_per_gpu`) and
//! audited per-epoch like any other splice.
//!
//! # The wave-boundary splice and WSP staleness
//!
//! Reconfiguration always happens at a **wave boundary**: the
//! controller drains the executor to the first boundary at/after the
//! triggering signal ([`hetpipe_core::exec::SegmentOpts::stop_after_mb`]),
//! commits that segment as an *epoch* with its own
//! [`OccupancyAudit`](hetpipe_core::OccupancyAudit), and starts the
//! next segment with fresh streams whose minibatch/wave numbering the
//! report rebases to global indices — a drained boundary leaves
//! nothing in flight, so "fresh + offset" *is* the correct resumed
//! state, and the refill bubble is the reconfiguration's honest cost.
//! (`ScheduleStream::resume_from` / `GpuStream::resume_from` are the
//! stream-level form of the same boundary state, for splices that
//! keep the stream objects alive.) At a boundary every VW has
//! pushed the same whole number of waves and holds no in-flight
//! minibatch, so the only weight state a continuation needs is the
//! version the boundary wave closed — exactly the shadow copy
//! PipeDream-2BW double buffering keeps (`WspParams::two_bw_version`).
//! A continuation therefore starts *fully synchronized*, which is the
//! most conservative configuration WSP's staleness gate can see:
//! every distance-`D` bound that held for an uninterrupted run holds
//! with slack for the spliced one. The refill bubble the drain pays
//! is the honest price of reconfiguration.
//!
//! # Determinism
//!
//! Everything is deterministic: scripts are data (seeded generators
//! included), the DES engine breaks ties by insertion order, and the
//! controller's decisions are pure functions of the (deterministic)
//! trace — same script + same seed ⇒ identical epochs, traces, and
//! reports, on any thread count. A zero-fault script under any policy
//! commits exactly the trace of a plain one-shot run, bit for bit
//! (`tests/runtime_faults.rs` pins both properties).

pub mod controller;
pub mod fault;
pub mod monitor;
pub mod scenario;

pub use controller::{run, Epoch, Policy, RuntimeParams, RuntimeReport};
pub use fault::{Fault, FaultScript};
pub use monitor::{Monitor, MonitorConfig, Signal};
pub use scenario::{LeaseTransition, ScenarioEvent, ScenarioScript};
