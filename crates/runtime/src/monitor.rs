//! The runtime monitor: observed-vs-planned feedback from the span
//! trace.
//!
//! The executor reports what it *planned* (nominal per-stage compute
//! times, `RunStats::planned_fwd` / `RunStats::planned_bwd`) and what
//! it *did* (the span trace). The monitor folds the two into a
//! per-stage EWMA of the observed/planned duration ratio and raises
//! typed signals:
//!
//! - [`Signal::Straggler`] — a stage's EWMA crossed the straggler
//!   threshold *relative to the severity the controller has already
//!   reacted to* (so a re-planned straggler, whose slowdown is now
//!   part of the plan, does not re-trigger);
//! - [`Signal::Recovered`] — a previously-derated stage has been back
//!   near nominal for at least the recovery hysteresis window (one
//!   fast task after a blip is not a recovery);
//! - [`Signal::GpuLost`] — a stage's task ran absurdly long: the
//!   reservation-time signature of a dead (rate-0) GPU.
//!
//! Detection is purely observational: the monitor never reads the
//! fault script, only the trace — the feedback channel a real cluster
//! would have.

use hetpipe_core::exec::{RunStats, SpanTag};
use hetpipe_core::VirtualWorker;
use hetpipe_des::SimTime;
use hetpipe_schedule::{PipelineSchedule, Schedule};
use std::collections::BTreeMap;

/// Monitor tuning.
#[derive(Debug, Clone, Copy)]
pub struct MonitorConfig {
    /// EWMA smoothing factor (weight of the newest observation).
    pub alpha: f64,
    /// A stage is a straggler when its EWMA ratio exceeds the applied
    /// derate by this multiplicative threshold (1.15 = 15% slower
    /// than already accounted for).
    pub straggler_ratio: f64,
    /// A derated stage has recovered when its EWMA ratio falls back
    /// below this (near-nominal) value.
    pub recover_ratio: f64,
    /// A single task whose observed/planned ratio exceeds this is a
    /// dead GPU (the rate-0 reservation signature), not a straggler.
    pub lost_ratio: f64,
    /// Hysteresis for [`Signal::Recovered`]: the EWMA must stay below
    /// `recover_ratio` for at least this long (simulated seconds)
    /// before the signal is raised, so one fast task after a blip
    /// does not trigger a re-admission splice.
    pub recover_hysteresis_secs: f64,
    /// Hysteresis for control-plane lease transitions: a grant or
    /// preemption only becomes actionable if no opposite transition
    /// on the same GPU follows within this window (simulated
    /// seconds) — an oscillating lease that flaps faster than this
    /// produces zero splices.
    pub lease_hysteresis_secs: f64,
}

impl Default for MonitorConfig {
    fn default() -> Self {
        MonitorConfig {
            alpha: 0.3,
            straggler_ratio: 1.15,
            recover_ratio: 1.05,
            lost_ratio: 50.0,
            recover_hysteresis_secs: 1.0,
            lease_hysteresis_secs: 2.0,
        }
    }
}

/// A typed monitor signal, in segment-local time.
#[derive(Debug, Clone, PartialEq)]
pub enum Signal {
    /// A stage is persistently slower than planned.
    Straggler {
        /// Virtual worker.
        vw: usize,
        /// Executor (virtual) stage.
        stage: usize,
        /// Final EWMA observed/planned ratio — what a re-plan should
        /// derate the stage's GPU by.
        severity: f64,
        /// First instant the EWMA crossed the threshold.
        at: SimTime,
    },
    /// A previously-derated stage is back near nominal speed.
    Recovered {
        /// Virtual worker.
        vw: usize,
        /// Executor (virtual) stage.
        stage: usize,
        /// Final EWMA observed/planned ratio.
        severity: f64,
        /// First instant the EWMA fell below the recovery threshold.
        at: SimTime,
    },
    /// A stage's GPU is gone (its task would never finish).
    GpuLost {
        /// Virtual worker.
        vw: usize,
        /// Executor (virtual) stage.
        stage: usize,
        /// Detection instant (start of the dead task).
        at: SimTime,
    },
}

impl Signal {
    /// Segment-local detection time.
    pub fn at(&self) -> SimTime {
        match self {
            Signal::Straggler { at, .. }
            | Signal::Recovered { at, .. }
            | Signal::GpuLost { at, .. } => *at,
        }
    }

    /// The `(vw, stage)` the signal refers to.
    pub fn stage_key(&self) -> (usize, usize) {
        match self {
            Signal::Straggler { vw, stage, .. }
            | Signal::Recovered { vw, stage, .. }
            | Signal::GpuLost { vw, stage, .. } => (*vw, *stage),
        }
    }

    /// A short label for reports and trace markers.
    pub fn label(&self) -> String {
        match self {
            Signal::Straggler {
                vw,
                stage,
                severity,
                ..
            } => format!("straggler: vw{vw} stage{stage} x{severity:.2}"),
            Signal::Recovered {
                vw,
                stage,
                severity,
                ..
            } => format!("recovered: vw{vw} stage{stage} x{severity:.2}"),
            Signal::GpuLost { vw, stage, .. } => format!("gpu lost: vw{vw} stage{stage}"),
        }
    }
}

/// One (vw, stage)'s EWMA fold state.
struct StageState {
    ewma: f64,
    seen: usize,
    crossed_up: Option<SimTime>,
    crossed_down: Option<SimTime>,
    /// First span end of the current below-recovery-threshold streak
    /// (reset whenever the EWMA pops back above), for the recovery
    /// hysteresis window.
    below_since: Option<SimTime>,
    lost: Option<SimTime>,
}

/// The trace-fed monitor. Stateless across segments: the controller
/// passes the derates it has already applied, and the monitor compares
/// fresh observations against them.
#[derive(Debug, Clone, Default)]
pub struct Monitor {
    /// Tuning.
    pub config: MonitorConfig,
}

impl Monitor {
    /// Creates a monitor with the given tuning.
    pub fn new(config: MonitorConfig) -> Self {
        Monitor { config }
    }

    /// Analyzes one segment's run: EWMA of observed/planned per
    /// (vw, stage) over the compute spans, in recorded (dispatch)
    /// order, checked against `applied` (the controller's current
    /// derate per stage; absent = 1.0). `schedule` disambiguates the
    /// wave schedule's fused last-stage tasks, whose planned time is
    /// forward + backward. Returns all signals ordered by detection
    /// time.
    pub fn analyze(
        &self,
        stats: &RunStats,
        vws: &[VirtualWorker],
        schedule: Schedule,
        applied: &BTreeMap<(usize, usize), f64>,
    ) -> Vec<Signal> {
        let cfg = self.config;
        let fused_last = schedule.fused_last_stage();
        let mut stages: BTreeMap<(usize, usize), StageState> = BTreeMap::new();
        for span in stats.trace.spans() {
            let (vw, stage, planned) = match span.tag {
                SpanTag::Forward { vw, stage, .. } | SpanTag::Recompute { vw, stage, .. } => {
                    let (vw, stage) = (vw as usize, stage as usize);
                    (vw, stage, stats.planned_fwd[vw][stage])
                }
                SpanTag::Backward { vw, stage, .. } => {
                    let (vw, stage) = (vw as usize, stage as usize);
                    let planned = if fused_last && stage + 1 == vws[vw].stages() {
                        stats.planned_fwd[vw][stage] + stats.planned_bwd[vw][stage]
                    } else {
                        stats.planned_bwd[vw][stage]
                    };
                    (vw, stage, planned)
                }
                _ => continue,
            };
            if planned.is_zero() {
                continue;
            }
            let ratio = span.duration().as_secs() / planned.as_secs();
            let st = stages.entry((vw, stage)).or_insert(StageState {
                ewma: 1.0,
                seen: 0,
                crossed_up: None,
                crossed_down: None,
                below_since: None,
                lost: None,
            });
            if ratio >= cfg.lost_ratio && st.lost.is_none() {
                st.lost = Some(span.start);
            }
            st.ewma = if st.seen == 0 {
                ratio
            } else {
                cfg.alpha * ratio + (1.0 - cfg.alpha) * st.ewma
            };
            st.seen += 1;
            let base = applied.get(&(vw, stage)).copied().unwrap_or(1.0);
            if st.ewma > base * cfg.straggler_ratio && st.crossed_up.is_none() {
                st.crossed_up = Some(span.end);
            }
            if base > cfg.recover_ratio && st.ewma < cfg.recover_ratio && st.seen >= 3 {
                // Recovery needs hysteresis: the EWMA must *stay*
                // below the threshold for the configured window — a
                // single fast task after a blip must not trigger a
                // re-admission splice.
                let since = *st.below_since.get_or_insert(span.end);
                if st.crossed_down.is_none()
                    && (span.end - since).as_secs() >= cfg.recover_hysteresis_secs
                {
                    st.crossed_down = Some(span.end);
                }
            } else {
                st.below_since = None;
                st.crossed_down = None;
            }
        }

        let mut signals = Vec::new();
        for ((vw, stage), st) in &stages {
            if let Some(at) = st.lost {
                signals.push(Signal::GpuLost {
                    vw: *vw,
                    stage: *stage,
                    at,
                });
                continue;
            }
            let base = applied.get(&(*vw, *stage)).copied().unwrap_or(1.0);
            if st.ewma > base * cfg.straggler_ratio {
                if let Some(at) = st.crossed_up {
                    signals.push(Signal::Straggler {
                        vw: *vw,
                        stage: *stage,
                        severity: st.ewma,
                        at,
                    });
                }
            } else if base > cfg.recover_ratio && st.ewma < cfg.recover_ratio {
                if let Some(at) = st.crossed_down {
                    signals.push(Signal::Recovered {
                        vw: *vw,
                        stage: *stage,
                        severity: st.ewma,
                        at,
                    });
                }
            }
        }
        signals.sort_by_key(Signal::at);
        signals
    }
}
