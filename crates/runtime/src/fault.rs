//! The fault / perturbation model.
//!
//! A [`FaultScript`] is a deterministic, replayable description of the
//! hardware misbehaviour HetPipe's whimpy clusters actually exhibit:
//! GPUs that throttle for a while ([`Fault::GpuSlowdown`]), links that
//! degrade ([`Fault::LinkDegrade`]), GPUs that die mid-epoch
//! ([`Fault::GpuLoss`]) and come back ([`Fault::GpuRecovery`]).
//! Scripts compile to resource service-rate changes
//! ([`hetpipe_core::exec::RateEvent`]) that the executor fires as
//! first-class DES events — a task reserved after an edge is scaled by
//! the new rate.
//!
//! Scripts are data: canonical instances ([`FaultScript::canonical_straggler`],
//! [`FaultScript::canonical_gpu_loss`]) anchor the standing
//! measurements and CI smoke runs, seeded random scripts
//! ([`FaultScript::seeded`]) cover the space deterministically, and
//! JSON round-tripping ([`FaultScript::to_json`] /
//! [`FaultScript::from_json`]) lets `schedule_compare --faults` and
//! the CI bins load them from files.

use hetpipe_core::exec::{RateEvent, RateTarget};
use hetpipe_des::SimTime;
use serde_json::{json, Value};
use std::collections::BTreeMap;

/// One scripted perturbation, in *global* simulated seconds.
#[derive(Debug, Clone, PartialEq)]
pub enum Fault {
    /// GPU `gpu` (cluster device index) runs `factor`× slower over
    /// `[from_secs, until_secs)`; `None` means "for the rest of the
    /// run".
    GpuSlowdown {
        /// Cluster device index.
        gpu: usize,
        /// Slowdown factor (≥ 1; 1.3 = 30% slower).
        factor: f64,
        /// Window start, seconds.
        from_secs: f64,
        /// Window end, seconds (`None` = permanent).
        until_secs: Option<f64>,
    },
    /// Node `node`'s NIC serves transfers `factor`× slower over the
    /// window (inter-node traffic only: intra-node PCIe lanes carry no
    /// shared timeline).
    LinkDegrade {
        /// Node index.
        node: usize,
        /// Degradation factor (≥ 1).
        factor: f64,
        /// Window start, seconds.
        from_secs: f64,
        /// Window end, seconds (`None` = permanent).
        until_secs: Option<f64>,
    },
    /// GPU `gpu` dies at `at_secs`: work reserved on it never
    /// completes until a [`Fault::GpuRecovery`] restores it.
    GpuLoss {
        /// Cluster device index.
        gpu: usize,
        /// Failure instant, seconds.
        at_secs: f64,
    },
    /// GPU `gpu` returns to nominal speed at `at_secs`.
    GpuRecovery {
        /// Cluster device index.
        gpu: usize,
        /// Recovery instant, seconds.
        at_secs: f64,
    },
}

impl Fault {
    /// A short human-readable label for trace markers.
    pub fn label(&self) -> String {
        match *self {
            Fault::GpuSlowdown { gpu, factor, .. } => format!("fault: gpu{gpu} x{factor:.2}"),
            Fault::LinkDegrade { node, factor, .. } => format!("fault: nic{node} x{factor:.2}"),
            Fault::GpuLoss { gpu, .. } => format!("fault: gpu{gpu} lost"),
            Fault::GpuRecovery { gpu, .. } => format!("fault: gpu{gpu} recovered"),
        }
    }
}

/// One fault's effect compiled to a resource key (`(0, i)` = GPU `i`,
/// `(1, i)` = NIC `i`), a closed-open time window (`None` end =
/// open-ended), and the service rate it imposes while active.
pub(crate) type RateWindow = ((u8, usize), SimTime, Option<SimTime>, f64);

/// Compiles rate windows to effective rate edges, sorted by time.
/// Windows *compose*: at any instant a resource runs at the
/// **minimum** rate over all of its active windows (the worst active
/// perturbation dominates), so a window closing while another is
/// still open restores the surviving window's rate — never a blanket
/// 1.0 — and a lost GPU stays lost until its own recovery even if a
/// slowdown window on it expires in between. Shared by
/// [`FaultScript`] and [`crate::ScenarioScript`].
pub(crate) fn compile_edges(windows: &[RateWindow]) -> Vec<(SimTime, RateTarget, f64)> {
    // Boundary instants per resource.
    let mut boundaries: BTreeMap<(u8, usize), Vec<SimTime>> = BTreeMap::new();
    for &(key, from, until, _) in windows {
        let b = boundaries.entry(key).or_default();
        b.push(from);
        if let Some(until) = until {
            b.push(until);
        }
    }
    let mut edges = Vec::new();
    for (key, mut times) in boundaries {
        times.sort();
        times.dedup();
        let target = match key {
            (0, i) => RateTarget::Gpu(i),
            (_, i) => RateTarget::Nic(i),
        };
        let mut prev = 1.0f64;
        for t in times {
            let rate = windows
                .iter()
                .filter(|&&(k, from, until, _)| {
                    k == key && from <= t && until.is_none_or(|u| t < u)
                })
                .map(|&(_, _, _, r)| r)
                .fold(1.0f64, f64::min);
            if rate != prev {
                edges.push((t, target, rate));
                prev = rate;
            }
        }
    }
    edges.sort_by_key(|&(at, _, _)| at);
    edges
}

/// The declared footprint of each rate edge, in edge order: every
/// edge writes exactly one environment-owned
/// [`hetpipe_des::FootprintResource::Rate`] register and reads
/// nothing (see [`FaultScript::edge_footprints`]).
pub(crate) fn footprints_from_edges(
    edges: &[(SimTime, RateTarget, f64)],
) -> Vec<hetpipe_des::Footprint> {
    use hetpipe_des::{Footprint, FootprintResource, RateKind};
    edges
        .iter()
        .map(|&(_, target, _)| {
            let resource = match target {
                RateTarget::Gpu(index) => FootprintResource::Rate {
                    kind: RateKind::Gpu,
                    index,
                },
                RateTarget::Nic(index) => FootprintResource::Rate {
                    kind: RateKind::Nic,
                    index,
                },
            };
            Footprint {
                reads: Vec::new(),
                writes: vec![resource],
            }
        })
        .collect()
}

/// Splits compiled edges for a segment starting at global `offset`:
/// the rates already in effect at the splice (latest edge per
/// resource at or before `offset`) and the future edges rebased to
/// segment-local time (see [`FaultScript::segment_rates`]).
pub(crate) fn split_segment_rates(
    edges: Vec<(SimTime, RateTarget, f64)>,
    offset: SimTime,
) -> (Vec<(RateTarget, f64)>, Vec<RateEvent>) {
    let mut initial: BTreeMap<(u8, usize), (RateTarget, f64)> = BTreeMap::new();
    let mut future = Vec::new();
    for (at, target, rate) in edges {
        let key = match target {
            RateTarget::Gpu(i) => (0u8, i),
            RateTarget::Nic(i) => (1u8, i),
        };
        if at <= offset {
            initial.insert(key, (target, rate));
        } else {
            future.push(RateEvent {
                at: at - offset,
                target,
                rate,
            });
        }
    }
    (initial.into_values().collect(), future)
}

/// A named, deterministic sequence of [`Fault`]s.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct FaultScript {
    /// Script name (reports, trace markers, CI artifacts).
    pub name: String,
    /// The faults, in any order (edges are sorted at compile time).
    pub faults: Vec<Fault>,
}

impl FaultScript {
    /// The empty (zero-fault) script: running under it must leave
    /// every trace bit-identical to a fault-free run.
    pub fn none() -> FaultScript {
        FaultScript {
            name: "none".into(),
            faults: Vec::new(),
        }
    }

    /// The canonical straggler: `gpu` throttles to 30% slower
    /// (`×1.3`) from `from_secs` for the rest of the run — the
    /// acceptance scenario of the fault-aware runtime and the
    /// `schedule_compare --faults` perturbation column.
    pub fn canonical_straggler(gpu: usize, from_secs: f64) -> FaultScript {
        FaultScript {
            name: "canonical-straggler".into(),
            faults: vec![Fault::GpuSlowdown {
                gpu,
                factor: 1.3,
                from_secs,
                until_secs: None,
            }],
        }
    }

    /// The canonical GPU loss: `gpu` dies at `at_secs` and stays dead.
    pub fn canonical_gpu_loss(gpu: usize, at_secs: f64) -> FaultScript {
        FaultScript {
            name: "canonical-gpu-loss".into(),
            faults: vec![Fault::GpuLoss { gpu, at_secs }],
        }
    }

    /// A deterministic seeded random script: `count` slowdown /
    /// link-degradation windows drawn over `[0, horizon_secs)` across
    /// `gpus` devices and `nodes` NICs. Same seed ⇒ same script ⇒
    /// same simulation, which is what makes perturbed runs replayable.
    pub fn seeded(seed: u64, horizon_secs: f64, gpus: usize, nodes: usize, count: usize) -> Self {
        // SplitMix64: dependency-free, stable across platforms.
        let mut state = seed.wrapping_add(0x9e3779b97f4a7c15);
        let mut next = move || {
            let mut z = state;
            state = state.wrapping_add(0x9e3779b97f4a7c15);
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
            z ^ (z >> 31)
        };
        let unit = move |r: &mut dyn FnMut() -> u64| (r() >> 11) as f64 / (1u64 << 53) as f64;
        let mut faults = Vec::with_capacity(count);
        for _ in 0..count {
            let from = unit(&mut next) * horizon_secs * 0.8;
            let len = 0.1 * horizon_secs + unit(&mut next) * 0.4 * horizon_secs;
            let factor = 1.1 + unit(&mut next) * 0.9; // ×1.1 .. ×2.0
            if nodes > 0 && next() % 4 == 0 {
                faults.push(Fault::LinkDegrade {
                    node: (next() % nodes as u64) as usize,
                    factor,
                    from_secs: from,
                    until_secs: Some((from + len).min(horizon_secs)),
                });
            } else {
                faults.push(Fault::GpuSlowdown {
                    gpu: (next() % gpus.max(1) as u64) as usize,
                    factor,
                    from_secs: from,
                    until_secs: Some((from + len).min(horizon_secs)),
                });
            }
        }
        FaultScript {
            name: format!("seeded-{seed}"),
            faults,
        }
    }

    /// Each fault as a per-resource rate *window*
    /// `(key, from, until, rate)` (closed-open; `None` = open-ended).
    /// A [`Fault::GpuLoss`] is a rate-0 window closed by the earliest
    /// later [`Fault::GpuRecovery`] on the same GPU (which itself
    /// contributes no window).
    pub(crate) fn windows(&self) -> Vec<RateWindow> {
        let mut windows = Vec::with_capacity(self.faults.len());
        for fault in &self.faults {
            match *fault {
                Fault::GpuSlowdown {
                    gpu,
                    factor,
                    from_secs,
                    until_secs,
                } => windows.push((
                    (0u8, gpu),
                    SimTime::from_secs(from_secs),
                    until_secs.map(SimTime::from_secs),
                    1.0 / factor.max(1.0),
                )),
                Fault::LinkDegrade {
                    node,
                    factor,
                    from_secs,
                    until_secs,
                } => windows.push((
                    (1u8, node),
                    SimTime::from_secs(from_secs),
                    until_secs.map(SimTime::from_secs),
                    1.0 / factor.max(1.0),
                )),
                Fault::GpuLoss { gpu, at_secs } => {
                    let until = self
                        .faults
                        .iter()
                        .filter_map(|f| match *f {
                            Fault::GpuRecovery { gpu: g, at_secs: r }
                                if g == gpu && r > at_secs =>
                            {
                                Some(r)
                            }
                            _ => None,
                        })
                        .fold(None::<f64>, |acc, r| Some(acc.map_or(r, |a: f64| a.min(r))));
                    windows.push((
                        (0u8, gpu),
                        SimTime::from_secs(at_secs),
                        until.map(SimTime::from_secs),
                        0.0,
                    ));
                }
                Fault::GpuRecovery { .. } => {}
            }
        }
        windows
    }

    /// All effective rate edges of the script, sorted by time. Faults
    /// *compose*: at any instant a resource runs at the **minimum**
    /// rate over all of its active windows (the worst active fault
    /// dominates), so a window closing while another is still open
    /// restores the surviving fault's rate — never a blanket 1.0 —
    /// and a lost GPU stays lost until its own recovery even if a
    /// slowdown window on it expires in between.
    pub fn edges(&self) -> Vec<(SimTime, RateTarget, f64)> {
        compile_edges(&self.windows())
    }

    /// The declared footprint of every rate edge of the script, in
    /// edge order — the fault runtime's contribution to the static
    /// VW-isolation pass. Each edge writes exactly one
    /// environment-owned [`hetpipe_des::FootprintResource::Rate`]
    /// register (the GPU's or NIC's service rate) and reads nothing,
    /// so `hetpipe-verify` can certify that fault scripts never
    /// create a VW-to-VW dependence: replicating a script into every
    /// per-VW engine leaves the dependency DAG untouched.
    pub fn edge_footprints(&self) -> Vec<hetpipe_des::Footprint> {
        footprints_from_edges(&self.edges())
    }

    /// Compiles the script for a segment starting at global time
    /// `offset`: the rates already in effect at the splice (latest
    /// edge per resource at or before `offset`) and the future edges
    /// rebased to segment-local time.
    pub fn segment_rates(&self, offset: SimTime) -> (Vec<(RateTarget, f64)>, Vec<RateEvent>) {
        split_segment_rates(self.edges(), offset)
    }

    /// Trace markers (global time + label) for every fault onset and
    /// window end, for chrome-trace instant events.
    pub fn instants(&self) -> Vec<(SimTime, String, &'static str)> {
        let mut out = Vec::new();
        for f in &self.faults {
            match *f {
                Fault::GpuSlowdown {
                    from_secs,
                    until_secs,
                    ..
                }
                | Fault::LinkDegrade {
                    from_secs,
                    until_secs,
                    ..
                } => {
                    out.push((SimTime::from_secs(from_secs), f.label(), "fault"));
                    if let Some(until) = until_secs {
                        out.push((
                            SimTime::from_secs(until),
                            format!("{} ends", f.label()),
                            "fault",
                        ));
                    }
                }
                Fault::GpuLoss { at_secs, .. } | Fault::GpuRecovery { at_secs, .. } => {
                    out.push((SimTime::from_secs(at_secs), f.label(), "fault"));
                }
            }
        }
        out.sort_by_key(|i| i.0);
        out
    }

    /// Serializes the script as JSON.
    pub fn to_json(&self) -> Value {
        let faults: Vec<Value> = self.faults.iter().map(fault_to_json).collect();
        json!({ "name": self.name.clone(), "faults": faults })
    }

    /// Parses a script from its JSON form. Returns a description of
    /// the first problem on malformed input.
    pub fn from_json(text: &str) -> Result<FaultScript, String> {
        let value = serde_json::from_str(text).map_err(|e| e.to_string())?;
        let Value::Object(map) = &value else {
            return Err("fault script must be a JSON object".into());
        };
        let name = match map.get("name") {
            Some(Value::String(s)) => s.clone(),
            None => "unnamed".into(),
            _ => return Err("'name' must be a string".into()),
        };
        let Some(Value::Array(items)) = map.get("faults") else {
            return Err("'faults' must be an array".into());
        };
        let mut faults = Vec::with_capacity(items.len());
        for item in items {
            faults.push(fault_from_json(item)?);
        }
        Ok(FaultScript { name, faults })
    }
}

/// Serializes one fault (shared with the scenario encoder).
pub(crate) fn fault_to_json(f: &Fault) -> Value {
    match *f {
        Fault::GpuSlowdown {
            gpu,
            factor,
            from_secs,
            until_secs,
        } => json!({
            "kind": "gpu-slowdown",
            "gpu": gpu as u64,
            "factor": factor,
            "from": from_secs,
            "until": until_secs.map(Value::Number).unwrap_or(Value::Null),
        }),
        Fault::LinkDegrade {
            node,
            factor,
            from_secs,
            until_secs,
        } => json!({
            "kind": "link-degrade",
            "node": node as u64,
            "factor": factor,
            "from": from_secs,
            "until": until_secs.map(Value::Number).unwrap_or(Value::Null),
        }),
        Fault::GpuLoss { gpu, at_secs } => json!({
            "kind": "gpu-loss",
            "gpu": gpu as u64,
            "at": at_secs,
        }),
        Fault::GpuRecovery { gpu, at_secs } => json!({
            "kind": "gpu-recovery",
            "gpu": gpu as u64,
            "at": at_secs,
        }),
    }
}

/// Parses one fault object (shared with the scenario parser).
pub(crate) fn fault_from_json(item: &Value) -> Result<Fault, String> {
    let Value::Object(m) = item else {
        return Err("each fault must be an object".into());
    };
    let num = |key: &str| -> Result<f64, String> {
        match m.get(key) {
            Some(Value::Number(n)) => Ok(*n),
            _ => Err(format!("'{key}' must be a number")),
        }
    };
    // A factor below 1 would compile to a rate above nominal — a
    // mistyped script (0.13 for 1.3) must fail loudly, not run
    // unperturbed.
    let factor = || -> Result<f64, String> {
        let f = num("factor")?;
        if f < 1.0 {
            return Err(format!(
                "'factor' must be >= 1 (a x{f} slowdown is a speedup)"
            ));
        }
        Ok(f)
    };
    let idx = |key: &str| -> Result<usize, String> {
        let n = num(key)?;
        if n < 0.0 || n.fract() != 0.0 {
            return Err(format!("'{key}' must be a non-negative integer"));
        }
        Ok(n as usize)
    };
    let until = || -> Result<Option<f64>, String> {
        match m.get("until") {
            None | Some(Value::Null) => Ok(None),
            Some(Value::Number(n)) => Ok(Some(*n)),
            _ => Err("'until' must be a number or null".into()),
        }
    };
    let kind = match m.get("kind") {
        Some(Value::String(s)) => s.as_str(),
        _ => return Err("each fault needs a string 'kind'".into()),
    };
    Ok(match kind {
        "gpu-slowdown" => Fault::GpuSlowdown {
            gpu: idx("gpu")?,
            factor: factor()?,
            from_secs: num("from")?,
            until_secs: until()?,
        },
        "link-degrade" => Fault::LinkDegrade {
            node: idx("node")?,
            factor: factor()?,
            from_secs: num("from")?,
            until_secs: until()?,
        },
        "gpu-loss" => Fault::GpuLoss {
            gpu: idx("gpu")?,
            at_secs: num("at")?,
        },
        "gpu-recovery" => Fault::GpuRecovery {
            gpu: idx("gpu")?,
            at_secs: num("at")?,
        },
        other => return Err(format!("unknown fault kind '{other}'")),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn windows_compile_to_paired_edges() {
        let s = FaultScript {
            name: "w".into(),
            faults: vec![Fault::GpuSlowdown {
                gpu: 2,
                factor: 2.0,
                from_secs: 1.0,
                until_secs: Some(3.0),
            }],
        };
        let edges = s.edges();
        assert_eq!(edges.len(), 2);
        assert_eq!(edges[0], (SimTime::from_secs(1.0), RateTarget::Gpu(2), 0.5));
        assert_eq!(edges[1], (SimTime::from_secs(3.0), RateTarget::Gpu(2), 1.0));
    }

    #[test]
    fn edge_footprints_are_external_write_only() {
        use hetpipe_des::{FootprintResource, Owner, RateKind};
        let s = FaultScript {
            name: "mixed".into(),
            faults: vec![
                Fault::GpuSlowdown {
                    gpu: 2,
                    factor: 2.0,
                    from_secs: 1.0,
                    until_secs: Some(3.0),
                },
                Fault::LinkDegrade {
                    node: 1,
                    factor: 4.0,
                    from_secs: 2.0,
                    until_secs: None,
                },
            ],
        };
        let fps = s.edge_footprints();
        assert_eq!(fps.len(), s.edges().len(), "one footprint per edge");
        for fp in &fps {
            assert!(fp.reads.is_empty(), "rate edges read nothing");
            assert_eq!(fp.writes.len(), 1, "exactly one rate register");
            assert_eq!(fp.writes[0].owner(), Owner::External);
        }
        // The GPU slowdown window contributes its onset+restore edges
        // on gpu2's register; the open-ended link fault one edge on
        // nic1's.
        assert!(fps.iter().any(|fp| fp.writes[0]
            == FootprintResource::Rate {
                kind: RateKind::Gpu,
                index: 2
            }));
        assert!(fps.iter().any(|fp| fp.writes[0]
            == FootprintResource::Rate {
                kind: RateKind::Nic,
                index: 1
            }));
    }

    #[test]
    fn segment_rates_split_at_offset() {
        let s = FaultScript {
            name: "w".into(),
            faults: vec![
                Fault::GpuSlowdown {
                    gpu: 0,
                    factor: 1.3,
                    from_secs: 1.0,
                    until_secs: None,
                },
                Fault::GpuLoss {
                    gpu: 1,
                    at_secs: 10.0,
                },
            ],
        };
        let (initial, future) = s.segment_rates(SimTime::from_secs(5.0));
        assert_eq!(initial.len(), 1, "slowdown already in effect");
        assert_eq!(initial[0].0, RateTarget::Gpu(0));
        assert!((initial[0].1 - 1.0 / 1.3).abs() < 1e-12);
        assert_eq!(future.len(), 1, "loss still ahead");
        assert_eq!(
            future[0].at,
            SimTime::from_secs(5.0),
            "rebased to local time"
        );
        assert_eq!(future[0].rate, 0.0);
    }

    #[test]
    fn overlapping_faults_compose_by_min_rate() {
        // A slowdown window expiring while the GPU is lost must NOT
        // revive it; overlapping slowdowns keep the worst active one.
        let s = FaultScript {
            name: "overlap".into(),
            faults: vec![
                Fault::GpuSlowdown {
                    gpu: 0,
                    factor: 2.0,
                    from_secs: 1.0,
                    until_secs: Some(5.0),
                },
                Fault::GpuLoss {
                    gpu: 0,
                    at_secs: 3.0,
                },
                Fault::GpuRecovery {
                    gpu: 0,
                    at_secs: 8.0,
                },
                // A second, milder slowdown outlasting the first.
                Fault::GpuSlowdown {
                    gpu: 0,
                    factor: 1.25,
                    from_secs: 2.0,
                    until_secs: Some(10.0),
                },
            ],
        };
        let edges = s.edges();
        let expect = vec![
            (SimTime::from_secs(1.0), 0.5), // x2 window opens
            (SimTime::from_secs(3.0), 0.0), // loss dominates
            // 5.0: x2 window ends — GPU stays LOST, no edge emitted.
            (SimTime::from_secs(8.0), 0.8), // recovery -> surviving x1.25
            (SimTime::from_secs(10.0), 1.0), // last window ends
        ];
        assert_eq!(edges.len(), expect.len(), "{edges:?}");
        for ((at, target, rate), (eat, erate)) in edges.iter().zip(&expect) {
            assert_eq!(*target, RateTarget::Gpu(0));
            assert_eq!(at, eat, "{edges:?}");
            assert!((rate - erate).abs() < 1e-12, "{edges:?}");
        }
        // And a loss with no recovery stays dead past every window end.
        let s = FaultScript {
            name: "dead".into(),
            faults: vec![
                Fault::GpuLoss {
                    gpu: 1,
                    at_secs: 3.0,
                },
                Fault::GpuSlowdown {
                    gpu: 1,
                    factor: 2.0,
                    from_secs: 1.0,
                    until_secs: Some(5.0),
                },
            ],
        };
        let (initial, future) = s.segment_rates(SimTime::from_secs(6.0));
        assert_eq!(initial, vec![(RateTarget::Gpu(1), 0.0)], "still dead");
        assert!(future.is_empty());
    }

    #[test]
    fn json_rejects_sub_unit_factors() {
        let text = r#"{"name":"typo","faults":[{"kind":"gpu-slowdown","gpu":1,"factor":0.13,"from":5.0}]}"#;
        let err = FaultScript::from_json(text).unwrap_err();
        assert!(err.contains("factor"), "{err}");
    }

    #[test]
    fn json_roundtrip() {
        let s = FaultScript {
            name: "mix".into(),
            faults: vec![
                Fault::GpuSlowdown {
                    gpu: 1,
                    factor: 1.3,
                    from_secs: 5.0,
                    until_secs: Some(20.0),
                },
                Fault::LinkDegrade {
                    node: 0,
                    factor: 2.0,
                    from_secs: 2.0,
                    until_secs: None,
                },
                Fault::GpuLoss {
                    gpu: 3,
                    at_secs: 8.0,
                },
                Fault::GpuRecovery {
                    gpu: 3,
                    at_secs: 12.0,
                },
            ],
        };
        let text = s.to_json().to_string();
        let back = FaultScript::from_json(&text).unwrap();
        assert_eq!(back, s);
        assert!(FaultScript::from_json("{\"faults\": 3}").is_err());
        assert!(FaultScript::from_json("[]").is_err());
    }

    #[test]
    fn seeded_scripts_are_deterministic() {
        let a = FaultScript::seeded(42, 60.0, 16, 4, 5);
        let b = FaultScript::seeded(42, 60.0, 16, 4, 5);
        assert_eq!(a, b);
        assert_eq!(a.faults.len(), 5);
        let c = FaultScript::seeded(43, 60.0, 16, 4, 5);
        assert_ne!(a, c, "different seeds give different scripts");
    }
}
