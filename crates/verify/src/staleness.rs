//! Exhaustive staleness verification of the WSP algebra.
//!
//! `tests/staleness_props.rs` (tier 1) *samples* the staleness
//! properties at a handful of minibatches. This module upgrades that
//! to a proof for small configurations: the WSP algebra
//! ([`hetpipe_schedule::WspParams`]) is checked at **every** minibatch
//! of a horizon that covers the full warmup plus several steady-state
//! waves, and the affine structure of the formulas is then used as an
//! induction step — [`StalenessProof::shift_invariant`] certifies
//! `f(p + Nm) = f(p) + 1` across the whole horizon, so the exhaustive
//! window extends to all minibatches: every later minibatch is a
//! wave-shift of one already checked.
//!
//! Three verifiers:
//!
//! - [`verify_wsp_bound`] — `required_wave` really is the paper's
//!   Section-5 start condition: checked against its *defining*
//!   properties (coverage and minimality of the required wave, and the
//!   `s_global` miss-count bound), not against its own formula.
//! - [`verify_version_rule`] — a generic freshness judgment: any
//!   "which weight version does minibatch `p` read" rule is checked
//!   against `required_wave` at every horizon minibatch. The 2BW
//!   double-buffering rule passes; tests feed it a deliberately
//!   broken rule (one wave staler) and watch it fail.
//! - [`interleaved_chunk_versions`] — groundwork for the ROADMAP's
//!   "extra weight versions for interleaved" item: under per-chunk 2BW
//!   double buffering, every virtual stage of an interleaved schedule
//!   pins at most one extra version, and the rule stays
//!   staleness-sound; the report quantifies the savings against the
//!   current per-in-flight-minibatch `w_p` stashing.

use hetpipe_schedule::{PipelineSchedule, WspParams};

/// A staleness certificate: the exhaustively checked window plus the
/// shift-induction witness extending it to all minibatches.
#[derive(Debug, Clone, Copy)]
pub struct StalenessProof {
    /// `Nm` of the checked configuration.
    pub nm: usize,
    /// `D` of the checked configuration.
    pub d: usize,
    /// Every minibatch `1..=horizon` was checked.
    pub horizon: u64,
    /// `f(p + Nm) = f(p) + 1` held across the horizon — the induction
    /// step that extends the finite check to all minibatches.
    pub shift_invariant: bool,
}

/// The horizon that makes the finite check complete: full warmup
/// (`s_global + 1` ungated minibatches) plus `D + 3` further waves, so
/// every phase of the `Nm`-periodic steady state and every boundary
/// case is visited.
fn horizon(wsp: WspParams) -> u64 {
    wsp.s_global() as u64 + ((wsp.d + 3) * wsp.nm) as u64 + 2
}

/// Proves `required_wave` is the Section-5 start condition on the
/// exhaustive horizon: for every minibatch `p`,
///
/// 1. **coverage** — the required wave covers all global updates
///    through `q = p − (s_global + 1)`;
/// 2. **minimality** — no earlier wave does (the gate never demands
///    more synchronization than the bound needs);
/// 3. **bound** — the updates `p` may miss when gated exactly at the
///    required wave number at most `s_global`;
/// 4. **shift invariance** — `required_wave(p + Nm)` is one wave
///    later, the induction step.
pub fn verify_wsp_bound(wsp: WspParams) -> Result<StalenessProof, String> {
    let sg = wsp.s_global() as u64;
    let h = horizon(wsp);
    let mut shift_invariant = true;
    for p in 1..=h {
        match wsp.required_wave(p) {
            None => {
                // Ungated: sound only while missing every prior update
                // still respects the bound.
                if p > sg + 1 {
                    return Err(format!(
                        "required_wave({p}) is None but p > s_global + 1 = {} — \
                         the start condition is unenforced",
                        sg + 1
                    ));
                }
            }
            Some(w) => {
                let q = p - sg - 1;
                if wsp.last_of_wave(w) < q {
                    return Err(format!(
                        "required_wave({p}) = {w} does not cover minibatch {q} \
                         (wave ends at {})",
                        wsp.last_of_wave(w)
                    ));
                }
                if w > 0 && wsp.last_of_wave(w - 1) >= q {
                    return Err(format!(
                        "required_wave({p}) = {w} is not minimal: wave {} already \
                         covers minibatch {q}",
                        w - 1
                    ));
                }
                // Gated exactly at wave w, p misses the updates of
                // minibatches last_of_wave(w)+1 ..= p−1.
                let missed = (p - 1).saturating_sub(wsp.last_of_wave(w));
                if missed > sg {
                    return Err(format!(
                        "minibatch {p} gated at wave {w} misses {missed} updates, \
                         exceeding s_global = {sg}"
                    ));
                }
            }
        }
        // Induction step: one wave later, one wave staler.
        let shifted = wsp.required_wave(p + wsp.nm as u64);
        let expect = match wsp.required_wave(p) {
            Some(w) => Some(w + 1),
            // Crossing the warmup boundary is the one place the +1
            // pattern starts rather than continues.
            None => wsp.required_wave(p + wsp.nm as u64),
        };
        if shifted != expect {
            shift_invariant = false;
        }
    }
    Ok(StalenessProof {
        nm: wsp.nm,
        d: wsp.d,
        horizon: h,
        shift_invariant,
    })
}

/// Checks an arbitrary weight-version rule — `rule(p)` = the wave
/// index whose updates minibatch `p` computes on (−1 = the initial
/// weights) — against the WSP start condition on the exhaustive
/// horizon:
///
/// 1. **freshness** — `rule(p)` is at least `required_wave(p)`: the
///    version is never staler than the bound permits;
/// 2. **causality** — `rule(p)` is a wave that has *closed* before `p`
///    starts (`rule(p) < wave_of(p)`): a minibatch cannot read updates
///    that include itself;
/// 3. **shift invariance** — `rule(p + Nm) = rule(p) + 1`.
pub fn verify_version_rule(
    wsp: WspParams,
    rule: impl Fn(u64) -> i64,
) -> Result<StalenessProof, String> {
    let h = horizon(wsp);
    let mut shift_invariant = true;
    for p in 1..=h {
        let v = rule(p);
        if let Some(required) = wsp.required_wave(p) {
            if v < required as i64 {
                return Err(format!(
                    "version rule reads wave {v} at minibatch {p}, staler than \
                     required wave {required}"
                ));
            }
        }
        if v >= wsp.wave_of(p) as i64 {
            return Err(format!(
                "version rule reads wave {v} at minibatch {p}, but only waves \
                 before {} have closed",
                wsp.wave_of(p)
            ));
        }
        if rule(p + wsp.nm as u64) != v + 1 {
            shift_invariant = false;
        }
    }
    Ok(StalenessProof {
        nm: wsp.nm,
        d: wsp.d,
        horizon: h,
        shift_invariant,
    })
}

/// Per-stage weight-version demand of an interleaved configuration
/// under per-chunk 2BW double buffering, with the staleness-soundness
/// verdict (groundwork for extending `extra_weight_versions` to the
/// interleaved schedules).
#[derive(Debug, Clone)]
pub struct ChunkVersionDemand {
    /// Chunks per GPU.
    pub chunks: usize,
    /// Extra weight versions per virtual stage under per-chunk 2BW
    /// (at most 1 each: the previous buffer).
    pub per_stage_two_bw: Vec<u64>,
    /// Extra versions per virtual stage under the schedule's current
    /// `w_p` stashing contract (one per extra in-flight minibatch).
    pub per_stage_wp: Vec<u64>,
    /// Summed savings of 2BW over `w_p` stashing, in weight copies.
    pub versions_saved: u64,
    /// The 2BW version rule passed [`verify_version_rule`] for this
    /// configuration (exhaustive + shift-invariant).
    pub proof: StalenessProof,
}

/// Computes the interleaved per-stage version demand under per-chunk
/// 2BW and proves the rule staleness-sound. The 2BW version rule is
/// chunk-independent — every chunk of wave `c` reads the buffer wave
/// `c − 1` closed — so one exhaustive check covers all virtual
/// stages; what varies per stage is only how many *extra* copies are
/// pinned (1 where the stage's 1F1B window exceeds 1, else 0).
pub fn interleaved_chunk_versions(
    sched: &dyn PipelineSchedule,
    k_gpus: usize,
    wsp: WspParams,
) -> Result<ChunkVersionDemand, String> {
    let k = sched.virtual_stages(k_gpus);
    let chunks = sched.colocated_stages();
    let per_stage_two_bw: Vec<u64> = (0..k)
        .map(|s| (sched.max_in_flight(s, k, wsp.nm) > 1) as u64)
        .collect();
    // The historical `w_p` baseline: one stashed injection-time copy
    // per extra in-flight minibatch. Computed explicitly (not via
    // `extra_weight_versions`) because the interleaved schedules'
    // *declared* accounting now uses the per-chunk 2BW rule this very
    // analysis proved sound — the demand report keeps quantifying the
    // saving against what HetPipe's Section-4 stashing would charge.
    let per_stage_wp: Vec<u64> = (0..k)
        .map(|s| sched.max_in_flight(s, k, wsp.nm).saturating_sub(1) as u64)
        .collect();
    let versions_saved = per_stage_wp
        .iter()
        .zip(&per_stage_two_bw)
        .map(|(wp, bw)| wp.saturating_sub(*bw))
        .sum();
    let proof = verify_version_rule(wsp, |p| wsp.two_bw_version(p))?;
    Ok(ChunkVersionDemand {
        chunks,
        per_stage_two_bw,
        per_stage_wp,
        versions_saved,
        proof,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use hetpipe_schedule::Interleaved1F1B;

    fn configs() -> Vec<WspParams> {
        let mut v = Vec::new();
        for nm in [1usize, 2, 3, 4, 8] {
            for d in [0usize, 1, 2, 4] {
                v.push(WspParams::new(nm, d));
            }
        }
        v
    }

    #[test]
    fn wsp_bound_proven_on_all_small_configs() {
        for wsp in configs() {
            let proof =
                verify_wsp_bound(wsp).unwrap_or_else(|e| panic!("nm={}, d={}: {e}", wsp.nm, wsp.d));
            assert!(
                proof.shift_invariant,
                "nm={}, d={}: required_wave must be wave-shift invariant",
                wsp.nm, wsp.d
            );
            assert!(proof.horizon > wsp.s_global() as u64 + wsp.nm as u64);
        }
    }

    #[test]
    fn two_bw_rule_is_staleness_sound() {
        for wsp in configs() {
            let proof = verify_version_rule(wsp, |p| wsp.two_bw_version(p))
                .unwrap_or_else(|e| panic!("nm={}, d={}: {e}", wsp.nm, wsp.d));
            assert!(proof.shift_invariant, "nm={}, d={}", wsp.nm, wsp.d);
        }
    }

    #[test]
    fn broken_version_rules_are_rejected() {
        let wsp = WspParams::new(4, 0);
        // One wave staler than 2BW: violates freshness once gates
        // start demanding waves.
        let err = verify_version_rule(wsp, |p| wsp.two_bw_version(p) - 1).unwrap_err();
        assert!(err.contains("staler than required wave"), "{err}");
        // Reading the own (still-open) wave: violates causality.
        let err = verify_version_rule(wsp, |p| wsp.wave_of(p) as i64).unwrap_err();
        assert!(err.contains("have closed"), "{err}");
    }

    #[test]
    fn interleaved_two_bw_demand_is_one_version_per_busy_stage() {
        let sched = Interleaved1F1B {
            chunks: 2,
            composite: true,
        };
        let wsp = WspParams::new(4, 0);
        let demand = interleaved_chunk_versions(&sched, 4, wsp).unwrap();
        assert_eq!(demand.chunks, 2);
        assert_eq!(demand.per_stage_two_bw.len(), 8);
        // Every stage with window > 1 pins exactly one extra version;
        // the deepest stage (window 1) pins none.
        assert!(demand.per_stage_two_bw.iter().all(|&v| v <= 1));
        assert_eq!(*demand.per_stage_two_bw.last().unwrap(), 0);
        // w_p stashing pins window−1 versions — strictly more wherever
        // the window exceeds 2.
        assert!(
            demand.versions_saved > 0,
            "2BW must save versions on an 8-deep interleaved pipeline"
        );
        assert!(demand.proof.shift_invariant);
    }
}
