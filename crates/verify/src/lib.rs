//! Static verification for the HetPipe reproduction: proofs about
//! schedules and the plan caches that hold *before any simulation
//! runs*.
//!
//! The rest of the workspace checks its invariants dynamically — the
//! DES audits occupancy on traces, `tests/staleness_props.rs` samples
//! the WSP algebra, stress tests race the plan cache. Each of those
//! observes *some* executions. This crate closes the gap to *all*
//! executions, for small configurations, along three axes:
//!
//! - [`graph`] — the committed op queues of every schedule become an
//!   explicit dependency DAG (program order + data edges + cross-worker
//!   WSP push/gate coupling); a topological sort is a machine-checked
//!   **deadlock-freedom certificate** per configuration, replacing the
//!   "by construction" argument, and prefix walks of the same queues
//!   give **structural occupancy bounds** completing the
//!   `measured ≤ structural ≤ declared` chain of
//!   [`hetpipe_des::OccupancyBound`].
//! - [`staleness`] — the WSP staleness algebra is checked at **every**
//!   minibatch of a warmup-covering horizon, with a wave-shift
//!   invariance witness as the induction step extending the finite
//!   check to the infinite stream.
//! - [`checker`] / [`cachecheck`] — an in-tree, loom-style
//!   **exhaustive-interleaving model checker**: pure shadow state
//!   machines (one atomic step per real critical section) are driven
//!   through *every* interleaving of 2–3 virtual threads, proving the
//!   plan caches' `MatchSeq` invariant — a reader never observes a
//!   sequence older than the latest published one — rather than
//!   sampling it with racing threads. A deliberately broken protocol
//!   step is kept in-tree as the negative control: the checker must
//!   find its counterexample, which is what makes the green run on
//!   the real protocol evidence instead of vacuity.
//!
//! Every pass here consumes the same artifacts the executor runs —
//! [`hetpipe_schedule::committed_queues`] extraction, the real
//! [`hetpipe_schedule::WspParams`] algebra, shadows pinned to the real
//! cache by parity tests — so a proof about the model is a proof
//! about the code paths, not about a drawing of them.
//!
//! The `verify_all` binary (in `hetpipe-bench`) sweeps the standing
//! model/cluster/schedule matrix through all three axes and exits
//! non-zero on any violation; CI runs it next to the benchmark gates.

pub mod cachecheck;
pub mod checker;
pub mod graph;
pub mod staleness;

pub use cachecheck::{check_broken_protocol, check_seq_protocol, ProtocolReport, SeqProtocol};
pub use checker::{explore, interleaving_count, Explored, ShadowSpec, Violation};
pub use graph::{
    structural_occupancy, verify_deadlock_free, verify_queues, CycleError, DagProof,
    OccupancyReport,
};
pub use staleness::{
    interleaved_chunk_versions, verify_version_rule, verify_wsp_bound, ChunkVersionDemand,
    StalenessProof,
};
