//! Static verification for the HetPipe reproduction: proofs about
//! schedules and the plan caches that hold *before any simulation
//! runs*.
//!
//! The rest of the workspace checks its invariants dynamically — the
//! DES audits occupancy on traces, `tests/staleness_props.rs` samples
//! the WSP algebra, stress tests race the plan cache. Each of those
//! observes *some* executions. This crate closes the gap to *all*
//! executions, for small configurations, along three axes:
//!
//! - [`graph`] — the committed op queues of every schedule become an
//!   explicit dependency DAG (program order + data edges + cross-worker
//!   WSP push/gate coupling); a topological sort is a machine-checked
//!   **deadlock-freedom certificate** per configuration, replacing the
//!   "by construction" argument, and prefix walks of the same queues
//!   give **structural occupancy bounds** completing the
//!   `measured ≤ structural ≤ declared` chain of
//!   [`hetpipe_des::OccupancyBound`].
//! - [`staleness`] — the WSP staleness algebra is checked at **every**
//!   minibatch of a warmup-covering horizon, with a wave-shift
//!   invariance witness as the induction step extending the finite
//!   check to the infinite stream.
//! - [`isolation`] / [`lookahead`] — the **fleet-decomposition
//!   certificates** (the contract the parallel per-VW engine refactor
//!   is built against). Every dependency-graph node declares a
//!   read/write footprint in the [`hetpipe_des::footprint`]
//!   vocabulary, whose resources are owned by one VW, by the
//!   parameter server, or by the environment. The isolation pass
//!   proves, edge by edge, that (1) every committed dependence is
//!   *explained* by its endpoints' footprints — an unexplained edge
//!   means an event class under-declares what it touches — and
//!   (2) every cross-VW dependence is the WSP push→gate coupling on
//!   PS-owned state, emitting an [`isolation::IsolationCertificate`]
//!   per configuration (fault scripts compose in as write-only
//!   environment rate edges). The lookahead pass then proves each
//!   VW's gate cadence matches the closed form in `(Nm, D)` —
//!   `s_global + 1 = (D + 2)·Nm − 1` stage-0 forwards of warmup, then
//!   exactly `Nm` per gate-to-gate segment — the conservative-sync
//!   window ([`lookahead::LookaheadWitness`]) the engines will
//!   advance by.
//! - [`staleness`] — the WSP staleness algebra is checked at **every**
//!   minibatch of a warmup-covering horizon, with a wave-shift
//!   invariance witness as the induction step extending the finite
//!   check to the infinite stream.
//! - [`checker`] / [`cachecheck`] / [`gatecheck`] — an in-tree,
//!   loom-style **exhaustive-interleaving model checker**: pure shadow
//!   state machines (one atomic step per real critical section) are
//!   driven through *every* interleaving of the scenario programs,
//!   proving the plan caches' `MatchSeq` invariant and the per-VW
//!   **gate protocol** (no engine ever reads a push it shouldn't see
//!   under bound `D`). Sleep-set partial-order reduction
//!   ([`checker::explore_por`]) collapses provably-commuting
//!   reorderings so 4-engine scenarios (63M unreduced interleavings)
//!   stay enumerable; 3-thread scenarios are still pinned to their
//!   unreduced multinomials as the exhaustiveness check. Deliberately
//!   broken variants (a blind cache insert, an engine advancing past
//!   a closed gate) are kept in-tree as negative controls: the
//!   checker must find their counterexamples, which is what makes the
//!   green runs on the real protocols evidence instead of vacuity.
//!
//! Every pass here consumes the same artifacts the executor runs —
//! [`hetpipe_schedule::committed_queues`] extraction, the real
//! [`hetpipe_schedule::WspParams`] algebra, shadows pinned to the real
//! cache by parity tests — so a proof about the model is a proof
//! about the code paths, not about a drawing of them.
//!
//! The `verify_all` binary (in `hetpipe-bench`) sweeps the standing
//! model/cluster/schedule matrix through all of these axes and exits
//! non-zero on any violation; CI runs it next to the benchmark gates.

pub mod cachecheck;
pub mod checker;
pub mod gatecheck;
pub mod graph;
pub mod isolation;
pub mod lookahead;
pub mod staleness;

pub use cachecheck::{check_broken_protocol, check_seq_protocol, ProtocolReport, SeqProtocol};
pub use checker::{explore, explore_por, interleaving_count, Explored, ShadowSpec, Violation};
pub use gatecheck::{
    check_broken_gate_protocol, check_gate_protocol, GateOp, GateReport, GateState,
    ShadowGateProtocol,
};
pub use graph::{
    dependency_graph, structural_occupancy, verify_deadlock_free, verify_queues, CycleError,
    DagProof, DepEdge, DepGraphData, DepNode, EdgeKind, OccupancyReport,
};
pub use isolation::{
    verify_isolation, verify_isolation_with, verify_script_isolation, verify_vw_isolation,
    FootprintModel, IsolationCertificate, IsolationViolation, IsolationViolationClass,
};
pub use lookahead::{lookahead_bound, verify_lookahead, LookaheadWitness};
pub use staleness::{
    interleaved_chunk_versions, verify_version_rule, verify_wsp_bound, ChunkVersionDemand,
    StalenessProof,
};
