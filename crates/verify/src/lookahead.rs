//! Lookahead-window certificates: the closed-form gate cadence the
//! per-VW engines will synchronize on.
//!
//! Conservative parallel DES needs a *lookahead*: how far one engine
//! may advance before it must observe the others. For the WSP
//! decomposition that window is the gate-to-gate segment of the
//! stage-0 stream, and it has a closed form in `(Nm, D)` alone:
//!
//! - **warmup**: `s_global + 1 = (D + 2)·Nm − 1` stage-0 forwards run
//!   before the first gate (wave 0) — minibatch `p` needs no global
//!   wave while `p ≤ s_global + 1` ([`WspParams::required_wave`]);
//! - **steady state**: exactly `Nm` stage-0 forwards between
//!   consecutive gates — gate `w` precedes forward
//!   `w·Nm + s_global + 2`, the first that requires wave `w`.
//!
//! [`verify_lookahead`] proves a configuration's committed queues
//! place every gate and push exactly where the closed form says
//! ([`hetpipe_schedule::ps_interaction_points`] extracts the committed
//! positions), emitting a [`LookaheadWitness`] the engine refactor can
//! golden-pin per schedule. A schedule whose stream drifted from the
//! cadence — gating late (stale reads) or early (lost lookahead) —
//! fails here with the offending gate named, before any engine is
//! built on the assumption.

use hetpipe_schedule::{
    committed_queues, ps_interaction_points, PipelineSchedule, RecomputePolicy, WspParams,
};

/// The certified lookahead constants of one `(Nm, D)` configuration:
/// `(warmup, steady)` — stage-0 forwards before the first gate, and
/// between consecutive gates.
pub fn lookahead_bound(wsp: WspParams) -> (u64, u64) {
    (wsp.s_global() as u64 + 1, wsp.nm as u64)
}

/// A proven lookahead witness for one configuration.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LookaheadWitness {
    /// Stage-0 forwards before the first gate (`s_global + 1`).
    pub warmup: u64,
    /// Stage-0 forwards per steady gate-to-gate segment (`Nm`).
    pub steady_segment: u64,
    /// Gates checked against the closed form.
    pub gates: usize,
    /// Pushes checked against their wave's last backward.
    pub pushes: usize,
}

/// Proves `sched`'s committed gate/push placement matches the
/// closed-form lookahead bound over minibatches `1..=max_mb`.
pub fn verify_lookahead(
    sched: &dyn PipelineSchedule,
    k_gpus: usize,
    wsp: WspParams,
    recompute: RecomputePolicy,
    max_mb: u64,
) -> Result<LookaheadWitness, String> {
    let queues = committed_queues(sched, k_gpus, wsp, recompute, max_mb);
    let pts = ps_interaction_points(&queues);
    let (warmup, steady) = lookahead_bound(wsp);
    if pts.gates.is_empty() {
        return Err(format!(
            "{}: no gates within horizon {max_mb} (Nm={}, D={}) — nothing to certify; \
             widen the horizon",
            sched.name(),
            wsp.nm,
            wsp.d
        ));
    }
    for (i, g) in pts.gates.iter().enumerate() {
        if g.wave != i as u64 {
            return Err(format!(
                "{}: gate #{i} is for wave {} — gates must cover consecutive waves \
                 from 0 (a skipped wave would deadlock the coupled workers)",
                sched.name(),
                g.wave
            ));
        }
        let expect = g.wave * steady + warmup;
        if g.forwards_before != expect {
            return Err(format!(
                "{}: gate(w{}) placed after {} stage-0 forwards, closed form says {} \
                 (warmup {} + {}·Nm) — the stream {} the certified lookahead",
                sched.name(),
                g.wave,
                g.forwards_before,
                expect,
                warmup,
                g.wave,
                if g.forwards_before > expect {
                    "overruns"
                } else {
                    "undershoots"
                }
            ));
        }
    }
    for (i, p) in pts.pushes.iter().enumerate() {
        if p.wave != i as u64 {
            return Err(format!(
                "{}: push #{i} is for wave {} — pushes must cover consecutive waves from 0",
                sched.name(),
                p.wave
            ));
        }
        let expect = wsp.last_of_wave(p.wave);
        if p.backwards_before != expect {
            return Err(format!(
                "{}: push(w{}) placed after {} stage-0 backwards, but the wave's update \
                 is complete exactly after backward {} — a push must publish the whole \
                 wave, no more, no less",
                sched.name(),
                p.wave,
                p.backwards_before,
                expect
            ));
        }
    }
    Ok(LookaheadWitness {
        warmup,
        steady_segment: steady,
        gates: pts.gates.len(),
        pushes: pts.pushes.len(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use hetpipe_schedule::Schedule;

    #[test]
    fn closed_form_matches_wsp_algebra() {
        // warmup = (D+2)·Nm − 1 in closed form.
        for nm in [1usize, 2, 4, 8] {
            for d in [0usize, 1, 3] {
                let wsp = WspParams::new(nm, d);
                let (warmup, steady) = lookahead_bound(wsp);
                assert_eq!(warmup, ((d + 2) * nm - 1) as u64);
                assert_eq!(steady, nm as u64);
            }
        }
    }

    #[test]
    fn every_schedule_matches_the_closed_form() {
        for sched in Schedule::ALL {
            for (nm, d) in [(2usize, 0usize), (4, 0), (4, 1)] {
                let wsp = WspParams::new(nm, d);
                for recompute in RecomputePolicy::ALL {
                    let w = verify_lookahead(&sched, 4, wsp, recompute, (nm * 8) as u64)
                        .unwrap_or_else(|e| panic!("{e}"));
                    assert_eq!(w.warmup, ((d + 2) * nm - 1) as u64, "{}", sched.name());
                    assert_eq!(w.steady_segment, nm as u64);
                    assert!(w.gates >= 2, "{}: need a steady segment", sched.name());
                    assert!(w.pushes >= w.gates, "{}", sched.name());
                }
            }
        }
    }

    #[test]
    fn tiny_horizon_is_a_proof_gap_not_a_pass() {
        // A horizon too small to contain a single gate must refuse to
        // certify rather than vacuously succeed.
        let wsp = WspParams::new(4, 1);
        let err = verify_lookahead(
            &hetpipe_schedule::OneFOneB,
            4,
            wsp,
            RecomputePolicy::None,
            4,
        )
        .unwrap_err();
        assert!(err.contains("nothing to certify"), "{err}");
    }
}
