//! Stream-graph verification: deadlock proofs and structural
//! occupancy bounds, computed from a schedule's committed queues
//! without executing the DES.
//!
//! # The dependency DAG
//!
//! [`hetpipe_schedule::committed_queues`] reifies what a schedule
//! statically commits each execution unit to: per-stage op queues
//! (flat and depth-expanded schedules) or per-GPU composite queues,
//! truncated to a dependency-closed horizon of `max_mb` minibatches.
//! This module turns those queues into an explicit dependency graph:
//!
//! - **program-order edges** — consecutive ops of an *ordered* queue
//!   (the executor commits to that total order); for arrival-FIFO
//!   queues only the per-kind subsequences (forwards in minibatch
//!   order, backwards in minibatch order, ...) are committed, so only
//!   those chains become edges — the verifier never assumes more
//!   order than the executor enforces.
//! - **data edges** — `Fwd(s−1, mb) → Fwd(s, mb)` (boundary
//!   activations), `Bwd(s+1, mb) → Bwd(s, mb)` (boundary gradients),
//!   `Fwd(s, mb) → Bwd(s, mb)` (the stash), and
//!   `Fwd(s, mb) → Rec(s, mb) → Bwd(s, mb)` under recomputation.
//! - **WSP edges** — `Bwd(0, last_of_wave(w)) → Push(w)` (a wave's
//!   update is pushed after its last backward on stage 0) and, across
//!   *all* mirrored virtual workers, `Push_u(w) → Gate_v(w)`: a pull
//!   gate opens only once every worker has pushed the wave, which is
//!   exactly the cross-worker coupling that could deadlock a bad
//!   schedule. The gate then precedes the first forward that requires
//!   the wave (`Gate_v(w) → Fwd_v(0, first_of_wave(w) + s_global + 1)`).
//!
//! A topological sort (Kahn) of this graph is a machine-checked
//! deadlock-freedom proof for the configuration: every op in the
//! horizon can execute in some dependency-respecting order. PR 3
//! argued this "by construction"; [`verify_deadlock_free`] replaces
//! that argument with a checked certificate per config, and
//! [`verify_queues`] exposes the raw layer so tests can feed it
//! deliberately cyclic queue sets and watch the cycle get named.
//!
//! Finite horizon, infinite schedule: the proof covers minibatches
//! `1..=max_mb` directly. Generalization to the infinite stream is by
//! wave-shift induction — after warmup, every stream is periodic in
//! waves (for some period `p`, wave `w+p`'s ops are wave `w`'s shifted
//! by `p·Nm` minibatches), so a deadlock-free steady-state period
//! implies deadlock-freedom forever. [`DagProof::wave_period`] reports
//! the minimal such period found on the horizon's tail.
//!
//! # Structural occupancy
//!
//! [`structural_occupancy`] computes, per stage and per GPU, the peak
//! activation occupancy *implied by the committed op order alone*: a
//! prefix walk of each ordered queue (+1 per pipeline forward, −1 per
//! backward) whose peak is exact — the executor performs exactly that
//! delta sequence. Arrival-FIFO queues commit no interleaving, so the
//! structural bound is the declared window itself (the executor's gate
//! is the only thing bounding them — and PR 2 showed the window is
//! genuinely reachable under timing skew). Depth-expanded schedules
//! get conservative per-GPU sums of their co-located stage peaks. The
//! result is the middle of the `measured ≤ structural ≤ declared`
//! chain of [`hetpipe_des::OccupancyBound`], plus over-reservation
//! lints where `declared > 2 × structural`.

use hetpipe_des::{BoundEntity, OccupancyBound};
use hetpipe_schedule::{
    committed_queues, CommittedQueue, Dispatch, PipelineSchedule, RecomputePolicy, ScheduleOp,
    WspParams,
};
use std::collections::HashMap;

/// Node identity inside the dependency graph. Public since PR 8: the
/// VW-isolation pass judges every edge against its endpoints' declared
/// footprints, so node identity is part of the verifier's vocabulary,
/// not an implementation detail.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DepNode {
    /// Forward of minibatch `mb` at `stage`.
    Fwd {
        /// Virtual worker.
        vw: usize,
        /// Virtual stage.
        stage: usize,
        /// Minibatch (1-indexed).
        mb: u64,
    },
    /// Backward of minibatch `mb` at `stage`.
    Bwd {
        /// Virtual worker.
        vw: usize,
        /// Virtual stage.
        stage: usize,
        /// Minibatch (1-indexed).
        mb: u64,
    },
    /// Fused forward+backward (the wave schedule's last stage): one
    /// node acting as both the forward and the backward of its
    /// minibatch — dependency lookups resolve either role to it, and
    /// its footprint is the union of the two.
    Fused {
        /// Virtual worker.
        vw: usize,
        /// Virtual stage.
        stage: usize,
        /// Minibatch (1-indexed).
        mb: u64,
    },
    /// Recompute of minibatch `mb`'s activations at `stage`.
    Rec {
        /// Virtual worker.
        vw: usize,
        /// Virtual stage.
        stage: usize,
        /// Minibatch (1-indexed).
        mb: u64,
    },
    /// Push of wave `wave`'s aggregated update to the parameter server.
    Push {
        /// Virtual worker.
        vw: usize,
        /// WSP wave.
        wave: u64,
    },
    /// Pull gate waiting for every worker's push of wave `wave`.
    Gate {
        /// Virtual worker.
        vw: usize,
        /// WSP wave.
        wave: u64,
    },
}

impl DepNode {
    /// The virtual worker the op belongs to.
    pub fn vw(&self) -> usize {
        match *self {
            DepNode::Fwd { vw, .. }
            | DepNode::Bwd { vw, .. }
            | DepNode::Fused { vw, .. }
            | DepNode::Rec { vw, .. }
            | DepNode::Push { vw, .. }
            | DepNode::Gate { vw, .. } => vw,
        }
    }
}

/// Why an edge exists — which commitment of the schedule it encodes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum EdgeKind {
    /// Committed execution order of one queue (total order for
    /// ordered queues, per-kind subsequences for arrival-FIFO).
    Program,
    /// Dataflow within one virtual worker: boundary activations /
    /// gradients, the stash, recompute.
    Data,
    /// WSP coupling: backward→push, push→gate (the only cross-VW
    /// edges), gate→first-gated-forward.
    Wsp,
}

/// One dependency edge, by node index into [`DepGraphData::nodes`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DepEdge {
    /// Source node index.
    pub from: usize,
    /// Target node index.
    pub to: usize,
    /// The commitment the edge encodes.
    pub kind: EdgeKind,
}

/// The dependency graph as data: what [`verify_queues`] proves acyclic,
/// exposed for the isolation pass to judge edge by edge.
#[derive(Debug, Clone)]
pub struct DepGraphData {
    /// Node identities, indexed by the edge endpoints.
    pub nodes: Vec<DepNode>,
    /// Human-readable node labels (counterexample rendering).
    pub labels: Vec<String>,
    /// Every dependency edge, tagged with its kind.
    pub edges: Vec<DepEdge>,
}

struct Graph {
    labels: Vec<String>,
    keys: Vec<DepNode>,
    succs: Vec<Vec<usize>>,
    edge_list: Vec<DepEdge>,
    index: HashMap<DepNode, usize>,
}

impl Graph {
    fn new() -> Graph {
        Graph {
            labels: Vec::new(),
            keys: Vec::new(),
            succs: Vec::new(),
            edge_list: Vec::new(),
            index: HashMap::new(),
        }
    }

    fn add_node(&mut self, label: String, key: DepNode) -> usize {
        self.labels.push(label);
        self.keys.push(key);
        self.succs.push(Vec::new());
        self.labels.len() - 1
    }

    fn add_edge(&mut self, from: usize, to: usize, kind: EdgeKind) {
        if from != to && !self.succs[from].contains(&to) {
            self.succs[from].push(to);
            self.edge_list.push(DepEdge { from, to, kind });
        }
    }

    fn edge_by_key(&mut self, from: DepNode, to: usize, kind: EdgeKind) {
        if let Some(&f) = self.index.get(&from) {
            self.add_edge(f, to, kind);
        }
    }
}

/// A machine-checked deadlock-freedom certificate for one
/// configuration.
#[derive(Debug, Clone)]
pub struct DagProof {
    /// Ops in the graph (all virtual workers).
    pub nodes: usize,
    /// Dependency edges checked.
    pub edges: usize,
    /// Horizon: minibatches `1..=minibatches` covered per stage.
    pub minibatches: u64,
    /// Mirrored virtual workers coupled through push/gate edges.
    pub vws: usize,
    /// The minimal wave period `p` such that the horizon's steady-state
    /// tail repeats under the `mb → mb + p·Nm` shift — the induction
    /// witness extending the finite proof to the infinite stream.
    /// `1` for every flat schedule; composite timetables advance in
    /// chunk groups of `k_gpus` minibatches, so their period is
    /// `lcm(Nm, k_gpus) / Nm` when `Nm` is not a multiple of the GPU
    /// count. `None` when no period fits within the horizon (a proof
    /// gap, not a deadlock — callers treat it as a violation).
    pub wave_period: Option<u64>,
}

/// A dependency cycle: the named ops, in order, each depending on the
/// next (a genuine deadlock in the committed structure).
#[derive(Debug, Clone)]
pub struct CycleError {
    /// Node labels along the cycle.
    pub cycle: Vec<String>,
}

impl std::fmt::Display for CycleError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "dependency cycle (deadlock): ")?;
        for label in &self.cycle {
            write!(f, "{label} → ")?;
        }
        if let Some(first) = self.cycle.first() {
            write!(f, "{first}")?;
        }
        Ok(())
    }
}

impl std::error::Error for CycleError {}

fn op_label(vw: usize, stage: usize, op: &ScheduleOp) -> String {
    match *op {
        ScheduleOp::Forward { mb } => format!("vw{vw} s{stage} fwd mb{mb}"),
        ScheduleOp::Backward { mb } => format!("vw{vw} s{stage} bwd mb{mb}"),
        ScheduleOp::FusedFwdBwd { mb } => format!("vw{vw} s{stage} fused mb{mb}"),
        ScheduleOp::Recompute { mb } => format!("vw{vw} s{stage} rec mb{mb}"),
        ScheduleOp::Push { wave } => format!("vw{vw} push w{wave}"),
        ScheduleOp::PullGate { wave } => format!("vw{vw} gate w{wave}"),
    }
}

/// The two-pass graph construction shared by [`verify_queues`] (which
/// then proves it acyclic) and [`dependency_graph`] (which exposes it
/// as data for the isolation pass).
fn build_graph(queue_sets: &[Vec<CommittedQueue>], k: usize, wsp: WspParams) -> Graph {
    let vws = queue_sets.len();
    let mut g = Graph::new();

    // Pass 1: nodes and program-order edges.
    for (vw, queues) in queue_sets.iter().enumerate() {
        for queue in queues {
            let mut prev: Option<usize> = None;
            // Per-kind chain tails for unordered queues, keyed by
            // (stage, kind-discriminant).
            let mut kind_tail: HashMap<(usize, u8), usize> = HashMap::new();
            for gop in &queue.ops {
                let stage = gop.stage;
                let (key, kind) = match gop.op {
                    ScheduleOp::Forward { mb } => (DepNode::Fwd { vw, stage, mb }, 0u8),
                    ScheduleOp::Backward { mb } => (DepNode::Bwd { vw, stage, mb }, 1),
                    ScheduleOp::FusedFwdBwd { mb } => (DepNode::Fused { vw, stage, mb }, 2),
                    ScheduleOp::Recompute { mb } => (DepNode::Rec { vw, stage, mb }, 3),
                    ScheduleOp::Push { wave } => (DepNode::Push { vw, wave }, 4),
                    ScheduleOp::PullGate { wave } => (DepNode::Gate { vw, wave }, 5),
                };
                let idx = g.add_node(op_label(vw, stage, &gop.op), key);
                if let DepNode::Fused { vw, stage, mb } = key {
                    // A fused op is both the forward and the backward
                    // of its minibatch at this stage.
                    g.index.insert(DepNode::Fwd { vw, stage, mb }, idx);
                    g.index.insert(DepNode::Bwd { vw, stage, mb }, idx);
                } else {
                    g.index.insert(key, idx);
                }
                if queue.ordered {
                    if let Some(p) = prev {
                        g.add_edge(p, idx, EdgeKind::Program);
                    }
                    prev = Some(idx);
                } else if let Some(&tail) = kind_tail.get(&(stage, kind)) {
                    g.add_edge(tail, idx, EdgeKind::Program);
                    kind_tail.insert((stage, kind), idx);
                } else {
                    kind_tail.insert((stage, kind), idx);
                }
            }
        }
    }

    // Pass 2: data and WSP edges.
    let sg = wsp.s_global() as u64;
    for (vw, queues) in queue_sets.iter().enumerate() {
        for queue in queues {
            for gop in &queue.ops {
                let stage = gop.stage;
                match gop.op {
                    ScheduleOp::Forward { mb } | ScheduleOp::FusedFwdBwd { mb } => {
                        let idx = g.index[&DepNode::Fwd { vw, stage, mb }];
                        if stage > 0 {
                            g.edge_by_key(
                                DepNode::Fwd {
                                    vw,
                                    stage: stage - 1,
                                    mb,
                                },
                                idx,
                                EdgeKind::Data,
                            );
                        }
                        if gop.op.has_backward() && stage + 1 < k {
                            g.edge_by_key(
                                DepNode::Bwd {
                                    vw,
                                    stage: stage + 1,
                                    mb,
                                },
                                idx,
                                EdgeKind::Data,
                            );
                        }
                    }
                    ScheduleOp::Backward { mb } => {
                        let idx = g.index[&DepNode::Bwd { vw, stage, mb }];
                        g.edge_by_key(DepNode::Fwd { vw, stage, mb }, idx, EdgeKind::Data);
                        if stage + 1 < k {
                            g.edge_by_key(
                                DepNode::Bwd {
                                    vw,
                                    stage: stage + 1,
                                    mb,
                                },
                                idx,
                                EdgeKind::Data,
                            );
                        }
                        g.edge_by_key(DepNode::Rec { vw, stage, mb }, idx, EdgeKind::Data);
                    }
                    ScheduleOp::Recompute { mb } => {
                        let idx = g.index[&DepNode::Rec { vw, stage, mb }];
                        g.edge_by_key(DepNode::Fwd { vw, stage, mb }, idx, EdgeKind::Data);
                    }
                    ScheduleOp::Push { wave } => {
                        let idx = g.index[&DepNode::Push { vw, wave }];
                        g.edge_by_key(
                            DepNode::Bwd {
                                vw,
                                stage: 0,
                                mb: wsp.last_of_wave(wave),
                            },
                            idx,
                            EdgeKind::Wsp,
                        );
                    }
                    ScheduleOp::PullGate { wave } => {
                        let idx = g.index[&DepNode::Gate { vw, wave }];
                        // The cross-worker coupling: every worker's
                        // push of the wave precedes every worker's
                        // gate on it.
                        for u in 0..vws {
                            g.edge_by_key(DepNode::Push { vw: u, wave }, idx, EdgeKind::Wsp);
                        }
                        // The gate precedes the first forward that
                        // requires the wave (direction: gate → fwd).
                        let first_gated = wsp.first_of_wave(wave) + sg + 1;
                        if let Some(&fwd) = g.index.get(&DepNode::Fwd {
                            vw,
                            stage: 0,
                            mb: first_gated,
                        }) {
                            g.add_edge(idx, fwd, EdgeKind::Wsp);
                        }
                    }
                }
            }
        }
    }

    g
}

/// Builds the dependency graph of `vws` mirrored copies of
/// `queue_sets[vw]` and proves it acyclic. This is the raw layer under
/// [`verify_deadlock_free`]: it accepts hand-built queue sets, so
/// tests can feed it deliberately broken structures (a backward before
/// its forward, a gate whose push never happens before it, ...) and
/// assert the cycle is caught and named. Returns `(nodes, edges)` on
/// success.
pub fn verify_queues(
    queue_sets: &[Vec<CommittedQueue>],
    k: usize,
    wsp: WspParams,
) -> Result<(usize, usize), CycleError> {
    kahn(&build_graph(queue_sets, k, wsp))
}

/// Builds the same dependency graph [`verify_queues`] proves acyclic
/// and returns it *as data* — node identities, labels, and
/// kind-tagged edges — for analyses that judge the graph edge by edge
/// (the VW-isolation pass). Does not require acyclicity: cycle
/// detection stays the deadlock pass's job.
pub fn dependency_graph(
    queue_sets: &[Vec<CommittedQueue>],
    k: usize,
    wsp: WspParams,
) -> DepGraphData {
    let g = build_graph(queue_sets, k, wsp);
    DepGraphData {
        nodes: g.keys,
        labels: g.labels,
        edges: g.edge_list,
    }
}

/// Kahn's algorithm; on failure extracts and names one cycle.
fn kahn(g: &Graph) -> Result<(usize, usize), CycleError> {
    let n = g.labels.len();
    let mut indeg = vec![0usize; n];
    for succs in &g.succs {
        for &t in succs {
            indeg[t] += 1;
        }
    }
    let mut ready: Vec<usize> = (0..n).filter(|&i| indeg[i] == 0).collect();
    let mut done = 0usize;
    while let Some(i) = ready.pop() {
        done += 1;
        for &t in &g.succs[i] {
            indeg[t] -= 1;
            if indeg[t] == 0 {
                ready.push(t);
            }
        }
    }
    if done == n {
        return Ok((n, g.edge_list.len()));
    }
    // Nodes with indeg > 0 at this point sit on or behind a cycle.
    // Walk predecessors within the remaining set until a repeat.
    let remaining: Vec<bool> = indeg.iter().map(|&d| d > 0).collect();
    let mut preds: Vec<Vec<usize>> = vec![Vec::new(); n];
    for (i, succs) in g.succs.iter().enumerate() {
        if !remaining[i] {
            continue;
        }
        for &t in succs {
            if remaining[t] {
                preds[t].push(i);
            }
        }
    }
    let start = remaining.iter().position(|&r| r).expect("cycle exists");
    let mut seen_at: HashMap<usize, usize> = HashMap::new();
    let mut walk = vec![start];
    let mut cur = start;
    loop {
        if let Some(&at) = seen_at.get(&cur) {
            let cycle: Vec<String> = walk[at..walk.len() - 1]
                .iter()
                .rev()
                .map(|&i| g.labels[i].clone())
                .collect();
            return Err(CycleError { cycle });
        }
        seen_at.insert(cur, walk.len() - 1);
        cur = *preds[cur]
            .first()
            .expect("every remaining node has a remaining predecessor");
        walk.push(cur);
    }
}

/// The minimal wave period of the horizon's steady-state tail: the
/// smallest `p` such that the per-queue compute-op patterns of the
/// last two complete waves equal those `p` waves earlier under the
/// `mb → mb + p·Nm` shift — the wave-shift induction witness.
fn wave_period(queues: &[CommittedQueue], wsp: WspParams, max_mb: u64) -> Option<u64> {
    let full_waves = max_mb / wsp.nm as u64;
    if full_waves < 3 {
        return None;
    }
    let pattern = |q: &CommittedQueue, w: u64| -> Vec<(usize, u8, u64)> {
        q.ops
            .iter()
            .filter_map(|g| {
                let mb = g.op.minibatch()?;
                if wsp.wave_of(mb) != w {
                    return None;
                }
                let kind = match g.op {
                    ScheduleOp::Forward { .. } => 0u8,
                    ScheduleOp::Backward { .. } => 1,
                    ScheduleOp::FusedFwdBwd { .. } => 2,
                    ScheduleOp::Recompute { .. } => 3,
                    _ => unreachable!("minibatch() filtered decorations"),
                };
                Some((g.stage, kind, mb - wsp.first_of_wave(w)))
            })
            .collect()
    };
    let last = full_waves - 1;
    (1..=full_waves - 2).find(|&period| {
        queues.iter().all(|q| {
            pattern(q, last) == pattern(q, last - period)
                && pattern(q, last - 1) == pattern(q, last - 1 - period)
        })
    })
}

/// Extracts `sched`'s committed queues on a `k_gpus`-GPU virtual
/// worker, mirrors them across `vws` WSP-coupled virtual workers, and
/// proves the resulting dependency graph acyclic — a machine-checked
/// deadlock-freedom certificate for the configuration over minibatches
/// `1..=max_mb`.
pub fn verify_deadlock_free(
    sched: &dyn PipelineSchedule,
    k_gpus: usize,
    wsp: WspParams,
    recompute: RecomputePolicy,
    max_mb: u64,
    vws: usize,
) -> Result<DagProof, CycleError> {
    let k = sched.virtual_stages(k_gpus);
    let queues = committed_queues(sched, k_gpus, wsp, recompute, max_mb);
    let period = wave_period(&queues, wsp, max_mb);
    let queue_sets: Vec<Vec<CommittedQueue>> = vec![queues; vws.max(1)];
    let (nodes, edges) = verify_queues(&queue_sets, k, wsp)?;
    Ok(DagProof {
        nodes,
        edges,
        minibatches: max_mb,
        vws: vws.max(1),
        wave_period: period,
    })
}

/// Structural occupancy bounds of one configuration (virtual worker 0).
#[derive(Debug, Clone)]
pub struct OccupancyReport {
    /// Per-stage and per-GPU triples with `structural` filled in.
    pub bounds: Vec<OccupancyBound>,
    /// True when the stage bounds are exact prefix-walk peaks of a
    /// committed total order (stream-order / composite dispatch);
    /// false for arrival-FIFO, where the declared window is the only
    /// structural bound (and is reachable, so `structural = declared`).
    pub exact: bool,
    /// Over-reservation lints: entities whose declared bound is loose
    /// by more than 2× against the structural peak.
    pub lints: Vec<String>,
}

/// Peak of the occupancy prefix walk over `ops` restricted by
/// `counts`: +1 per pipeline forward, −1 per backward (a fused op
/// transiently holds 1).
fn walk_peak<'a>(
    ops: impl Iterator<Item = &'a hetpipe_schedule::GpuOp>,
    counts: impl Fn(usize) -> bool,
) -> i64 {
    let mut occ = 0i64;
    let mut peak = 0i64;
    for gop in ops {
        if !counts(gop.stage) {
            continue;
        }
        if gop.op.has_forward() {
            occ += 1;
            peak = peak.max(occ);
        }
        if gop.op.has_backward() {
            occ -= 1;
        }
    }
    peak
}

/// Computes the structural occupancy bounds of `sched` per stage and
/// per GPU over minibatches `1..=max_mb`, paired with the declared
/// contract, plus over-reservation lints. See the module docs for
/// what "structural" means per dispatch discipline.
pub fn structural_occupancy(
    sched: &dyn PipelineSchedule,
    k_gpus: usize,
    wsp: WspParams,
    recompute: RecomputePolicy,
    max_mb: u64,
) -> OccupancyReport {
    let k = sched.virtual_stages(k_gpus);
    let declared: Vec<i64> = (0..k)
        .map(|s| sched.max_in_flight(s, k, wsp.nm) as i64)
        .collect();
    let queues = committed_queues(sched, k_gpus, wsp, recompute, max_mb);
    let exact = sched.dispatch() != Dispatch::ArrivalFifo;

    let stage_peak: Vec<i64> = match sched.dispatch() {
        // Arrival-FIFO commits no interleaving: the executor's
        // declared window is the structural bound, and PR 2 showed it
        // is reachable under timing skew — so structural = declared.
        Dispatch::ArrivalFifo => declared.clone(),
        // The per-stage delta sequence is fully committed: the walk
        // peak is exact.
        Dispatch::StreamOrder | Dispatch::GpuStreamOrder => (0..k)
            .map(|s| {
                queues
                    .iter()
                    .map(|q| walk_peak(q.ops.iter(), |stage| stage == s))
                    .max()
                    .unwrap_or(0)
            })
            .collect(),
    };

    let mut bounds: Vec<OccupancyBound> = (0..k)
        .map(|stage| OccupancyBound {
            entity: BoundEntity::Stage { vw: 0, stage },
            measured: None,
            structural: Some(stage_peak[stage]),
            declared: declared[stage],
        })
        .collect();

    for gpu in 0..k_gpus {
        let colocated: Vec<usize> = (0..k).filter(|s| s % k_gpus == gpu).collect();
        let gpu_declared: i64 = colocated.iter().map(|&s| declared[s]).sum();
        let gpu_structural = match sched.dispatch() {
            Dispatch::ArrivalFifo => gpu_declared,
            // The composite queue commits the joint interleaving of
            // co-located stages, so the joint walk is exact.
            Dispatch::GpuStreamOrder => queues
                .iter()
                .map(|q| walk_peak(q.ops.iter(), |stage| stage % k_gpus == gpu))
                .max()
                .unwrap_or(0),
            // Depth-expanded stream-order: co-located stage streams
            // merge in arrival order, so the sum of stage peaks is the
            // (conservative) structural bound.
            Dispatch::StreamOrder => colocated.iter().map(|&s| stage_peak[s]).sum(),
        };
        bounds.push(OccupancyBound {
            entity: BoundEntity::Gpu { vw: 0, gpu },
            measured: None,
            structural: Some(gpu_structural),
            declared: gpu_declared,
        });
    }

    let lints = bounds
        .iter()
        .filter(|b| b.over_reserved(2))
        .map(|b| format!("over-reserved (>2x): {b}"))
        .collect();
    OccupancyReport {
        bounds,
        exact,
        lints,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hetpipe_des::check_bounds;
    use hetpipe_schedule::{
        FillDrain, GpuOp, HetPipeWave, Interleaved1F1B, OneFOneB, QueueKind, Schedule,
    };

    fn all_schedules() -> Vec<Box<dyn PipelineSchedule>> {
        Schedule::ALL
            .iter()
            .map(|s| Box::new(*s) as Box<dyn PipelineSchedule>)
            .collect()
    }

    #[test]
    fn every_schedule_is_deadlock_free() {
        for sched in all_schedules() {
            for k_gpus in [2usize, 4] {
                for d in [0usize, 1] {
                    let wsp = WspParams::new(4, d);
                    for recompute in RecomputePolicy::ALL {
                        let proof =
                            verify_deadlock_free(sched.as_ref(), k_gpus, wsp, recompute, 24, 2)
                                .unwrap_or_else(|c| {
                                    panic!(
                                        "{} (k_gpus={k_gpus}, d={d}, {recompute}): {c}",
                                        sched.name()
                                    )
                                });
                        assert!(proof.nodes > 0);
                        assert!(proof.edges >= proof.nodes - 1);
                        assert_eq!(proof.vws, 2);
                        assert_eq!(
                            proof.wave_period,
                            Some(1),
                            "{}: steady state at Nm-divisible depths is 1-wave periodic",
                            sched.name()
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn composite_period_is_chunk_group_cadence() {
        // Nm = 4 on 3 GPUs: the composite timetable advances in chunk
        // groups of 3 minibatches, so the steady state repeats every
        // lcm(4, 3) / 4 = 3 waves — the witness must find it.
        let sched = Interleaved1F1B {
            chunks: 2,
            composite: true,
        };
        let wsp = WspParams::new(4, 0);
        let proof = verify_deadlock_free(&sched, 3, wsp, RecomputePolicy::None, 48, 2).unwrap();
        assert_eq!(proof.wave_period, Some(3));
    }

    #[test]
    fn reversed_data_edge_is_a_named_cycle() {
        // A hand-built broken queue: stage 0 runs mb 1's backward
        // *before* its forward in a committed total order. The
        // program-order edge bwd→fwd plus the data edge fwd→bwd form
        // a 2-cycle.
        let wsp = WspParams::new(2, 0);
        let broken = vec![vec![CommittedQueue {
            kind: QueueKind::Stage(0),
            ordered: true,
            ops: vec![
                GpuOp {
                    stage: 0,
                    op: ScheduleOp::Backward { mb: 1 },
                },
                GpuOp {
                    stage: 0,
                    op: ScheduleOp::Forward { mb: 1 },
                },
            ],
        }]];
        let err = verify_queues(&broken, 1, wsp).unwrap_err();
        let rendered = err.to_string();
        assert!(rendered.contains("deadlock"), "{rendered}");
        assert!(rendered.contains("bwd mb1"), "{rendered}");
        assert!(rendered.contains("fwd mb1"), "{rendered}");
    }

    #[test]
    fn cross_worker_gate_before_push_deadlocks() {
        // Worker 0 gates on wave 0 *before* emitting any backward of
        // the wave (so its own push can never happen), while worker
        // 1's push depends on nothing — one worker alone is fine, but
        // a gate preceding the local wave completion in a committed
        // order is a deadlock when the gated forward is needed for
        // the wave's own backward... build the minimal cyclic shape:
        // gate(w0) → fwd(1) → bwd(1) → push(w0) → gate(w0).
        let wsp = WspParams::new(1, 0);
        // nm=1: wave 0 = mb 1, s_global = 0, first gated fwd for wave
        // 0 is mb 2. Gate wave 0 placed before fwd mb 2; push of wave
        // 0 requires bwd mb 1 — make bwd mb 1 come *after* fwd mb 2
        // in the committed order, closing the cycle through the gate.
        let broken = vec![vec![CommittedQueue {
            kind: QueueKind::Stage(0),
            ordered: true,
            ops: vec![
                GpuOp {
                    stage: 0,
                    op: ScheduleOp::Forward { mb: 1 },
                },
                GpuOp {
                    stage: 0,
                    op: ScheduleOp::PullGate { wave: 0 },
                },
                GpuOp {
                    stage: 0,
                    op: ScheduleOp::Forward { mb: 2 },
                },
                GpuOp {
                    stage: 0,
                    op: ScheduleOp::Backward { mb: 1 },
                },
                GpuOp {
                    stage: 0,
                    op: ScheduleOp::Push { wave: 0 },
                },
                GpuOp {
                    stage: 0,
                    op: ScheduleOp::Backward { mb: 2 },
                },
            ],
        }]];
        let err = verify_queues(&broken, 1, wsp).unwrap_err();
        let rendered = err.to_string();
        assert!(rendered.contains("gate w0"), "{rendered}");
        assert!(rendered.contains("push w0"), "{rendered}");
    }

    #[test]
    fn structural_bounds_are_sound_for_all_schedules() {
        for sched in all_schedules() {
            for k_gpus in [2usize, 4] {
                let wsp = WspParams::new(4, 0);
                for recompute in RecomputePolicy::ALL {
                    let report = structural_occupancy(sched.as_ref(), k_gpus, wsp, recompute, 24);
                    check_bounds(&report.bounds)
                        .unwrap_or_else(|v| panic!("{} (k_gpus={k_gpus}): {v:?}", sched.name()));
                }
            }
        }
    }

    #[test]
    fn structural_peaks_match_known_schedule_shapes() {
        let wsp = WspParams::new(4, 0);
        // Fill-drain: every stage fills to Nm.
        let r = structural_occupancy(&FillDrain, 4, wsp, RecomputePolicy::None, 24);
        for s in 0..4 {
            assert_eq!(r.bounds[s].structural, Some(4), "fill-drain stage {s}");
            assert_eq!(r.bounds[s].declared, 4);
        }
        assert!(r.exact);
        assert!(r.lints.is_empty());
        // 1F1B: stage s peaks at min(Nm, k−s) — exactly the declared
        // window, so no slack anywhere.
        let r = structural_occupancy(&OneFOneB, 4, wsp, RecomputePolicy::None, 24);
        for s in 0..4 {
            assert_eq!(
                r.bounds[s].structural,
                Some((4 - s) as i64),
                "1f1b stage {s}"
            );
            assert_eq!(r.bounds[s].declared, (4 - s) as i64);
        }
        // Wave schedule: arrival-FIFO, structural = declared = Nm
        // (fused last stage: 1).
        let r = structural_occupancy(&HetPipeWave, 4, wsp, RecomputePolicy::None, 24);
        assert!(!r.exact);
        for s in 0..3 {
            assert_eq!(r.bounds[s].structural, Some(4));
        }
        assert_eq!(r.bounds[3].structural, Some(1));
    }

    #[test]
    fn composite_gpu_walk_is_jointly_exact() {
        let wsp = WspParams::new(4, 0);
        let sched = Interleaved1F1B {
            chunks: 2,
            composite: true,
        };
        let r = structural_occupancy(&sched, 4, wsp, RecomputePolicy::None, 24);
        let k = sched.virtual_stages(4);
        // Per-GPU joint peaks never exceed the summed declared bound…
        check_bounds(&r.bounds).unwrap();
        // …and the GPU entities exist with structural values from the
        // joint walk (≤ sum of their stage peaks).
        for gpu in 0..4 {
            let b = r
                .bounds
                .iter()
                .find(|b| b.entity == BoundEntity::Gpu { vw: 0, gpu })
                .unwrap();
            let stage_sum: i64 = (0..k)
                .filter(|s| s % 4 == gpu)
                .map(|s| {
                    r.bounds
                        .iter()
                        .find(|b| b.entity == BoundEntity::Stage { vw: 0, stage: s })
                        .unwrap()
                        .structural
                        .unwrap()
                })
                .sum();
            assert!(b.structural.unwrap() <= stage_sum, "gpu {gpu}");
        }
    }
}
