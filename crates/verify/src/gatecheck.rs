//! Model-checking the per-VW engine gate protocol.
//!
//! The fleet-scale decomposition runs one engine per virtual worker,
//! each advancing to its lookahead horizon and blocking on a shared
//! WSP gate cell ([`crate::lookahead`] certifies *where* the gates
//! sit; this module certifies *what happens at them* when engines
//! race). [`ShadowGateProtocol`] is the pure shadow of that loop:
//!
//! - `Advance`: the engine injects its next minibatch — but only if
//!   the minibatch's required wave ([`WspParams::required_wave`]) has
//!   been pushed by **every** worker (the gate is open). A closed
//!   gate makes the step a no-op: the engine spins.
//! - `Push`: the engine publishes its next wave — a no-op until the
//!   wave's minibatches have all been injected locally.
//!
//! The invariant is the WSP safety contract the paper's Section 5
//! argues informally: **no VW ever computes a minibatch whose
//! required wave some worker has not pushed** (no stale read through
//! the gate), and push clocks never spread further than `D + 1`
//! (derivation: when any clock reaches `c + 1`, the injected
//! minibatch `(c + 1)·Nm` required wave `c − D` from everyone, so
//! every clock is ≥ `c − D`).
//!
//! Exhaustive interleaving exploration over 3 engines is pinned to
//! the unreduced multinomial; the 4-engine scenario is what the
//! sleep-set POR ([`crate::checker::explore_por`]) buys — `Advance`
//! ops commute across engines (they write only their own engine's
//! injection clock) and so do `Push`es, while `Advance` vs `Push`
//! stay dependent (the gate reads what the push writes). The
//! deliberately broken [`check_broken_gate_protocol`] variant — an
//! engine that advances *past* a closed gate — must be refuted under
//! the same reduction, keeping the green run non-vacuous.

use crate::checker::{explore, explore_por, interleaving_count, Explored, ShadowSpec, Violation};
use hetpipe_schedule::WspParams;

/// Most engines the shadow state tracks (arrays stay `Copy`).
pub const MAX_VWS: usize = 4;

/// The shadow state: per-engine injection clocks (highest minibatch
/// injected) and push clocks (waves published).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GateState {
    /// Highest minibatch injected per engine (0 = none yet).
    pub injected: [u64; MAX_VWS],
    /// Waves pushed per engine (0 = none yet).
    pub pushed: [u64; MAX_VWS],
}

/// One engine step.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum GateOp {
    /// Inject the next minibatch if its gate is open (else spin).
    Advance,
    /// Publish the next wave if locally complete (else spin).
    Push,
}

/// The pure shadow of the per-VW engine loop. `skip_gate` is the
/// negative control: the engine advances whether or not the gate is
/// open — the bug the checker must catch.
pub struct ShadowGateProtocol {
    /// WSP parameters (the gate algebra).
    pub wsp: WspParams,
    /// Engines (threads) in the scenario, ≤ [`MAX_VWS`].
    pub vws: usize,
    /// Deliberately broken variant: advance past closed gates.
    pub skip_gate: bool,
}

impl ShadowSpec for ShadowGateProtocol {
    type State = GateState;
    type Op = GateOp;

    fn init(&self) -> GateState {
        assert!(
            self.vws <= MAX_VWS,
            "shadow state holds at most {MAX_VWS} engines"
        );
        GateState {
            injected: [0; MAX_VWS],
            pushed: [0; MAX_VWS],
        }
    }

    fn apply(&self, state: &mut GateState, vw: usize, op: GateOp) {
        match op {
            GateOp::Advance => {
                let p = state.injected[vw] + 1;
                let open = match self.wsp.required_wave(p) {
                    None => true,
                    Some(w) => (0..self.vws).all(|u| state.pushed[u] > w),
                };
                if open || self.skip_gate {
                    state.injected[vw] = p;
                }
            }
            GateOp::Push => {
                let next_wave = state.pushed[vw];
                if state.injected[vw] >= self.wsp.last_of_wave(next_wave) {
                    state.pushed[vw] += 1;
                }
            }
        }
    }

    fn check(&self, state: &GateState) -> Result<(), String> {
        // No stale read: every injected minibatch's required wave has
        // been pushed by every engine.
        for vw in 0..self.vws {
            let p = state.injected[vw];
            if p == 0 {
                continue;
            }
            if let Some(w) = self.wsp.required_wave(p) {
                for u in 0..self.vws {
                    if state.pushed[u] <= w {
                        return Err(format!(
                            "stale read through the gate: VW{vw} injected minibatch {p}, \
                             which requires wave {w} from every worker, but VW{u} has \
                             pushed only {} wave(s)",
                            state.pushed[u]
                        ));
                    }
                }
            }
        }
        // Push clocks within the WSP distance bound.
        let max = (0..self.vws).map(|u| state.pushed[u]).max().unwrap_or(0);
        let min = (0..self.vws).map(|u| state.pushed[u]).min().unwrap_or(0);
        let bound = self.wsp.d as u64 + 1;
        if max - min > bound {
            return Err(format!(
                "push-clock spread {} exceeds D + 1 = {bound} (clocks {:?})",
                max - min,
                &state.pushed[..self.vws]
            ));
        }
        Ok(())
    }

    /// `Advance` writes only its own engine's injection clock and
    /// `Push` only its own push clock, so same-op pairs on different
    /// engines commute in every state. `Advance` *reads* every push
    /// clock (the gate) while `Push` writes one, so cross-kind pairs
    /// are dependent — their order is a genuinely different trace.
    /// This holds for the broken variant too (`skip_gate` changes
    /// which states are reached, not which cells ops touch), so the
    /// negative control is refuted under the same reduction.
    fn independent(&self, a_thread: usize, a: GateOp, b_thread: usize, b: GateOp) -> bool {
        a_thread != b_thread && a == b
    }
}

/// One verified gate scenario: its shape and exploration counts.
#[derive(Debug, Clone)]
pub struct GateReport {
    /// Scenario name.
    pub scenario: &'static str,
    /// Engines in the scenario.
    pub vws: usize,
    /// Total ops across engines.
    pub ops: usize,
    /// The unreduced multinomial (what a full enumeration would
    /// visit).
    pub unreduced: u64,
    /// Interleavings actually explored (equals `unreduced` for the
    /// full-enumeration scenarios; the POR trace count otherwise).
    pub explored: u64,
    /// True when the scenario ran under sleep-set POR.
    pub por: bool,
}

/// The program every engine runs in the standing scenarios: inject,
/// publish, inject, publish — two full `Nm = 1` waves, enough to
/// drive each engine through a closed gate (`required_wave(2) = 0`
/// at `D = 0`) and a second push that unlocks only behind it.
fn two_wave_program() -> Vec<GateOp> {
    vec![GateOp::Advance, GateOp::Push, GateOp::Advance, GateOp::Push]
}

/// The standing scenarios proving the gate protocol safe. The
/// 3-engine scenarios are enumerated in full and pinned to their
/// multinomials (the exhaustiveness check); the 4-engine scenario is
/// what POR scales to — its unreduced multinomial (63,063,000) is
/// reported alongside the explored trace count so the reduction
/// factor stays visible.
pub fn check_gate_protocol() -> Result<Vec<GateReport>, String> {
    let mut reports = Vec::new();

    // 3 engines, full enumeration + POR cross-check.
    let spec3 = ShadowGateProtocol {
        wsp: WspParams::new(1, 0),
        vws: 3,
        skip_gate: false,
    };
    let programs3 = vec![two_wave_program(); 3];
    let lens: Vec<usize> = programs3.iter().map(Vec::len).collect();
    let expected = interleaving_count(&lens);
    let scenario = "3 engines x (advance, push)^2, Nm=1 D=0, full enumeration";
    let Explored { interleavings, .. } =
        explore(&spec3, &programs3).map_err(|v| format!("{scenario}: {v}"))?;
    if interleavings != expected {
        return Err(format!(
            "{scenario}: enumerated {interleavings} interleavings but the multinomial \
             of {lens:?} is {expected} — the exploration was not exhaustive"
        ));
    }
    reports.push(GateReport {
        scenario,
        vws: 3,
        ops: lens.iter().sum(),
        unreduced: expected,
        explored: interleavings,
        por: false,
    });

    let scenario = "3 engines x (advance, push)^2, sleep-set POR";
    let por3 = explore_por(&spec3, &programs3).map_err(|v| format!("{scenario}: {v}"))?;
    if por3.interleavings >= expected {
        return Err(format!(
            "{scenario}: POR explored {} traces, no fewer than the full {expected} — \
             the reduction is not reducing",
            por3.interleavings
        ));
    }
    reports.push(GateReport {
        scenario,
        vws: 3,
        ops: lens.iter().sum(),
        unreduced: expected,
        explored: por3.interleavings,
        por: true,
    });

    // 4 engines: the scale POR buys. 16!/(4!)^4 = 63,063,000
    // interleavings unreduced — out of reach for the full enumeration
    // in CI — checked exhaustively over traces via POR.
    let spec4 = ShadowGateProtocol {
        wsp: WspParams::new(1, 0),
        vws: 4,
        skip_gate: false,
    };
    let programs4 = vec![two_wave_program(); 4];
    let lens4: Vec<usize> = programs4.iter().map(Vec::len).collect();
    let unreduced4 = interleaving_count(&lens4);
    let scenario = "4 engines x (advance, push)^2, sleep-set POR";
    let por4 = explore_por(&spec4, &programs4).map_err(|v| format!("{scenario}: {v}"))?;
    if por4.interleavings >= unreduced4 {
        return Err(format!(
            "{scenario}: POR explored {} traces out of {unreduced4} — not reducing",
            por4.interleavings
        ));
    }
    reports.push(GateReport {
        scenario,
        vws: 4,
        ops: lens4.iter().sum(),
        unreduced: unreduced4,
        explored: por4.interleavings,
        por: true,
    });

    Ok(reports)
}

/// Negative control: the advance-past-gate engine under the same
/// 4-engine POR exploration. Returns the counterexample — callers
/// assert `Some` (a checker that passed this would be vacuous).
pub fn check_broken_gate_protocol() -> Option<Violation<GateOp>> {
    let spec = ShadowGateProtocol {
        wsp: WspParams::new(1, 0),
        vws: 4,
        skip_gate: true,
    };
    explore_por(&spec, &vec![two_wave_program(); 4]).err()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn standing_scenarios_prove_gate_safety() {
        let reports = check_gate_protocol().expect("gate protocol must hold");
        assert_eq!(reports.len(), 3);
        // Full 3-engine enumeration pinned to the multinomial.
        assert_eq!(reports[0].unreduced, 34_650);
        assert_eq!(reports[0].explored, 34_650);
        assert!(!reports[0].por);
        // POR over the same scenario: pinned trace count, same
        // verdict (34,650 → 2,083, a ~16× reduction).
        assert!(reports[1].por);
        assert_eq!(reports[1].explored, 2_083);
        // 4 engines: unreduced multinomial on record, POR-explored
        // trace count pinned (63,063,000 → 763,615, ~82×). A change
        // in either pin means the reduction — or the protocol —
        // changed.
        assert_eq!(reports[2].unreduced, 63_063_000);
        assert!(reports[2].por);
        assert_eq!(reports[2].explored, 763_615);
    }

    #[test]
    fn broken_gate_is_refuted_under_por() {
        let v = check_broken_gate_protocol().expect("advance-past-gate must be caught");
        assert!(
            v.message.contains("stale read") || v.message.contains("spread"),
            "{v}"
        );
        // The counterexample ends in the illegal advance.
        assert!(matches!(v.schedule.last(), Some((_, GateOp::Advance))));
    }

    #[test]
    fn spread_bound_is_judged() {
        // A hand-built state with clocks 2 apart at D = 0 violates the
        // spread half of the invariant even with no stale reads.
        let spec = ShadowGateProtocol {
            wsp: WspParams::new(1, 0),
            vws: 2,
            skip_gate: false,
        };
        let state = GateState {
            injected: [0, 0, 0, 0],
            pushed: [2, 0, 0, 0],
        };
        let err = spec.check(&state).unwrap_err();
        assert!(err.contains("spread"), "{err}");
    }
}
