//! Model-checking the plan-cache seq protocol (`MatchSeq`).
//!
//! Glues [`hetpipe_plansvc::ShadowPlanCache`] — the pure shadow of the
//! `PlanCache` publish / read / insert-if-absent protocol — to the
//! exhaustive-interleaving explorer in [`crate::checker`]. The standing
//! scenarios below are what `verify_all` runs: every interleaving of
//! the listed thread programs is enumerated (the report pins the count
//! to the multinomial so "exhaustive" is itself checked), and the
//! MatchSeq invariant — *a reader never observes a seq older than the
//! latest published one* — is judged at every reachable state.
//!
//! [`check_broken_protocol`] is the negative control: the same
//! machinery over a program containing the deliberately broken
//! blind-insert step must (and does) produce a counterexample, which
//! is what makes a green run on the real protocol evidence rather
//! than vacuity.

use crate::checker::{explore, interleaving_count, Explored, ShadowSpec, Violation};
use hetpipe_plansvc::{CacheOp, ShadowPlanCache};

/// [`ShadowSpec`] adapter for the plan-cache shadow. Ops don't depend
/// on the acting thread — thread identity only matters for scheduling.
pub struct SeqProtocol;

impl ShadowSpec for SeqProtocol {
    type State = ShadowPlanCache;
    type Op = CacheOp;

    fn init(&self) -> ShadowPlanCache {
        ShadowPlanCache::new()
    }

    fn apply(&self, state: &mut ShadowPlanCache, _thread: usize, op: CacheOp) {
        state.apply(op);
    }

    fn check(&self, state: &ShadowPlanCache) -> Result<(), String> {
        state.check()
    }
}

/// One verified scenario: its name, shape, and exploration counts.
#[derive(Debug, Clone)]
pub struct ProtocolReport {
    /// Scenario name.
    pub scenario: &'static str,
    /// Virtual thread count.
    pub threads: usize,
    /// Total ops across threads.
    pub ops: usize,
    /// Interleavings exhaustively enumerated (pinned to the
    /// multinomial of the program lengths).
    pub interleavings: u64,
}

fn run_scenario(
    scenario: &'static str,
    programs: &[Vec<CacheOp>],
) -> Result<ProtocolReport, String> {
    let lens: Vec<usize> = programs.iter().map(Vec::len).collect();
    let expected = interleaving_count(&lens);
    let Explored { interleavings, .. } =
        explore(&SeqProtocol, programs).map_err(|v| format!("{scenario}: {v}"))?;
    if interleavings != expected {
        return Err(format!(
            "{scenario}: enumerated {interleavings} interleavings but the \
             multinomial of {lens:?} is {expected} — the exploration was not exhaustive"
        ));
    }
    Ok(ProtocolReport {
        scenario,
        threads: programs.len(),
        ops: lens.iter().sum(),
        interleavings,
    })
}

/// The standing scenarios proving MatchSeq for the real protocol
/// steps. Returns one report per scenario, or the first
/// counterexample / exhaustiveness failure.
pub fn check_seq_protocol() -> Result<Vec<ProtocolReport>, String> {
    use CacheOp::{InsertIfAbsent, Publish, Read};
    Ok(vec![
        // A replanner racing a query path on one key: 2 threads ×
        // 3 ops, C(6,3) = 20 interleavings.
        run_scenario(
            "replanner vs query, one key (2 threads x 3 ops)",
            &[
                vec![Publish(0), Publish(0), Read(0)],
                vec![InsertIfAbsent(0), Read(0), Publish(0)],
            ],
        )?,
        // A replanner, a reader, and a query miss all on one key:
        // 7!/(3!·2!·2!) = 210 interleavings.
        run_scenario(
            "replanner vs reader vs query miss, one key (3 threads)",
            &[
                vec![Publish(0), Publish(0), Publish(0)],
                vec![Read(0), Read(0)],
                vec![InsertIfAbsent(0), Read(0)],
            ],
        )?,
        // Two keys, cross-key traffic: key independence under racing
        // publishes and inserts; program is 3+3 → 20 interleavings.
        run_scenario(
            "two keys, crossed publish/insert traffic",
            &[
                vec![Publish(0), InsertIfAbsent(1), Read(1)],
                vec![Publish(1), InsertIfAbsent(0), Read(0)],
            ],
        )?,
    ])
}

/// Negative control: the same checker over a program containing the
/// deliberately broken [`CacheOp::BlindInsert`] step. Returns the
/// counterexample the checker finds — callers assert this is `Some`
/// (the checker would be vacuous if it passed a known-broken
/// protocol).
pub fn check_broken_protocol() -> Option<Violation<CacheOp>> {
    use CacheOp::{BlindInsert, Publish, Read};
    // A blind insert racing two publishes: any interleaving where the
    // blind insert lands after a publish clobbers the newer seq.
    explore(
        &SeqProtocol,
        &[vec![Publish(0), Publish(0), Read(0)], vec![BlindInsert(0)]],
    )
    .err()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn standing_scenarios_prove_matchseq() {
        let reports = check_seq_protocol().expect("MatchSeq must hold for the real protocol");
        assert_eq!(reports.len(), 3);
        assert_eq!(reports[0].interleavings, 20);
        assert_eq!(reports[0].threads, 2);
        assert_eq!(reports[0].ops, 6);
        assert_eq!(reports[1].interleavings, 210);
        assert_eq!(reports[1].threads, 3);
        assert_eq!(reports[2].interleavings, 20);
    }

    #[test]
    fn broken_protocol_is_caught() {
        let v = check_broken_protocol().expect("the blind-insert protocol must be flagged");
        assert!(v.message.contains("MatchSeq violated"), "{v}");
        // The counterexample must actually contain the broken step
        // after a publish.
        let pos_blind = v
            .schedule
            .iter()
            .position(|(_, op)| matches!(op, CacheOp::BlindInsert(_)))
            .expect("counterexample ends in the blind insert");
        let publishes_before = v.schedule[..pos_blind]
            .iter()
            .filter(|(_, op)| matches!(op, CacheOp::Publish(_)))
            .count();
        assert!(publishes_before >= 1, "clobber needs a prior publish: {v}");
    }
}
