//! An in-tree, loom-style exhaustive-interleaving model checker.
//!
//! The checker explores a *shadow* protocol: a pure state machine
//! whose ops each model one atomic critical section of the real
//! implementation (see [`hetpipe_core::plankey::shadow`] for why that
//! modeling is faithful for the plan caches — every real op runs
//! under a shard lock). Given one op *program* per virtual thread, the
//! deterministic scheduler enumerates **every** interleaving of the
//! programs by depth-first search over scheduling choices, cloning the
//! state at each branch point and checking the protocol invariant
//! after every step. No threads are spawned and no timing is
//! involved: for `t` threads with `n₁..n_t` ops the search visits
//! exactly the multinomial `(Σnᵢ)! / Πnᵢ!` interleavings — e.g. 20
//! for 2 threads × 3 ops, 210 for 3 threads of 3+2+2 ops — so a green
//! run is a proof over the step semantics, not a sample.
//!
//! This is deliberately smaller than `loom`: it assumes ops are atomic
//! steps (sequential consistency over critical sections — which the
//! shard-lock serialization provides) rather than exploring relaxed
//! memory orders, and it needs no external crates.

use std::fmt::Debug;

/// A shadow protocol the checker can explore: clonable state, atomic
/// ops, and the invariant to check at every reachable state.
pub trait ShadowSpec {
    /// The protocol state. Cloned at every scheduling branch.
    type State: Clone;
    /// One atomic step. `Copy + Debug` so counterexample schedules can
    /// be reported.
    type Op: Copy + Debug;

    /// The initial state.
    fn init(&self) -> Self::State;

    /// Applies one atomic step taken by `thread`.
    fn apply(&self, state: &mut Self::State, thread: usize, op: Self::Op);

    /// The invariant, judged on a reachable state. `Err` is a
    /// violation and aborts the search with a counterexample.
    fn check(&self, state: &Self::State) -> Result<(), String>;

    /// Commutativity oracle for partial-order reduction
    /// ([`explore_por`]). Must return `true` only when the two steps
    /// *commute in every state* — `apply(a); apply(b)` and
    /// `apply(b); apply(a)` reach identical states — and neither
    /// enables or disables the other (trivially satisfied here: list
    /// programs keep every pending op enabled). Claiming independence
    /// for non-commuting ops makes the reduction unsound, so
    /// implementations should prove their oracle by construction
    /// (e.g. ops touching disjoint state cells) and the default
    /// claims nothing: [`explore_por`] then degenerates to the full
    /// enumeration of [`explore`].
    fn independent(&self, _a_thread: usize, _a: Self::Op, _b_thread: usize, _b: Self::Op) -> bool {
        false
    }
}

/// Statistics of a completed (violation-free) exploration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Explored {
    /// Complete interleavings enumerated (leaves of the search tree).
    pub interleavings: u64,
    /// Total steps applied (internal nodes; states visited minus the
    /// root).
    pub steps: u64,
}

/// A counterexample: the exact interleaving prefix that reached a
/// violating state, and the invariant's message there.
#[derive(Debug, Clone)]
pub struct Violation<Op> {
    /// The schedule: `(thread, op)` in execution order.
    pub schedule: Vec<(usize, Op)>,
    /// The invariant's description of what broke.
    pub message: String,
}

impl<Op: Debug> std::fmt::Display for Violation<Op> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(f, "{}", self.message)?;
        write!(f, "  counterexample schedule:")?;
        for (thread, op) in &self.schedule {
            write!(f, " t{thread}:{op:?}")?;
        }
        Ok(())
    }
}

/// Exhaustively explores all interleavings of `programs` (one op list
/// per virtual thread) over `spec`, checking the invariant after
/// every step of every interleaving. Returns the exploration counts,
/// or the first counterexample found.
pub fn explore<S: ShadowSpec>(
    spec: &S,
    programs: &[Vec<S::Op>],
) -> Result<Explored, Violation<S::Op>> {
    let mut stats = Explored {
        interleavings: 0,
        steps: 0,
    };
    let mut pcs = vec![0usize; programs.len()];
    let mut path = Vec::new();
    let init = spec.init();
    spec.check(&init).map_err(|message| Violation {
        schedule: Vec::new(),
        message,
    })?;
    dfs(spec, programs, &mut pcs, &init, &mut path, &mut stats)?;
    Ok(stats)
}

fn dfs<S: ShadowSpec>(
    spec: &S,
    programs: &[Vec<S::Op>],
    pcs: &mut [usize],
    state: &S::State,
    path: &mut Vec<(usize, S::Op)>,
    stats: &mut Explored,
) -> Result<(), Violation<S::Op>> {
    let mut progressed = false;
    for thread in 0..programs.len() {
        if pcs[thread] >= programs[thread].len() {
            continue;
        }
        progressed = true;
        let op = programs[thread][pcs[thread]];
        let mut next = state.clone();
        spec.apply(&mut next, thread, op);
        stats.steps += 1;
        path.push((thread, op));
        pcs[thread] += 1;
        spec.check(&next).map_err(|message| Violation {
            schedule: path.clone(),
            message,
        })?;
        dfs(spec, programs, pcs, &next, path, stats)?;
        pcs[thread] -= 1;
        path.pop();
    }
    if !progressed {
        stats.interleavings += 1;
    }
    Ok(())
}

/// Explores `programs` over `spec` with **sleep-set partial-order
/// reduction**: interleavings that only reorder steps the spec's
/// [`ShadowSpec::independent`] oracle proves commutative are explored
/// once, through a single representative.
///
/// Soundness (why a green POR run is still a proof): a thread `t` is
/// put to sleep for a sibling subtree only when its pending op
/// commutes with the op taken first, so any state reachable through
/// the pruned branch equals a state already visited in the earlier
/// subtree — sleep sets never shrink the set of *visited states*,
/// only the number of paths revisiting them (Godefroid's classic
/// result). The invariant is checked at every applied step, so every
/// reachable state is still judged; what drops is the leaf count —
/// from the full multinomial to the number of Mazurkiewicz traces.
/// With the default (all-dependent) oracle this function enumerates
/// exactly what [`explore`] does.
pub fn explore_por<S: ShadowSpec>(
    spec: &S,
    programs: &[Vec<S::Op>],
) -> Result<Explored, Violation<S::Op>> {
    let mut stats = Explored {
        interleavings: 0,
        steps: 0,
    };
    let mut pcs = vec![0usize; programs.len()];
    let mut path = Vec::new();
    let init = spec.init();
    spec.check(&init).map_err(|message| Violation {
        schedule: Vec::new(),
        message,
    })?;
    dfs_por(spec, programs, &mut pcs, &init, &mut path, &[], &mut stats)?;
    Ok(stats)
}

#[allow(clippy::too_many_arguments)]
fn dfs_por<S: ShadowSpec>(
    spec: &S,
    programs: &[Vec<S::Op>],
    pcs: &mut [usize],
    state: &S::State,
    path: &mut Vec<(usize, S::Op)>,
    sleep: &[usize],
    stats: &mut Explored,
) -> Result<(), Violation<S::Op>> {
    if pcs.iter().zip(programs).all(|(&pc, prog)| pc >= prog.len()) {
        stats.interleavings += 1;
        return Ok(());
    }
    // Threads already explored at this node: their subtrees cover
    // every trace starting with their op, so a later sibling may put
    // them to sleep where the ops commute.
    let mut explored_here: Vec<usize> = Vec::new();
    for thread in 0..programs.len() {
        if pcs[thread] >= programs[thread].len() || sleep.contains(&thread) {
            continue;
        }
        let op = programs[thread][pcs[thread]];
        // The child inherits every sleeping/explored thread whose
        // pending op commutes with the op we are about to take; a
        // dependent op wakes the thread up (its reordering is a
        // genuinely different trace).
        let child_sleep: Vec<usize> = sleep
            .iter()
            .chain(explored_here.iter())
            .copied()
            .filter(|&u| {
                pcs[u] < programs[u].len() && spec.independent(u, programs[u][pcs[u]], thread, op)
            })
            .collect();
        let mut next = state.clone();
        spec.apply(&mut next, thread, op);
        stats.steps += 1;
        path.push((thread, op));
        pcs[thread] += 1;
        spec.check(&next).map_err(|message| Violation {
            schedule: path.clone(),
            message,
        })?;
        dfs_por(spec, programs, pcs, &next, path, &child_sleep, stats)?;
        pcs[thread] -= 1;
        path.pop();
        explored_here.push(thread);
    }
    Ok(())
}

/// The number of interleavings of programs with the given lengths —
/// the multinomial coefficient `(Σnᵢ)! / Πnᵢ!`. What [`explore`]'s
/// `interleavings` count must equal; exposed so callers can assert
/// their exploration really was exhaustive.
pub fn interleaving_count(lens: &[usize]) -> u64 {
    let mut count: u128 = 1;
    let mut total: u128 = 0;
    for &len in lens {
        // Multiply by C(total + len, len), computed incrementally to
        // stay exact in u128.
        for i in 1..=len as u128 {
            total += 1;
            count = count * total / i;
        }
    }
    u64::try_from(count).expect("interleaving count fits u64 for checker-scale programs")
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A toy spec: threads append their id to a log; the invariant
    /// optionally forbids a given prefix (to test counterexamples).
    struct Toy {
        forbidden: Option<Vec<usize>>,
    }

    impl ShadowSpec for Toy {
        type State = Vec<usize>;
        type Op = usize;

        fn init(&self) -> Vec<usize> {
            Vec::new()
        }

        fn apply(&self, state: &mut Vec<usize>, thread: usize, _op: usize) {
            state.push(thread);
        }

        fn check(&self, state: &Vec<usize>) -> Result<(), String> {
            if self.forbidden.as_deref() == Some(state.as_slice()) {
                Err(format!("forbidden prefix reached: {state:?}"))
            } else {
                Ok(())
            }
        }
    }

    #[test]
    fn enumeration_is_exhaustive() {
        let spec = Toy { forbidden: None };
        // 2 threads × 3 ops: C(6,3) = 20 interleavings.
        let stats = explore(&spec, &[vec![0, 0, 0], vec![0, 0, 0]]).unwrap();
        assert_eq!(stats.interleavings, 20);
        assert_eq!(stats.interleavings, interleaving_count(&[3, 3]));
        // 3 threads of 3+2+2 ops: 7!/(3!2!2!) = 210.
        let stats = explore(&spec, &[vec![0; 3], vec![0; 2], vec![0; 2]]).unwrap();
        assert_eq!(stats.interleavings, 210);
        assert_eq!(stats.interleavings, interleaving_count(&[3, 2, 2]));
        // Steps = internal nodes of the interleaving lattice. For
        // 2×1 ops: states (0,0),(1,0),(0,1),(1,1) reached by 1+1+2
        // applications... count it directly: 4 edges.
        let stats = explore(&spec, &[vec![0], vec![0]]).unwrap();
        assert_eq!(stats.interleavings, 2);
        assert_eq!(stats.steps, 4);
    }

    #[test]
    fn violations_carry_the_schedule() {
        // Forbid the exact prefix [1, 0]: only the interleaving that
        // runs thread 1 first then thread 0 reaches it.
        let spec = Toy {
            forbidden: Some(vec![1, 0]),
        };
        let v = explore(&spec, &[vec![7], vec![9]]).unwrap_err();
        assert_eq!(
            v.schedule.iter().map(|(t, _)| *t).collect::<Vec<_>>(),
            vec![1, 0]
        );
        assert!(v.message.contains("forbidden"), "{v}");
        let rendered = v.to_string();
        assert!(rendered.contains("t1:9"), "{rendered}");
    }

    #[test]
    fn multinomial_counts() {
        assert_eq!(interleaving_count(&[]), 1);
        assert_eq!(interleaving_count(&[5]), 1);
        assert_eq!(interleaving_count(&[1, 1]), 2);
        assert_eq!(interleaving_count(&[3, 3]), 20);
        assert_eq!(interleaving_count(&[3, 2, 2]), 210);
        assert_eq!(interleaving_count(&[2, 2, 2]), 90);
    }

    #[test]
    fn empty_programs_are_one_interleaving() {
        let spec = Toy { forbidden: None };
        let stats = explore(&spec, &[vec![], vec![]]).unwrap();
        assert_eq!(stats.interleavings, 1);
        assert_eq!(stats.steps, 0);
    }

    #[test]
    fn por_with_default_oracle_is_the_full_enumeration() {
        // Toy claims no independence, so sleep sets stay empty and
        // explore_por visits exactly what explore does.
        let spec = Toy { forbidden: None };
        for programs in [
            vec![vec![0usize; 3], vec![0; 3]],
            vec![vec![0; 3], vec![0; 2], vec![0; 2]],
        ] {
            let full = explore(&spec, &programs).unwrap();
            let por = explore_por(&spec, &programs).unwrap();
            assert_eq!(por, full);
        }
    }

    /// Threads increment private counters — every pair of ops on
    /// *different* threads commutes, so the oracle can declare full
    /// independence and POR collapses the multinomial to one trace.
    struct Disjoint {
        forbid: Option<Vec<u32>>,
    }

    impl ShadowSpec for Disjoint {
        type State = Vec<u32>;
        type Op = usize;

        fn init(&self) -> Vec<u32> {
            vec![0; 4]
        }

        fn apply(&self, state: &mut Vec<u32>, thread: usize, _op: usize) {
            state[thread] += 1;
        }

        fn check(&self, state: &Vec<u32>) -> Result<(), String> {
            if self.forbid.as_deref() == Some(state.as_slice()) {
                Err(format!("forbidden state reached: {state:?}"))
            } else {
                Ok(())
            }
        }

        fn independent(&self, a_thread: usize, _a: usize, b_thread: usize, _b: usize) -> bool {
            a_thread != b_thread
        }
    }

    #[test]
    fn por_collapses_fully_independent_programs_to_one_trace() {
        let spec = Disjoint { forbid: None };
        let programs = vec![vec![0usize; 2]; 4];
        let full = explore(&spec, &programs).unwrap();
        assert_eq!(full.interleavings, interleaving_count(&[2, 2, 2, 2]));
        assert_eq!(full.interleavings, 2520);
        let por = explore_por(&spec, &programs).unwrap();
        assert_eq!(por.interleavings, 1, "one Mazurkiewicz trace");
        assert!(por.steps < full.steps);
    }

    #[test]
    fn por_still_visits_every_state() {
        // The forbidden state [2, 0, 0, 0] is an *intermediate* state
        // (thread 0 done, others not started). Even with maximal
        // reduction the representative trace passes through it — the
        // violation must still surface.
        let spec = Disjoint {
            forbid: Some(vec![2, 0, 0, 0]),
        };
        let programs = vec![vec![0usize; 2]; 4];
        let v = explore_por(&spec, &programs).unwrap_err();
        assert!(v.message.contains("forbidden"), "{v}");
        assert_eq!(v.schedule.len(), 2);
    }
}
