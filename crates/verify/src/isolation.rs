//! VW-isolation certificates: the footprint pass that proves virtual
//! workers interact *only* through parameter-server push/gate.
//!
//! The fleet-scale engine direction (ROADMAP) wants one DES engine per
//! virtual worker. That decomposition is sound iff no dependency edge
//! carries information between VWs except the WSP push→gate coupling —
//! a claim this pass proves per configuration instead of assuming.
//!
//! Every node of the dependency graph ([`crate::graph::dependency_graph`])
//! gets a declared footprint in the [`hetpipe_des::footprint`]
//! vocabulary from a [`FootprintModel`]; then every edge is judged:
//!
//! 1. **Explained**: the endpoints' footprints must conflict (flow,
//!    output, or anti dependence on some shared resource). An edge the
//!    footprints cannot explain means an event class *under-declares*
//!    what it touches — the exact bug that would let a per-VW engine
//!    reorder two ops the executor serializes.
//! 2. **Isolated**: when the endpoints belong to different VWs, the
//!    edge must be the WSP [`EdgeKind::Wsp`] push→gate coupling and
//!    every shared resource must be owned by the parameter server.
//!    Anything else is a *cross-VW leak* — a dependence the per-VW
//!    engines would not synchronize on.
//!
//! A green run emits an [`IsolationCertificate`] (edge counts by
//! class); a violation names both endpoint ops and the violation
//! class, so broken fixtures read like counterexamples, not booleans.
//! [`verify_script_isolation`] extends the certificate over a fault
//! script's rate edges: they must be environment-owned writes, which
//! is what makes replicating a script into every engine sound.

use crate::graph::{dependency_graph, DepGraphData, DepNode, EdgeKind};
use hetpipe_des::footprint::{Footprint, FootprintResource, Owner};
use hetpipe_schedule::{
    committed_queues, CommittedQueue, PipelineSchedule, RecomputePolicy, WspParams,
};

/// The two ways an edge can refute the decomposition.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum IsolationViolationClass {
    /// A dependence between different VWs that is not the PS
    /// push→gate coupling (or that shares a non-PS-owned resource).
    CrossVwLeak,
    /// An edge the declared footprints cannot explain: some event
    /// class under-declares the state it touches.
    UnderDeclaredFootprint,
}

impl std::fmt::Display for IsolationViolationClass {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            IsolationViolationClass::CrossVwLeak => write!(f, "cross-VW leak"),
            IsolationViolationClass::UnderDeclaredFootprint => {
                write!(f, "under-declared footprint")
            }
        }
    }
}

/// A named counterexample: the offending edge, by op label.
#[derive(Debug, Clone)]
pub struct IsolationViolation {
    /// Which rule the edge broke.
    pub class: IsolationViolationClass,
    /// Source op label.
    pub from: String,
    /// Target op label.
    pub to: String,
    /// What went wrong, in terms of the shared resources.
    pub detail: String,
}

impl std::fmt::Display for IsolationViolation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{}: edge {} → {}: {}",
            self.class, self.from, self.to, self.detail
        )
    }
}

impl std::error::Error for IsolationViolation {}

/// A machine-checked isolation certificate for one configuration:
/// every dependency edge is footprint-explained, and every cross-VW
/// edge is PS push→gate.
#[derive(Debug, Clone)]
pub struct IsolationCertificate {
    /// Ops judged (all virtual workers).
    pub nodes: usize,
    /// Edges judged.
    pub edges: usize,
    /// Edges crossing VWs — all proven to be PS push→gate couplings.
    pub cross_vw_edges: usize,
    /// Virtual workers in the mirrored graph.
    pub vws: usize,
    /// Fault-script rate edges composed into the certificate by
    /// [`verify_script_isolation`] (0 for the fault-free certificate).
    pub fault_edges: usize,
}

/// Assigns declared footprints to dependency-graph nodes for one
/// schedule shape.
#[derive(Debug, Clone, Copy)]
pub struct FootprintModel {
    /// Virtual stages.
    pub k: usize,
    /// `Some(k_gpus)` for composite schedules, whose program order
    /// serializes on physical GPUs (co-located chunks share one
    /// execution unit); `None` for per-stage execution units.
    pub gpus: Option<usize>,
}

impl FootprintModel {
    /// The execution unit hosting `stage` — what program-order edges
    /// serialize on.
    fn unit(&self, stage: usize) -> usize {
        match self.gpus {
            Some(g) => stage % g,
            None => stage,
        }
    }

    fn fwd(&self, vw: usize, stage: usize) -> Footprint {
        let mut reads = vec![FootprintResource::Weights { vw, stage }];
        if stage > 0 {
            reads.push(FootprintResource::Boundary {
                vw,
                stage: stage - 1,
            });
        }
        let mut writes = vec![
            FootprintResource::ExecUnit {
                vw,
                unit: self.unit(stage),
            },
            FootprintResource::Activations { vw, stage },
        ];
        if stage + 1 < self.k {
            writes.push(FootprintResource::Boundary { vw, stage });
        }
        Footprint { reads, writes }
    }

    fn bwd(&self, vw: usize, stage: usize) -> Footprint {
        let mut reads = vec![
            FootprintResource::Activations { vw, stage },
            FootprintResource::Weights { vw, stage },
        ];
        if stage + 1 < self.k {
            reads.push(FootprintResource::Boundary { vw, stage });
        }
        let mut writes = vec![
            FootprintResource::ExecUnit {
                vw,
                unit: self.unit(stage),
            },
            FootprintResource::Activations { vw, stage },
            FootprintResource::Weights { vw, stage },
        ];
        if stage > 0 {
            writes.push(FootprintResource::Boundary {
                vw,
                stage: stage - 1,
            });
        }
        Footprint { reads, writes }
    }

    /// The declared footprint of one dependency-graph node.
    pub fn footprint_of(&self, node: DepNode) -> Footprint {
        match node {
            // Forward: consumes the boundary activations from below,
            // reads the stage weights, fills the stash, produces the
            // boundary output.
            DepNode::Fwd { vw, stage, .. } => self.fwd(vw, stage),
            // Backward: drains the stash, consumes the boundary
            // gradient from above, accumulates into the weights,
            // produces the boundary gradient below.
            DepNode::Bwd { vw, stage, .. } => self.bwd(vw, stage),
            // Fused forward+backward: the union of both roles.
            DepNode::Fused { vw, stage, .. } => {
                let f = self.fwd(vw, stage);
                let b = self.bwd(vw, stage);
                let mut reads = f.reads;
                for r in b.reads {
                    if !reads.contains(&r) {
                        reads.push(r);
                    }
                }
                let mut writes = f.writes;
                for w in b.writes {
                    if !writes.contains(&w) {
                        writes.push(w);
                    }
                }
                Footprint { reads, writes }
            }
            // Recompute: re-runs the stage forward off the (stashed)
            // boundary input to rebuild the activation stash.
            DepNode::Rec { vw, stage, .. } => {
                let mut reads = vec![FootprintResource::Weights { vw, stage }];
                if stage > 0 {
                    reads.push(FootprintResource::Boundary {
                        vw,
                        stage: stage - 1,
                    });
                }
                Footprint {
                    reads,
                    writes: vec![
                        FootprintResource::ExecUnit {
                            vw,
                            unit: self.unit(stage),
                        },
                        FootprintResource::Activations { vw, stage },
                    ],
                }
            }
            // Push: publishes the wave's aggregated update — built
            // from every stage's accumulated gradients — to the PS
            // wave cell. Runs on the stage-0 unit's timeline.
            DepNode::Push { vw, wave } => Footprint {
                reads: (0..self.k)
                    .map(|stage| FootprintResource::Weights { vw, stage })
                    .collect(),
                writes: vec![
                    FootprintResource::PsWave { wave },
                    FootprintResource::ExecUnit {
                        vw,
                        unit: self.unit(0),
                    },
                ],
            },
            // Gate: blocks on the PS wave cell, then refreshes every
            // stage's weights with the pulled global version.
            DepNode::Gate { vw, wave } => Footprint {
                reads: vec![FootprintResource::PsWave { wave }],
                writes: (0..self.k)
                    .map(|stage| FootprintResource::Weights { vw, stage })
                    .chain(std::iter::once(FootprintResource::ExecUnit {
                        vw,
                        unit: self.unit(0),
                    }))
                    .collect(),
            },
        }
    }
}

/// Judges every edge of `graph` against footprints from `footprint_of`
/// — the raw layer under [`verify_isolation`], parameterized over the
/// footprint assignment so tests can feed it deliberately
/// under-declared models and watch the missing dependence get named.
pub fn verify_isolation_with(
    graph: &DepGraphData,
    footprint_of: impl Fn(DepNode) -> Footprint,
) -> Result<IsolationCertificate, IsolationViolation> {
    let vws = graph
        .nodes
        .iter()
        .map(|n| n.vw() + 1)
        .max()
        .unwrap_or(0)
        .max(1);
    let footprints: Vec<Footprint> = graph.nodes.iter().map(|&n| footprint_of(n)).collect();
    let mut cross = 0usize;
    for edge in &graph.edges {
        let (from, to) = (graph.nodes[edge.from], graph.nodes[edge.to]);
        let shared = footprints[edge.from].conflicts_with(&footprints[edge.to]);
        if shared.is_empty() {
            return Err(IsolationViolation {
                class: IsolationViolationClass::UnderDeclaredFootprint,
                from: graph.labels[edge.from].clone(),
                to: graph.labels[edge.to].clone(),
                detail: format!(
                    "the committed structure orders these ops ({:?} edge) but their \
                     declared footprints share no resource — some event class \
                     under-declares what it touches",
                    edge.kind
                ),
            });
        }
        if from.vw() != to.vw() {
            cross += 1;
            let shape_ok = edge.kind == EdgeKind::Wsp
                && matches!(from, DepNode::Push { .. })
                && matches!(to, DepNode::Gate { .. });
            let ps_only = shared.iter().all(|r| r.owner() == Owner::ParameterServer);
            if !shape_ok || !ps_only {
                let named: Vec<String> = shared.iter().map(|r| r.to_string()).collect();
                return Err(IsolationViolation {
                    class: IsolationViolationClass::CrossVwLeak,
                    from: graph.labels[edge.from].clone(),
                    to: graph.labels[edge.to].clone(),
                    detail: format!(
                        "a {:?} dependence crosses VW{} → VW{} outside the PS push→gate \
                         coupling (shared: {})",
                        edge.kind,
                        from.vw(),
                        to.vw(),
                        named.join(", ")
                    ),
                });
            }
        }
    }
    Ok(IsolationCertificate {
        nodes: graph.nodes.len(),
        edges: graph.edges.len(),
        cross_vw_edges: cross,
        vws,
        fault_edges: 0,
    })
}

/// Judges every edge of `graph` against the standard [`FootprintModel`].
pub fn verify_isolation(
    graph: &DepGraphData,
    model: FootprintModel,
) -> Result<IsolationCertificate, IsolationViolation> {
    verify_isolation_with(graph, |n| model.footprint_of(n))
}

/// End-to-end VW-isolation certificate for one configuration: extracts
/// `sched`'s committed queues, mirrors them across `vws` WSP-coupled
/// virtual workers, builds the dependency graph, and proves every edge
/// footprint-explained with cross-VW traffic confined to PS push→gate.
pub fn verify_vw_isolation(
    sched: &dyn PipelineSchedule,
    k_gpus: usize,
    wsp: WspParams,
    recompute: RecomputePolicy,
    max_mb: u64,
    vws: usize,
) -> Result<IsolationCertificate, IsolationViolation> {
    let k = sched.virtual_stages(k_gpus);
    let queues = committed_queues(sched, k_gpus, wsp, recompute, max_mb);
    let queue_sets: Vec<Vec<CommittedQueue>> = vec![queues; vws.max(1)];
    let graph = dependency_graph(&queue_sets, k, wsp);
    let model = FootprintModel {
        k,
        gpus: sched
            .gpu_streams_with(k_gpus, wsp, recompute)
            .is_some()
            .then_some(k_gpus),
    };
    verify_isolation(&graph, model)
}

/// Composes a fault script's rate-edge footprints into `cert`: every
/// edge must be a write to an environment-owned rate register (and
/// read nothing), which proves the script is disjoint from all VW and
/// PS state — replicating it into every per-VW engine leaves the
/// dependency DAG untouched. Returns the certificate with
/// `fault_edges` counted.
pub fn verify_script_isolation(
    cert: IsolationCertificate,
    script_name: &str,
    edge_footprints: &[Footprint],
) -> Result<IsolationCertificate, IsolationViolation> {
    for (i, fp) in edge_footprints.iter().enumerate() {
        let offending = fp
            .touches()
            .find(|r| r.owner() != Owner::External)
            .map(|r| r.to_string());
        let reads = !fp.reads.is_empty();
        if offending.is_some() || reads {
            return Err(IsolationViolation {
                class: IsolationViolationClass::CrossVwLeak,
                from: format!("fault script '{script_name}' edge {i}"),
                to: "VW/PS state".into(),
                detail: match offending {
                    Some(r) => format!("a rate edge touches non-environment state ({r})"),
                    None => "a rate edge declares reads — rate edges must be \
                             write-only retunes"
                        .into(),
                },
            });
        }
    }
    Ok(IsolationCertificate {
        fault_edges: cert.fault_edges + edge_footprints.len(),
        ..cert
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::DepEdge;
    use hetpipe_schedule::Schedule;

    fn graph_for(sched: &dyn PipelineSchedule, vws: usize) -> (DepGraphData, FootprintModel) {
        let k_gpus = 4;
        let wsp = WspParams::new(4, 0);
        let recompute = RecomputePolicy::None;
        let k = sched.virtual_stages(k_gpus);
        let queues = committed_queues(sched, k_gpus, wsp, recompute, 24);
        let sets: Vec<Vec<CommittedQueue>> = vec![queues; vws];
        let model = FootprintModel {
            k,
            gpus: sched
                .gpu_streams_with(k_gpus, wsp, recompute)
                .is_some()
                .then_some(k_gpus),
        };
        (dependency_graph(&sets, k, wsp), model)
    }

    #[test]
    fn every_schedule_is_isolated() {
        for sched in Schedule::ALL {
            for recompute in RecomputePolicy::ALL {
                let cert = verify_vw_isolation(&sched, 4, WspParams::new(4, 1), recompute, 24, 3)
                    .unwrap_or_else(|v| panic!("{}: {v}", sched.name()));
                assert!(cert.nodes > 0);
                assert!(cert.edges > 0);
                assert_eq!(cert.vws, 3);
                assert!(
                    cert.cross_vw_edges > 0,
                    "{}: WSP coupling must appear",
                    sched.name()
                );
                assert_eq!(cert.fault_edges, 0);
            }
        }
    }

    #[test]
    fn cross_vw_edges_scale_with_worker_count() {
        // Each gate has one push edge per *other* VW (its own push is
        // same-VW): cross edges = gates × (vws − 1).
        let (g2, m) = graph_for(&hetpipe_schedule::OneFOneB, 2);
        let (g3, _) = graph_for(&hetpipe_schedule::OneFOneB, 3);
        let c2 = verify_isolation(&g2, m).unwrap();
        let c3 = verify_isolation(&g3, m).unwrap();
        let gates2 = g2
            .nodes
            .iter()
            .filter(|n| matches!(n, DepNode::Gate { .. }))
            .count();
        let gates3 = g3
            .nodes
            .iter()
            .filter(|n| matches!(n, DepNode::Gate { .. }))
            .count();
        assert_eq!(c2.cross_vw_edges, gates2);
        assert_eq!(c3.cross_vw_edges, gates3 * 2);
    }

    #[test]
    fn smuggled_cross_vw_data_edge_is_named() {
        let (mut graph, model) = graph_for(&hetpipe_schedule::OneFOneB, 2);
        // Smuggle a direct dependence from vw0's forward to vw1's
        // backward of the same (stage, mb) — the kind of edge a buggy
        // shared-buffer optimization would introduce.
        let from = graph
            .nodes
            .iter()
            .position(|n| {
                matches!(
                    n,
                    DepNode::Fwd {
                        vw: 0,
                        stage: 1,
                        mb: 3
                    }
                )
            })
            .unwrap();
        let to = graph
            .nodes
            .iter()
            .position(|n| {
                matches!(
                    n,
                    DepNode::Bwd {
                        vw: 1,
                        stage: 1,
                        mb: 3
                    }
                )
            })
            .unwrap();
        graph.edges.push(DepEdge {
            from,
            to,
            kind: EdgeKind::Data,
        });
        // With honest footprints the endpoints share nothing (VW-keyed
        // resources differ), so the edge is unexplained…
        let err = verify_isolation(&graph, model).unwrap_err();
        assert_eq!(err.class, IsolationViolationClass::UnderDeclaredFootprint);
        // …and if a footprint model *did* declare the shared buffer
        // (vw0's activations readable by vw1), the leak is caught by
        // the cross-VW rule and named.
        let err = verify_isolation_with(&graph, |n| {
            let mut fp = model.footprint_of(n);
            if matches!(
                n,
                DepNode::Bwd {
                    vw: 1,
                    stage: 1,
                    mb: 3
                }
            ) {
                fp.reads
                    .push(FootprintResource::Activations { vw: 0, stage: 1 });
            }
            fp
        })
        .unwrap_err();
        assert_eq!(err.class, IsolationViolationClass::CrossVwLeak);
        assert!(err.from.contains("vw0 s1 fwd mb3"), "{err}");
        assert!(err.to.contains("vw1 s1 bwd mb3"), "{err}");
        assert!(err.detail.contains("vw0 activations s1"), "{err}");
    }

    #[test]
    fn under_declared_footprint_is_named() {
        let (graph, model) = graph_for(&hetpipe_schedule::OneFOneB, 1);
        // Forget that forwards produce their boundary output: the
        // Fwd(s−1) → Fwd(s) data edge loses its explanation.
        let err = verify_isolation_with(&graph, |n| {
            let mut fp = model.footprint_of(n);
            if matches!(n, DepNode::Fwd { .. }) {
                fp.writes
                    .retain(|r| !matches!(r, FootprintResource::Boundary { .. }));
                fp.reads
                    .retain(|r| !matches!(r, FootprintResource::Boundary { .. }));
            }
            fp
        })
        .unwrap_err();
        assert_eq!(err.class, IsolationViolationClass::UnderDeclaredFootprint);
        assert!(err.detail.contains("under-declares"), "{err}");
        assert!(err.from.contains("fwd"), "{err}");
    }

    #[test]
    fn script_isolation_composes_and_refutes() {
        let (graph, model) = graph_for(&hetpipe_schedule::OneFOneB, 2);
        let cert = verify_isolation(&graph, model).unwrap();
        // Honest rate edges compose.
        let rate = Footprint {
            reads: vec![],
            writes: vec![FootprintResource::Rate {
                kind: hetpipe_des::footprint::RateKind::Gpu,
                index: 1,
            }],
        };
        let cert = verify_script_isolation(cert, "straggler", &[rate.clone(), rate]).unwrap();
        assert_eq!(cert.fault_edges, 2);
        // A "fault" that writes a VW's weights is refuted by name.
        let evil = Footprint {
            reads: vec![],
            writes: vec![FootprintResource::Weights { vw: 0, stage: 0 }],
        };
        let err = verify_script_isolation(cert, "evil", &[evil]).unwrap_err();
        assert_eq!(err.class, IsolationViolationClass::CrossVwLeak);
        assert!(err.detail.contains("vw0 weights s0"), "{err}");
    }
}
