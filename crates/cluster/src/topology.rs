//! Device identities and cluster topology queries.
//!
//! A cluster is a list of nodes; a node hosts a list of GPUs. Devices are
//! addressed by a flat [`DeviceId`] that is stable across the whole
//! cluster, plus a [`NodeId`] for placement-sensitive logic (parameter
//! placement, PCIe-vs-InfiniBand path resolution).

use std::fmt;

/// Identifier of a node (machine) within a cluster.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct NodeId(pub usize);

/// Cluster-wide flat identifier of a single GPU.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct DeviceId(pub usize);

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "node{}", self.0)
    }
}

impl fmt::Display for DeviceId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "gpu{}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ids_order_and_display() {
        assert!(DeviceId(0) < DeviceId(1));
        assert!(NodeId(2) > NodeId(1));
        assert_eq!(DeviceId(3).to_string(), "gpu3");
        assert_eq!(NodeId(0).to_string(), "node0");
    }
}
