//! Transfer-time models for intra- and inter-node communication.
//!
//! Section 7 of the paper describes the communication model used by the
//! partitioning algorithm:
//!
//! - **Intra-node** (GPU-to-GPU over PCIe 3.0 x16): predicted from the
//!   15.75 GB/s peak *multiplied by a scaling-down constant* (as in
//!   Paleo), derived by the authors from a synthetic transfer benchmark.
//! - **Inter-node** (56 Gbps InfiniBand): a *linear regression* of
//!   transfer time on data size, i.e. a latency term plus an
//!   inverse-effective-bandwidth slope.
//!
//! The constants below are fitted so that the end-to-end harnesses
//! reproduce the paper's measured throughputs (see EXPERIMENTS.md).

use crate::node::Cluster;
use crate::topology::DeviceId;

/// PCIe 3.0 x16 peak bandwidth in bytes/second (15.75 GB/s, Section 8.1).
pub const PCIE_PEAK_BYTES_PER_SEC: f64 = 15.75e9;

/// Paleo-style scaling-down constant applied to the PCIe peak.
///
/// The paper derives this constant empirically from synthetic GPU-to-GPU
/// transfers. Pipeline point-to-point copies use pinned-memory DMA and
/// sustain a large fraction of the peak; the (much lower) efficiency of
/// Horovod's host-staged all-reduce is modelled separately by
/// `ALLREDUCE_EFFICIENCY` in the allreduce crate. Fitted jointly with
/// the compute calibration.
pub const PCIE_SCALING_CONSTANT: f64 = 0.70;

/// Per-transfer fixed setup latency on PCIe, seconds.
pub const PCIE_LATENCY_SECS: f64 = 15e-6;

/// InfiniBand line rate in bytes/second (56 Gbps FDR, Section 8.1).
pub const IB_PEAK_BYTES_PER_SEC: f64 = 7.0e9;

/// Slope efficiency of the InfiniBand linear-regression model.
///
/// The paper fits transfer time = a + size / b on 27 samples collected
/// from arbitrary partitions of the two evaluation models; this is the
/// effective fraction of line rate appearing in the fitted slope `b`.
pub const IB_SLOPE_EFFICIENCY: f64 = 0.70;

/// Intercept of the InfiniBand linear-regression model, seconds.
pub const IB_LATENCY_SECS: f64 = 80e-6;

/// The physical medium a transfer crosses.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum LinkKind {
    /// Same-node GPU-to-GPU over the PCIe fabric.
    Pcie,
    /// Cross-node over InfiniBand.
    Infiniband,
    /// Same-device "transfer" (no data movement).
    Loopback,
}

impl LinkKind {
    /// Effective bandwidth of this link kind in bytes/second.
    ///
    /// Loopback is treated as infinitely fast (returns `f64::INFINITY`).
    pub fn effective_bandwidth(self) -> f64 {
        match self {
            LinkKind::Pcie => PCIE_PEAK_BYTES_PER_SEC * PCIE_SCALING_CONSTANT,
            LinkKind::Infiniband => IB_PEAK_BYTES_PER_SEC * IB_SLOPE_EFFICIENCY,
            LinkKind::Loopback => f64::INFINITY,
        }
    }

    /// Fixed per-transfer latency of this link kind in seconds.
    pub fn latency(self) -> f64 {
        match self {
            LinkKind::Pcie => PCIE_LATENCY_SECS,
            LinkKind::Infiniband => IB_LATENCY_SECS,
            LinkKind::Loopback => 0.0,
        }
    }

    /// Time to move `bytes` across this link, in seconds.
    ///
    /// # Examples
    ///
    /// ```
    /// use hetpipe_cluster::LinkKind;
    /// let t = LinkKind::Infiniband.transfer_secs(1 << 20);
    /// assert!(t > 0.0 && t < 1.0);
    /// assert_eq!(LinkKind::Loopback.transfer_secs(1 << 30), 0.0);
    /// ```
    pub fn transfer_secs(self, bytes: u64) -> f64 {
        if matches!(self, LinkKind::Loopback) {
            return 0.0;
        }
        self.latency() + bytes as f64 / self.effective_bandwidth()
    }
}

/// A resolved communication path between two devices.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TransferPath {
    /// Source device.
    pub src: DeviceId,
    /// Destination device.
    pub dst: DeviceId,
    /// Medium the path crosses.
    pub link: LinkKind,
}

/// Cluster-level transfer-time oracle.
///
/// Wraps a [`Cluster`] and answers "how long does it take to move `b`
/// bytes from GPU `a` to GPU `b`" questions, resolving intra- vs
/// inter-node paths.
#[derive(Debug, Clone)]
pub struct NetworkModel {
    cluster: Cluster,
}

impl NetworkModel {
    /// Creates the transfer oracle for `cluster`.
    pub fn new(cluster: Cluster) -> Self {
        NetworkModel { cluster }
    }

    /// The wrapped cluster.
    pub fn cluster(&self) -> &Cluster {
        &self.cluster
    }

    /// Resolves the path between two devices.
    pub fn path(&self, src: DeviceId, dst: DeviceId) -> TransferPath {
        let link = if src == dst {
            LinkKind::Loopback
        } else if self.cluster.same_node(src, dst) {
            LinkKind::Pcie
        } else {
            LinkKind::Infiniband
        };
        TransferPath { src, dst, link }
    }

    /// Time in seconds to move `bytes` from `src` to `dst`.
    pub fn transfer_secs(&self, src: DeviceId, dst: DeviceId, bytes: u64) -> f64 {
        self.path(src, dst).link.transfer_secs(bytes)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::node::Cluster;

    #[test]
    fn link_speeds_ordering() {
        // Effective PCIe (5.5 GB/s) beats effective InfiniBand (4.9 GB/s),
        // which motivates the NP policy's low intra-VW overhead (§8.1).
        assert!(LinkKind::Pcie.effective_bandwidth() > LinkKind::Infiniband.effective_bandwidth());
    }

    #[test]
    fn transfer_time_linear_in_size() {
        let t1 = LinkKind::Infiniband.transfer_secs(1_000_000);
        let t2 = LinkKind::Infiniband.transfer_secs(2_000_000);
        let slope1 = t1 - IB_LATENCY_SECS;
        let slope2 = t2 - IB_LATENCY_SECS;
        assert!((slope2 / slope1 - 2.0).abs() < 1e-9);
    }

    #[test]
    fn zero_bytes_costs_only_latency() {
        assert_eq!(LinkKind::Pcie.transfer_secs(0), PCIE_LATENCY_SECS);
        assert_eq!(LinkKind::Infiniband.transfer_secs(0), IB_LATENCY_SECS);
        assert_eq!(LinkKind::Loopback.transfer_secs(0), 0.0);
    }

    #[test]
    fn path_resolution() {
        let net = NetworkModel::new(Cluster::paper_testbed());
        assert_eq!(net.path(DeviceId(0), DeviceId(0)).link, LinkKind::Loopback);
        assert_eq!(net.path(DeviceId(0), DeviceId(1)).link, LinkKind::Pcie);
        assert_eq!(
            net.path(DeviceId(0), DeviceId(4)).link,
            LinkKind::Infiniband
        );
    }

    #[test]
    fn cross_node_slower_than_intra_node() {
        let net = NetworkModel::new(Cluster::paper_testbed());
        let bytes = 100 << 20;
        let intra = net.transfer_secs(DeviceId(0), DeviceId(1), bytes);
        let inter = net.transfer_secs(DeviceId(0), DeviceId(4), bytes);
        assert!(inter > intra);
    }
}
