//! GPU specifications and the calibrated compute-capability model.
//!
//! Table 1 of the paper lists the four GPU models of the testbed. The
//! throughput experiments of the paper depend on the *relative training
//! speed* of these GPUs, which does not follow raw FLOPs (the TITAN V
//! beats the TITAN RTX on DNN training thanks to HBM2 bandwidth despite a
//! lower boost clock). We therefore carry, next to the physical data
//! sheet, an `effective_throughput` factor fitted to the paper's own
//! measured `Nm = 1` pipeline throughputs in Figure 3.

use std::fmt;

/// GPU micro-architecture generation, as listed in Table 1 of the paper.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Architecture {
    /// NVIDIA Volta (TITAN V).
    Volta,
    /// NVIDIA Turing (TITAN RTX, GeForce RTX 2060).
    Turing,
    /// NVIDIA Pascal (Quadro P4000).
    Pascal,
    /// Any architecture not in the paper's testbed.
    Other,
}

/// The four GPU models of the paper's testbed (Table 1).
///
/// The single-letter codes used throughout the paper's evaluation section
/// (`V`, `R`, `G`, `Q`) are exposed via [`GpuKind::code`], and allocation
/// strings such as `"VVQQ"` can be parsed with [`GpuKind::parse_config`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum GpuKind {
    /// TITAN V: Volta, 5120 CUDA cores, 12 GB HBM2 @ 653 GB/s.
    TitanV,
    /// TITAN RTX: Turing, 4608 CUDA cores, 24 GB GDDR6 @ 672 GB/s.
    TitanRtx,
    /// GeForce RTX 2060: Turing, 1920 CUDA cores, 6 GB GDDR6 @ 336 GB/s.
    Rtx2060,
    /// Quadro P4000: Pascal, 1792 CUDA cores, 8 GB GDDR5 @ 243 GB/s.
    QuadroP4000,
}

impl GpuKind {
    /// All four testbed GPU kinds, fastest first.
    pub const ALL: [GpuKind; 4] = [
        GpuKind::TitanV,
        GpuKind::TitanRtx,
        GpuKind::Rtx2060,
        GpuKind::QuadroP4000,
    ];

    /// The single-letter code the paper uses for this GPU (`V`/`R`/`G`/`Q`).
    pub fn code(self) -> char {
        match self {
            GpuKind::TitanV => 'V',
            GpuKind::TitanRtx => 'R',
            GpuKind::Rtx2060 => 'G',
            GpuKind::QuadroP4000 => 'Q',
        }
    }

    /// Parses a paper-style single-letter code.
    ///
    /// Returns `None` for characters other than `V`, `R`, `G`, `Q`
    /// (case-insensitive).
    pub fn from_code(c: char) -> Option<GpuKind> {
        match c.to_ascii_uppercase() {
            'V' => Some(GpuKind::TitanV),
            'R' => Some(GpuKind::TitanRtx),
            'G' => Some(GpuKind::Rtx2060),
            'Q' => Some(GpuKind::QuadroP4000),
            _ => None,
        }
    }

    /// Parses a paper-style configuration string such as `"VVQQ"` or
    /// `"RRGG"` into a GPU list.
    ///
    /// # Examples
    ///
    /// ```
    /// use hetpipe_cluster::GpuKind;
    /// let vw = GpuKind::parse_config("VVQQ").unwrap();
    /// assert_eq!(vw.len(), 4);
    /// assert_eq!(vw[0], GpuKind::TitanV);
    /// assert_eq!(vw[3], GpuKind::QuadroP4000);
    /// ```
    pub fn parse_config(s: &str) -> Option<Vec<GpuKind>> {
        s.chars().map(GpuKind::from_code).collect()
    }

    /// The Table-1 data sheet plus the calibrated throughput factor.
    pub fn spec(self) -> GpuSpec {
        match self {
            GpuKind::TitanV => GpuSpec {
                name: "TITAN V",
                architecture: Architecture::Volta,
                cuda_cores: 5120,
                boost_clock_mhz: 1455,
                memory_bytes: 12 * GIB,
                memory_bw_bytes_per_sec: 653.0 * 1e9,
                effective_throughput: 1.00,
            },
            GpuKind::TitanRtx => GpuSpec {
                name: "TITAN RTX",
                architecture: Architecture::Turing,
                cuda_cores: 4608,
                boost_clock_mhz: 1770,
                memory_bytes: 24 * GIB,
                memory_bw_bytes_per_sec: 672.0 * 1e9,
                effective_throughput: 0.90,
            },
            GpuKind::Rtx2060 => GpuSpec {
                name: "GeForce RTX 2060",
                architecture: Architecture::Turing,
                cuda_cores: 1920,
                boost_clock_mhz: 1680,
                memory_bytes: 6 * GIB,
                memory_bw_bytes_per_sec: 336.0 * 1e9,
                effective_throughput: 0.58,
            },
            GpuKind::QuadroP4000 => GpuSpec {
                name: "Quadro P4000",
                architecture: Architecture::Pascal,
                cuda_cores: 1792,
                boost_clock_mhz: 1480,
                memory_bytes: 8 * GIB,
                memory_bw_bytes_per_sec: 243.0 * 1e9,
                effective_throughput: 0.44,
            },
        }
    }
}

impl fmt::Display for GpuKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.spec().name)
    }
}

/// One gibibyte, in bytes.
pub const GIB: u64 = 1024 * 1024 * 1024;

/// Reference sustained training compute rate of the TITAN V, in FLOP/s.
///
/// All per-layer compute times are expressed relative to the TITAN V
/// through [`GpuSpec::effective_throughput`]. The absolute value is fitted
/// so that a four-stage TITAN V pipeline at `Nm = 1` reproduces the
/// paper's Figure 3 absolute throughputs (96 images/s for ResNet-152 and
/// 119 images/s for VGG-19 at minibatch size 32). Sustained training
/// throughput of roughly 25–30% of the 14.9 TFLOP/s FP32 peak is
/// consistent with published convnet benchmarks for this part.
pub const TITAN_V_SUSTAINED_FLOPS: f64 = 4.30e12;

/// Fraction of peak memory bandwidth sustained by element-wise kernels.
///
/// Memory-bound layers (batch-norm, ReLU, pooling, element-wise adds) are
/// modelled as streaming their activation bytes at this fraction of the
/// data-sheet bandwidth.
pub const MEMORY_BW_EFFICIENCY: f64 = 0.75;

/// Fixed per-layer kernel-launch plus framework overhead, in seconds.
///
/// Deep models with many small layers (ResNet-152 has hundreds of
/// conv/BN/ReLU kernels) pay a per-kernel cost that dominates the gap
/// between the FLOPs ratio and the measured throughput ratio of
/// ResNet-152 vs VGG-19 in the paper; 55 microseconds per launched kernel
/// reproduces that gap.
pub const PER_LAYER_OVERHEAD_SECS: f64 = 55e-6;

/// A GPU data sheet (Table 1 of the paper) plus the calibrated
/// effective-throughput factor used by the compute-time model.
#[derive(Debug, Clone, PartialEq)]
pub struct GpuSpec {
    /// Marketing name, e.g. `"TITAN V"`.
    pub name: &'static str,
    /// Micro-architecture generation.
    pub architecture: Architecture,
    /// Number of CUDA cores.
    pub cuda_cores: u32,
    /// Boost clock in MHz.
    pub boost_clock_mhz: u32,
    /// On-board memory capacity in bytes.
    pub memory_bytes: u64,
    /// Peak memory bandwidth in bytes per second.
    pub memory_bw_bytes_per_sec: f64,
    /// Training throughput relative to the TITAN V (= 1.0), fitted to the
    /// paper's measured Figure-3 pipeline throughputs.
    pub effective_throughput: f64,
}

impl GpuSpec {
    /// Sustained training compute rate of this GPU in FLOP/s.
    pub fn sustained_flops(&self) -> f64 {
        TITAN_V_SUSTAINED_FLOPS * self.effective_throughput
    }

    /// Effective streaming bandwidth for memory-bound kernels in B/s.
    pub fn effective_memory_bw(&self) -> f64 {
        self.memory_bw_bytes_per_sec * MEMORY_BW_EFFICIENCY
    }

    /// Time to execute `flops` floating-point operations that also touch
    /// `bytes` of memory, in seconds.
    ///
    /// The kernel is modelled with the roofline rule — the slower of the
    /// compute rate and the streaming rate decides — plus the fixed
    /// per-kernel overhead of [`PER_LAYER_OVERHEAD_SECS`].
    pub fn kernel_time_secs(&self, flops: f64, bytes: f64) -> f64 {
        debug_assert!(flops >= 0.0 && bytes >= 0.0);
        let compute = flops / self.sustained_flops();
        let memory = bytes / self.effective_memory_bw();
        compute.max(memory) + PER_LAYER_OVERHEAD_SECS
    }

    /// Raw FP32 peak in FLOP/s (2 ops per core per cycle), for reference.
    pub fn peak_flops(&self) -> f64 {
        2.0 * self.cuda_cores as f64 * self.boost_clock_mhz as f64 * 1e6
    }

    /// A copy of this spec derated by an observed slowdown
    /// `factor ≥ 1`: sustained compute and streaming bandwidth scale
    /// down by the factor, memory *capacity* is unchanged (a throttled
    /// GPU computes slower but holds just as much). This is how the
    /// runtime feeds observed straggler severities back into the
    /// partitioner — the planner sees the GPU at the speed it is
    /// actually delivering.
    ///
    /// # Panics
    ///
    /// Panics if `factor` is not positive and finite.
    pub fn derated(&self, factor: f64) -> GpuSpec {
        assert!(
            factor > 0.0 && factor.is_finite(),
            "derate factor must be positive and finite"
        );
        GpuSpec {
            effective_throughput: self.effective_throughput / factor,
            memory_bw_bytes_per_sec: self.memory_bw_bytes_per_sec / factor,
            ..self.clone()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_specs_match_paper() {
        let v = GpuKind::TitanV.spec();
        assert_eq!(v.cuda_cores, 5120);
        assert_eq!(v.boost_clock_mhz, 1455);
        assert_eq!(v.memory_bytes, 12 * GIB);
        let r = GpuKind::TitanRtx.spec();
        assert_eq!(r.cuda_cores, 4608);
        assert_eq!(r.memory_bytes, 24 * GIB);
        let g = GpuKind::Rtx2060.spec();
        assert_eq!(g.cuda_cores, 1920);
        assert_eq!(g.memory_bytes, 6 * GIB);
        let q = GpuKind::QuadroP4000.spec();
        assert_eq!(q.cuda_cores, 1792);
        assert_eq!(q.memory_bytes, 8 * GIB);
    }

    #[test]
    fn effective_ordering_matches_measured_not_peak() {
        // Raw peak FLOPs say TITAN RTX > TITAN V, but the paper measures
        // the TITAN V as the fastest trainer; the calibrated factors must
        // reflect the measured ordering V > R > G > Q.
        let peak_v = GpuKind::TitanV.spec().peak_flops();
        let peak_r = GpuKind::TitanRtx.spec().peak_flops();
        assert!(peak_r > peak_v, "sanity: RTX peak exceeds V peak");

        let eff: Vec<f64> = GpuKind::ALL
            .iter()
            .map(|k| k.spec().effective_throughput)
            .collect();
        for w in eff.windows(2) {
            assert!(w[0] > w[1], "effective throughput must be decreasing");
        }
    }

    #[test]
    fn memory_ordering_matches_paper_hd_policy() {
        // Section 8.1: memory ordering R > V > Q > G motivates the HD
        // policy pairing (VVQQ / RRGG).
        let m = |k: GpuKind| k.spec().memory_bytes;
        assert!(m(GpuKind::TitanRtx) > m(GpuKind::TitanV));
        assert!(m(GpuKind::TitanV) > m(GpuKind::QuadroP4000));
        assert!(m(GpuKind::QuadroP4000) > m(GpuKind::Rtx2060));
    }

    #[test]
    fn codes_roundtrip() {
        for kind in GpuKind::ALL {
            assert_eq!(GpuKind::from_code(kind.code()), Some(kind));
            assert_eq!(
                GpuKind::from_code(kind.code().to_ascii_lowercase()),
                Some(kind)
            );
        }
        assert_eq!(GpuKind::from_code('X'), None);
    }

    #[test]
    fn parse_config_strings() {
        let hd = GpuKind::parse_config("VVQQ").unwrap();
        assert_eq!(
            hd,
            vec![
                GpuKind::TitanV,
                GpuKind::TitanV,
                GpuKind::QuadroP4000,
                GpuKind::QuadroP4000
            ]
        );
        assert!(GpuKind::parse_config("VVXZ").is_none());
        assert_eq!(GpuKind::parse_config("").unwrap().len(), 0);
    }

    #[test]
    fn kernel_time_roofline() {
        let v = GpuKind::TitanV.spec();
        // Pure compute kernel: time ~ flops / sustained rate + overhead.
        let t = v.kernel_time_secs(v.sustained_flops(), 0.0);
        assert!((t - 1.0 - PER_LAYER_OVERHEAD_SECS).abs() < 1e-9);
        // Pure memory kernel: time ~ bytes / effective bandwidth + overhead.
        let t = v.kernel_time_secs(0.0, v.effective_memory_bw());
        assert!((t - 1.0 - PER_LAYER_OVERHEAD_SECS).abs() < 1e-9);
        // Roofline takes the max, not the sum.
        let t = v.kernel_time_secs(v.sustained_flops(), v.effective_memory_bw());
        assert!((t - 1.0 - PER_LAYER_OVERHEAD_SECS).abs() < 1e-9);
    }

    #[test]
    fn kernel_time_monotone_in_gpu_speed() {
        let flops = 1e9;
        let bytes = 1e6;
        let times: Vec<f64> = GpuKind::ALL
            .iter()
            .map(|k| k.spec().kernel_time_secs(flops, bytes))
            .collect();
        for w in times.windows(2) {
            assert!(w[0] <= w[1], "slower GPUs must not be faster");
        }
    }

    #[test]
    fn display_names() {
        assert_eq!(GpuKind::TitanV.to_string(), "TITAN V");
        assert_eq!(GpuKind::QuadroP4000.to_string(), "Quadro P4000");
    }
}
