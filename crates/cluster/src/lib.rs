//! Hardware substrate for the HetPipe reproduction.
//!
//! The original paper evaluates on a physical testbed of four nodes, each
//! with four homogeneous GPUs, where the GPU model differs across nodes
//! (Table 1 of the paper): TITAN V, TITAN RTX, GeForce RTX 2060, and
//! Quadro P4000. Intra-node GPU communication uses PCIe 3.0 x16
//! (15.75 GB/s peak) and inter-node communication uses 56 Gbps InfiniBand.
//!
//! This crate models that hardware analytically:
//!
//! - [`gpu`] — GPU specifications and a calibrated *effective throughput*
//!   model (fitted to the paper's measured single-pipeline throughputs
//!   rather than raw FLOPs, because e.g. the TITAN V outperforms the
//!   TITAN RTX on training despite a lower boost clock).
//! - [`node`] — nodes (homogeneous GPU sets) and heterogeneous clusters,
//!   including a builder for the exact testbed of the paper.
//! - [`network`] — transfer-time models: PCIe with a Paleo-style
//!   scaling-down constant and InfiniBand with a linear regression
//!   (latency + inverse-bandwidth), as described in Section 7.
//! - [`topology`] — device identities and path resolution (intra- vs
//!   inter-node) between any two GPUs of a cluster.

pub mod gpu;
pub mod network;
pub mod node;
pub mod topology;

pub use gpu::{Architecture, GpuKind, GpuSpec};
pub use network::{LinkKind, NetworkModel, TransferPath};
pub use node::{Cluster, Node};
pub use topology::{DeviceId, NodeId};
