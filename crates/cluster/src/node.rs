//! Nodes and heterogeneous clusters.
//!
//! The paper's testbed (Section 8.1) is four nodes, each with two Xeon
//! E5-2620 v4 processors, 64 GB of host memory, and four homogeneous
//! GPUs; the GPU model differs per node. [`Cluster::paper_testbed`]
//! builds exactly that configuration.

use crate::gpu::{GpuKind, GpuSpec};
use crate::topology::{DeviceId, NodeId};

/// A machine hosting a homogeneous set of GPUs.
#[derive(Debug, Clone)]
pub struct Node {
    /// The GPU model installed in this node.
    pub gpu_kind: GpuKind,
    /// Number of GPUs installed.
    pub gpu_count: usize,
    /// Host DRAM in bytes (64 GB in the paper's testbed).
    pub host_memory_bytes: u64,
}

impl Node {
    /// Creates a node with `gpu_count` GPUs of the given kind and the
    /// testbed's 64 GB of host memory.
    pub fn new(gpu_kind: GpuKind, gpu_count: usize) -> Self {
        Node {
            gpu_kind,
            gpu_count,
            host_memory_bytes: 64 * crate::gpu::GIB,
        }
    }
}

/// A heterogeneous GPU cluster: an ordered list of nodes.
///
/// Device IDs are assigned densely in node order: node 0 holds devices
/// `0..n0`, node 1 holds `n0..n0+n1`, and so on.
#[derive(Debug, Clone, Default)]
pub struct Cluster {
    nodes: Vec<Node>,
    /// Flat device table: `(node, kind)` per DeviceId, derived from `nodes`.
    devices: Vec<(NodeId, GpuKind)>,
}

impl Cluster {
    /// Creates an empty cluster.
    pub fn new() -> Self {
        Cluster::default()
    }

    /// Appends a node, assigning fresh device IDs to its GPUs, and
    /// returns the new node's ID.
    pub fn add_node(&mut self, node: Node) -> NodeId {
        let id = NodeId(self.nodes.len());
        for _ in 0..node.gpu_count {
            self.devices.push((id, node.gpu_kind));
        }
        self.nodes.push(node);
        id
    }

    /// Builds the paper's exact testbed: four nodes of four GPUs each —
    /// TITAN V, TITAN RTX, GeForce RTX 2060, Quadro P4000 (Table 1,
    /// Section 8.1) — 16 GPUs in total.
    ///
    /// # Examples
    ///
    /// ```
    /// use hetpipe_cluster::Cluster;
    /// let c = Cluster::paper_testbed();
    /// assert_eq!(c.device_count(), 16);
    /// assert_eq!(c.node_count(), 4);
    /// ```
    pub fn paper_testbed() -> Self {
        let mut c = Cluster::new();
        c.add_node(Node::new(GpuKind::TitanV, 4));
        c.add_node(Node::new(GpuKind::TitanRtx, 4));
        c.add_node(Node::new(GpuKind::Rtx2060, 4));
        c.add_node(Node::new(GpuKind::QuadroP4000, 4));
        c
    }

    /// Builds a sub-testbed with only the listed node GPU kinds, four
    /// GPUs per node. Used by the incremental-whimpy-GPU experiment
    /// (Table 4: `4[V]`, `8[VR]`, `12[VRQ]`, `16[VRQG]`).
    pub fn testbed_subset(kinds: &[GpuKind]) -> Self {
        let mut c = Cluster::new();
        for &k in kinds {
            c.add_node(Node::new(k, 4));
        }
        c
    }

    /// Number of nodes.
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Number of GPUs across all nodes.
    pub fn device_count(&self) -> usize {
        self.devices.len()
    }

    /// The node hosting `device`.
    ///
    /// # Panics
    ///
    /// Panics if `device` is out of range for this cluster.
    pub fn node_of(&self, device: DeviceId) -> NodeId {
        self.devices[device.0].0
    }

    /// The GPU model of `device`.
    ///
    /// # Panics
    ///
    /// Panics if `device` is out of range for this cluster.
    pub fn kind_of(&self, device: DeviceId) -> GpuKind {
        self.devices[device.0].1
    }

    /// The full spec of `device`.
    pub fn spec_of(&self, device: DeviceId) -> GpuSpec {
        self.kind_of(device).spec()
    }

    /// Whether two devices share a node (and hence a PCIe fabric).
    pub fn same_node(&self, a: DeviceId, b: DeviceId) -> bool {
        self.node_of(a) == self.node_of(b)
    }

    /// Iterates over all device IDs in the cluster.
    pub fn devices(&self) -> impl Iterator<Item = DeviceId> + '_ {
        (0..self.devices.len()).map(DeviceId)
    }

    /// Device IDs hosted on `node`.
    pub fn devices_on(&self, node: NodeId) -> Vec<DeviceId> {
        self.devices()
            .filter(|&d| self.node_of(d) == node)
            .collect()
    }

    /// All devices of a given GPU kind.
    pub fn devices_of_kind(&self, kind: GpuKind) -> Vec<DeviceId> {
        self.devices()
            .filter(|&d| self.kind_of(d) == kind)
            .collect()
    }

    /// The node table.
    pub fn nodes(&self) -> &[Node] {
        &self.nodes
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_testbed_layout() {
        let c = Cluster::paper_testbed();
        assert_eq!(c.node_count(), 4);
        assert_eq!(c.device_count(), 16);
        // Devices 0..4 are TITAN V on node 0, 12..16 are P4000 on node 3.
        assert_eq!(c.kind_of(DeviceId(0)), GpuKind::TitanV);
        assert_eq!(c.node_of(DeviceId(3)), NodeId(0));
        assert_eq!(c.kind_of(DeviceId(12)), GpuKind::QuadroP4000);
        assert_eq!(c.node_of(DeviceId(15)), NodeId(3));
    }

    #[test]
    fn same_node_resolution() {
        let c = Cluster::paper_testbed();
        assert!(c.same_node(DeviceId(0), DeviceId(3)));
        assert!(!c.same_node(DeviceId(3), DeviceId(4)));
    }

    #[test]
    fn devices_on_and_of_kind() {
        let c = Cluster::paper_testbed();
        assert_eq!(c.devices_on(NodeId(1)).len(), 4);
        assert_eq!(c.devices_of_kind(GpuKind::Rtx2060).len(), 4);
        assert_eq!(
            c.devices_of_kind(GpuKind::Rtx2060)[0],
            DeviceId(8),
            "RTX 2060 node is third"
        );
    }

    #[test]
    fn subset_testbeds_for_table4() {
        use GpuKind::*;
        let c4 = Cluster::testbed_subset(&[TitanV]);
        assert_eq!(c4.device_count(), 4);
        let c12 = Cluster::testbed_subset(&[TitanV, TitanRtx, QuadroP4000]);
        assert_eq!(c12.device_count(), 12);
        assert_eq!(c12.kind_of(DeviceId(8)), QuadroP4000);
    }

    #[test]
    fn heterogeneous_node_sizes() {
        let mut c = Cluster::new();
        c.add_node(Node::new(GpuKind::TitanV, 2));
        c.add_node(Node::new(GpuKind::Rtx2060, 6));
        assert_eq!(c.device_count(), 8);
        assert_eq!(c.node_of(DeviceId(1)), NodeId(0));
        assert_eq!(c.node_of(DeviceId(2)), NodeId(1));
        assert_eq!(c.devices_on(NodeId(1)).len(), 6);
    }
}
