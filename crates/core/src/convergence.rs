//! Composing throughput with statistical efficiency.
//!
//! Figures 5 and 6 of the paper plot top-1 accuracy against wall-clock
//! time. That curve factors into two effects this reproduction measures
//! separately:
//!
//! 1. **Throughput** — minibatch updates per second under a given
//!    configuration (from the discrete-event simulator).
//! 2. **Statistical efficiency** — accuracy as a function of the
//!    *number of updates* under a given staleness regime (from the real
//!    threaded trainer in `hetpipe-train`, which produces genuinely
//!    stale gradients).
//!
//! `accuracy(t) = curve(throughput × t)` composes the two, preserving
//! both the paper's "HetPipe finishes more minibatches per hour" and
//! "higher staleness costs statistical efficiency" effects.

/// Accuracy as a function of cumulative minibatch updates.
#[derive(Debug, Clone, PartialEq)]
pub struct AccuracyCurve {
    /// Cumulative update counts (strictly increasing).
    pub steps: Vec<u64>,
    /// Accuracy at each step count (same length as `steps`).
    pub accuracy: Vec<f64>,
}

impl AccuracyCurve {
    /// Creates a curve.
    ///
    /// # Panics
    ///
    /// Panics if the two vectors differ in length, are empty, or steps
    /// are not strictly increasing.
    pub fn new(steps: Vec<u64>, accuracy: Vec<f64>) -> Self {
        assert_eq!(steps.len(), accuracy.len(), "lengths must match");
        assert!(!steps.is_empty(), "curve must have at least one point");
        assert!(
            steps.windows(2).all(|w| w[0] < w[1]),
            "steps must be strictly increasing"
        );
        AccuracyCurve { steps, accuracy }
    }

    /// Accuracy after `n` updates (linear interpolation; clamps at the
    /// ends).
    pub fn at(&self, n: f64) -> f64 {
        let steps = &self.steps;
        if n <= steps[0] as f64 {
            return self.accuracy[0];
        }
        if n >= *steps.last().expect("non-empty") as f64 {
            return *self.accuracy.last().expect("non-empty");
        }
        let idx = steps.partition_point(|&s| (s as f64) <= n);
        let (s0, s1) = (steps[idx - 1] as f64, steps[idx] as f64);
        let (a0, a1) = (self.accuracy[idx - 1], self.accuracy[idx]);
        a0 + (a1 - a0) * (n - s0) / (s1 - s0)
    }

    /// The smallest update count reaching `target` accuracy, if the
    /// curve ever does.
    pub fn steps_to_accuracy(&self, target: f64) -> Option<u64> {
        self.steps
            .iter()
            .zip(&self.accuracy)
            .find(|(_, &a)| a >= target)
            .map(|(&s, _)| s)
    }
}

/// Samples `accuracy(t)` for `t` in `[0, horizon_secs]`, given a
/// sustained update throughput in minibatches/second.
pub fn accuracy_vs_time(
    minibatches_per_sec: f64,
    curve: &AccuracyCurve,
    horizon_secs: f64,
    points: usize,
) -> Vec<(f64, f64)> {
    assert!(points >= 2, "need at least two sample points");
    (0..points)
        .map(|i| {
            let t = horizon_secs * i as f64 / (points - 1) as f64;
            (t, curve.at(minibatches_per_sec * t))
        })
        .collect()
}

/// Wall-clock seconds to reach `target` accuracy at the given update
/// throughput, if the curve ever reaches it.
pub fn time_to_accuracy(
    minibatches_per_sec: f64,
    curve: &AccuracyCurve,
    target: f64,
) -> Option<f64> {
    if minibatches_per_sec <= 0.0 {
        return None;
    }
    curve
        .steps_to_accuracy(target)
        .map(|steps| steps as f64 / minibatches_per_sec)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn curve() -> AccuracyCurve {
        AccuracyCurve::new(vec![0, 100, 200, 400], vec![0.1, 0.5, 0.7, 0.74])
    }

    #[test]
    fn interpolation() {
        let c = curve();
        assert_eq!(c.at(0.0), 0.1);
        assert!((c.at(50.0) - 0.3).abs() < 1e-12);
        assert!((c.at(150.0) - 0.6).abs() < 1e-12);
        assert_eq!(c.at(1000.0), 0.74);
    }

    #[test]
    fn steps_to_target() {
        let c = curve();
        assert_eq!(c.steps_to_accuracy(0.5), Some(100));
        assert_eq!(c.steps_to_accuracy(0.74), Some(400));
        assert_eq!(c.steps_to_accuracy(0.9), None);
    }

    #[test]
    fn faster_throughput_converges_sooner() {
        let c = curve();
        let slow = time_to_accuracy(1.0, &c, 0.7).unwrap();
        let fast = time_to_accuracy(2.0, &c, 0.7).unwrap();
        assert!((slow - 200.0).abs() < 1e-12);
        assert!((fast - 100.0).abs() < 1e-12);
    }

    #[test]
    fn accuracy_vs_time_shape() {
        let c = curve();
        let series = accuracy_vs_time(10.0, &c, 40.0, 5);
        assert_eq!(series.len(), 5);
        assert_eq!(series[0], (0.0, 0.1));
        assert_eq!(series[4].0, 40.0);
        assert_eq!(series[4].1, 0.74);
        // Monotone non-decreasing for a monotone curve.
        for w in series.windows(2) {
            assert!(w[0].1 <= w[1].1);
        }
    }

    #[test]
    #[should_panic(expected = "strictly increasing")]
    fn rejects_unsorted_steps() {
        let _ = AccuracyCurve::new(vec![0, 5, 5], vec![0.0, 0.1, 0.2]);
    }

    #[test]
    fn zero_throughput_never_converges() {
        assert_eq!(time_to_accuracy(0.0, &curve(), 0.5), None);
    }
}
