//! Sharded parameter servers and placement policies.
//!
//! Section 8.1 of the paper: parameter servers each handle a portion of
//! the model parameters and run on every node. Two placement policies:
//!
//! - **Default**: layers are placed round-robin over all parameter
//!   servers (as TensorFlow's `replica_device_setter` does) — most
//!   synchronization traffic crosses nodes.
//! - **Local** (with ED allocation): the layers of partition `q` are
//!   placed on the parameter server of the node that hosts stage `q` in
//!   every virtual worker — synchronization traffic becomes intra-node
//!   only. The paper measures VGG-19 cross-node traffic dropping from
//!   515 MB (Horovod) to 103 MB with ED-local.

use crate::vw::VirtualWorker;
use hetpipe_cluster::{Cluster, NodeId};
use hetpipe_model::ModelGraph;

/// Parameter placement policy (Section 8.1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Placement {
    /// Round-robin layers over all nodes' parameter servers.
    #[default]
    Default,
    /// Co-locate each partition's layers with the node hosting that
    /// stage (meaningful under the ED allocation policy).
    Local,
}

/// One synchronization transfer: a stage pushing (or pulling) the bytes
/// of its layers that live on a given shard.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SyncChunk {
    /// The pipeline stage on the worker side.
    pub stage: usize,
    /// Node hosting the stage's GPU.
    pub gpu_node: NodeId,
    /// Node hosting the parameter-server shard.
    pub shard_node: NodeId,
    /// Parameter bytes moved.
    pub bytes: u64,
}

impl SyncChunk {
    /// Whether this chunk crosses nodes (InfiniBand) or stays local
    /// (PCIe/host memory).
    pub fn crosses_nodes(&self) -> bool {
        self.gpu_node != self.shard_node
    }
}

/// A mapping of every layer to the parameter-server shard holding it.
#[derive(Debug, Clone)]
pub struct ShardMap {
    shard_of_layer: Vec<NodeId>,
    /// Replicated-cell mode ([`ShardMap::build_vw_local`]): every VW
    /// synchronizes with shards on its *own* stage nodes, so the
    /// reference map above is ignored by [`ShardMap::chunks_for`].
    vw_local: bool,
}

impl ShardMap {
    /// Builds the shard map for the given placement.
    ///
    /// For [`Placement::Local`] the map is derived from the reference
    /// virtual worker `vw_ref` (under ED every VW maps stage `q` to the
    /// same node, so any VW works as a reference).
    pub fn build(
        placement: Placement,
        graph: &ModelGraph,
        cluster: &Cluster,
        vw_ref: &VirtualWorker,
    ) -> ShardMap {
        let shard_of_layer = match placement {
            Placement::Default => (0..graph.len())
                .map(|i| NodeId(i % cluster.node_count()))
                .collect(),
            Placement::Local => (0..graph.len())
                .map(|i| {
                    let stage = vw_ref.stage_of_layer(i);
                    cluster.node_of(vw_ref.devices[stage])
                })
                .collect(),
        };
        ShardMap {
            shard_of_layer,
            vw_local: false,
        }
    }

    /// Builds the replicated-cell shard map of the fleet topology:
    /// every VW's shard for stage `q`'s layers is the node hosting
    /// *its own* stage `q` — [`Placement::Local`] applied per VW
    /// rather than from one shared reference worker. On a fleet of
    /// node-disjoint cells this keeps every VW's synchronization
    /// traffic on resources the VW owns, which is precisely the
    /// topology `hetpipe-verify`'s VW-isolation certificate describes
    /// (all cross-VW edges flow through the parameter-server clocks,
    /// none through shared timelines).
    pub fn build_vw_local(graph: &ModelGraph) -> ShardMap {
        ShardMap {
            // Unused in vw-local mode; kept so `shard_of` stays total.
            shard_of_layer: vec![NodeId(0); graph.len()],
            vw_local: true,
        }
    }

    /// Whether this map is the per-VW-local replicated-cell mode.
    pub fn is_vw_local(&self) -> bool {
        self.vw_local
    }

    /// The shard holding layer `i`.
    pub fn shard_of(&self, i: usize) -> NodeId {
        self.shard_of_layer[i]
    }

    /// The synchronization chunks of one wave push (or pull) for `vw`:
    /// for every (stage, shard) pair with parameters, one chunk with the
    /// summed bytes.
    pub fn chunks_for(
        &self,
        graph: &ModelGraph,
        cluster: &Cluster,
        vw: &VirtualWorker,
    ) -> Vec<SyncChunk> {
        let mut chunks = Vec::new();
        for (stage, range) in vw.plan.ranges.iter().enumerate() {
            let gpu_node = cluster.node_of(vw.devices[stage]);
            // Accumulate bytes per shard for this stage. In vw-local
            // mode the stage's shard is its own hosting node.
            let mut per_shard = std::collections::BTreeMap::new();
            for i in range.clone() {
                let bytes = graph.layers()[i].param_bytes;
                if bytes > 0 {
                    let shard = if self.vw_local {
                        gpu_node
                    } else {
                        self.shard_of(i)
                    };
                    *per_shard.entry(shard).or_insert(0u64) += bytes;
                }
            }
            for (shard_node, bytes) in per_shard {
                chunks.push(SyncChunk {
                    stage,
                    gpu_node,
                    shard_node,
                    bytes,
                });
            }
        }
        chunks
    }

    /// Cross-node bytes of one wave push for `vw` (one direction).
    pub fn cross_node_bytes(
        &self,
        graph: &ModelGraph,
        cluster: &Cluster,
        vw: &VirtualWorker,
    ) -> u64 {
        self.chunks_for(graph, cluster, vw)
            .iter()
            .filter(|c| c.crosses_nodes())
            .map(|c| c.bytes)
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hetpipe_cluster::DeviceId;
    use hetpipe_model::vgg19;
    use hetpipe_partition::{PartitionProblem, PartitionSolver};

    fn ed_vw(cluster: &Cluster, graph: &ModelGraph) -> VirtualWorker {
        let devices = vec![DeviceId(0), DeviceId(4), DeviceId(8), DeviceId(12)];
        let gpus = devices.iter().map(|&d| cluster.spec_of(d)).collect();
        let links = VirtualWorker::links(cluster, &devices);
        let plan = PartitionSolver::solve(&PartitionProblem::new(graph, gpus, links, 1)).unwrap();
        VirtualWorker {
            index: 0,
            devices,
            plan,
            nm: 1,
        }
    }

    #[test]
    fn default_round_robin() {
        let c = Cluster::paper_testbed();
        let g = vgg19(32);
        let vw = ed_vw(&c, &g);
        let m = ShardMap::build(Placement::Default, &g, &c, &vw);
        assert_eq!(m.shard_of(0), NodeId(0));
        assert_eq!(m.shard_of(1), NodeId(1));
        assert_eq!(m.shard_of(5), NodeId(1));
    }

    #[test]
    fn local_placement_kills_cross_node_sync() {
        let c = Cluster::paper_testbed();
        let g = vgg19(32);
        let vw = ed_vw(&c, &g);
        let local = ShardMap::build(Placement::Local, &g, &c, &vw);
        assert_eq!(local.cross_node_bytes(&g, &c, &vw), 0);
        let default = ShardMap::build(Placement::Default, &g, &c, &vw);
        let cross = default.cross_node_bytes(&g, &c, &vw);
        // Round-robin over 4 nodes leaves ~3/4 of the bytes remote.
        let frac = cross as f64 / g.total_param_bytes() as f64;
        assert!(frac > 0.5, "cross-node fraction = {frac:.2}");
    }

    #[test]
    fn chunks_cover_all_parameters() {
        let c = Cluster::paper_testbed();
        let g = vgg19(32);
        let vw = ed_vw(&c, &g);
        for placement in [Placement::Default, Placement::Local] {
            let m = ShardMap::build(placement, &g, &c, &vw);
            let total: u64 = m.chunks_for(&g, &c, &vw).iter().map(|ch| ch.bytes).sum();
            assert_eq!(total, g.total_param_bytes(), "{placement:?}");
        }
    }

    #[test]
    fn vw_local_chunks_stay_on_each_vws_own_nodes() {
        // Two VWs on disjoint nodes: the shared Local map (built from
        // VW 0) sends VW 1's sync across nodes; the vw-local map keeps
        // every VW's chunks on its own nodes — the fleet topology.
        let c = Cluster::paper_testbed();
        let g = vgg19(32);
        let mk = |devices: Vec<DeviceId>| {
            let gpus = devices.iter().map(|&d| c.spec_of(d)).collect();
            let links = VirtualWorker::links(&c, &devices);
            let plan = PartitionSolver::solve(&PartitionProblem::new(&g, gpus, links, 1)).unwrap();
            VirtualWorker {
                index: 0,
                devices,
                plan,
                nm: 1,
            }
        };
        // Node-partition style: VW 0 entirely on node 0, VW 1 on node 1.
        let vw0 = mk((0..4).map(DeviceId).collect());
        let vw1 = mk((4..8).map(DeviceId).collect());
        let shared = ShardMap::build(Placement::Local, &g, &c, &vw0);
        assert!(shared.cross_node_bytes(&g, &c, &vw1) > 0);
        let local = ShardMap::build_vw_local(&g);
        assert!(local.is_vw_local());
        for vw in [&vw0, &vw1] {
            assert_eq!(local.cross_node_bytes(&g, &c, vw), 0);
            let total: u64 = local.chunks_for(&g, &c, vw).iter().map(|ch| ch.bytes).sum();
            assert_eq!(total, g.total_param_bytes());
        }
    }

    #[test]
    fn chunk_stage_nodes_match_devices() {
        let c = Cluster::paper_testbed();
        let g = vgg19(32);
        let vw = ed_vw(&c, &g);
        let m = ShardMap::build(Placement::Default, &g, &c, &vw);
        for ch in m.chunks_for(&g, &c, &vw) {
            assert_eq!(ch.gpu_node, c.node_of(vw.devices[ch.stage]));
        }
    }
}
