//! Resource-allocation policies (Section 8.1, Table 3).
//!
//! Given a heterogeneous cluster, an allocation policy groups GPUs into
//! virtual workers:
//!
//! - **NP (Node Partition)** — one VW per node. Homogeneous VWs, all
//!   communication over PCIe, but VW speeds differ (straggler risk).
//! - **ED (Equal Distribution)** — VW `j` takes the `j`-th GPU of every
//!   node. Identical VWs (no stragglers), but activations cross nodes.
//! - **HD (Hybrid Distribution)** — pairs of GPU kinds chosen so that
//!   aggregate compute and memory are balanced across VWs; the paper's
//!   testbed pairing is `VVQQ`/`VVQQ`/`RRGG`/`RRGG` (compute order
//!   V > R > G > Q and memory order R > V > Q > G motivate pairing the
//!   extremes).

use hetpipe_cluster::{Cluster, DeviceId};
use std::fmt;

/// How GPUs are grouped into virtual workers.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AllocationPolicy {
    /// One virtual worker per node (Table 3 "Node Partition").
    NodePartition,
    /// One GPU from each node per virtual worker (Table 3 "Equal
    /// Distribution").
    EqualDistribution,
    /// Balanced two-kind pairs (Table 3 "Hybrid Distribution").
    HybridDistribution,
    /// Explicit device groups (each inner vector is one VW's stage
    /// devices, in pipeline order).
    Custom(Vec<Vec<DeviceId>>),
}

/// Why an allocation failed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AllocError {
    /// ED needs every node to host the same number of GPUs.
    UnevenNodes,
    /// HD needs an even number of nodes and an even per-node GPU count.
    HdShape,
    /// A custom allocation referenced a device that does not exist or
    /// reused a device.
    BadCustom,
    /// The cluster has no devices.
    EmptyCluster,
}

impl fmt::Display for AllocError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AllocError::UnevenNodes => {
                write!(f, "equal distribution requires equal GPU counts per node")
            }
            AllocError::HdShape => write!(
                f,
                "hybrid distribution requires an even node count and even GPUs per node"
            ),
            AllocError::BadCustom => {
                write!(f, "custom allocation has invalid or duplicate devices")
            }
            AllocError::EmptyCluster => write!(f, "cluster has no GPUs"),
        }
    }
}

impl std::error::Error for AllocError {}

impl AllocationPolicy {
    /// Groups the cluster's GPUs into virtual-worker device lists.
    ///
    /// The returned inner vectors are in pipeline-stage order (callers
    /// may re-order stages via the partition crate's order search).
    pub fn allocate(&self, cluster: &Cluster) -> Result<Vec<Vec<DeviceId>>, AllocError> {
        if cluster.device_count() == 0 {
            return Err(AllocError::EmptyCluster);
        }
        match self {
            AllocationPolicy::NodePartition => Ok((0..cluster.node_count())
                .map(|n| cluster.devices_on(hetpipe_cluster::NodeId(n)))
                .collect()),
            AllocationPolicy::EqualDistribution => {
                let per_node = cluster.nodes()[0].gpu_count;
                if cluster.nodes().iter().any(|n| n.gpu_count != per_node) {
                    return Err(AllocError::UnevenNodes);
                }
                let mut vws = vec![Vec::new(); per_node];
                for n in 0..cluster.node_count() {
                    let devs = cluster.devices_on(hetpipe_cluster::NodeId(n));
                    for (j, &d) in devs.iter().enumerate() {
                        vws[j].push(d);
                    }
                }
                Ok(vws)
            }
            AllocationPolicy::HybridDistribution => {
                let nodes = cluster.node_count();
                let per_node = cluster.nodes()[0].gpu_count;
                if !nodes.is_multiple_of(2)
                    || !per_node.is_multiple_of(2)
                    || cluster.nodes().iter().any(|n| n.gpu_count != per_node)
                {
                    return Err(AllocError::HdShape);
                }
                // Rank nodes by GPU compute capability, then pair the
                // fastest with the slowest (the paper's V+Q / R+G
                // pairing falls out of this rule).
                let mut order: Vec<usize> = (0..nodes).collect();
                order.sort_by(|&a, &b| {
                    let ta = cluster.nodes()[a].gpu_kind.spec().effective_throughput;
                    let tb = cluster.nodes()[b].gpu_kind.spec().effective_throughput;
                    tb.partial_cmp(&ta).expect("throughputs are finite")
                });
                let mut vws = Vec::new();
                let half = per_node / 2;
                for i in 0..nodes / 2 {
                    let fast = order[i];
                    let slow = order[nodes - 1 - i];
                    let fast_devs = cluster.devices_on(hetpipe_cluster::NodeId(fast));
                    let slow_devs = cluster.devices_on(hetpipe_cluster::NodeId(slow));
                    // Two VWs per node pair, each taking half of each
                    // node's GPUs: e.g. VVQQ and VVQQ.
                    for vwi in 0..2 {
                        let mut devs = Vec::with_capacity(per_node);
                        devs.extend_from_slice(&fast_devs[vwi * half..(vwi + 1) * half]);
                        devs.extend_from_slice(&slow_devs[vwi * half..(vwi + 1) * half]);
                        vws.push(devs);
                    }
                }
                Ok(vws)
            }
            AllocationPolicy::Custom(groups) => {
                let mut seen = std::collections::HashSet::new();
                for g in groups {
                    for &d in g {
                        if d.0 >= cluster.device_count() || !seen.insert(d) {
                            return Err(AllocError::BadCustom);
                        }
                    }
                }
                Ok(groups.clone())
            }
        }
    }

    /// Short policy name as used in the paper's figures.
    pub fn name(&self) -> &'static str {
        match self {
            AllocationPolicy::NodePartition => "NP",
            AllocationPolicy::EqualDistribution => "ED",
            AllocationPolicy::HybridDistribution => "HD",
            AllocationPolicy::Custom(_) => "custom",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hetpipe_cluster::{GpuKind, Node};

    fn labels(cluster: &Cluster, vws: &[Vec<DeviceId>]) -> Vec<String> {
        vws.iter()
            .map(|devs| devs.iter().map(|&d| cluster.kind_of(d).code()).collect())
            .collect()
    }

    #[test]
    fn np_matches_table3() {
        let c = Cluster::paper_testbed();
        let vws = AllocationPolicy::NodePartition.allocate(&c).unwrap();
        assert_eq!(labels(&c, &vws), vec!["VVVV", "RRRR", "GGGG", "QQQQ"]);
    }

    #[test]
    fn ed_matches_table3() {
        let c = Cluster::paper_testbed();
        let vws = AllocationPolicy::EqualDistribution.allocate(&c).unwrap();
        assert_eq!(labels(&c, &vws), vec!["VRGQ"; 4]);
    }

    #[test]
    fn hd_matches_table3() {
        let c = Cluster::paper_testbed();
        let vws = AllocationPolicy::HybridDistribution.allocate(&c).unwrap();
        let mut ls = labels(&c, &vws);
        ls.sort();
        // Two VVQQ and two RRGG virtual workers (Table 3).
        assert_eq!(ls, vec!["RRGG", "RRGG", "VVQQ", "VVQQ"]);
    }

    #[test]
    fn all_policies_cover_every_gpu_once() {
        let c = Cluster::paper_testbed();
        for p in [
            AllocationPolicy::NodePartition,
            AllocationPolicy::EqualDistribution,
            AllocationPolicy::HybridDistribution,
        ] {
            let vws = p.allocate(&c).unwrap();
            let mut all: Vec<usize> = vws.iter().flatten().map(|d| d.0).collect();
            all.sort();
            assert_eq!(all, (0..16).collect::<Vec<_>>(), "{}", p.name());
        }
    }

    #[test]
    fn ed_rejects_uneven_nodes() {
        let mut c = Cluster::new();
        c.add_node(Node::new(GpuKind::TitanV, 4));
        c.add_node(Node::new(GpuKind::Rtx2060, 2));
        assert_eq!(
            AllocationPolicy::EqualDistribution.allocate(&c),
            Err(AllocError::UnevenNodes)
        );
    }

    #[test]
    fn hd_rejects_odd_nodes() {
        let c = Cluster::testbed_subset(&[GpuKind::TitanV, GpuKind::TitanRtx, GpuKind::Rtx2060]);
        assert_eq!(
            AllocationPolicy::HybridDistribution.allocate(&c),
            Err(AllocError::HdShape)
        );
    }

    #[test]
    fn custom_validation() {
        let c = Cluster::paper_testbed();
        let bad_oob = AllocationPolicy::Custom(vec![vec![DeviceId(99)]]);
        assert_eq!(bad_oob.allocate(&c), Err(AllocError::BadCustom));
        let bad_dup = AllocationPolicy::Custom(vec![vec![DeviceId(0), DeviceId(0)]]);
        assert_eq!(bad_dup.allocate(&c), Err(AllocError::BadCustom));
        let ok = AllocationPolicy::Custom(vec![vec![DeviceId(0), DeviceId(4)]]);
        assert_eq!(ok.allocate(&c).unwrap().len(), 1);
    }

    #[test]
    fn table4_subsets_allocate_under_ed() {
        use GpuKind::*;
        // 8 GPUs = 2 nodes: ED gives 4 VWs of [V, R].
        let c = Cluster::testbed_subset(&[TitanV, TitanRtx]);
        let vws = AllocationPolicy::EqualDistribution.allocate(&c).unwrap();
        assert_eq!(labels(&c, &vws), vec!["VR"; 4]);
    }
}
