//! The HetPipe system: pipelined model parallelism within virtual
//! workers, data parallelism across them, synchronized by the Wave
//! Synchronous Parallel (WSP) model.
//!
//! This crate is the paper's primary contribution, rebuilt on the
//! simulation substrates:
//!
//! - [`sync`] — WSP clock and staleness algebra (Sections 4–5): local
//!   staleness `s_local = Nm − 1`, global staleness
//!   `s_global = (D+1)(s_local+1) + s_local − 1`, wave bookkeeping, and
//!   the minibatch start gate.
//! - [`pserver`] — sharded parameter servers with the paper's two
//!   placement policies (round-robin *default* and ED-*local*,
//!   Section 8.1) and per-path traffic accounting.
//! - [`alloc`] — the resource-allocation policies of Table 3: Node
//!   Partition (NP), Equal Distribution (ED), Hybrid Distribution (HD).
//! - [`vw`] — virtual workers: a group of (possibly heterogeneous) GPUs
//!   executing one pipeline.
//! - [`exec`] — the discrete-event executor: the Figure-1 pipeline
//!   schedule (FIFO conditions 1–3, fused forward/backward at the last
//!   stage), wave-aggregated pushes, D-bounded pulls,
//!   executor-enforced activation windows, and activation
//!   recomputation.
//! - [`audit`] — the measured ≤ declared activation-occupancy audit:
//!   trace-measured per-stage/per-GPU peaks checked against the
//!   schedule's declared memory accounting.
//! - [`system`] — end-to-end assembly and simulation entry point.
//! - [`metrics`] — throughput, per-GPU utilization, waiting vs true
//!   idle time (Section 8.4), and traffic split.
//! - [`plankey`] — process-stable model/cluster fingerprints, the
//!   public [`plankey::RefineKey`] planning-instance identity, and the
//!   sharded concurrent memo cache shared by the order-search refine
//!   pass and the `hetpipe-plansvc` plan cache.
//! - [`convergence`] — composition of simulated throughput with
//!   accuracy-per-update curves into accuracy-vs-time series
//!   (Figures 5 and 6).

pub mod alloc;
pub mod audit;
pub mod convergence;
pub mod exec;
pub mod golden;
pub mod metrics;
pub mod plankey;
pub mod pserver;
pub mod sync;
pub mod system;
pub mod vw;

pub use alloc::AllocationPolicy;
pub use audit::OccupancyAudit;
pub use exec::{RateEvent, RateTarget, SegmentOpts, StepOutcome, VwEngine};
pub use hetpipe_schedule::{PipelineSchedule, RecomputePolicy, Schedule};
pub use metrics::SystemReport;
pub use plankey::{cluster_fingerprint, graph_fingerprint, RefineKey, ShardedCache};
pub use pserver::Placement;
pub use sync::{GateBus, ServePoll, SyncModel, WspParams};
pub use system::{replan_vw_from_observed, BuildError, HetPipeSystem, SystemConfig};
pub use vw::VirtualWorker;
