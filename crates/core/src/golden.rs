//! The pre-refactor (seed) pipeline executor, frozen for golden-trace
//! regression testing.
//!
//! This module is a verbatim copy of the original single-schedule
//! executor that `crate::exec` generalized. It implements exactly one
//! schedule — the paper's Figure-1 wave schedule — with the event
//! logic the seed shipped. The tier-1 golden test
//! (`tests/golden_wave.rs`) runs both executors on the same inputs and
//! asserts the span traces are identical, proving the refactor changed
//! nothing about wave-schedule behaviour.
//!
//! Do not "improve" this module: its value is that it does not change.
//! (`ExecParams::schedule` is ignored here by construction.)

use crate::exec::{ExecParams, RunStats, SpanTag, VwStats};
use crate::pserver::SyncChunk;
use hetpipe_cluster::network::LinkKind;
use hetpipe_cluster::NodeId;
use hetpipe_des::{Engine, Resource, ResourceId, ResourcePool, SimTime, Trace};
use hetpipe_model::profile::{pass_time_secs, Pass, STAGE_TASK_OVERHEAD_SECS};

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Ev {
    FwdArrive { vw: u32, stage: u32, mb: u64 },
    FwdDone { vw: u32, stage: u32, mb: u64 },
    BwdArrive { vw: u32, stage: u32, mb: u64 },
    BwdDone { vw: u32, stage: u32, mb: u64 },
    PushChunkDone { vw: u32, wave: u64 },
    PullChunkDone { vw: u32 },
    TryInject { vw: u32 },
}

struct VwState {
    next_mb: u64,
    completed: u64,
    clock: u64,
    pulled: i64,
    pull_request: Option<(u64, SimTime)>,
    pull_remaining: usize,
    pull_serving_version: i64,
    push_remaining: usize,
    block_start: Option<SimTime>,
    stats: VwStats,
}

struct Exec<'a> {
    p: ExecParams<'a>,
    engine: Engine<Ev>,
    pool: ResourcePool,
    trace: Trace<SpanTag>,
    gpu_res: Vec<ResourceId>,
    nic_res: Vec<ResourceId>,
    states: Vec<VwState>,
    fwd: Vec<Vec<SimTime>>,
    bwd: Vec<Vec<SimTime>>,
    chunks: Vec<Vec<SyncChunk>>,
    sync_inter: u64,
    sync_intra: u64,
    act_inter: u64,
    act_intra: u64,
}

impl<'a> Exec<'a> {
    fn new(p: ExecParams<'a>) -> Self {
        let cluster = p.cluster;
        let mut pool = ResourcePool::new();
        let gpu_res: Vec<ResourceId> = cluster
            .devices()
            .map(|d| pool.add(Resource::new(format!("gpu{}", d.0))))
            .collect();
        let nic_res: Vec<ResourceId> = (0..cluster.node_count())
            .map(|n| pool.add(Resource::new(format!("nic{n}"))))
            .collect();

        let mut fwd = Vec::new();
        let mut bwd = Vec::new();
        let mut chunks = Vec::new();
        for vw in p.vws {
            let mut f = Vec::new();
            let mut b = Vec::new();
            for (q, range) in vw.plan.ranges.iter().enumerate() {
                let spec = cluster.spec_of(vw.devices[q]);
                let layers = &p.graph.layers()[range.clone()];
                let fs: f64 = layers
                    .iter()
                    .map(|l| pass_time_secs(l, &spec, Pass::Forward))
                    .sum();
                let bs: f64 = layers
                    .iter()
                    .map(|l| pass_time_secs(l, &spec, Pass::Backward))
                    .sum();
                f.push(SimTime::from_secs(fs + STAGE_TASK_OVERHEAD_SECS));
                b.push(SimTime::from_secs(bs + STAGE_TASK_OVERHEAD_SECS));
            }
            fwd.push(f);
            bwd.push(b);
            chunks.push(p.shards.chunks_for(p.graph, cluster, vw));
        }

        let states = (0..p.vws.len())
            .map(|_| VwState {
                next_mb: 1,
                completed: 0,
                clock: 0,
                pulled: -1,
                pull_request: None,
                pull_remaining: 0,
                pull_serving_version: -1,
                push_remaining: 0,
                block_start: None,
                stats: VwStats::default(),
            })
            .collect();

        Exec {
            p,
            engine: Engine::new(),
            pool,
            trace: Trace::new(),
            gpu_res,
            nic_res,
            states,
            fwd,
            bwd,
            chunks,
            sync_inter: 0,
            sync_intra: 0,
            act_inter: 0,
            act_intra: 0,
        }
    }

    fn gpu_of(&self, vw: usize, stage: usize) -> ResourceId {
        self.gpu_res[self.p.vws[vw].devices[stage].0]
    }

    fn node_of(&self, vw: usize, stage: usize) -> NodeId {
        self.p.cluster.node_of(self.p.vws[vw].devices[stage])
    }

    fn in_flight(&self, vw: usize) -> u64 {
        let s = &self.states[vw];
        s.next_mb - 1 - s.completed
    }

    fn min_clock(&self) -> u64 {
        self.states.iter().map(|s| s.clock).min().unwrap_or(0)
    }

    fn transfer(&mut self, from: NodeId, to: NodeId, bytes: u64, tag: SpanTag) -> SimTime {
        let now = self.engine.now();
        if from == to {
            now + SimTime::from_secs(LinkKind::Pcie.transfer_secs(bytes))
        } else {
            let dur = SimTime::from_secs(LinkKind::Infiniband.transfer_secs(bytes));
            let a = self.nic_res[from.0];
            let b = self.nic_res[to.0];
            let start = now
                .max(self.pool.get(a).free_at())
                .max(self.pool.get(b).free_at());
            let (s1, e1) = self.pool.get_mut(a).reserve(start, dur);
            let (s2, e2) = self.pool.get_mut(b).reserve(start, dur);
            debug_assert_eq!((s1, e1), (s2, e2), "paired NIC slots must align");
            self.trace.record(a, s1, e1, tag);
            self.trace.record(b, s2, e2, tag);
            e1
        }
    }

    fn account_act(&mut self, from: NodeId, to: NodeId, bytes: u64) {
        if from == to {
            self.act_intra += bytes;
        } else {
            self.act_inter += bytes;
        }
    }

    fn account_sync(&mut self, from: NodeId, to: NodeId, bytes: u64) {
        if from == to {
            self.sync_intra += bytes;
        } else {
            self.sync_inter += bytes;
        }
    }

    fn handle(&mut self, ev: Ev) {
        match ev {
            Ev::TryInject { vw } => self.try_inject(vw as usize),
            Ev::FwdArrive { vw, stage, mb } => self.fwd_arrive(vw as usize, stage as usize, mb),
            Ev::FwdDone { vw, stage, mb } => self.fwd_done(vw as usize, stage as usize, mb),
            Ev::BwdArrive { vw, stage, mb } => self.bwd_arrive(vw as usize, stage as usize, mb),
            Ev::BwdDone { vw, stage, mb } => self.bwd_done(vw as usize, stage as usize, mb),
            Ev::PushChunkDone { vw, wave } => self.push_chunk_done(vw as usize, wave),
            Ev::PullChunkDone { vw } => self.pull_chunk_done(vw as usize),
        }
    }

    fn try_inject(&mut self, vw: usize) {
        let now = self.engine.now();
        loop {
            if self.in_flight(vw) >= self.p.wsp.nm as u64 {
                break;
            }
            let p = self.states[vw].next_mb;
            if let Some(req) = self.p.wsp.required_wave(p) {
                if self.states[vw].pulled < req as i64 {
                    let st = &mut self.states[vw];
                    if st.block_start.is_none() {
                        st.block_start = Some(now);
                    }
                    return;
                }
            }
            let st = &mut self.states[vw];
            if let Some(b) = st.block_start.take() {
                st.stats.inject_blocked += now - b;
            }
            st.next_mb += 1;
            self.engine.schedule_in(
                SimTime::ZERO,
                Ev::FwdArrive {
                    vw: vw as u32,
                    stage: 0,
                    mb: p,
                },
            );
        }
    }

    fn fwd_arrive(&mut self, vw: usize, stage: usize, mb: u64) {
        let now = self.engine.now();
        let k = self.p.vws[vw].stages();
        let gpu = self.gpu_of(vw, stage);
        if stage == k - 1 {
            let dur = self.fwd[vw][stage] + self.bwd[vw][stage];
            let (s, e) = self.pool.get_mut(gpu).reserve(now, dur);
            self.trace.record(
                gpu,
                s,
                e,
                SpanTag::Backward {
                    vw: vw as u32,
                    stage: stage as u32,
                    mb,
                },
            );
            self.engine.schedule_at(
                e,
                Ev::BwdDone {
                    vw: vw as u32,
                    stage: stage as u32,
                    mb,
                },
            );
        } else {
            let dur = self.fwd[vw][stage];
            let (s, e) = self.pool.get_mut(gpu).reserve(now, dur);
            self.trace.record(
                gpu,
                s,
                e,
                SpanTag::Forward {
                    vw: vw as u32,
                    stage: stage as u32,
                    mb,
                },
            );
            self.engine.schedule_at(
                e,
                Ev::FwdDone {
                    vw: vw as u32,
                    stage: stage as u32,
                    mb,
                },
            );
        }
    }

    fn fwd_done(&mut self, vw: usize, stage: usize, mb: u64) {
        let range_end = self.p.vws[vw].plan.ranges[stage].end;
        let bytes = self.p.graph.boundary_bytes(range_end - 1);
        let from = self.node_of(vw, stage);
        let to = self.node_of(vw, stage + 1);
        self.account_act(from, to, bytes);
        let arrive = self.transfer(
            from,
            to,
            bytes,
            SpanTag::ActTransfer {
                vw: vw as u32,
                stage: stage as u32,
                backward: false,
            },
        );
        self.engine.schedule_at(
            arrive,
            Ev::FwdArrive {
                vw: vw as u32,
                stage: (stage + 1) as u32,
                mb,
            },
        );
    }

    fn bwd_arrive(&mut self, vw: usize, stage: usize, mb: u64) {
        let now = self.engine.now();
        let gpu = self.gpu_of(vw, stage);
        let dur = self.bwd[vw][stage];
        let (s, e) = self.pool.get_mut(gpu).reserve(now, dur);
        self.trace.record(
            gpu,
            s,
            e,
            SpanTag::Backward {
                vw: vw as u32,
                stage: stage as u32,
                mb,
            },
        );
        self.engine.schedule_at(
            e,
            Ev::BwdDone {
                vw: vw as u32,
                stage: stage as u32,
                mb,
            },
        );
    }

    fn bwd_done(&mut self, vw: usize, stage: usize, mb: u64) {
        if stage > 0 {
            let range_start = self.p.vws[vw].plan.ranges[stage].start;
            let bytes = self.p.graph.input_bytes_of(range_start);
            let from = self.node_of(vw, stage);
            let to = self.node_of(vw, stage - 1);
            self.account_act(from, to, bytes);
            let arrive = self.transfer(
                from,
                to,
                bytes,
                SpanTag::ActTransfer {
                    vw: vw as u32,
                    stage: stage as u32,
                    backward: true,
                },
            );
            self.engine.schedule_at(
                arrive,
                Ev::BwdArrive {
                    vw: vw as u32,
                    stage: (stage - 1) as u32,
                    mb,
                },
            );
            return;
        }

        let now = self.engine.now();
        let st = &mut self.states[vw];
        st.completed += 1;
        st.stats.completions.push(now);
        let completed = st.completed;
        self.engine
            .schedule_in(SimTime::ZERO, Ev::TryInject { vw: vw as u32 });
        debug_assert_eq!(completed, mb, "FIFO pipelines complete in order");

        let nm = self.p.wsp.nm as u64;
        if completed.is_multiple_of(nm) {
            let wave = completed / nm - 1;
            self.start_push(vw, wave);
        }
    }

    fn start_push(&mut self, vw: usize, wave: u64) {
        let chunk_list = if self.p.sync_transfers {
            self.chunks[vw].clone()
        } else {
            Vec::new()
        };
        if chunk_list.is_empty() {
            self.push_completed(vw, wave);
            return;
        }
        self.states[vw].push_remaining = chunk_list.len();
        for ch in chunk_list {
            self.account_sync(ch.gpu_node, ch.shard_node, ch.bytes);
            let arrive = self.transfer(
                ch.gpu_node,
                ch.shard_node,
                ch.bytes,
                SpanTag::SyncTransfer {
                    vw: vw as u32,
                    wave,
                    pull: false,
                },
            );
            self.engine.schedule_at(
                arrive,
                Ev::PushChunkDone {
                    vw: vw as u32,
                    wave,
                },
            );
        }
    }

    fn push_chunk_done(&mut self, vw: usize, wave: u64) {
        let st = &mut self.states[vw];
        st.push_remaining -= 1;
        if st.push_remaining == 0 {
            self.push_completed(vw, wave);
        }
    }

    fn push_completed(&mut self, vw: usize, wave: u64) {
        let now = self.engine.now();
        {
            let st = &mut self.states[vw];
            st.clock = wave + 1;
            st.stats.waves_pushed = st.clock;
        }
        if let Some(target) = self.p.wsp.pull_target_after_push(wave) {
            let st = &mut self.states[vw];
            match &mut st.pull_request {
                Some((t, _since)) => *t = (*t).max(target),
                None => st.pull_request = Some((target, now)),
            }
        }
        for v in 0..self.states.len() {
            self.try_serve_pull(v);
        }
    }

    fn try_serve_pull(&mut self, vw: usize) {
        if self.states[vw].pull_remaining > 0 {
            return;
        }
        let Some((target, since)) = self.states[vw].pull_request else {
            return;
        };
        let min_clock = self.min_clock();
        if min_clock < target + 1 {
            return;
        }
        let now = self.engine.now();
        {
            let st = &mut self.states[vw];
            st.stats.pull_wait += now - since;
            st.stats.wait_windows.push((since, now));
            st.pull_request = None;
            st.pull_serving_version = min_clock as i64 - 1;
        }
        let chunk_list = if self.p.sync_transfers {
            self.chunks[vw].clone()
        } else {
            Vec::new()
        };
        if chunk_list.is_empty() {
            let st = &mut self.states[vw];
            st.pulled = st.pulled.max(st.pull_serving_version);
            self.engine
                .schedule_in(SimTime::ZERO, Ev::TryInject { vw: vw as u32 });
            return;
        }
        self.states[vw].pull_remaining = chunk_list.len();
        for ch in chunk_list {
            self.account_sync(ch.shard_node, ch.gpu_node, ch.bytes);
            let wave = self.states[vw].pull_serving_version.max(0) as u64;
            let arrive = self.transfer(
                ch.shard_node,
                ch.gpu_node,
                ch.bytes,
                SpanTag::SyncTransfer {
                    vw: vw as u32,
                    wave,
                    pull: true,
                },
            );
            self.engine
                .schedule_at(arrive, Ev::PullChunkDone { vw: vw as u32 });
        }
    }

    fn pull_chunk_done(&mut self, vw: usize) {
        let st = &mut self.states[vw];
        st.pull_remaining -= 1;
        if st.pull_remaining == 0 {
            st.pulled = st.pulled.max(st.pull_serving_version);
            self.engine
                .schedule_in(SimTime::ZERO, Ev::TryInject { vw: vw as u32 });
            self.try_serve_pull(vw);
        }
    }

    fn run(mut self, horizon: SimTime) -> RunStats {
        for vw in 0..self.p.vws.len() {
            self.engine
                .schedule_at(SimTime::ZERO, Ev::TryInject { vw: vw as u32 });
        }
        while let Some(ev) = self.engine.next_event_until(horizon) {
            self.handle(ev);
        }
        RunStats {
            horizon,
            // Stat-carrier fields added for the fault-aware runtime;
            // no behavioural change (the frozen event logic above is
            // untouched).
            end: self.engine.now(),
            events: self.engine.processed(),
            vws: self.states.into_iter().map(|s| s.stats).collect(),
            trace: self.trace,
            gpu_resources: self.gpu_res,
            nic_resources: self.nic_res,
            pool: self.pool,
            sync_bytes_inter: self.sync_inter,
            sync_bytes_intra: self.sync_intra,
            act_bytes_inter: self.act_inter,
            act_bytes_intra: self.act_intra,
            planned_fwd: self.fwd,
            planned_bwd: self.bwd,
        }
    }
}

/// Runs the frozen seed executor until `horizon`
/// (`params.schedule` is ignored: this executor predates the knob).
pub fn run(params: ExecParams<'_>, horizon: SimTime) -> RunStats {
    Exec::new(params).run(horizon)
}
