//! Post-run reports.
//!
//! Turns raw [`RunStats`](crate::exec::RunStats) into the quantities the
//! paper's evaluation section reports: throughput in images/second
//! (all figures), per-GPU utilization (Figure 3), waiting vs true idle
//! time during synchronization (Section 8.4), and the cross-node traffic
//! split (the 515 MB vs 103 MB comparison in Section 8.3).

use crate::exec::{RunStats, SpanTag};
use hetpipe_cluster::{Cluster, DeviceId};
use hetpipe_des::SimTime;

/// A complete report of one simulated training run.
#[derive(Debug, Clone)]
pub struct SystemReport {
    /// Minibatch size the model profile was built for.
    pub batch_size: usize,
    /// Measurement window start (warm-up excluded).
    pub warmup: SimTime,
    /// Simulated horizon.
    pub horizon: SimTime,
    /// Minibatches completed inside the measurement window, per VW.
    pub minibatches_per_vw: Vec<u64>,
    /// Waves pushed per VW over the whole run.
    pub waves_per_vw: Vec<u64>,
    /// Per-device utilization within the measurement window.
    pub gpu_utilization: Vec<(DeviceId, f64)>,
    /// Per-VW maximum average stage utilization (the Figure-3 metric).
    pub max_stage_utilization: Vec<f64>,
    /// Total pull waiting time per VW (Section 8.4).
    pub pull_wait_per_vw: Vec<SimTime>,
    /// True idle time inside the waiting windows per VW (Section 8.4:
    /// "the actual idle time is only 18% of the waiting time").
    pub idle_in_wait_per_vw: Vec<SimTime>,
    /// Cross-node parameter-synchronization bytes.
    pub sync_bytes_inter: u64,
    /// Intra-node parameter-synchronization bytes.
    pub sync_bytes_intra: u64,
    /// Cross-node activation/gradient bytes.
    pub act_bytes_inter: u64,
    /// Intra-node activation/gradient bytes.
    pub act_bytes_intra: u64,
}

impl SystemReport {
    /// Builds the report from raw run statistics.
    ///
    /// `vw_devices` lists each VW's stage devices (used for utilization
    /// aggregation).
    pub fn from_stats(
        stats: &RunStats,
        cluster: &Cluster,
        batch_size: usize,
        warmup: SimTime,
        vw_devices: &[Vec<DeviceId>],
    ) -> SystemReport {
        let horizon = stats.horizon;
        let minibatches_per_vw: Vec<u64> = stats
            .vws
            .iter()
            .map(|v| v.completions.iter().filter(|&&t| t > warmup).count() as u64)
            .collect();
        let waves_per_vw: Vec<u64> = stats.vws.iter().map(|v| v.waves_pushed).collect();

        // One windowed query per device per wait window below: build
        // the per-resource span index once instead of rescanning the
        // full trace per query.
        let index = stats.trace.index();
        let gpu_utilization: Vec<(DeviceId, f64)> = cluster
            .devices()
            .map(|d| {
                let rid = stats.gpu_resources[d.0];
                (d, index.utilization_within(rid, warmup, horizon))
            })
            .collect();

        let max_stage_utilization: Vec<f64> = vw_devices
            .iter()
            .map(|devs| {
                devs.iter()
                    .map(|d| gpu_utilization[d.0].1)
                    .fold(0.0, f64::max)
            })
            .collect();

        // True idle inside waiting windows: window length minus mean GPU
        // busy time of the VW's stages within the window.
        let idle_in_wait_per_vw: Vec<SimTime> = stats
            .vws
            .iter()
            .enumerate()
            .map(|(i, v)| {
                let devs = &vw_devices[i];
                let mut idle = SimTime::ZERO;
                for &(from, to) in &v.wait_windows {
                    if devs.is_empty() {
                        continue;
                    }
                    let busy_avg: f64 = devs
                        .iter()
                        .map(|d| {
                            index
                                .busy_within(stats.gpu_resources[d.0], from, to)
                                .as_secs()
                        })
                        .sum::<f64>()
                        / devs.len() as f64;
                    let window = (to - from).as_secs();
                    idle += SimTime::from_secs((window - busy_avg).max(0.0));
                }
                idle
            })
            .collect();

        SystemReport {
            batch_size,
            warmup,
            horizon,
            minibatches_per_vw,
            waves_per_vw,
            gpu_utilization,
            max_stage_utilization,
            pull_wait_per_vw: stats.vws.iter().map(|v| v.pull_wait).collect(),
            idle_in_wait_per_vw,
            sync_bytes_inter: stats.sync_bytes_inter,
            sync_bytes_intra: stats.sync_bytes_intra,
            act_bytes_inter: stats.act_bytes_inter,
            act_bytes_intra: stats.act_bytes_intra,
        }
    }

    /// Aggregate throughput in images per second over the measurement
    /// window.
    pub fn throughput_images_per_sec(&self) -> f64 {
        let window = (self.horizon - self.warmup).as_secs();
        if window <= 0.0 {
            return 0.0;
        }
        let total: u64 = self.minibatches_per_vw.iter().sum();
        total as f64 * self.batch_size as f64 / window
    }

    /// Aggregate throughput in minibatches per second.
    pub fn throughput_minibatches_per_sec(&self) -> f64 {
        self.throughput_images_per_sec() / self.batch_size as f64
    }

    /// Total pull waiting time across VWs, seconds.
    pub fn total_pull_wait_secs(&self) -> f64 {
        self.pull_wait_per_vw.iter().map(|t| t.as_secs()).sum()
    }

    /// Total true idle time inside waiting windows, seconds.
    pub fn total_idle_in_wait_secs(&self) -> f64 {
        self.idle_in_wait_per_vw.iter().map(|t| t.as_secs()).sum()
    }

    /// Idle-to-waiting ratio (the paper reports 18% for ED-local,
    /// Section 8.4); `None` when there was no waiting.
    pub fn idle_fraction_of_wait(&self) -> Option<f64> {
        let wait = self.total_pull_wait_secs();
        (wait > 0.0).then(|| self.total_idle_in_wait_secs() / wait)
    }
}

/// Helper: counts spans of a given kind in a trace (used by tests and
/// the benches' sanity checks).
pub fn count_tag(stats: &RunStats, pred: impl Fn(&SpanTag) -> bool) -> usize {
    stats.trace.count_where(|t| pred(t))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn throughput_math() {
        let report = SystemReport {
            batch_size: 32,
            warmup: SimTime::ZERO,
            horizon: SimTime::from_secs(10.0),
            minibatches_per_vw: vec![50, 50],
            waves_per_vw: vec![12, 12],
            gpu_utilization: vec![],
            max_stage_utilization: vec![],
            pull_wait_per_vw: vec![SimTime::from_secs(1.0)],
            idle_in_wait_per_vw: vec![SimTime::from_secs(0.25)],
            sync_bytes_inter: 0,
            sync_bytes_intra: 0,
            act_bytes_inter: 0,
            act_bytes_intra: 0,
        };
        assert!((report.throughput_images_per_sec() - 320.0).abs() < 1e-9);
        assert!((report.throughput_minibatches_per_sec() - 10.0).abs() < 1e-9);
        assert_eq!(report.idle_fraction_of_wait(), Some(0.25));
    }

    #[test]
    fn empty_window_is_zero_throughput() {
        let report = SystemReport {
            batch_size: 32,
            warmup: SimTime::from_secs(5.0),
            horizon: SimTime::from_secs(5.0),
            minibatches_per_vw: vec![],
            waves_per_vw: vec![],
            gpu_utilization: vec![],
            max_stage_utilization: vec![],
            pull_wait_per_vw: vec![],
            idle_in_wait_per_vw: vec![],
            sync_bytes_inter: 0,
            sync_bytes_intra: 0,
            act_bytes_inter: 0,
            act_bytes_intra: 0,
        };
        assert_eq!(report.throughput_images_per_sec(), 0.0);
        assert_eq!(report.idle_fraction_of_wait(), None);
    }
}
