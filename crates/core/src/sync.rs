//! Synchronization models, the WSP staleness algebra, and the gate
//! bus the fleet decomposition couples through.
//!
//! The clock/staleness algebra itself ([`WspParams`]) lives in
//! `hetpipe-schedule` — schedule op streams compile the start gate into
//! explicit `PullGate` ops — and is re-exported here for backwards
//! compatibility. This module keeps the taxonomy of synchronization
//! models the reproduction covers, plus the [`GateBus`] trait: when
//! each virtual worker runs on its *own* DES engine (`hetpipe-fleet`),
//! the in-process WSP gate state (`min_clock` over all VWs' push
//! clocks) moves behind this trait — push landings are *announced* to
//! the bus and pull serves are *decided* by it, so the bus is the only
//! cross-engine channel, exactly the PS push→gate coupling
//! `hetpipe-verify`'s VW-isolation pass certifies to be the sole
//! cross-VW dependency class.

use hetpipe_des::SimTime;
use std::fmt;

pub use hetpipe_schedule::WspParams;

/// Outcome of asking the gate bus whether a pending pull can be
/// served (see [`GateBus::poll_serve`]).
///
/// The decision mirrors the in-process executor exactly: a pull with
/// target wave `w` is served at the first instant `S ≥ ready_since`
/// at which *every* VW's push clock has reached `w + 1`, with version
/// `min_clock(S) − 1`. The bus reconstructs that instant from the
/// announced push-landing times (known at push *start*, which is what
/// gives the conservative protocol its lookahead).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ServePoll {
    /// The serve is fully decided: it happens at `at` — never past
    /// the polled bound, so the poller has no local event before it —
    /// and installs global version `at`-time `min_clock − 1`. The
    /// decision is final: the bus only returns `Ready` once it has
    /// proven no still-unannounced push (from any VW, the poller
    /// included) can land at or before `at`.
    Ready {
        /// Serve instant (`max(ready_since, crossing time)`),
        /// `≤ bound`.
        at: SimTime,
        /// Version the pull carries (`min_clock(at) − 1`).
        version: i64,
    },
    /// Undecided, but provably not before `at_least` (which is
    /// strictly past the polled `bound`) — the engine may safely
    /// process every local event *strictly before* `at_least` without
    /// re-polling. The bound folds the bus's lookahead: announced
    /// landings plus, for each VW that has not announced the target
    /// wave, its action floor advanced by its minimum push duration.
    /// `SimTime::MAX` means the serve can never happen (some finished
    /// VW never pushed the target wave).
    NotBefore {
        /// Certified lower bound on the serve instant, `> bound`.
        at_least: SimTime,
    },
    /// Undecidable from current bus knowledge: some VW whose push is
    /// needed has neither announced it nor provably advanced past the
    /// bound. The engine blocks; the bus registers the poll so the
    /// driver can wake it when the verdict can change.
    Wait,
}

/// The cross-engine synchronization surface of the fleet
/// decomposition. Implemented by `hetpipe-fleet`'s `FleetBus`; the
/// in-process executor keeps its legacy `min_clock` scan and never
/// touches a bus.
///
/// Soundness contract (the conservative-synchronization protocol):
///
/// - [`GateBus::announce_push`] is called at push *start* with the
///   landing instant (transfer arrival times are reserved up front,
///   so the landing is known in advance — the certified lookahead).
///   Waves are announced in increasing order per VW, and a landing is
///   never earlier than the VW's last published frontier.
/// - [`GateBus::publish_frontier`] promises the VW will take no
///   action — in particular start no push — before `at`. Frontiers
///   are monotone.
/// - [`GateBus::poll_serve`] may return `Ready` only when the serve
///   instant and version can never be changed by future announces.
pub trait GateBus: Sync {
    /// Number of virtual workers on the bus.
    fn vws(&self) -> usize;

    /// Announces that `vw`'s aggregated push of `wave` will land
    /// (last chunk arrival) at `lands`.
    fn announce_push(&self, vw: usize, wave: u64, lands: SimTime);

    /// Publishes a monotone lower bound on `vw`'s next action.
    fn publish_frontier(&self, vw: usize, at: SimTime);

    /// Asks whether `vw`'s pending pull of target wave `target`
    /// (locally serveable since `ready_since`) can be served no later
    /// than `bound` (the VW's next local event, or the horizon).
    /// A `Wait` verdict registers the poll inputs with the bus until
    /// the VW's next `Ready`/`NotBefore` verdict.
    fn poll_serve(&self, vw: usize, target: u64, ready_since: SimTime, bound: SimTime)
        -> ServePoll;

    /// Marks `vw` finished: no further events, pushes, or polls.
    fn finish(&self, vw: usize);
}

/// Parameter-synchronization models supported by the reproduction.
///
/// The core simulator executes WSP (of which `D = 0` is the paper's
/// "BSP-like" configuration); the real threaded trainer in
/// `hetpipe-train` additionally implements classic BSP, SSP, and ASP
/// for convergence baselines.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SyncModel {
    /// Bulk Synchronous Parallel: barrier after every minibatch.
    Bsp,
    /// Asynchronous Parallel: no coordination (no convergence bound).
    Asp,
    /// Stale Synchronous Parallel with the given staleness threshold.
    Ssp(usize),
    /// Wave Synchronous Parallel with clock-distance bound `D`.
    Wsp(usize),
}

impl fmt::Display for SyncModel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SyncModel::Bsp => write!(f, "BSP"),
            SyncModel::Asp => write!(f, "ASP"),
            SyncModel::Ssp(s) => write!(f, "SSP(s={s})"),
            SyncModel::Wsp(d) => write!(f, "WSP(D={d})"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sync_model_display() {
        assert_eq!(SyncModel::Wsp(4).to_string(), "WSP(D=4)");
        assert_eq!(SyncModel::Ssp(3).to_string(), "SSP(s=3)");
        assert_eq!(SyncModel::Bsp.to_string(), "BSP");
        assert_eq!(SyncModel::Asp.to_string(), "ASP");
    }

    #[test]
    fn wsp_params_reexported() {
        // The algebra moved to hetpipe-schedule; the old path keeps
        // working.
        let w = WspParams::new(4, 0);
        assert_eq!(w.s_global(), 6);
    }
}
