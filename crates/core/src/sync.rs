//! Synchronization models and the WSP staleness algebra.
//!
//! The clock/staleness algebra itself ([`WspParams`]) lives in
//! `hetpipe-schedule` — schedule op streams compile the start gate into
//! explicit `PullGate` ops — and is re-exported here for backwards
//! compatibility. This module keeps the taxonomy of synchronization
//! models the reproduction covers.

use std::fmt;

pub use hetpipe_schedule::WspParams;

/// Parameter-synchronization models supported by the reproduction.
///
/// The core simulator executes WSP (of which `D = 0` is the paper's
/// "BSP-like" configuration); the real threaded trainer in
/// `hetpipe-train` additionally implements classic BSP, SSP, and ASP
/// for convergence baselines.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SyncModel {
    /// Bulk Synchronous Parallel: barrier after every minibatch.
    Bsp,
    /// Asynchronous Parallel: no coordination (no convergence bound).
    Asp,
    /// Stale Synchronous Parallel with the given staleness threshold.
    Ssp(usize),
    /// Wave Synchronous Parallel with clock-distance bound `D`.
    Wsp(usize),
}

impl fmt::Display for SyncModel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SyncModel::Bsp => write!(f, "BSP"),
            SyncModel::Asp => write!(f, "ASP"),
            SyncModel::Ssp(s) => write!(f, "SSP(s={s})"),
            SyncModel::Wsp(d) => write!(f, "WSP(D={d})"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sync_model_display() {
        assert_eq!(SyncModel::Wsp(4).to_string(), "WSP(D=4)");
        assert_eq!(SyncModel::Ssp(3).to_string(), "SSP(s=3)");
        assert_eq!(SyncModel::Bsp.to_string(), "BSP");
        assert_eq!(SyncModel::Asp.to_string(), "ASP");
    }

    #[test]
    fn wsp_params_reexported() {
        // The algebra moved to hetpipe-schedule; the old path keeps
        // working.
        let w = WspParams::new(4, 0);
        assert_eq!(w.s_global(), 6);
    }
}
