//! The schedule-generic discrete-event pipeline executor.
//!
//! Simulates `N` virtual workers, each running a pluggable
//! [`Schedule`] over its stage GPUs, synchronized through sharded
//! parameter servers under WSP:
//!
//! - **Scheduling conditions (Section 4)**: forward tasks execute in
//!   minibatch order, backward tasks execute in minibatch order, and
//!   tasks are served FIFO per GPU. How forwards and backwards
//!   interleave on a GPU is the schedule's decision: the paper's wave
//!   schedule ([`Schedule::HetPipeWave`]) dispatches ready tasks in
//!   dependency-arrival order with the last stage fused; fill-drain /
//!   1F1B / depth-expanded interleaved execute their per-stage
//!   [`ScheduleOp`] streams in strict stream order; and the composite
//!   interleaved schedule executes one merged per-GPU [`GpuStream`]
//!   per physical GPU (`GpuStreamOrder`), so the *schedule* — not
//!   arrival order — decides how co-located chunks share the GPU
//!   timeline, exactly as Megatron-LM orders its interleaved chunk
//!   groups.
//! - **Wave pushes (Section 5)**: when the last minibatch of wave `c`
//!   completes, the VW pushes one *aggregated* update (its full
//!   parameter footprint, once — not per minibatch) to the shards. In
//!   stream-order schedules this is the explicit
//!   [`ScheduleOp::Push`] op; the wave schedule triggers it on
//!   completion count.
//! - **D-bounded pulls**: after pushing wave `c`, the VW requests global
//!   weights covering wave `c − D` and waits (while continuing to run
//!   already-admissible minibatches) until every VW has pushed that
//!   wave. The injection gate is [`WspParams::required_wave`] for the
//!   wave schedule and the explicit [`ScheduleOp::PullGate`] op for
//!   stream-order schedules. Consecutive waves' push transfers run
//!   concurrently (per-wave chunk counters), contending on the NIC
//!   timelines rather than being serialized behind one another.
//! - **Enforced activation windows**: each stage's declared peak
//!   activation occupancy ([`PipelineSchedule::max_in_flight`] — the
//!   same number the memory model charges and the partitioner
//!   certifies against) is enforced at dispatch time. Arrival-FIFO
//!   stages gate forward dispatch on the window (deferring arrivals
//!   until a backward releases a slot); stream-order stages respect it
//!   structurally, and both paths keep occupancy books that are
//!   asserted against the declaration. `crate::audit` measures the
//!   realized peaks from the span trace as the first-class
//!   measured ≤ declared invariant.
//! - **Activation recomputation**: under
//!   [`RecomputePolicy::BoundaryOnly`], every non-fused backward is
//!   preceded by a stage-local forward re-run (an explicit
//!   [`SpanTag::Recompute`] task) that rematerializes activations from
//!   the stashed boundary input, matching the memory model's smaller
//!   per-minibatch stash.
//!
//! Hardware modelling: GPUs and per-node NICs are FIFO timeline
//! resources; an inter-node transfer occupies both endpoint NICs for its
//! duration (InfiniBand), while intra-node transfers use dedicated PCIe
//! lanes (latency + bandwidth, no contention). Parameter-server apply
//! time is not modelled (the paper does not model it either).
//!
//! The pre-refactor single-schedule executor is preserved verbatim in
//! [`crate::golden`]; a tier-1 golden test asserts that
//! [`Schedule::HetPipeWave`] through this executor reproduces its span
//! traces exactly.

use crate::pserver::{ShardMap, SyncChunk};
use crate::sync::{GateBus, ServePoll, WspParams};
use crate::vw::VirtualWorker;
use hetpipe_cluster::network::LinkKind;
use hetpipe_cluster::{Cluster, NodeId};
use hetpipe_des::{Engine, Resource, ResourceId, ResourcePool, SimTime, Trace};
use hetpipe_model::profile::{pass_time_secs, Pass, STAGE_TASK_OVERHEAD_SECS};
use hetpipe_model::ModelGraph;
use hetpipe_schedule::{
    Dispatch, GpuOp, GpuStream, PipelineSchedule, RecomputePolicy, Schedule, ScheduleOp,
    ScheduleStream,
};
use std::collections::{BTreeMap, VecDeque};

/// What a recorded span represents.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SpanTag {
    /// A forward pass of `mb` on `(vw, stage)`.
    Forward { vw: u32, stage: u32, mb: u64 },
    /// A backward pass (or the fused forward+backward at the last
    /// stage).
    Backward { vw: u32, stage: u32, mb: u64 },
    /// A stage-local re-run of `mb`'s forward to rematerialize its
    /// activations directly before the backward
    /// ([`RecomputePolicy::BoundaryOnly`]).
    Recompute { vw: u32, stage: u32, mb: u64 },
    /// An activation (forward) or gradient (backward) transfer on a NIC.
    ActTransfer { vw: u32, stage: u32, backward: bool },
    /// A parameter push/pull chunk on a NIC.
    SyncTransfer { vw: u32, wave: u64, pull: bool },
}

impl SpanTag {
    /// A short label for trace exports (e.g. Chrome traces).
    pub fn label(&self) -> String {
        match self {
            SpanTag::Forward { vw, mb, .. } => format!("fwd vw{vw} mb{mb}"),
            SpanTag::Backward { vw, mb, .. } => format!("bwd vw{vw} mb{mb}"),
            SpanTag::Recompute { vw, mb, .. } => format!("recompute vw{vw} mb{mb}"),
            SpanTag::ActTransfer { vw, backward, .. } => {
                format!(
                    "{} vw{vw}",
                    if *backward { "grad xfer" } else { "act xfer" }
                )
            }
            SpanTag::SyncTransfer { vw, wave, pull } => {
                format!("{} vw{vw} w{wave}", if *pull { "pull" } else { "push" })
            }
        }
    }

    /// A category name for trace exports.
    pub fn category(&self) -> &'static str {
        match self {
            SpanTag::Forward { .. } => "forward",
            SpanTag::Backward { .. } => "backward",
            SpanTag::Recompute { .. } => "recompute",
            SpanTag::ActTransfer { .. } => "activation",
            SpanTag::SyncTransfer { .. } => "sync",
        }
    }
}

/// Executor inputs.
#[derive(Debug, Clone)]
pub struct ExecParams<'a> {
    /// The cluster the VWs live on.
    pub cluster: &'a Cluster,
    /// The model being trained.
    pub graph: &'a ModelGraph,
    /// The virtual workers (plans and stage devices resolved; for
    /// interleaved schedules these are *virtual* stages and `devices`
    /// repeats physical GPUs round-robin).
    pub vws: &'a [VirtualWorker],
    /// WSP parameters (`Nm`, `D`).
    pub wsp: WspParams,
    /// Parameter-server shard placement.
    pub shards: &'a ShardMap,
    /// When false, the WSP clock protocol still runs but push/pull
    /// *transfers* cost nothing — models a standalone virtual worker
    /// measured without data parallelism, as in the paper's Figure 3.
    pub sync_transfers: bool,
    /// The pipeline schedule every VW runs.
    pub schedule: Schedule,
    /// Activation recomputation: with
    /// [`RecomputePolicy::BoundaryOnly`] every non-fused backward is
    /// preceded by a stage-local forward re-run on the same GPU.
    pub recompute: RecomputePolicy,
}

/// Which timeline resource a fault (rate change) targets.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RateTarget {
    /// A GPU, by cluster device index.
    Gpu(usize),
    /// A node's NIC, by node index.
    Nic(usize),
}

/// A scheduled service-rate change: at `at` (segment-local simulated
/// time) the target resource's rate becomes `rate` (1.0 = nominal,
/// `1/k` = a ×k slowdown, ≤ 0 = lost). Fired as a first-class DES
/// event; reservations made after it fires are scaled by the new rate
/// (work already on the timeline keeps its granted duration).
#[derive(Debug, Clone, Copy)]
pub struct RateEvent {
    /// Segment-local fire time.
    pub at: SimTime,
    /// The resource whose rate changes.
    pub target: RateTarget,
    /// The new service-rate multiplier.
    pub rate: f64,
}

/// Options for one executor *segment* — the unit the fault-aware
/// runtime (`hetpipe-runtime`) splices: a bounded run that may start
/// under pre-existing fault rates, experience scheduled rate changes,
/// stop injecting work at a wave boundary (and drain), and optionally
/// relax strict composite-stream order within a bounded window.
///
/// The default options reproduce [`run`] exactly: no faults, no stop,
/// strict order — the zero-fault golden-trace invariance the tier-1
/// tests pin.
#[derive(Debug, Clone, Default)]
pub struct SegmentOpts {
    /// Stop *injecting* minibatches after this one (1-indexed,
    /// segment-local) and drain: ops of later minibatches are
    /// discarded unexecuted, so the segment ends — at the splice
    /// point — once every in-flight minibatch and the boundary wave's
    /// push/pull traffic completes. Must be a wave boundary
    /// (a multiple of `Nm`) so the WSP clock is whole at the splice.
    pub stop_after_mb: Option<u64>,
    /// Rates already in effect when the segment starts (fault windows
    /// opened in an earlier segment).
    pub initial_rates: Vec<(RateTarget, f64)>,
    /// Rate changes that fire during the segment.
    pub rate_events: Vec<RateEvent>,
    /// `SkipStraggler` support: when > 0, a GPU whose composite-stream
    /// head op is blocked on a data dependency may execute a *ready
    /// backward* (with its recompute prefix) from up to this many ops
    /// ahead in its own stream. Backwards only — they release
    /// activations, never acquire them — and never past a closed
    /// [`ScheduleOp::PullGate`] or an earlier op of the same stage, so
    /// the declared occupancy and staleness bounds hold unchanged.
    /// 0 (the default) is strict stream order.
    pub reorder_window: usize,
}

/// One virtual worker's synchronization statistics.
#[derive(Debug, Clone, Default)]
pub struct VwStats {
    /// Completion times of every finished minibatch.
    pub completions: Vec<SimTime>,
    /// Waves pushed (final local clock).
    pub waves_pushed: u64,
    /// Total time spent between requesting a pull and the straggler
    /// condition being satisfied (Section 8.4's "waiting time").
    pub pull_wait: SimTime,
    /// The individual waiting windows, for idle-time analysis.
    pub wait_windows: Vec<(SimTime, SimTime)>,
    /// Time the injection gate was closed by the staleness bound while
    /// a pipeline slot was free.
    pub inject_blocked: SimTime,
}

/// Raw results of a simulation run.
#[derive(Debug, Clone)]
pub struct RunStats {
    /// Simulated horizon actually reached.
    pub horizon: SimTime,
    /// Per-VW statistics.
    pub vws: Vec<VwStats>,
    /// Span trace (GPU and NIC occupancy).
    pub trace: Trace<SpanTag>,
    /// GPU resource IDs by device index.
    pub gpu_resources: Vec<ResourceId>,
    /// NIC resource IDs by node index.
    pub nic_resources: Vec<ResourceId>,
    /// Final resource pool (busy-time accounting).
    pub pool: ResourcePool,
    /// Cross-node bytes moved for parameter synchronization.
    pub sync_bytes_inter: u64,
    /// Intra-node bytes moved for parameter synchronization.
    pub sync_bytes_intra: u64,
    /// Cross-node bytes moved for activations/gradients.
    pub act_bytes_inter: u64,
    /// Intra-node bytes moved for activations/gradients.
    pub act_bytes_intra: u64,
    /// The *planned* (nominal, fault-free) per-VW per-stage forward
    /// compute times the run dispatched with — the denominator of the
    /// runtime monitor's observed/planned straggler ratio.
    pub planned_fwd: Vec<Vec<SimTime>>,
    /// Planned per-VW per-stage backward compute times.
    pub planned_bwd: Vec<Vec<SimTime>>,
    /// Instant of the last processed event — for a draining segment
    /// (`SegmentOpts::stop_after_mb`) this is the splice point where
    /// the boundary wave's last work finished.
    pub end: SimTime,
    /// DES events processed (the fleet bench's work unit).
    pub events: u64,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Ev {
    FwdArrive {
        vw: u32,
        stage: u32,
        mb: u64,
    },
    FwdDone {
        vw: u32,
        stage: u32,
        mb: u64,
    },
    BwdArrive {
        vw: u32,
        stage: u32,
        mb: u64,
    },
    BwdDone {
        vw: u32,
        stage: u32,
        mb: u64,
    },
    PushChunkDone {
        vw: u32,
        wave: u64,
    },
    PullChunkDone {
        vw: u32,
    },
    TryInject {
        vw: u32,
    },
    /// A scheduled service-rate change fires
    /// (`SegmentOpts::rate_events[idx]`).
    Fault {
        idx: u32,
    },
}

struct VwState {
    next_mb: u64,
    completed: u64,
    clock: u64,
    /// Newest global wave reflected in the local weights (−1 = none).
    pulled: i64,
    /// Outstanding pull request: (target wave, request time).
    pull_request: Option<(u64, SimTime)>,
    /// Remaining chunks of an in-flight pull and the version it carries.
    pull_remaining: usize,
    pull_serving_version: i64,
    /// Remaining transfer chunks of each in-flight wave push, keyed by
    /// wave. Pushes of consecutive waves proceed *concurrently* (their
    /// transfers contend on the NIC timelines like any other traffic);
    /// per-wave counters keep their completions independent, so a
    /// sync-bound regime is not serialized artificially.
    push_remaining: BTreeMap<u64, usize>,
    block_start: Option<SimTime>,
    stats: VwStats,
}

/// The kinds of GPU task a stream op maps to.
#[derive(Debug, Clone, Copy)]
enum StreamTask {
    Forward,
    Backward,
    Fused,
    /// A stage-local forward re-run ahead of a backward (activation
    /// recomputation). Nothing downstream depends on its completion —
    /// its backward is reserved right behind it on the same FIFO GPU
    /// timeline — so it schedules no event.
    Recompute,
}

/// One stage's executor-enforced activation window (all dispatch
/// disciplines).
struct StageWindow {
    /// The declared occupancy bound ([`PipelineSchedule::max_in_flight`]).
    window: u64,
    /// Minibatches holding (or about to hold) an activation set here:
    /// forward *dispatched* (GPU slot reserved), backward not yet
    /// completed. An upper bound on trace-measured occupancy, which
    /// counts from forward *completion*.
    outstanding: u64,
    /// Forward arrivals deferred by the gate, in arrival (= minibatch)
    /// order, released one per backward completion.
    deferred: VecDeque<u64>,
}

/// One stage's position in its schedule stream (stream-order dispatch
/// only).
struct StageCursor {
    stream: ScheduleStream,
    /// The op the stage is waiting to execute (peeked, not consumed).
    next: Option<ScheduleOp>,
    /// Newest minibatch whose forward activations have arrived from
    /// the previous stage (arrivals are FIFO, so a high-water mark
    /// suffices).
    fwd_arrived: u64,
    /// Newest minibatch whose output gradients have arrived from the
    /// next stage.
    bwd_arrived: u64,
    /// Drain mode only (`SegmentOpts::stop_after_mb`): this stage has
    /// emitted every backward up to the stop point, so its cursor is
    /// parked permanently.
    drained: bool,
}

/// One physical GPU's position in its *composite* stream
/// (`GpuStreamOrder` dispatch only): the GPU executes one merged
/// timeline over all of its co-located virtual-stage chunks, so the
/// cursor and the arrival high-water marks are keyed by GPU and
/// chunk rather than by virtual stage.
struct GpuCursor {
    stream: GpuStream,
    /// Ops pulled from the stream but not yet executed. `buf[0]` is
    /// the head (strict-order) op; under a non-zero
    /// [`SegmentOpts::reorder_window`] the executor may serve a ready
    /// backward from deeper in the buffer while the head is blocked.
    buf: VecDeque<GpuOp>,
    /// Newest minibatch whose forward activations have arrived at
    /// each local chunk (chunk `c` is virtual stage
    /// `c × gpus + gpu`).
    fwd_arrived: Vec<u64>,
    /// Newest minibatch whose output gradients have arrived at each
    /// local chunk.
    bwd_arrived: Vec<u64>,
    /// Highest backward minibatch consumed (executed or, in drain
    /// mode, discarded) per local chunk — the GPU's drain progress.
    bwd_consumed: Vec<u64>,
}

/// How the executor learns about *other* virtual workers' push
/// clocks — the only cross-VW coupling in the whole simulation.
#[derive(Clone, Copy)]
enum Coupling<'a> {
    /// All VWs live in this `Exec`: pulls are served by scanning
    /// `min_clock` over the in-process states (the legacy path,
    /// bit-identical to the seed executor).
    InProcess,
    /// This `Exec` simulates exactly one VW (`id` on the bus); push
    /// landings are announced to the [`GateBus`] and pull serves are
    /// decided by it (`hetpipe-fleet`).
    Bus { bus: &'a dyn GateBus, id: usize },
}

struct Exec<'a> {
    p: ExecParams<'a>,
    coupling: Coupling<'a>,
    engine: Engine<Ev>,
    pool: ResourcePool,
    trace: Trace<SpanTag>,
    gpu_res: Vec<ResourceId>,
    nic_res: Vec<ResourceId>,
    states: Vec<VwState>,
    /// Per-VW per-stage forward/backward compute times.
    fwd: Vec<Vec<SimTime>>,
    bwd: Vec<Vec<SimTime>>,
    /// Per-VW sync chunk lists (same for every wave).
    chunks: Vec<Vec<SyncChunk>>,
    /// Per-VW per-stage stream cursors (stream-order dispatch only).
    cursors: Vec<Vec<StageCursor>>,
    /// Per-VW per-physical-GPU composite stream cursors
    /// (`GpuStreamOrder` dispatch only).
    gpu_cursors: Vec<Vec<GpuCursor>>,
    /// Per-VW per-stage activation windows (arrival-FIFO dispatch
    /// gates on these; both paths debug-assert against them).
    windows: Vec<Vec<StageWindow>>,
    dispatch: Dispatch,
    opts: SegmentOpts,
    horizon: SimTime,
    sync_inter: u64,
    sync_intra: u64,
    act_inter: u64,
    act_intra: u64,
}

impl<'a> Exec<'a> {
    fn new(p: ExecParams<'a>, opts: SegmentOpts, horizon: SimTime, coupling: Coupling<'a>) -> Self {
        let cluster = p.cluster;
        let mut pool = ResourcePool::new();
        let gpu_res: Vec<ResourceId> = cluster
            .devices()
            .map(|d| pool.add(Resource::new(format!("gpu{}", d.0))))
            .collect();
        let nic_res: Vec<ResourceId> = (0..cluster.node_count())
            .map(|n| pool.add(Resource::new(format!("nic{n}"))))
            .collect();

        let mut fwd = Vec::new();
        let mut bwd = Vec::new();
        let mut chunks = Vec::new();
        for vw in p.vws {
            let mut f = Vec::new();
            let mut b = Vec::new();
            for (q, range) in vw.plan.ranges.iter().enumerate() {
                let spec = cluster.spec_of(vw.devices[q]);
                let layers = &p.graph.layers()[range.clone()];
                let fs: f64 = layers
                    .iter()
                    .map(|l| pass_time_secs(l, &spec, Pass::Forward))
                    .sum();
                let bs: f64 = layers
                    .iter()
                    .map(|l| pass_time_secs(l, &spec, Pass::Backward))
                    .sum();
                // Each dispatched stage task pays the framework cost.
                f.push(SimTime::from_secs(fs + STAGE_TASK_OVERHEAD_SECS));
                b.push(SimTime::from_secs(bs + STAGE_TASK_OVERHEAD_SECS));
            }
            fwd.push(f);
            bwd.push(b);
            chunks.push(p.shards.chunks_for(p.graph, cluster, vw));
        }

        let states = (0..p.vws.len())
            .map(|_| VwState {
                next_mb: 1,
                completed: 0,
                clock: 0,
                pulled: -1,
                pull_request: None,
                pull_remaining: 0,
                pull_serving_version: -1,
                push_remaining: BTreeMap::new(),
                block_start: None,
                stats: VwStats::default(),
            })
            .collect();

        let dispatch = p.schedule.dispatch();
        // Per-stage effective recompute: stages whose window is 1 (and
        // fused last stages) skip checkpointing — the streams, the
        // cost model, and the memory accounting all key on the same
        // `recomputes_at` decision.
        let effective = |stage: usize, k: usize| -> RecomputePolicy {
            if p.schedule.recomputes_at(stage, k, p.wsp.nm, p.recompute) {
                p.recompute
            } else {
                RecomputePolicy::None
            }
        };
        let cursors = match dispatch {
            Dispatch::ArrivalFifo | Dispatch::GpuStreamOrder => Vec::new(),
            Dispatch::StreamOrder => p
                .vws
                .iter()
                .map(|vw| {
                    let k = vw.stages();
                    (0..k)
                        .map(|stage| StageCursor {
                            stream: p
                                .schedule
                                .stream(stage, k, p.wsp)
                                .with_recompute(effective(stage, k)),
                            next: None,
                            fwd_arrived: 0,
                            bwd_arrived: 0,
                            drained: false,
                        })
                        .collect()
                })
                .collect(),
        };
        let gpu_cursors = match dispatch {
            Dispatch::ArrivalFifo | Dispatch::StreamOrder => Vec::new(),
            Dispatch::GpuStreamOrder => p
                .vws
                .iter()
                .map(|vw| {
                    let chunks = p.schedule.colocated_stages();
                    let gpus = vw.stages() / chunks;
                    // One *shared* joint timetable per VW, fanned into
                    // the per-GPU handles — the slot simulation runs
                    // once per VW instead of once per GPU, with
                    // identical per-GPU op sequences.
                    p.schedule
                        .gpu_streams_with(gpus, p.wsp, p.recompute)
                        .expect("GpuStreamOrder schedules declare composite streams")
                        .into_iter()
                        .map(|stream| GpuCursor {
                            stream,
                            buf: VecDeque::new(),
                            fwd_arrived: vec![0; chunks],
                            bwd_arrived: vec![0; chunks],
                            bwd_consumed: vec![0; chunks],
                        })
                        .collect()
                })
                .collect(),
        };

        // The executor-enforced activation windows: exactly what the
        // memory model charges per stage (PipelineSchedule is the
        // contract between the partitioner's certification and the
        // runtime).
        let windows = p
            .vws
            .iter()
            .map(|vw| {
                let k = vw.stages();
                (0..k)
                    .map(|stage| StageWindow {
                        window: p.schedule.max_in_flight(stage, k, p.wsp.nm) as u64,
                        outstanding: 0,
                        deferred: VecDeque::new(),
                    })
                    .collect()
            })
            .collect();

        Exec {
            p,
            coupling,
            engine: Engine::new(),
            pool,
            trace: Trace::new(),
            gpu_res,
            nic_res,
            states,
            fwd,
            bwd,
            chunks,
            cursors,
            gpu_cursors,
            windows,
            dispatch,
            opts,
            horizon,
            sync_inter: 0,
            sync_intra: 0,
            act_inter: 0,
            act_intra: 0,
        }
    }

    fn gpu_of(&self, vw: usize, stage: usize) -> ResourceId {
        self.gpu_res[self.p.vws[vw].devices[stage].0]
    }

    fn node_of(&self, vw: usize, stage: usize) -> NodeId {
        self.p.cluster.node_of(self.p.vws[vw].devices[stage])
    }

    fn in_flight(&self, vw: usize) -> u64 {
        let s = &self.states[vw];
        s.next_mb - 1 - s.completed
    }

    fn min_clock(&self) -> u64 {
        self.states.iter().map(|s| s.clock).min().unwrap_or(0)
    }

    /// The pool resource a fault target maps to.
    fn fault_resource(&self, target: RateTarget) -> ResourceId {
        match target {
            RateTarget::Gpu(device) => self.gpu_res[device],
            RateTarget::Nic(node) => self.nic_res[node],
        }
    }

    /// Applies the rate change of `rate_events[idx]` to the resource's
    /// current-rate knob (the full timeline was installed up front, so
    /// reservations already integrate across this edge; the knob keeps
    /// `Resource::rate` — and the slower-endpoint choice in
    /// [`Exec::transfer`] — in step with the fired edges).
    fn apply_fault(&mut self, idx: usize) {
        let ev = self.opts.rate_events[idx];
        let res = self.fault_resource(ev.target);
        self.pool.get_mut(res).set_rate(ev.rate);
    }

    /// Reserves `nominal` GPU work starting no earlier than `now`,
    /// integrated over the GPU's installed rate timeline (exact
    /// identity on the nominal-rate golden path). Work that spans a
    /// rate edge is split across the windows it covers, so an outage
    /// with a later recovery delays the task instead of wedging it.
    fn gpu_reserve(&mut self, gpu: ResourceId, nominal: SimTime) -> (SimTime, SimTime) {
        let now = self.engine.now();
        self.pool.get_mut(gpu).reserve_work(now, nominal)
    }

    /// True when injection (or op execution) of `mb` is past the
    /// segment's stop point.
    fn past_stop(&self, mb: u64) -> bool {
        self.opts.stop_after_mb.is_some_and(|m| mb > m)
    }

    /// Moves `bytes` between two nodes, returning the arrival time.
    /// Inter-node transfers reserve both endpoint NICs; intra-node
    /// transfers use dedicated PCIe lanes.
    fn transfer(&mut self, from: NodeId, to: NodeId, bytes: u64, tag: SpanTag) -> SimTime {
        let now = self.engine.now();
        if from == to {
            // Dedicated PCIe lanes carry no timeline resource, so link
            // degradation targets NICs (inter-node traffic) only.
            now + SimTime::from_secs(LinkKind::Pcie.transfer_secs(bytes))
        } else {
            let dur = SimTime::from_secs(LinkKind::Infiniband.transfer_secs(bytes));
            let a = self.nic_res[from.0];
            let b = self.nic_res[to.0];
            // A degraded link runs at the slower endpoint's rate.
            let slower = if self.pool.get(a).rate() <= self.pool.get(b).rate() {
                a
            } else {
                b
            };
            let start = now
                .max(self.pool.get(a).free_at())
                .max(self.pool.get(b).free_at());
            let dur = self.pool.get(slower).duration_from(start, dur);
            let (s1, e1) = self.pool.get_mut(a).reserve(start, dur);
            let (s2, e2) = self.pool.get_mut(b).reserve(start, dur);
            debug_assert_eq!((s1, e1), (s2, e2), "paired NIC slots must align");
            self.trace.record(a, s1, e1, tag);
            self.trace.record(b, s2, e2, tag);
            e1
        }
    }

    fn account_act(&mut self, from: NodeId, to: NodeId, bytes: u64) {
        if from == to {
            self.act_intra += bytes;
        } else {
            self.act_inter += bytes;
        }
    }

    fn account_sync(&mut self, from: NodeId, to: NodeId, bytes: u64) {
        if from == to {
            self.sync_intra += bytes;
        } else {
            self.sync_inter += bytes;
        }
    }

    fn handle(&mut self, ev: Ev) {
        if let Ev::Fault { idx } = ev {
            return self.apply_fault(idx as usize);
        }
        match self.dispatch {
            Dispatch::ArrivalFifo => self.handle_arrival_fifo(ev),
            Dispatch::StreamOrder => self.handle_stream_order(ev),
            Dispatch::GpuStreamOrder => self.handle_gpu_stream_order(ev),
        }
    }

    // ------------------------------------------------------------------
    // Arrival-FIFO dispatch: the paper's wave schedule. This path is the
    // seed executor's event logic, unchanged (see `crate::golden` and
    // the golden-trace test).
    // ------------------------------------------------------------------

    fn handle_arrival_fifo(&mut self, ev: Ev) {
        match ev {
            Ev::TryInject { vw } => self.try_inject(vw as usize),
            Ev::FwdArrive { vw, stage, mb } => self.fwd_arrive(vw as usize, stage as usize, mb),
            Ev::FwdDone { vw, stage, mb } => self.fwd_done(vw as usize, stage as usize, mb),
            Ev::BwdArrive { vw, stage, mb } => self.bwd_arrive(vw as usize, stage as usize, mb),
            Ev::BwdDone { vw, stage, mb } => self.bwd_done(vw as usize, stage as usize, mb),
            Ev::PushChunkDone { vw, wave } => self.push_chunk_done(vw as usize, wave),
            Ev::PullChunkDone { vw } => self.pull_chunk_done(vw as usize),
            Ev::Fault { .. } => unreachable!("faults are handled centrally"),
        }
    }

    fn try_inject(&mut self, vw: usize) {
        let now = self.engine.now();
        loop {
            if self.in_flight(vw) >= self.p.wsp.nm as u64 {
                break;
            }
            let p = self.states[vw].next_mb;
            // Segment drain: stop injecting past the splice boundary.
            if self.past_stop(p) {
                break;
            }
            // The WSP start gate: do the local weights reflect the
            // required global wave?
            if let Some(req) = self.p.wsp.required_wave(p) {
                if self.states[vw].pulled < req as i64 {
                    let st = &mut self.states[vw];
                    if st.block_start.is_none() {
                        st.block_start = Some(now);
                    }
                    return;
                }
            }
            let st = &mut self.states[vw];
            if let Some(b) = st.block_start.take() {
                st.stats.inject_blocked += now - b;
            }
            st.next_mb += 1;
            self.engine.schedule_in(
                SimTime::ZERO,
                Ev::FwdArrive {
                    vw: vw as u32,
                    stage: 0,
                    mb: p,
                },
            );
        }
    }

    /// Forward activations of `mb` arrive at `stage`. Dispatch is gated
    /// on the stage's declared activation window: if the stage already
    /// has `window` minibatches holding (or dispatched to hold)
    /// activation sets, the arrival queues until a backward releases
    /// one. This is what makes [`PipelineSchedule::max_in_flight`] an
    /// enforced bound rather than documentation. (For the wave
    /// schedule the declared window is the injection cap `Nm`, which
    /// the `try_inject` gate already guarantees — so the gate never
    /// fires there and the golden traces are bit-identical — but a
    /// schedule declaring a tighter window is throttled to it.)
    fn fwd_arrive(&mut self, vw: usize, stage: usize, mb: u64) {
        // Same tracking predicate as release_window, so acquire and
        // release stay paired for any arrival-FIFO schedule.
        if self.window_tracked(vw, stage) {
            let w = &mut self.windows[vw][stage];
            if w.outstanding >= w.window {
                w.deferred.push_back(mb);
                return;
            }
            w.outstanding += 1;
        }
        self.dispatch_forward(vw, stage, mb);
    }

    /// Reserves the GPU slot(s) for `mb`'s forward (or fused
    /// forward+backward at the last stage) and schedules completion.
    fn dispatch_forward(&mut self, vw: usize, stage: usize, mb: u64) {
        let k = self.p.vws[vw].stages();
        let gpu = self.gpu_of(vw, stage);
        if stage == k - 1 {
            // Fused forward+backward at the last stage (Section 4).
            let (s, e) = self.gpu_reserve(gpu, self.fwd[vw][stage] + self.bwd[vw][stage]);
            self.trace.record(
                gpu,
                s,
                e,
                SpanTag::Backward {
                    vw: vw as u32,
                    stage: stage as u32,
                    mb,
                },
            );
            self.engine.schedule_at(
                e,
                Ev::BwdDone {
                    vw: vw as u32,
                    stage: stage as u32,
                    mb,
                },
            );
        } else {
            let (s, e) = self.gpu_reserve(gpu, self.fwd[vw][stage]);
            self.trace.record(
                gpu,
                s,
                e,
                SpanTag::Forward {
                    vw: vw as u32,
                    stage: stage as u32,
                    mb,
                },
            );
            self.engine.schedule_at(
                e,
                Ev::FwdDone {
                    vw: vw as u32,
                    stage: stage as u32,
                    mb,
                },
            );
        }
    }

    fn fwd_done(&mut self, vw: usize, stage: usize, mb: u64) {
        // Send the boundary activations to the next stage.
        let range_end = self.p.vws[vw].plan.ranges[stage].end;
        let bytes = self.p.graph.boundary_bytes(range_end - 1);
        let from = self.node_of(vw, stage);
        let to = self.node_of(vw, stage + 1);
        self.account_act(from, to, bytes);
        let arrive = self.transfer(
            from,
            to,
            bytes,
            SpanTag::ActTransfer {
                vw: vw as u32,
                stage: stage as u32,
                backward: false,
            },
        );
        self.engine.schedule_at(
            arrive,
            Ev::FwdArrive {
                vw: vw as u32,
                stage: (stage + 1) as u32,
                mb,
            },
        );
    }

    fn bwd_arrive(&mut self, vw: usize, stage: usize, mb: u64) {
        let gpu = self.gpu_of(vw, stage);
        let k = self.p.vws[vw].stages();
        if self
            .p
            .schedule
            .recomputes_at(stage, k, self.p.wsp.nm, self.p.recompute)
        {
            // Rematerialize the stage's activations from the stashed
            // boundary input: one forward re-run reserved directly
            // ahead of the backward on the same FIFO timeline.
            let (s, e) = self.gpu_reserve(gpu, self.fwd[vw][stage]);
            self.trace.record(
                gpu,
                s,
                e,
                SpanTag::Recompute {
                    vw: vw as u32,
                    stage: stage as u32,
                    mb,
                },
            );
        }
        let (s, e) = self.gpu_reserve(gpu, self.bwd[vw][stage]);
        self.trace.record(
            gpu,
            s,
            e,
            SpanTag::Backward {
                vw: vw as u32,
                stage: stage as u32,
                mb,
            },
        );
        self.engine.schedule_at(
            e,
            Ev::BwdDone {
                vw: vw as u32,
                stage: stage as u32,
                mb,
            },
        );
    }

    /// Whether `stage` participates in activation-window tracking: a
    /// fused last stage never holds more than the activation set of
    /// the task being executed, so it is exempt.
    fn window_tracked(&self, vw: usize, stage: usize) -> bool {
        !(self.p.schedule.fused_last_stage() && stage + 1 == self.p.vws[vw].stages())
    }

    /// A backward completed at `stage`: release one slot of the
    /// stage's activation window and dispatch the next deferred
    /// forward, if the gate held one back.
    fn release_window(&mut self, vw: usize, stage: usize) {
        if !self.window_tracked(vw, stage) {
            return;
        }
        let w = &mut self.windows[vw][stage];
        debug_assert!(w.outstanding >= 1, "window release without a holder");
        w.outstanding -= 1;
        if w.outstanding < w.window {
            if let Some(mb) = w.deferred.pop_front() {
                w.outstanding += 1;
                self.dispatch_forward(vw, stage, mb);
            }
        }
    }

    fn bwd_done(&mut self, vw: usize, stage: usize, mb: u64) {
        self.release_window(vw, stage);
        if stage > 0 {
            self.send_gradient_left(vw, stage, mb);
            return;
        }

        // Minibatch complete.
        let now = self.engine.now();
        let st = &mut self.states[vw];
        st.completed += 1;
        st.stats.completions.push(now);
        let completed = st.completed;
        self.engine
            .schedule_in(SimTime::ZERO, Ev::TryInject { vw: vw as u32 });
        debug_assert_eq!(completed, mb, "FIFO pipelines complete in order");

        let nm = self.p.wsp.nm as u64;
        if completed.is_multiple_of(nm) {
            let wave = completed / nm - 1;
            self.start_push(vw, wave);
        }
    }

    // ------------------------------------------------------------------
    // Stream-order dispatch: fill-drain, 1F1B, interleaved. Each stage
    // executes its ScheduleOp stream in order; an op runs once its data
    // dependency has arrived.
    // ------------------------------------------------------------------

    fn handle_stream_order(&mut self, ev: Ev) {
        match ev {
            Ev::TryInject { vw } => self.advance(vw as usize, 0),
            Ev::FwdArrive { vw, stage, mb } => {
                let (vw, stage) = (vw as usize, stage as usize);
                let cur = &mut self.cursors[vw][stage];
                debug_assert!(mb > cur.fwd_arrived, "activations arrive in order");
                cur.fwd_arrived = mb;
                self.advance(vw, stage);
            }
            Ev::FwdDone { vw, stage, mb } => {
                let (vw, stage) = (vw as usize, stage as usize);
                if self.window_tracked(vw, stage) {
                    // Stream order keeps occupancy within the declared
                    // window structurally (the stream interleaves
                    // forwards with the backwards that release them);
                    // keep completion-based books so the invariant is
                    // checked, not assumed. An activation set exists
                    // from forward completion to backward completion.
                    let w = &mut self.windows[vw][stage];
                    w.outstanding += 1;
                    debug_assert!(
                        w.outstanding <= w.window,
                        "stream execution exceeded the declared activation window \
                         ({} > {}) at vw{vw} stage {stage}",
                        w.outstanding,
                        w.window
                    );
                }
                if stage + 1 < self.p.vws[vw].stages() {
                    // Identical transfer modelling to the arrival path.
                    self.fwd_done(vw, stage, mb);
                }
            }
            Ev::BwdArrive { vw, stage, mb } => {
                let (vw, stage) = (vw as usize, stage as usize);
                let cur = &mut self.cursors[vw][stage];
                debug_assert!(mb > cur.bwd_arrived, "gradients arrive in order");
                cur.bwd_arrived = mb;
                self.advance(vw, stage);
            }
            Ev::BwdDone { vw, stage, mb } => {
                let (vw, stage) = (vw as usize, stage as usize);
                if self.window_tracked(vw, stage) {
                    // Stream order enforces the window structurally;
                    // keep the occupancy books so the invariant is
                    // checked, not assumed.
                    let w = &mut self.windows[vw][stage];
                    debug_assert!(w.outstanding >= 1, "window release without a holder");
                    w.outstanding -= 1;
                }
                if stage > 0 {
                    self.send_gradient_left(vw, stage, mb);
                    return;
                }
                // Minibatch complete: the stage-0 cursor may be parked
                // on a Push op waiting for this completion.
                let now = self.engine.now();
                let st = &mut self.states[vw];
                st.completed += 1;
                st.stats.completions.push(now);
                debug_assert_eq!(st.completed, mb, "backwards complete in minibatch order");
                self.advance(vw, 0);
            }
            Ev::PushChunkDone { vw, wave } => self.push_chunk_done(vw as usize, wave),
            Ev::PullChunkDone { vw } => self.pull_chunk_done(vw as usize),
            Ev::Fault { .. } => unreachable!("faults are handled centrally"),
        }
    }

    /// The WSP pull gate, shared by every stream-order dispatch path:
    /// true (with blocked-time bookkeeping closed out) when the local
    /// weights reflect `wave`, false (with the blocked window opened)
    /// when the cursor must stay parked on the gate.
    fn pull_gate_open(&mut self, vw: usize, wave: u64, now: SimTime) -> bool {
        let st = &mut self.states[vw];
        if st.pulled >= wave as i64 {
            if let Some(b) = st.block_start.take() {
                st.stats.inject_blocked += now - b;
            }
            true
        } else {
            if st.block_start.is_none() {
                st.block_start = Some(now);
            }
            false
        }
    }

    /// Whether `wave`'s last backward has completed, so its explicit
    /// [`ScheduleOp::Push`] may fire (shared by every stream-order
    /// dispatch path).
    fn wave_push_ready(&self, vw: usize, wave: u64) -> bool {
        self.states[vw].completed >= self.p.wsp.last_of_wave(wave)
    }

    /// Executes stage ops in stream order for as long as their
    /// dependencies are satisfied, reserving GPU time slots eagerly
    /// (the FIFO timeline serializes them in stream order).
    fn advance(&mut self, vw: usize, stage: usize) {
        let now = self.engine.now();
        let k = self.p.vws[vw].stages();
        loop {
            if self.cursors[vw][stage].drained {
                return;
            }
            let op = {
                let cur = &mut self.cursors[vw][stage];
                if cur.next.is_none() {
                    cur.next = cur.stream.next();
                }
                cur.next.expect("schedule streams are infinite")
            };
            // Segment drain: ops of minibatches past the splice
            // boundary never execute. Forwards (and their recomputes)
            // are discarded so the stream can reach the remaining
            // in-boundary backwards behind them; the stage's first
            // past-boundary backward (per-stage backwards are in
            // order) proves every boundary backward was consumed, so
            // the cursor parks permanently there.
            if let Some(mb) = op.minibatch() {
                if self.past_stop(mb) {
                    if op.has_backward() {
                        self.cursors[vw][stage].drained = true;
                        return;
                    }
                    self.cursors[vw][stage].next = None;
                    continue;
                }
            }
            match op {
                ScheduleOp::PullGate { wave } => {
                    if self.pull_gate_open(vw, wave, now) {
                        self.cursors[vw][stage].next = None;
                    } else {
                        return;
                    }
                }
                ScheduleOp::Push { wave } => {
                    if self.wave_push_ready(vw, wave) {
                        self.cursors[vw][stage].next = None;
                        self.start_push(vw, wave);
                    } else {
                        return;
                    }
                }
                ScheduleOp::Forward { mb } => {
                    if stage > 0 && self.cursors[vw][stage].fwd_arrived < mb {
                        return;
                    }
                    if !self.reserve_compute(vw, stage, mb, StreamTask::Forward) {
                        return;
                    }
                    self.cursors[vw][stage].next = None;
                }
                ScheduleOp::FusedFwdBwd { mb } => {
                    if stage > 0 && self.cursors[vw][stage].fwd_arrived < mb {
                        return;
                    }
                    if !self.reserve_compute(vw, stage, mb, StreamTask::Fused) {
                        return;
                    }
                    self.cursors[vw][stage].next = None;
                }
                ScheduleOp::Backward { mb } => {
                    // At the last stage the backward's input is its own
                    // forward, which precedes it on the same GPU
                    // timeline; elsewhere it waits for the gradient
                    // from the right.
                    if stage + 1 < k && self.cursors[vw][stage].bwd_arrived < mb {
                        return;
                    }
                    if !self.reserve_compute(vw, stage, mb, StreamTask::Backward) {
                        return;
                    }
                    self.cursors[vw][stage].next = None;
                }
                ScheduleOp::Recompute { mb } => {
                    // Gated on the same dependency as the backward it
                    // precedes, so the rematerialized activations do
                    // not sit idle while the gradient is in flight.
                    if stage + 1 < k && self.cursors[vw][stage].bwd_arrived < mb {
                        return;
                    }
                    if !self.reserve_compute(vw, stage, mb, StreamTask::Recompute) {
                        return;
                    }
                    self.cursors[vw][stage].next = None;
                }
            }
        }
    }

    // ------------------------------------------------------------------
    // Per-GPU composite stream dispatch: the Megatron-style interleaved
    // schedule. Each physical GPU executes ONE merged op timeline over
    // all of its co-located virtual-stage chunks, in strict stream
    // order — the schedule (not dependency-arrival order) decides how
    // the chunks interleave on the GPU.
    // ------------------------------------------------------------------

    fn handle_gpu_stream_order(&mut self, ev: Ev) {
        match ev {
            Ev::TryInject { vw } => self.advance_gpu(vw as usize, 0),
            Ev::FwdArrive { vw, stage, mb } => {
                let (vw, stage) = (vw as usize, stage as usize);
                let gpus = self.gpu_cursors[vw].len();
                let (gpu, chunk) = (stage % gpus, stage / gpus);
                let cur = &mut self.gpu_cursors[vw][gpu];
                debug_assert!(mb > cur.fwd_arrived[chunk], "activations arrive in order");
                cur.fwd_arrived[chunk] = mb;
                self.advance_gpu(vw, gpu);
            }
            Ev::FwdDone { vw, stage, mb } => {
                let (vw, stage) = (vw as usize, stage as usize);
                // Completion-based occupancy books, identical to the
                // stream-order path: the composite stream keeps every
                // chunk within its declared window structurally; the
                // books check the invariant rather than assume it.
                let w = &mut self.windows[vw][stage];
                w.outstanding += 1;
                debug_assert!(
                    w.outstanding <= w.window,
                    "composite stream exceeded the declared activation window \
                     ({} > {}) at vw{vw} stage {stage}",
                    w.outstanding,
                    w.window
                );
                if stage + 1 < self.p.vws[vw].stages() {
                    self.fwd_done(vw, stage, mb);
                }
            }
            Ev::BwdArrive { vw, stage, mb } => {
                let (vw, stage) = (vw as usize, stage as usize);
                let gpus = self.gpu_cursors[vw].len();
                let (gpu, chunk) = (stage % gpus, stage / gpus);
                let cur = &mut self.gpu_cursors[vw][gpu];
                debug_assert!(mb > cur.bwd_arrived[chunk], "gradients arrive in order");
                cur.bwd_arrived[chunk] = mb;
                self.advance_gpu(vw, gpu);
            }
            Ev::BwdDone { vw, stage, mb } => {
                let (vw, stage) = (vw as usize, stage as usize);
                let w = &mut self.windows[vw][stage];
                debug_assert!(w.outstanding >= 1, "window release without a holder");
                w.outstanding -= 1;
                if stage > 0 {
                    self.send_gradient_left(vw, stage, mb);
                    return;
                }
                // Minibatch complete: GPU 0's cursor may be parked on a
                // Push op waiting for this completion.
                let now = self.engine.now();
                let st = &mut self.states[vw];
                st.completed += 1;
                st.stats.completions.push(now);
                debug_assert_eq!(st.completed, mb, "backwards complete in minibatch order");
                self.advance_gpu(vw, 0);
            }
            Ev::PushChunkDone { vw, wave } => self.push_chunk_done(vw as usize, wave),
            Ev::PullChunkDone { vw } => self.pull_chunk_done(vw as usize),
            Ev::Fault { .. } => unreachable!("faults are handled centrally"),
        }
    }

    /// Ensures `gpu`'s op buffer holds at least `len` ops, pulling
    /// from the composite stream as needed.
    fn fill_gpu_buf(&mut self, vw: usize, gpu: usize, len: usize) {
        let cur = &mut self.gpu_cursors[vw][gpu];
        while cur.buf.len() < len {
            let gop = cur.stream.next().expect("gpu streams are infinite");
            cur.buf.push_back(gop);
        }
    }

    /// Executes `gpu`'s composite stream in order for as long as op
    /// dependencies are satisfied, reserving GPU time slots eagerly
    /// (the FIFO timeline serializes them in stream order) — the
    /// per-GPU analogue of [`Exec::advance`]. Two segment-mode
    /// extensions, both off by default:
    ///
    /// - **drain** ([`SegmentOpts::stop_after_mb`]): past-boundary ops
    ///   are discarded unexecuted. Unlike the per-stage streams, a
    ///   composite stream interleaves chunks, and a deep chunk's
    ///   backward of `mb + 1` can legitimately precede a shallow
    ///   chunk's backward of `mb` on the same GPU timeline — so
    ///   past-boundary *backwards* are discarded too (marking their
    ///   chunk fully drained), and the cursor parks once every local
    ///   chunk has consumed its boundary backward.
    /// - **bounded reorder** ([`SegmentOpts::reorder_window`]): when
    ///   the head op is blocked on a data dependency, a *ready
    ///   backward* (with its recompute prefix) from up to `window`
    ///   ops ahead may run instead — the `SkipStraggler` policy's
    ///   lever against head-of-line blocking when a straggler's
    ///   gradient is late. Backwards only (they release activation
    ///   windows, never acquire), never past a closed pull gate, and
    ///   never past an earlier op of their own stage, so declared
    ///   occupancy, per-stage order, and staleness all hold.
    fn advance_gpu(&mut self, vw: usize, gpu: usize) {
        let now = self.engine.now();
        let k = self.p.vws[vw].stages();
        let gpus = self.gpu_cursors[vw].len();
        loop {
            self.fill_gpu_buf(vw, gpu, 1);
            let gop = self.gpu_cursors[vw][gpu].buf[0];
            let stage = gop.stage;
            debug_assert_eq!(stage % gpus, gpu, "op on a foreign GPU");
            let chunk = stage / gpus;
            // Segment drain: discard past-boundary ops; park once all
            // local chunks crossed the boundary (keeping the head
            // available for the boundary wave's Push / PullGate).
            if let Some(stop) = self.opts.stop_after_mb {
                if let Some(mb) = gop.op.minibatch() {
                    if mb > stop {
                        let cur = &mut self.gpu_cursors[vw][gpu];
                        if gop.op.has_backward() {
                            // Backwards are per-stage in order: the
                            // first past-boundary one proves the chunk
                            // is drained.
                            cur.bwd_consumed[chunk] = cur.bwd_consumed[chunk].max(stop);
                        }
                        cur.buf.pop_front();
                        if self.gpu_cursors[vw][gpu]
                            .bwd_consumed
                            .iter()
                            .all(|&m| m >= stop)
                        {
                            return;
                        }
                        continue;
                    }
                }
            }
            let executed = match gop.op {
                ScheduleOp::PullGate { wave } => {
                    if self.pull_gate_open(vw, wave, now) {
                        self.gpu_cursors[vw][gpu].buf.pop_front();
                        continue;
                    }
                    // Nothing may run past a closed gate (staleness).
                    return;
                }
                ScheduleOp::Push { wave } => {
                    if self.wave_push_ready(vw, wave) {
                        self.gpu_cursors[vw][gpu].buf.pop_front();
                        self.start_push(vw, wave);
                        continue;
                    }
                    false
                }
                ScheduleOp::Forward { mb } => {
                    if stage > 0 && self.gpu_cursors[vw][gpu].fwd_arrived[chunk] < mb {
                        false
                    } else if !self.reserve_compute(vw, stage, mb, StreamTask::Forward) {
                        return;
                    } else {
                        true
                    }
                }
                ScheduleOp::Backward { mb } => {
                    // At the pipeline's last virtual stage the
                    // backward's input is its own forward, which
                    // precedes it on this GPU's timeline; elsewhere it
                    // waits for the gradient from the right.
                    if stage + 1 < k && self.gpu_cursors[vw][gpu].bwd_arrived[chunk] < mb {
                        false
                    } else if !self.reserve_compute(vw, stage, mb, StreamTask::Backward) {
                        return;
                    } else {
                        let cur = &mut self.gpu_cursors[vw][gpu];
                        cur.bwd_consumed[chunk] = mb;
                        true
                    }
                }
                ScheduleOp::Recompute { mb } => {
                    if stage + 1 < k && self.gpu_cursors[vw][gpu].bwd_arrived[chunk] < mb {
                        false
                    } else if !self.reserve_compute(vw, stage, mb, StreamTask::Recompute) {
                        return;
                    } else {
                        true
                    }
                }
                ScheduleOp::FusedFwdBwd { .. } => {
                    unreachable!("composite streams never fuse")
                }
            };
            if executed {
                self.gpu_cursors[vw][gpu].buf.pop_front();
                continue;
            }
            // Head blocked on a data dependency (or an unready push):
            // bounded out-of-order service of a ready backward.
            if self.opts.reorder_window == 0 || !self.reorder_backward(vw, gpu, k, gpus) {
                return;
            }
        }
    }

    /// Scans up to `reorder_window` ops past the blocked head of
    /// `gpu`'s buffer for a ready backward (with its recompute prefix)
    /// and executes it out of line. Returns whether anything ran. See
    /// [`Exec::advance_gpu`] for the soundness constraints.
    fn reorder_backward(&mut self, vw: usize, gpu: usize, k: usize, gpus: usize) -> bool {
        let window = self.opts.reorder_window;
        for j in 1..=window {
            self.fill_gpu_buf(vw, gpu, j + 1);
            let gop = self.gpu_cursors[vw][gpu].buf[j];
            let (stage, chunk) = (gop.stage, gop.stage / gpus);
            // Preserve per-stage order: never overtake an earlier op
            // of the same stage (covers "backward before its own
            // forward" too, since the forward precedes it in-stage).
            let overtakes_same_stage = self.gpu_cursors[vw][gpu]
                .buf
                .iter()
                .take(j)
                .any(|g| g.stage == stage);
            if overtakes_same_stage {
                continue;
            }
            match gop.op {
                ScheduleOp::Backward { mb } => {
                    if self.past_stop(mb) {
                        continue;
                    }
                    if stage + 1 < k && self.gpu_cursors[vw][gpu].bwd_arrived[chunk] < mb {
                        continue;
                    }
                    if !self.reserve_compute(vw, stage, mb, StreamTask::Backward) {
                        return false;
                    }
                    let cur = &mut self.gpu_cursors[vw][gpu];
                    cur.bwd_consumed[chunk] = mb;
                    cur.buf.remove(j);
                    return true;
                }
                ScheduleOp::Recompute { mb } => {
                    // A checkpointing stage's backward rides directly
                    // behind its recompute; serve them as a unit.
                    if self.past_stop(mb) {
                        continue;
                    }
                    if stage + 1 < k && self.gpu_cursors[vw][gpu].bwd_arrived[chunk] < mb {
                        continue;
                    }
                    self.fill_gpu_buf(vw, gpu, j + 2);
                    debug_assert_eq!(
                        self.gpu_cursors[vw][gpu].buf[j + 1],
                        GpuOp {
                            stage,
                            op: ScheduleOp::Backward { mb }
                        },
                        "recompute must precede its own backward"
                    );
                    if !self.reserve_compute(vw, stage, mb, StreamTask::Recompute) {
                        return false;
                    }
                    self.gpu_cursors[vw][gpu].buf.remove(j);
                    // Backward now sits at index j. Reserving it can
                    // only fail at the horizon edge — then it stays
                    // buffered, exactly like a strict-order cursor
                    // parked after its recompute.
                    if !self.reserve_compute(vw, stage, mb, StreamTask::Backward) {
                        return false;
                    }
                    let cur = &mut self.gpu_cursors[vw][gpu];
                    cur.bwd_consumed[chunk] = mb;
                    cur.buf.remove(j);
                    return true;
                }
                // Forwards acquire activation slots — not reordered.
                // Pushes are wave bookkeeping a backward may pass.
                ScheduleOp::Forward { .. } | ScheduleOp::Push { .. } => continue,
                // A gate fences everything behind it: stop the scan.
                ScheduleOp::PullGate { .. } => return false,
                ScheduleOp::FusedFwdBwd { .. } => {
                    unreachable!("composite streams never fuse")
                }
            }
        }
        false
    }

    /// Reserves a compute task on the stage's GPU, records its span,
    /// and schedules its completion event; returns false when past the
    /// horizon (stops eager reservation — the caller must then leave
    /// its cursor parked on the op, and clear the cursor on success).
    fn reserve_compute(&mut self, vw: usize, stage: usize, mb: u64, task: StreamTask) -> bool {
        let gpu = self.gpu_of(vw, stage);
        if self.pool.get(gpu).free_at() >= self.horizon {
            return false;
        }
        let dur = match task {
            StreamTask::Forward | StreamTask::Recompute => self.fwd[vw][stage],
            StreamTask::Backward => self.bwd[vw][stage],
            StreamTask::Fused => self.fwd[vw][stage] + self.bwd[vw][stage],
        };
        let (s, e) = self.gpu_reserve(gpu, dur);
        let (vw32, stage32) = (vw as u32, stage as u32);
        let (tag, done) = match task {
            StreamTask::Forward => (
                SpanTag::Forward {
                    vw: vw32,
                    stage: stage32,
                    mb,
                },
                Some(Ev::FwdDone {
                    vw: vw32,
                    stage: stage32,
                    mb,
                }),
            ),
            // Nothing waits on a recompute: its backward is reserved
            // right behind it on the same FIFO timeline.
            StreamTask::Recompute => (
                SpanTag::Recompute {
                    vw: vw32,
                    stage: stage32,
                    mb,
                },
                None,
            ),
            // Fused tasks are traced as Backward, matching the wave
            // path's fused last stage.
            StreamTask::Backward | StreamTask::Fused => (
                SpanTag::Backward {
                    vw: vw32,
                    stage: stage32,
                    mb,
                },
                Some(Ev::BwdDone {
                    vw: vw32,
                    stage: stage32,
                    mb,
                }),
            ),
        };
        self.trace.record(gpu, s, e, tag);
        if let Some(done) = done {
            self.engine.schedule_at(e, done);
        }
        true
    }

    /// Sends the gradient w.r.t. a stage's inputs to the previous
    /// stage (shared by both dispatch paths).
    fn send_gradient_left(&mut self, vw: usize, stage: usize, mb: u64) {
        let range_start = self.p.vws[vw].plan.ranges[stage].start;
        let bytes = self.p.graph.input_bytes_of(range_start);
        let from = self.node_of(vw, stage);
        let to = self.node_of(vw, stage - 1);
        self.account_act(from, to, bytes);
        let arrive = self.transfer(
            from,
            to,
            bytes,
            SpanTag::ActTransfer {
                vw: vw as u32,
                stage: stage as u32,
                backward: true,
            },
        );
        self.engine.schedule_at(
            arrive,
            Ev::BwdArrive {
                vw: vw as u32,
                stage: (stage - 1) as u32,
                mb,
            },
        );
    }

    // ------------------------------------------------------------------
    // WSP push/pull protocol (shared by both dispatch paths).
    // ------------------------------------------------------------------

    fn start_push(&mut self, vw: usize, wave: u64) {
        // Consecutive waves' pushes run *concurrently*: each wave
        // tracks its own chunk counter, and its transfers contend on
        // the NIC timelines like any other traffic instead of being
        // serialized FIFO behind the previous wave's completion. (The
        // frozen seed executor in `crate::golden` keeps a single
        // unguarded counter; none of the golden-tested configurations
        // overlap pushes, so trace equality is unaffected.)
        let chunk_list = if self.p.sync_transfers {
            self.chunks[vw].clone()
        } else {
            Vec::new()
        };
        if chunk_list.is_empty() {
            // Zero-transfer pushes land instantly; announce before
            // completing so the bus learns the landing first.
            if let Coupling::Bus { bus, id } = self.coupling {
                bus.announce_push(id, wave, self.engine.now());
            }
            self.push_completed(vw, wave);
            return;
        }
        let prev = self.states[vw]
            .push_remaining
            .insert(wave, chunk_list.len());
        debug_assert!(prev.is_none(), "wave {wave} pushed twice");
        let mut lands = SimTime::ZERO;
        for ch in chunk_list {
            self.account_sync(ch.gpu_node, ch.shard_node, ch.bytes);
            let arrive = self.transfer(
                ch.gpu_node,
                ch.shard_node,
                ch.bytes,
                SpanTag::SyncTransfer {
                    vw: vw as u32,
                    wave,
                    pull: false,
                },
            );
            lands = lands.max(arrive);
            self.engine.schedule_at(
                arrive,
                Ev::PushChunkDone {
                    vw: vw as u32,
                    wave,
                },
            );
        }
        // The landing instant is fully decided at push *start* (chunk
        // arrivals were just reserved on the NIC timelines) — this is
        // the lookahead the conservative fleet protocol runs on.
        if let Coupling::Bus { bus, id } = self.coupling {
            bus.announce_push(id, wave, lands);
        }
    }

    fn push_chunk_done(&mut self, vw: usize, wave: u64) {
        let st = &mut self.states[vw];
        let remaining = st
            .push_remaining
            .get_mut(&wave)
            .expect("chunk completion for a wave that is not in flight");
        *remaining -= 1;
        if *remaining == 0 {
            st.push_remaining.remove(&wave);
            self.push_completed(vw, wave);
        }
    }

    fn push_completed(&mut self, vw: usize, wave: u64) {
        let now = self.engine.now();
        {
            let st = &mut self.states[vw];
            // Concurrent waves can complete out of order (their chunks
            // take different NIC paths); the local clock is monotone.
            st.clock = st.clock.max(wave + 1);
            st.stats.waves_pushed = st.clock;
        }
        // Request this VW's own pull (Section 5: at the end of clock c,
        // pull weights that cover wave c − D).
        if let Some(target) = self.p.wsp.pull_target_after_push(wave) {
            let st = &mut self.states[vw];
            match &mut st.pull_request {
                Some((t, _since)) => *t = (*t).max(target),
                None => st.pull_request = Some((target, now)),
            }
        }
        // A new push may unblock any VW's pending pull. Under bus
        // coupling this is the bus's job: the owning `VwEngine` polls
        // before its next local event instead.
        if matches!(self.coupling, Coupling::InProcess) {
            for v in 0..self.states.len() {
                self.try_serve_pull(v);
            }
        }
    }

    fn try_serve_pull(&mut self, vw: usize) {
        debug_assert!(
            matches!(self.coupling, Coupling::InProcess),
            "bus-coupled serves are decided by the bus"
        );
        if self.states[vw].pull_remaining > 0 {
            return; // A pull transfer is already in flight.
        }
        let Some((target, _since)) = self.states[vw].pull_request else {
            return;
        };
        let min_clock = self.min_clock();
        if min_clock < target + 1 {
            return; // Straggler has not pushed wave `target` yet.
        }
        self.serve_pull(vw, min_clock as i64 - 1);
    }

    /// Applies a decided pull serve for `vw` at the current instant,
    /// installing the global `version` — the shared tail of the
    /// in-process `try_serve_pull` scan and the fleet bus verdict
    /// ([`VwEngine`] calls this when the bus returns
    /// [`ServePoll::Ready`]).
    fn serve_pull(&mut self, vw: usize, version: i64) {
        let now = self.engine.now();
        let (_, since) = self.states[vw]
            .pull_request
            .expect("serve_pull requires a pending request");
        debug_assert_eq!(self.states[vw].pull_remaining, 0);
        {
            let st = &mut self.states[vw];
            st.stats.pull_wait += now - since;
            st.stats.wait_windows.push((since, now));
            st.pull_request = None;
            st.pull_serving_version = version;
        }
        let chunk_list = if self.p.sync_transfers {
            self.chunks[vw].clone()
        } else {
            Vec::new()
        };
        if chunk_list.is_empty() {
            let st = &mut self.states[vw];
            st.pulled = st.pulled.max(st.pull_serving_version);
            self.engine
                .schedule_in(SimTime::ZERO, Ev::TryInject { vw: vw as u32 });
            return;
        }
        self.states[vw].pull_remaining = chunk_list.len();
        for ch in chunk_list {
            // Pull direction: shard -> GPU.
            self.account_sync(ch.shard_node, ch.gpu_node, ch.bytes);
            let wave = self.states[vw].pull_serving_version.max(0) as u64;
            let arrive = self.transfer(
                ch.shard_node,
                ch.gpu_node,
                ch.bytes,
                SpanTag::SyncTransfer {
                    vw: vw as u32,
                    wave,
                    pull: true,
                },
            );
            self.engine
                .schedule_at(arrive, Ev::PullChunkDone { vw: vw as u32 });
        }
    }

    fn pull_chunk_done(&mut self, vw: usize) {
        let st = &mut self.states[vw];
        st.pull_remaining -= 1;
        if st.pull_remaining == 0 {
            st.pulled = st.pulled.max(st.pull_serving_version);
            self.engine
                .schedule_in(SimTime::ZERO, Ev::TryInject { vw: vw as u32 });
            // A newer request may have queued while transferring. The
            // bus-coupled engine re-polls instead (`refresh_pending`
            // sees the request become serveable at this instant).
            if matches!(self.coupling, Coupling::InProcess) {
                self.try_serve_pull(vw);
            }
        }
    }

    fn run(mut self) -> RunStats {
        self.prologue();
        let horizon = self.horizon;
        while let Some(ev) = self.engine.next_event_until(horizon) {
            self.handle(ev);
        }
        self.finish_stats()
    }

    /// Installs rate timelines and schedules the initial events — the
    /// setup both [`Exec::run`] and an externally-driven [`VwEngine`]
    /// perform before the first pop.
    fn prologue(&mut self) {
        // Rates carried over from earlier segments (fault windows that
        // opened before this segment started).
        for i in 0..self.opts.initial_rates.len() {
            let (target, rate) = self.opts.initial_rates[i];
            let res = self.fault_resource(target);
            self.pool.get_mut(res).set_rate(rate);
        }
        // Scheduled rate changes are first-class DES events.
        for (i, ev) in self.opts.rate_events.iter().enumerate() {
            self.engine.schedule_at(ev.at, Ev::Fault { idx: i as u32 });
        }
        // Install each resource's full piecewise rate timeline up
        // front so reservations integrate across windows: a task that
        // spans an outage with a later recovery is delayed, not wedged
        // at the outage rate forever. Fault-free resources keep an
        // empty timeline and take the exact legacy scaling path.
        let mut timelines: std::collections::BTreeMap<ResourceId, Vec<(SimTime, f64)>> =
            std::collections::BTreeMap::new();
        for &(target, rate) in self.opts.initial_rates.iter() {
            let res = self.fault_resource(target);
            timelines
                .entry(res)
                .or_default()
                .push((SimTime::ZERO, rate));
        }
        for ev in self.opts.rate_events.iter() {
            let res = self.fault_resource(ev.target);
            timelines.entry(res).or_default().push((ev.at, ev.rate));
        }
        for (res, edges) in timelines {
            self.pool.get_mut(res).set_rate_schedule(edges);
        }
        for vw in 0..self.p.vws.len() {
            self.engine
                .schedule_at(SimTime::ZERO, Ev::TryInject { vw: vw as u32 });
        }
    }

    /// Folds the finished simulation into [`RunStats`].
    fn finish_stats(self) -> RunStats {
        let horizon = self.horizon;
        // A drained segment ends when its last span of work does, not
        // at engine quiescence: scheduled rate edges are first-class
        // events, so a recovery edge far past the splice boundary
        // would otherwise inflate the epoch and ride out the whole
        // outage the splice was meant to dodge.
        let end = if self.opts.stop_after_mb.is_some() {
            self.trace
                .spans()
                .iter()
                .map(|s| s.end)
                .max()
                .unwrap_or(SimTime::ZERO)
                .min(self.engine.now())
        } else {
            self.engine.now()
        };
        RunStats {
            horizon,
            end,
            events: self.engine.processed(),
            vws: self.states.into_iter().map(|s| s.stats).collect(),
            trace: self.trace,
            gpu_resources: self.gpu_res,
            nic_resources: self.nic_res,
            pool: self.pool,
            sync_bytes_inter: self.sync_inter,
            sync_bytes_intra: self.sync_intra,
            act_bytes_inter: self.act_inter,
            act_bytes_intra: self.act_intra,
            planned_fwd: self.fwd,
            planned_bwd: self.bwd,
        }
    }
}

/// Runs the pipeline simulation until `horizon`.
pub fn run(params: ExecParams<'_>, horizon: SimTime) -> RunStats {
    Exec::new(params, SegmentOpts::default(), horizon, Coupling::InProcess).run()
}

/// Runs one *segment* of a fault-aware simulation: [`run`] extended
/// with [`SegmentOpts`] — pre-existing and scheduled resource-rate
/// changes (fault injection), an optional stop-and-drain point at a
/// wave boundary (the splice the reactive runtime re-plans at), and a
/// bounded composite-stream reorder window. Default options make this
/// identical to [`run`] — the zero-fault golden-trace invariance.
pub fn run_segment(params: ExecParams<'_>, opts: SegmentOpts, horizon: SimTime) -> RunStats {
    if let Some(stop) = opts.stop_after_mb {
        assert!(
            stop.is_multiple_of(params.wsp.nm as u64),
            "segments splice at wave boundaries (stop {} vs Nm {})",
            stop,
            params.wsp.nm
        );
    }
    Exec::new(params, opts, horizon, Coupling::InProcess).run()
}

/// Result of one [`VwEngine::step`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StepOutcome {
    /// An event was processed or a decided serve applied; step again.
    Progressed,
    /// Blocked on the bus (an undecidable pull poll); re-step after
    /// the bus state changes.
    Blocked,
    /// Nothing left at or below the horizon; the engine reported
    /// [`GateBus::finish`] and every further step is a no-op.
    Done,
}

/// One virtual worker's simulation as an externally-drivable engine:
/// a single-VW [`Exec`] coupled to a [`GateBus`] instead of the
/// in-process `min_clock` scan. The fleet driver (`hetpipe-fleet`)
/// owns many of these — one [`hetpipe_des::EngineCore`] each — and
/// steps them on a thread pool; the bus is the *only* channel between
/// them, mirroring the PS push→gate edges certified as the sole
/// cross-VW dependency class by `hetpipe-verify`'s isolation pass.
///
/// Stepping discipline (conservative synchronization):
///
/// - Before popping the next local event at `t`, a pending pull is
///   polled with bound `t`; the bus either decides the serve
///   ([`ServePoll::Ready`], always at `≤ t`), proves it is not at or
///   before `t` ([`ServePoll::NotBefore`]), or blocks
///   ([`ServePoll::Wait`]).
/// - A decided serve is applied *before* the local event at the same
///   instant (the in-process executor serves inside the push handler,
///   i.e. ahead of any later-queued event at that instant).
/// - A `NotBefore` carries a certified lower bound on the serve
///   instant; it is cached and suppresses re-polls while the bound
///   stays strictly below it — the engine pops whole stretches of
///   local events with no bus traffic. The cache is invalidated when
///   the request's target changes (a wave push can upgrade a pending
///   request in place).
///
/// The induction this keeps sound: the engine never pops a local
/// event without first proving the pending serve lies strictly after
/// it, so no serve ever lands in the engine's local past.
pub struct VwEngine<'a> {
    ex: Exec<'a>,
    bus: &'a dyn GateBus,
    id: usize,
    /// Instant the current pull request became locally serveable
    /// (request present *and* no pull transfer in flight) — the
    /// `ready_since` of polls, and the earliest the serve can happen.
    poll_floor: SimTime,
    /// Target wave of the currently-serveable request, if any.
    pending_target: Option<u64>,
    /// The serve provably happens no earlier than this instant
    /// (cached `NotBefore` lower bound).
    not_before: Option<SimTime>,
    finished: bool,
}

impl<'a> VwEngine<'a> {
    /// Builds the engine for the single VW in `params`, registered as
    /// `id` on `bus`. The prologue (rate timelines, initial inject
    /// events) runs immediately; no event is popped yet.
    pub fn new(
        params: ExecParams<'a>,
        opts: SegmentOpts,
        horizon: SimTime,
        bus: &'a dyn GateBus,
        id: usize,
    ) -> VwEngine<'a> {
        assert_eq!(
            params.vws.len(),
            1,
            "a fleet engine simulates exactly one VW"
        );
        if let Some(stop) = opts.stop_after_mb {
            assert!(
                stop.is_multiple_of(params.wsp.nm as u64),
                "segments splice at wave boundaries (stop {} vs Nm {})",
                stop,
                params.wsp.nm
            );
        }
        let mut ex = Exec::new(params, opts, horizon, Coupling::Bus { bus, id });
        ex.prologue();
        let mut eng = VwEngine {
            ex,
            bus,
            id,
            poll_floor: SimTime::ZERO,
            pending_target: None,
            not_before: None,
            finished: false,
        };
        eng.refresh_pending();
        eng
    }

    /// Re-derives the serveable-request view after local state may
    /// have changed (an event was handled or a serve applied).
    fn refresh_pending(&mut self) {
        let st = &self.ex.states[0];
        let req = if st.pull_remaining == 0 {
            st.pull_request.map(|(t, _)| t)
        } else {
            None // In-flight pull; a queued request is not yet serveable.
        };
        if req != self.pending_target {
            // New request, upgraded target, or served/obscured: any
            // cached verdict was computed for a different question.
            self.not_before = None;
            if req.is_some() && self.pending_target.is_none() {
                // The request just became serveable: the serve cannot
                // predate this instant (matches the in-process serve
                // points — request creation and pull-transfer drain).
                self.poll_floor = self.ex.engine.now();
            }
            self.pending_target = req;
        }
    }

    /// Advances the simulation by one action. See the type-level doc
    /// for the discipline; [`StepOutcome::Blocked`] callers must wait
    /// for a bus change before re-stepping.
    pub fn step(&mut self) -> StepOutcome {
        if self.finished {
            return StepOutcome::Done;
        }
        let horizon = self.ex.horizon;
        let bound = match self.ex.engine.peek_time() {
            Some(t) if t <= horizon => t,
            _ => horizon,
        };
        if let Some(target) = self.pending_target {
            let serve = if self.not_before.is_some_and(|b| bound < b) {
                None // Provably not before the bound; pop freely.
            } else {
                match self.bus.poll_serve(self.id, target, self.poll_floor, bound) {
                    ServePoll::Ready { at, version } => {
                        debug_assert!(at >= self.poll_floor && at <= bound);
                        Some((at, version))
                    }
                    ServePoll::NotBefore { at_least } => {
                        debug_assert!(at_least > bound);
                        self.not_before = Some(at_least);
                        None
                    }
                    ServePoll::Wait => return StepOutcome::Blocked,
                }
            };
            if let Some((at, version)) = serve {
                // Serve-first at ties: the in-process executor serves
                // inside the handler of the crossing push, ahead of
                // local events queued at the same instant.
                self.ex.engine.advance_to(at);
                self.bus.publish_frontier(self.id, at);
                self.ex.serve_pull(0, version);
                self.refresh_pending();
                return StepOutcome::Progressed;
            }
        }
        match self.ex.engine.next_event_until(horizon) {
            Some(ev) => {
                self.bus.publish_frontier(self.id, self.ex.engine.now());
                self.ex.handle(ev);
                self.refresh_pending();
                StepOutcome::Progressed
            }
            None => {
                // Horizon reached (or queue drained) with no pending
                // serve at or before it: this VW is done. An unserved
                // request past the horizon matches the in-process
                // executor, which simply stops popping.
                self.finished = true;
                self.bus.publish_frontier(self.id, horizon);
                self.bus.finish(self.id);
                StepOutcome::Done
            }
        }
    }

    /// Events processed so far on this engine's core.
    pub fn processed(&self) -> u64 {
        self.ex.engine.processed()
    }

    /// Current simulated time of this engine.
    pub fn now(&self) -> SimTime {
        self.ex.engine.now()
    }

    /// Whether [`StepOutcome::Done`] has been reached.
    pub fn is_done(&self) -> bool {
        self.finished
    }

    /// Folds the finished engine into its single-VW [`RunStats`]
    /// (trace spans carry local ids: `vw` is always 0 and resources
    /// index this engine's private pool).
    pub fn into_stats(self) -> RunStats {
        self.ex.finish_stats()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pserver::Placement;
    use hetpipe_cluster::DeviceId;
    use hetpipe_partition::{PartitionProblem, PartitionSolver};

    fn build_vws(
        cluster: &Cluster,
        graph: &ModelGraph,
        groups: &[Vec<DeviceId>],
        nm: usize,
    ) -> Vec<VirtualWorker> {
        groups
            .iter()
            .enumerate()
            .map(|(i, devices)| {
                let gpus = devices.iter().map(|&d| cluster.spec_of(d)).collect();
                let links = VirtualWorker::links(cluster, devices);
                let plan = PartitionSolver::solve(&PartitionProblem::new(graph, gpus, links, nm))
                    .expect("feasible");
                VirtualWorker {
                    index: i,
                    devices: devices.clone(),
                    plan,
                    nm,
                }
            })
            .collect()
    }

    fn ed_groups() -> Vec<Vec<DeviceId>> {
        (0..4)
            .map(|j| (0..4).map(|n| DeviceId(n * 4 + j)).collect())
            .collect()
    }

    fn run_ed_sched(nm: usize, d: usize, secs: f64, schedule: Schedule) -> RunStats {
        let cluster = Cluster::paper_testbed();
        let graph = hetpipe_model::vgg19(32);
        let vws = build_vws(&cluster, &graph, &ed_groups(), nm);
        let shards = ShardMap::build(Placement::Local, &graph, &cluster, &vws[0]);
        run(
            ExecParams {
                cluster: &cluster,
                graph: &graph,
                vws: &vws,
                wsp: WspParams::new(nm, d),
                shards: &shards,
                sync_transfers: true,
                schedule,
                recompute: RecomputePolicy::None,
            },
            SimTime::from_secs(secs),
        )
    }

    fn run_ed(nm: usize, d: usize, secs: f64) -> RunStats {
        run_ed_sched(nm, d, secs, Schedule::HetPipeWave)
    }

    #[test]
    fn pipeline_makes_progress() {
        let stats = run_ed(4, 0, 30.0);
        for (i, vw) in stats.vws.iter().enumerate() {
            assert!(
                vw.completions.len() > 20,
                "vw{} completed only {}",
                i,
                vw.completions.len()
            );
            assert!(
                vw.waves_pushed > 4,
                "vw{} pushed {} waves",
                i,
                vw.waves_pushed
            );
        }
    }

    #[test]
    fn completions_are_monotone_and_fifo() {
        let stats = run_ed(4, 0, 10.0);
        for vw in &stats.vws {
            for w in vw.completions.windows(2) {
                assert!(w[0] <= w[1]);
            }
        }
    }

    #[test]
    fn deeper_pipelining_increases_throughput() {
        let t1 = run_ed(1, 0, 30.0).vws[0].completions.len();
        let t4 = run_ed(4, 0, 30.0).vws[0].completions.len();
        assert!(
            t4 as f64 > t1 as f64 * 1.5,
            "Nm=4 ({t4}) should clearly beat Nm=1 ({t1})"
        );
    }

    #[test]
    fn d0_keeps_vws_in_lockstep() {
        // With D = 0 every VW's clock stays within 1 of the others
        // (BSP-like behaviour, Section 5).
        let stats = run_ed(4, 0, 20.0);
        let clocks: Vec<u64> = stats.vws.iter().map(|v| v.waves_pushed).collect();
        let max = *clocks.iter().max().unwrap();
        let min = *clocks.iter().min().unwrap();
        assert!(max - min <= 1, "clocks diverged: {clocks:?}");
    }

    #[test]
    fn larger_d_reduces_waiting() {
        // ED VWs are identical so waits are small either way, but D = 4
        // must never wait longer than D = 0 (Section 8.4).
        let w0: SimTime = run_ed(4, 0, 30.0)
            .vws
            .iter()
            .map(|v| v.pull_wait)
            .fold(SimTime::ZERO, |a, b| a + b);
        let w4: SimTime = run_ed(4, 4, 30.0)
            .vws
            .iter()
            .map(|v| v.pull_wait)
            .fold(SimTime::ZERO, |a, b| a + b);
        assert!(w4 <= w0, "D=4 wait {w4} should not exceed D=0 wait {w0}");
    }

    #[test]
    fn determinism() {
        for schedule in Schedule::ALL {
            if matches!(schedule, Schedule::Interleaved1F1B { .. }) {
                // Interleaved VWs need expanded plans; covered by the
                // system-level tests.
                continue;
            }
            let a = run_ed_sched(4, 0, 10.0, schedule);
            let b = run_ed_sched(4, 0, 10.0, schedule);
            assert_eq!(a.vws.len(), b.vws.len());
            for (x, y) in a.vws.iter().zip(&b.vws) {
                assert_eq!(x.completions, y.completions, "{schedule}");
                assert_eq!(x.waves_pushed, y.waves_pushed, "{schedule}");
            }
            assert_eq!(a.trace.len(), b.trace.len(), "{schedule}");
        }
    }

    #[test]
    fn local_placement_no_cross_node_sync() {
        let stats = run_ed(4, 0, 10.0);
        assert_eq!(stats.sync_bytes_inter, 0, "ED-local sync must stay on-node");
        assert!(stats.sync_bytes_intra > 0);
        // ED activations cross nodes by construction.
        assert!(stats.act_bytes_inter > 0);
    }

    #[test]
    fn single_gpu_vw_works() {
        // A VW of one GPU degenerates to plain (non-pipelined) training.
        let cluster = Cluster::paper_testbed();
        let graph = hetpipe_model::vgg19(32);
        let groups = vec![vec![DeviceId(0)], vec![DeviceId(1)]];
        let vws = build_vws(&cluster, &graph, &groups, 1);
        let shards = ShardMap::build(Placement::Default, &graph, &cluster, &vws[0]);
        let stats = run(
            ExecParams {
                cluster: &cluster,
                graph: &graph,
                vws: &vws,
                wsp: WspParams::new(1, 0),
                shards: &shards,
                sync_transfers: true,
                schedule: Schedule::HetPipeWave,
                recompute: RecomputePolicy::None,
            },
            SimTime::from_secs(20.0),
        );
        assert!(stats.vws[0].completions.len() > 10);
    }

    #[test]
    fn straggler_vws_forced_to_wait_under_d0() {
        // NP-style allocation: one fast VVVV VW and one slow QQQQ VW.
        // With D = 0 the fast VW must accumulate pull waiting time.
        let cluster = Cluster::paper_testbed();
        let graph = hetpipe_model::vgg19(32);
        let groups = vec![
            (0..4).map(DeviceId).collect::<Vec<_>>(),
            (12..16).map(DeviceId).collect::<Vec<_>>(),
        ];
        let vws = build_vws(&cluster, &graph, &groups, 2);
        let shards = ShardMap::build(Placement::Default, &graph, &cluster, &vws[0]);
        let stats = run(
            ExecParams {
                cluster: &cluster,
                graph: &graph,
                vws: &vws,
                wsp: WspParams::new(2, 0),
                shards: &shards,
                sync_transfers: true,
                schedule: Schedule::HetPipeWave,
                recompute: RecomputePolicy::None,
            },
            SimTime::from_secs(30.0),
        );
        let fast = &stats.vws[0];
        let slow = &stats.vws[1];
        assert!(
            fast.pull_wait > slow.pull_wait,
            "fast VW should wait more: {} vs {}",
            fast.pull_wait,
            slow.pull_wait
        );
        // Lockstep: completed waves within 1.
        assert!(fast.waves_pushed.abs_diff(slow.waves_pushed) <= 1);
    }

    // --------------------------------------------------------------
    // Stream-order schedules through the same executor.
    // --------------------------------------------------------------

    #[test]
    fn stream_schedules_make_progress_and_push_waves() {
        for schedule in [Schedule::FillDrain, Schedule::OneFOneB] {
            let stats = run_ed_sched(4, 0, 30.0, schedule);
            for (i, vw) in stats.vws.iter().enumerate() {
                assert!(
                    vw.completions.len() > 20,
                    "{schedule} vw{i} completed only {}",
                    vw.completions.len()
                );
                assert!(
                    vw.waves_pushed > 4,
                    "{schedule} vw{i} pushed {} waves",
                    vw.waves_pushed
                );
            }
        }
    }

    #[test]
    fn one_f_one_b_beats_fill_drain() {
        // 1F1B overlaps the drain with the next fill; with Nm = 4 its
        // steady state strictly dominates GPipe's fill-drain bubbles.
        let gpipe = run_ed_sched(4, 0, 30.0, Schedule::FillDrain).vws[0]
            .completions
            .len();
        let ofob = run_ed_sched(4, 0, 30.0, Schedule::OneFOneB).vws[0]
            .completions
            .len();
        assert!(
            ofob > gpipe,
            "1F1B ({ofob}) must strictly beat fill-drain ({gpipe})"
        );
    }

    #[test]
    fn stream_schedules_respect_d0_lockstep() {
        for schedule in [Schedule::FillDrain, Schedule::OneFOneB] {
            let stats = run_ed_sched(4, 0, 20.0, schedule);
            let clocks: Vec<u64> = stats.vws.iter().map(|v| v.waves_pushed).collect();
            let max = *clocks.iter().max().unwrap();
            let min = *clocks.iter().min().unwrap();
            assert!(max - min <= 1, "{schedule} clocks diverged: {clocks:?}");
        }
    }

    // --------------------------------------------------------------
    // Segment machinery: faults, drains, zero-fault invariance.
    // --------------------------------------------------------------

    fn run_ed_segment(nm: usize, secs: f64, schedule: Schedule, opts: SegmentOpts) -> RunStats {
        let cluster = Cluster::paper_testbed();
        let graph = hetpipe_model::vgg19(32);
        let vws = build_vws(&cluster, &graph, &ed_groups(), nm);
        let shards = ShardMap::build(Placement::Local, &graph, &cluster, &vws[0]);
        run_segment(
            ExecParams {
                cluster: &cluster,
                graph: &graph,
                vws: &vws,
                wsp: WspParams::new(nm, 0),
                shards: &shards,
                sync_transfers: true,
                schedule,
                recompute: RecomputePolicy::None,
            },
            opts,
            SimTime::from_secs(secs),
        )
    }

    #[test]
    fn zero_fault_segment_is_bit_identical_to_run() {
        for schedule in [
            Schedule::HetPipeWave,
            Schedule::FillDrain,
            Schedule::OneFOneB,
        ] {
            let plain = run_ed_sched(4, 0, 10.0, schedule);
            let seg = run_ed_segment(4, 10.0, schedule, SegmentOpts::default());
            assert_eq!(plain.trace.len(), seg.trace.len(), "{schedule}");
            for (a, b) in plain.trace.spans().iter().zip(seg.trace.spans()) {
                assert_eq!(a, b, "{schedule}");
            }
            for (a, b) in plain.vws.iter().zip(&seg.vws) {
                assert_eq!(a.completions, b.completions, "{schedule}");
            }
        }
    }

    #[test]
    fn fault_event_slows_the_pipeline() {
        for schedule in [Schedule::HetPipeWave, Schedule::OneFOneB] {
            let clean = run_ed_segment(4, 20.0, schedule, SegmentOpts::default());
            let faulted = run_ed_segment(
                4,
                20.0,
                schedule,
                SegmentOpts {
                    rate_events: vec![RateEvent {
                        at: SimTime::from_secs(2.0),
                        // Slow VW 0's stage-1 GPU (device 4 hosts ED
                        // group 0's second stage) by x4 — far past the
                        // pipeline bottleneck, so it must bind.
                        target: RateTarget::Gpu(4),
                        rate: 0.25,
                    }],
                    ..SegmentOpts::default()
                },
            );
            let c = clean.vws[0].completions.len();
            let f = faulted.vws[0].completions.len();
            assert!(
                (f as f64) < c as f64 * 0.9,
                "{schedule}: x4 slowdown must cost throughput ({f} vs {c})"
            );
            // Spans on the slowed GPU after the fault are stretched.
            let gpu = faulted.gpu_resources[4];
            let stretched = faulted.trace.spans().iter().any(|s| {
                s.resource == gpu
                    && s.start >= SimTime::from_secs(2.0)
                    && s.duration() > faulted.planned_fwd[0][1]
            });
            assert!(stretched, "{schedule}: no stretched span on the slowed GPU");
        }
    }

    #[test]
    fn lost_gpu_stalls_but_terminates() {
        let faulted = run_ed_segment(
            4,
            15.0,
            Schedule::HetPipeWave,
            SegmentOpts {
                rate_events: vec![RateEvent {
                    at: SimTime::from_secs(3.0),
                    target: RateTarget::Gpu(4),
                    rate: 0.0,
                }],
                ..SegmentOpts::default()
            },
        );
        // VW 0 stops completing shortly after the loss; the run still
        // terminates (no live-lock) and other VWs are eventually
        // throttled by the WSP distance bound, not deadlocked.
        let last = faulted.vws[0].completions.last().copied().unwrap();
        assert!(
            last < SimTime::from_secs(5.0),
            "vw0 kept completing: {last}"
        );
        assert!(faulted.end <= SimTime::from_secs(15.0));
    }

    #[test]
    fn segment_drain_stops_at_wave_boundary() {
        for schedule in [
            Schedule::HetPipeWave,
            Schedule::FillDrain,
            Schedule::OneFOneB,
        ] {
            let seg = run_ed_segment(
                4,
                30.0,
                schedule,
                SegmentOpts {
                    stop_after_mb: Some(8),
                    ..SegmentOpts::default()
                },
            );
            for (i, vw) in seg.vws.iter().enumerate() {
                assert_eq!(
                    vw.completions.len(),
                    8,
                    "{schedule} vw{i}: drain must complete exactly the boundary wave"
                );
                assert_eq!(vw.waves_pushed, 2, "{schedule} vw{i}");
            }
            // The drain ends well before the horizon: that end is the
            // splice point.
            assert!(
                seg.end < SimTime::from_secs(29.0),
                "{schedule}: drain should end early, got {}",
                seg.end
            );
            // No compute span belongs to a past-boundary minibatch.
            for span in seg.trace.spans() {
                if let SpanTag::Forward { mb, .. }
                | SpanTag::Backward { mb, .. }
                | SpanTag::Recompute { mb, .. } = span.tag
                {
                    assert!(mb <= 8, "{schedule}: span for mb {mb} past the boundary");
                }
            }
        }
    }

    #[test]
    fn stream_single_gpu_vw_works() {
        // k = 1 exercises the "backward depends on own forward" path.
        let cluster = Cluster::paper_testbed();
        let graph = hetpipe_model::vgg19(32);
        let groups = vec![vec![DeviceId(0)], vec![DeviceId(1)]];
        let vws = build_vws(&cluster, &graph, &groups, 1);
        let shards = ShardMap::build(Placement::Default, &graph, &cluster, &vws[0]);
        for schedule in [Schedule::FillDrain, Schedule::OneFOneB] {
            let stats = run(
                ExecParams {
                    cluster: &cluster,
                    graph: &graph,
                    vws: &vws,
                    wsp: WspParams::new(1, 0),
                    shards: &shards,
                    sync_transfers: true,
                    schedule,
                    recompute: RecomputePolicy::None,
                },
                SimTime::from_secs(20.0),
            );
            assert!(
                stats.vws[0].completions.len() > 10,
                "{schedule} made no progress on k=1"
            );
        }
    }
}
