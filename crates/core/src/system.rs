//! End-to-end system assembly.
//!
//! [`HetPipeSystem::build`] performs the full setup pipeline of
//! Figure 2: allocate GPUs to virtual workers (resource allocator),
//! choose a stage order, find `Max_m` and the common `Nm`, partition the
//! model per VW (model partitioner), place parameter-server shards —
//! then [`HetPipeSystem::run`] simulates training and reports.

use crate::alloc::{AllocError, AllocationPolicy};
use crate::exec::{self, ExecParams};
use crate::metrics::SystemReport;
use crate::plankey;
use crate::pserver::{Placement, ShardMap};
use crate::sync::WspParams;
use crate::vw::VirtualWorker;
use hetpipe_cluster::{Cluster, DeviceId};
use hetpipe_des::SimTime;
use hetpipe_model::memory::nm_saturation_limit;
use hetpipe_model::ModelGraph;
use hetpipe_partition::{
    evaluate_orders, max_feasible_nm_with, NmSweep, PartitionProblem, PartitionSolver,
};
use hetpipe_schedule::{PipelineSchedule, RecomputePolicy, Schedule};
use std::fmt;

/// System-level configuration.
#[derive(Debug, Clone)]
pub struct SystemConfig {
    /// How GPUs are grouped into virtual workers.
    pub policy: AllocationPolicy,
    /// Parameter-server shard placement.
    pub placement: Placement,
    /// WSP clock-distance bound `D`.
    pub staleness_bound: usize,
    /// Force a specific `Nm` instead of the automatic
    /// maximum-feasible choice.
    pub nm_override: Option<usize>,
    /// Search stage orders per VW (otherwise allocation order is kept).
    pub order_search: bool,
    /// Fraction of the horizon treated as warm-up and excluded from
    /// throughput measurement.
    pub warmup_fraction: f64,
    /// Model parameter-synchronization *transfers* (true for the full
    /// system; false measures standalone virtual workers as in the
    /// paper's Figure 3).
    pub sync_transfers: bool,
    /// The pipeline schedule every virtual worker runs (the paper's
    /// wave schedule by default). Interleaved schedules repartition
    /// the model over `chunks × GPUs` virtual stages.
    pub schedule: Schedule,
    /// Activation recomputation policy: `BoundaryOnly` stashes only
    /// boundary inputs (smaller memory charge, typically a larger
    /// feasible `Nm`) and pays one forward re-run per backward.
    pub recompute: RecomputePolicy,
}

impl Default for SystemConfig {
    fn default() -> Self {
        SystemConfig {
            policy: AllocationPolicy::EqualDistribution,
            placement: Placement::Default,
            staleness_bound: 0,
            nm_override: None,
            order_search: true,
            warmup_fraction: 0.15,
            sync_transfers: true,
            schedule: Schedule::HetPipeWave,
            recompute: RecomputePolicy::None,
        }
    }
}

/// Why the system could not be assembled.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BuildError {
    /// The allocation policy rejected the cluster shape.
    Alloc(AllocError),
    /// A virtual worker has no memory-feasible partition even at
    /// `Nm = 1`.
    NoFeasiblePartition {
        /// Index of the failing virtual worker.
        vw: usize,
    },
    /// A forced `Nm` is infeasible for some virtual worker.
    NmInfeasible {
        /// Index of the failing virtual worker.
        vw: usize,
        /// The forced value.
        nm: usize,
    },
}

impl fmt::Display for BuildError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BuildError::Alloc(e) => write!(f, "allocation failed: {e}"),
            BuildError::NoFeasiblePartition { vw } => {
                write!(
                    f,
                    "virtual worker {vw} cannot hold the model even at Nm = 1"
                )
            }
            BuildError::NmInfeasible { vw, nm } => {
                write!(f, "virtual worker {vw} cannot run with forced Nm = {nm}")
            }
        }
    }
}

impl std::error::Error for BuildError {}

impl From<AllocError> for BuildError {
    fn from(e: AllocError) -> Self {
        BuildError::Alloc(e)
    }
}

/// How many proxy-ranked stage orders the order search refines with a
/// short standalone simulation. Large enough to cover the proxy's
/// resolution limit (near-equal scores can hide >15% simulated
/// spread), small enough to keep `build` cheap.
const ORDER_REFINE_CANDIDATES: usize = 6;

/// Refine-pass memo, shared by *every* thread in the process —
/// `search_orders_par`'s scoped workers and repeated `build` calls
/// on any thread all hit the same entries. (The previous thread-local
/// memo left each scoped worker with an empty map, so kind-identical
/// VW refinements re-simulated once per thread.) Keyed by the public
/// [`plankey::RefineKey`]; bounded the same blunt way the thread-local
/// was (shard-wise wholesale clear at capacity).
static REFINE_CACHE: std::sync::LazyLock<plankey::ShardedCache<plankey::RefineKey, Option<f64>>> =
    std::sync::LazyLock::new(|| plankey::ShardedCache::new(REFINE_CACHE_CAP));

/// Maximum entries retained in the refine memo.
const REFINE_CACHE_CAP: usize = 4096;

#[cfg(test)]
thread_local! {
    /// Per-thread (hits, misses) observed by `memoized_standalone_rate`
    /// on *this* thread — test instrumentation only. The cache itself
    /// is global and other tests run in parallel against it, so tests
    /// must assert on their own thread's traffic, not on global
    /// counters or cache length.
    static REFINE_STATS: std::cell::Cell<(u64, u64)> = const { std::cell::Cell::new((0, 0)) };
}

#[cfg(test)]
fn refine_stats_take() -> (u64, u64) {
    REFINE_STATS.with(|s| s.replace((0, 0)))
}

/// [`simulate_standalone_rate`], memoized by [`plankey::RefineKey`] in
/// the process-wide [`REFINE_CACHE`].
fn memoized_standalone_rate(
    cluster: &Cluster,
    graph: &ModelGraph,
    devices: &[DeviceId],
    nm: usize,
    config: &SystemConfig,
) -> Option<f64> {
    let key = plankey::RefineKey::new(cluster, graph, devices, nm, config);
    if let Some(hit) = REFINE_CACHE.get(&key) {
        #[cfg(test)]
        REFINE_STATS.with(|s| {
            let (h, m) = s.get();
            s.set((h + 1, m));
        });
        return hit;
    }
    #[cfg(test)]
    REFINE_STATS.with(|s| {
        let (h, m) = s.get();
        s.set((h, m + 1));
    });
    let rate = simulate_standalone_rate(cluster, graph, devices, nm, config);
    REFINE_CACHE.insert(key, rate);
    rate
}

/// Simulated steady-state rate (minibatches/sec past warm-up) of one
/// candidate stage order running as a single virtual worker — with
/// the configured shard placement and sync-transfer mode, so the
/// score sees the NIC contention between activation transfers and
/// parameter pushes/pulls that separates otherwise-equal orders — at
/// the order's proxy-best `Nm`. `None` when no feasible plan exists
/// at that `Nm`.
fn simulate_standalone_rate(
    cluster: &Cluster,
    graph: &ModelGraph,
    devices: &[DeviceId],
    nm: usize,
    config: &SystemConfig,
) -> Option<f64> {
    let gpus: Vec<_> = devices.iter().map(|&d| cluster.spec_of(d)).collect();
    let links = VirtualWorker::links(cluster, devices);
    let plan = PartitionSolver::solve(
        &PartitionProblem::with_schedule(graph, gpus, links, nm, config.schedule)
            .with_recompute(config.recompute),
    )
    .ok()?;
    let latency: f64 = plan.stage_secs.iter().sum();
    let vw = VirtualWorker {
        index: 0,
        devices: devices.to_vec(),
        plan,
        nm,
    };
    let shards = ShardMap::build(config.placement, graph, cluster, &vw);
    let vws = [vw];
    // Long enough to amortize the pipeline fill several times over.
    let horizon = SimTime::from_secs((60.0 * latency).max(1.0));
    let stats = exec::run(
        ExecParams {
            cluster,
            graph,
            vws: &vws,
            wsp: WspParams::new(nm, config.staleness_bound),
            shards: &shards,
            sync_transfers: config.sync_transfers,
            schedule: config.schedule,
            recompute: config.recompute,
        },
        horizon,
    );
    let warmup = SimTime::from_secs(horizon.as_secs() * 0.25);
    let completed = stats.vws[0]
        .completions
        .iter()
        .filter(|&&t| t >= warmup)
        .count();
    Some(completed as f64 / (horizon.as_secs() * 0.75))
}

/// Re-solves one virtual worker's partition from *observed* per-stage
/// costs — the system rebuild entry point the fault-aware runtime
/// (`hetpipe-runtime`) calls when its monitor reports stragglers or a
/// lost GPU:
///
/// - `devices` are the *surviving* stage devices in pipeline order
///   (drop the lost GPU to shrink the pipeline);
/// - `derate[q]` is the observed/planned duration ratio of stage `q`
///   (≥ 1 for a straggler, 1 for healthy stages): each stage's GPU
///   spec is derated to the speed it actually delivers
///   ([`hetpipe_cluster::gpu::GpuSpec::derated`]), so the min–max DP
///   rebalances layers away from slowed GPUs;
/// - `incumbent` warm-starts the solver with the currently-executing
///   plan ([`PartitionSolver::solve_warm`] — answer-preserving bound
///   pruning, so online re-planning costs less than a cold solve).
///
/// Returns the re-planned partition at the requested `nm`, or the
/// partition error when the shrunk/derated configuration cannot hold
/// the model there (callers then lower `nm` — WSP requires a common
/// `Nm`, so the controller owns that decision).
#[allow(clippy::too_many_arguments)]
pub fn replan_vw_from_observed(
    cluster: &Cluster,
    graph: &ModelGraph,
    devices: &[DeviceId],
    derate: &[f64],
    nm: usize,
    schedule: Schedule,
    recompute: RecomputePolicy,
    incumbent: Option<&[std::ops::Range<usize>]>,
) -> Result<hetpipe_partition::PartitionPlan, hetpipe_partition::PartitionError> {
    assert_eq!(
        devices.len(),
        derate.len(),
        "one observed derate per stage device"
    );
    let gpus: Vec<_> = devices
        .iter()
        .zip(derate)
        .map(|(&d, &r)| cluster.spec_of(d).derated(r.max(1.0)))
        .collect();
    let links = VirtualWorker::links(cluster, devices);
    let problem =
        PartitionProblem::with_schedule(graph, gpus, links, nm, schedule).with_recompute(recompute);
    PartitionSolver::solve_warm(&problem, incumbent)
}

/// A fully-assembled HetPipe deployment, ready to simulate.
#[derive(Debug, Clone)]
pub struct HetPipeSystem<'a> {
    cluster: &'a Cluster,
    graph: &'a ModelGraph,
    config: SystemConfig,
    vws: Vec<VirtualWorker>,
    shards: ShardMap,
    nm: usize,
}

impl<'a> HetPipeSystem<'a> {
    /// Assembles the system: allocation → stage order → `Nm` → plans →
    /// shard placement.
    pub fn build(
        cluster: &'a Cluster,
        graph: &'a ModelGraph,
        config: &SystemConfig,
    ) -> Result<Self, BuildError> {
        let groups = config.policy.allocate(cluster)?;
        let schedule = config.schedule;

        // Interleaved schedules run `chunks` virtual stages per GPU:
        // the executor's stage list repeats the physical GPUs
        // round-robin (virtual stage `s` runs on GPU `s % k`).
        let expand = |ordered: &[DeviceId]| -> Vec<DeviceId> {
            let vk = schedule.virtual_stages(ordered.len());
            (0..vk).map(|s| ordered[s % ordered.len()]).collect()
        };

        // Resolve the stage order of every VW (optionally searched) and
        // this VW's Max_m.
        let mut ordered_groups: Vec<Vec<DeviceId>> = Vec::with_capacity(groups.len());
        let mut maxms: Vec<usize> = Vec::with_capacity(groups.len());
        for (i, devices) in groups.iter().enumerate() {
            let ordered = if config.order_search && devices.len() > 1 {
                // Two-pass order search. Pass 1 scores each distinct
                // kind-order with an analytic proxy — the best
                // min(1/bottleneck, Nm/latency) over the order's
                // feasible Nm range. The proxy ranks coarsely (it
                // cannot see arrival-FIFO bubble dynamics, which swing
                // real throughput between near-equal-proxy orders), so
                // pass 2 refines the leaders with a short standalone
                // simulation (the paper's Figure-3 measurement mode)
                // and keeps the simulated winner.
                //
                // The per-order Nm sweeps are independent full DP
                // solves, so pass 1 fans them across scoped worker
                // threads (`evaluate_orders`); results come back in
                // enumeration order, keeping the candidate list — and
                // therefore the refined winner — bit-identical to the
                // serial search.
                let gpus: Vec<_> = devices.iter().map(|&d| cluster.spec_of(d)).collect();
                let limit = nm_saturation_limit(schedule.virtual_stages(devices.len()));
                let scored = evaluate_orders(&gpus, |order| {
                    let stage_devices: Vec<DeviceId> = order.iter().map(|&j| devices[j]).collect();
                    let devs = expand(&stage_devices);
                    let ordered_gpus: Vec<_> = devs.iter().map(|&d| cluster.spec_of(d)).collect();
                    let links = VirtualWorker::links(cluster, &devs);
                    // One incremental DP sweep serves both the
                    // feasibility probe and the rate scoring (memory
                    // is monotone in Nm, so the first infeasible Nm
                    // ends the sweep; NmSweep reuses the previous
                    // Nm's optimum wherever that is provably still
                    // optimal).
                    let mut sweep =
                        NmSweep::new(graph, &ordered_gpus, &links, schedule, config.recompute);
                    let mut best: Option<(f64, usize)> = None;
                    for nm in 1..=limit {
                        let Ok(plan) = sweep.solve(nm) else {
                            break;
                        };
                        let latency: f64 = plan.stage_secs.iter().sum();
                        let rate = (1.0 / plan.bottleneck_secs).min(nm as f64 / latency);
                        if best.is_none_or(|(r, _)| rate > r) {
                            best = Some((rate, nm));
                        }
                    }
                    let (rate, nm) = best?;
                    Some((stage_devices, rate, nm))
                });
                // (unexpanded stage devices, proxy score, proxy-best Nm)
                let mut candidates: Vec<(Vec<DeviceId>, f64, usize)> =
                    scored.into_iter().filter_map(|(_, r)| r).collect();
                if candidates.is_empty() {
                    return Err(BuildError::NoFeasiblePartition { vw: i });
                }
                // Stable sort: proxy ties keep enumeration order, so
                // the refinement set is deterministic.
                candidates.sort_by(|a, b| b.1.total_cmp(&a.1));
                let mut winner: Option<(Vec<DeviceId>, f64)> = None;
                for (stage_devices, _proxy, nm) in
                    candidates.into_iter().take(ORDER_REFINE_CANDIDATES)
                {
                    // Memoized by (kind-order, node pattern, placement,
                    // …): kind-identical VWs — every group under ED,
                    // most groups on big clusters — share one
                    // simulation, as do repeated `build` calls.
                    let rate = memoized_standalone_rate(
                        cluster,
                        graph,
                        &expand(&stage_devices),
                        nm,
                        config,
                    );
                    let Some(rate) = rate else { continue };
                    if winner.as_ref().is_none_or(|(_, r)| rate > *r) {
                        winner = Some((stage_devices, rate));
                    }
                }
                winner.ok_or(BuildError::NoFeasiblePartition { vw: i })?.0
            } else {
                devices.clone()
            };

            let ordered = expand(&ordered);
            let gpus: Vec<_> = ordered.iter().map(|&d| cluster.spec_of(d)).collect();
            let links = VirtualWorker::links(cluster, &ordered);
            let limit = nm_saturation_limit(ordered.len());
            let (maxm, _plan) =
                max_feasible_nm_with(graph, &gpus, &links, limit, schedule, config.recompute)
                    .ok_or(BuildError::NoFeasiblePartition { vw: i })?;
            maxms.push(maxm);
            ordered_groups.push(ordered);
        }

        // Nm must be identical across VWs (Section 4) and is "set such
        // that performance is maximized" (Section 8.3): probe every
        // feasible Nm up to the smallest per-VW Max_m and keep the one
        // with the best estimated system throughput. Under the
        // distance-D bound the slowest VW paces the system, so the
        // estimate is N times the slowest VW's pipeline rate
        // min(1/bottleneck, Nm/latency).
        let max_nm = maxms.iter().copied().min().unwrap_or(1);
        let nm = match config.nm_override {
            Some(forced) => {
                if let Some(vw) = maxms.iter().position(|&m| m < forced) {
                    return Err(BuildError::NmInfeasible { vw, nm: forced });
                }
                forced
            }
            None => {
                // One incremental sweep per VW across the probed Nm
                // range — the per-VW instance is fixed, so NmSweep's
                // answer-preserving reuse applies.
                let mut sweeps: Vec<NmSweep<'_>> = ordered_groups
                    .iter()
                    .map(|devices| {
                        let gpus: Vec<_> = devices.iter().map(|&d| cluster.spec_of(d)).collect();
                        let links = VirtualWorker::links(cluster, devices);
                        NmSweep::new(graph, &gpus, &links, schedule, config.recompute)
                    })
                    .collect();
                let mut best = (1usize, 0.0f64);
                for nm in 1..=max_nm {
                    let mut slowest = f64::INFINITY;
                    let mut feasible = true;
                    for sweep in &mut sweeps {
                        match sweep.solve(nm) {
                            Ok(plan) => {
                                let latency: f64 = plan.stage_secs.iter().sum();
                                let rate = (1.0 / plan.bottleneck_secs).min(nm as f64 / latency);
                                slowest = slowest.min(rate);
                            }
                            Err(_) => {
                                feasible = false;
                                break;
                            }
                        }
                    }
                    if feasible && slowest > best.1 {
                        best = (nm, slowest);
                    }
                }
                best.0
            }
        };

        // Final plans at the chosen Nm.
        let mut vws = Vec::with_capacity(ordered_groups.len());
        for (i, devices) in ordered_groups.into_iter().enumerate() {
            let gpus: Vec<_> = devices.iter().map(|&d| cluster.spec_of(d)).collect();
            let links = VirtualWorker::links(cluster, &devices);
            let plan = PartitionSolver::solve(
                &PartitionProblem::with_schedule(graph, gpus, links, nm, schedule)
                    .with_recompute(config.recompute),
            )
            .map_err(|_| BuildError::NmInfeasible { vw: i, nm })?;
            vws.push(VirtualWorker {
                index: i,
                devices,
                plan,
                nm,
            });
        }

        let shards = ShardMap::build(config.placement, graph, cluster, &vws[0]);
        Ok(HetPipeSystem {
            cluster,
            graph,
            config: config.clone(),
            vws,
            shards,
            nm,
        })
    }

    /// The common pipeline concurrency `Nm`.
    pub fn nm(&self) -> usize {
        self.nm
    }

    /// The assembled virtual workers.
    pub fn virtual_workers(&self) -> &[VirtualWorker] {
        &self.vws
    }

    /// The shard placement in effect.
    pub fn shards(&self) -> &ShardMap {
        &self.shards
    }

    /// The schedule in effect.
    pub fn schedule(&self) -> Schedule {
        self.config.schedule
    }

    /// Peak training-memory bytes per physical GPU of a virtual
    /// worker, under the configured schedule (sums the virtual-stage
    /// chunks an interleaved schedule co-locates).
    pub fn per_gpu_peak_bytes(&self, vw: usize) -> Vec<u64> {
        let v = &self.vws[vw];
        let gpus = v.stages() / self.config.schedule.colocated_stages();
        hetpipe_model::memory::TrainingMemoryModel::per_gpu_peak_bytes_with(
            self.graph,
            &v.plan.ranges,
            gpus,
            self.nm,
            &self.config.schedule,
            self.config.recompute,
        )
    }

    /// Simulates training until `horizon` and reports.
    pub fn run(&self, horizon: SimTime) -> SystemReport {
        let (report, _) = self.run_with_stats(horizon);
        report
    }

    /// Simulates and returns both the report and the raw statistics
    /// (for trace-level analyses such as Section 8.4).
    pub fn run_with_stats(&self, horizon: SimTime) -> (SystemReport, exec::RunStats) {
        let wsp = WspParams::new(self.nm, self.config.staleness_bound);
        let stats = exec::run(
            ExecParams {
                cluster: self.cluster,
                graph: self.graph,
                vws: &self.vws,
                wsp,
                shards: &self.shards,
                sync_transfers: self.config.sync_transfers,
                schedule: self.config.schedule,
                recompute: self.config.recompute,
            },
            horizon,
        );
        let warmup = SimTime::from_secs(horizon.as_secs() * self.config.warmup_fraction);
        let vw_devices: Vec<Vec<DeviceId>> = self.vws.iter().map(|v| v.devices.clone()).collect();
        let report = SystemReport::from_stats(
            &stats,
            self.cluster,
            self.graph.batch_size,
            warmup,
            &vw_devices,
        );
        (report, stats)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg(policy: AllocationPolicy, placement: Placement, d: usize) -> SystemConfig {
        SystemConfig {
            policy,
            placement,
            staleness_bound: d,
            ..SystemConfig::default()
        }
    }

    #[test]
    fn builds_all_three_policies_for_vgg() {
        let cluster = Cluster::paper_testbed();
        let graph = hetpipe_model::vgg19(32);
        for policy in [
            AllocationPolicy::NodePartition,
            AllocationPolicy::EqualDistribution,
            AllocationPolicy::HybridDistribution,
        ] {
            let sys = HetPipeSystem::build(
                &cluster,
                &graph,
                &cfg(policy.clone(), Placement::Default, 0),
            )
            .unwrap_or_else(|e| panic!("{}: {e}", policy.name()));
            assert_eq!(sys.virtual_workers().len(), 4);
            assert!(sys.nm() >= 1);
        }
    }

    #[test]
    fn ed_runs_and_reports_throughput() {
        let cluster = Cluster::paper_testbed();
        let graph = hetpipe_model::vgg19(32);
        let sys = HetPipeSystem::build(
            &cluster,
            &graph,
            &cfg(AllocationPolicy::EqualDistribution, Placement::Local, 0),
        )
        .unwrap();
        let report = sys.run(SimTime::from_secs(30.0));
        let tput = report.throughput_images_per_sec();
        assert!(tput > 100.0, "ED-local VGG-19 throughput = {tput:.0}");
    }

    #[test]
    fn nm_override_respected_and_validated() {
        let cluster = Cluster::paper_testbed();
        let graph = hetpipe_model::vgg19(32);
        let mut config = cfg(AllocationPolicy::EqualDistribution, Placement::Local, 0);
        config.nm_override = Some(2);
        let sys = HetPipeSystem::build(&cluster, &graph, &config).unwrap();
        assert_eq!(sys.nm(), 2);
        config.nm_override = Some(1000);
        assert!(matches!(
            HetPipeSystem::build(&cluster, &graph, &config),
            Err(BuildError::NmInfeasible { .. })
        ));
    }

    #[test]
    fn resnet_feasible_on_whimpy_cluster_via_pmp() {
        // The paper's headline capability: ResNet-152 cannot run on a
        // single RTX 2060, but a GGGG virtual worker (NP) holds it as a
        // 4-stage pipeline.
        let cluster = Cluster::paper_testbed();
        let graph = hetpipe_model::resnet152(32);
        let sys = HetPipeSystem::build(
            &cluster,
            &graph,
            &cfg(AllocationPolicy::NodePartition, Placement::Default, 0),
        )
        .unwrap();
        assert_eq!(sys.virtual_workers().len(), 4);
        let report = sys.run(SimTime::from_secs(20.0));
        assert!(report.throughput_images_per_sec() > 0.0);
    }

    #[test]
    fn all_schedules_build_and_run() {
        let cluster = Cluster::paper_testbed();
        let graph = hetpipe_model::vgg19(32);
        for schedule in Schedule::ALL {
            let config = SystemConfig {
                schedule,
                order_search: false,
                ..cfg(AllocationPolicy::EqualDistribution, Placement::Local, 0)
            };
            let sys = HetPipeSystem::build(&cluster, &graph, &config)
                .unwrap_or_else(|e| panic!("{schedule}: {e}"));
            let expected_stages = schedule.virtual_stages(4);
            for vw in sys.virtual_workers() {
                assert_eq!(vw.stages(), expected_stages, "{schedule}");
            }
            let report = sys.run(SimTime::from_secs(20.0));
            let tput = report.throughput_images_per_sec();
            assert!(tput > 50.0, "{schedule} throughput = {tput:.0}");
        }
    }

    #[test]
    fn interleaved_round_robins_devices() {
        let cluster = Cluster::paper_testbed();
        let graph = hetpipe_model::vgg19(32);
        let config = SystemConfig {
            schedule: Schedule::Interleaved1F1B {
                chunks: 2,
                composite: true,
            },
            order_search: false,
            ..cfg(AllocationPolicy::EqualDistribution, Placement::Local, 0)
        };
        let sys = HetPipeSystem::build(&cluster, &graph, &config).unwrap();
        let vw = &sys.virtual_workers()[0];
        assert_eq!(vw.devices.len(), 8);
        // Virtual stage s runs on GPU s % 4.
        for s in 0..8 {
            assert_eq!(vw.devices[s], vw.devices[s % 4]);
        }
        assert!(vw.plan.is_valid_cover(graph.len()));
    }

    #[test]
    fn interleaved_runs_deterministically() {
        // The one schedule where two virtual stages race on one GPU
        // timeline; two full runs must agree exactly.
        let cluster = Cluster::paper_testbed();
        let graph = hetpipe_model::vgg19(32);
        let config = SystemConfig {
            schedule: Schedule::Interleaved1F1B {
                chunks: 2,
                composite: true,
            },
            order_search: false,
            ..cfg(AllocationPolicy::EqualDistribution, Placement::Local, 0)
        };
        let sys = HetPipeSystem::build(&cluster, &graph, &config).unwrap();
        let (_, a) = sys.run_with_stats(SimTime::from_secs(10.0));
        let (_, b) = sys.run_with_stats(SimTime::from_secs(10.0));
        assert_eq!(a.trace.len(), b.trace.len());
        for (x, y) in a.trace.spans().iter().zip(b.trace.spans()) {
            assert_eq!(x, y);
        }
        for (x, y) in a.vws.iter().zip(&b.vws) {
            assert_eq!(x.completions, y.completions);
            assert_eq!(x.waves_pushed, y.waves_pushed);
        }
    }

    #[test]
    fn per_gpu_peaks_fit_their_gpus() {
        let cluster = Cluster::paper_testbed();
        let graph = hetpipe_model::vgg19(32);
        for schedule in Schedule::ALL {
            let config = SystemConfig {
                schedule,
                order_search: false,
                ..cfg(AllocationPolicy::EqualDistribution, Placement::Local, 0)
            };
            let sys = HetPipeSystem::build(&cluster, &graph, &config).unwrap();
            for (i, vw) in sys.virtual_workers().iter().enumerate() {
                let peaks = sys.per_gpu_peak_bytes(i);
                assert_eq!(peaks.len(), 4, "{schedule}");
                // Holds for interleaved chunks too: the solver splits
                // each GPU's budget across its co-located stages
                // (PipelineSchedule::colocated_stages), so certified
                // plans fit the per-GPU *sum*.
                for (g, &peak) in peaks.iter().enumerate() {
                    let cap = cluster.spec_of(vw.devices[g]).memory_bytes;
                    assert!(peak <= cap, "{schedule} vw{i} gpu{g}: {peak} > {cap}");
                }
            }
        }
    }

    #[test]
    fn order_refine_pass_is_memoized() {
        // ED groups are kind-identical (one GPU of each node's kind,
        // same co-location pattern), so the simulation-refined second
        // pass must run its handful of candidate simulations ONCE and
        // share them across all four VWs — and a repeated build must
        // simulate nothing at all. The cache is process-global and
        // other tests run concurrently against it, so assertions use
        // this thread's own hit/miss stats (`refine_stats_take`) and a
        // staleness bound no other test uses (part of the RefineKey),
        // keeping the observed keys private to this test.
        let cluster = Cluster::paper_testbed();
        let graph = hetpipe_model::resnet152(32);
        let config = SystemConfig {
            order_search: true,
            ..cfg(AllocationPolicy::EqualDistribution, Placement::Local, 7)
        };
        refine_stats_take();
        let first = HetPipeSystem::build(&cluster, &graph, &config).unwrap();
        let (hits, misses) = refine_stats_take();
        assert!(
            misses > 0 && misses <= ORDER_REFINE_CANDIDATES as u64,
            "4 kind-identical VWs must share one refine set, got {misses} simulations"
        );
        assert!(
            hits >= 3 * misses,
            "the other three VWs must reuse the leader set ({hits} hits / {misses} misses)"
        );
        let second = HetPipeSystem::build(&cluster, &graph, &config).unwrap();
        let (_, misses2) = refine_stats_take();
        assert_eq!(misses2, 0, "a repeated build must be fully memoized");
        // Memoization must not change the outcome.
        for (a, b) in first.virtual_workers().iter().zip(second.virtual_workers()) {
            assert_eq!(a.devices, b.devices);
            assert_eq!(a.plan.ranges, b.plan.ranges);
        }
        assert_eq!(first.nm(), second.nm());
    }

    #[test]
    fn refine_memo_is_shared_across_threads() {
        // The satellite pin for the old thread-local REFINE_CACHE bug:
        // a build on a *different* thread must hit the entries this
        // thread populated (previously each thread started cold).
        // Staleness bound 9 keeps the keys private to this test.
        let cluster = Cluster::paper_testbed();
        let graph = hetpipe_model::vgg19(32);
        let config = SystemConfig {
            order_search: true,
            ..cfg(AllocationPolicy::EqualDistribution, Placement::Local, 9)
        };
        refine_stats_take();
        let first = HetPipeSystem::build(&cluster, &graph, &config).unwrap();
        let (_, misses) = refine_stats_take();
        assert!(misses > 0, "first build must populate the memo");
        let (worker_stats, second) = std::thread::scope(|s| {
            s.spawn(|| {
                refine_stats_take();
                let sys = HetPipeSystem::build(&cluster, &graph, &config).unwrap();
                (refine_stats_take(), sys)
            })
            .join()
            .unwrap()
        });
        let (worker_hits, worker_misses) = worker_stats;
        assert_eq!(
            worker_misses, 0,
            "cross-thread build must hit the shared memo"
        );
        assert!(worker_hits > 0, "cross-thread build must consult the memo");
        for (a, b) in first.virtual_workers().iter().zip(second.virtual_workers()) {
            assert_eq!(a.devices, b.devices);
            assert_eq!(a.plan.ranges, b.plan.ranges);
        }
    }

    #[test]
    fn order_search_does_not_hurt() {
        let cluster = Cluster::paper_testbed();
        let graph = hetpipe_model::resnet152(32);
        let mut with = cfg(AllocationPolicy::EqualDistribution, Placement::Local, 0);
        with.order_search = true;
        let mut without = with.clone();
        without.order_search = false;
        let t_with = HetPipeSystem::build(&cluster, &graph, &with)
            .unwrap()
            .run(SimTime::from_secs(20.0))
            .throughput_images_per_sec();
        let t_without = HetPipeSystem::build(&cluster, &graph, &without)
            .unwrap()
            .run(SimTime::from_secs(20.0))
            .throughput_images_per_sec();
        assert!(
            t_with >= t_without * 0.95,
            "order search regressed: {t_with:.0} vs {t_without:.0}"
        );
    }
}
