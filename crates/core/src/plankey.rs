//! Stable plan-identity fingerprints and the sharded memo cache.
//!
//! Two subsystems need to agree on the question "is this the same
//! planning instance?": the order-search refine memo in
//! [`crate::system`] (kind-identical virtual workers must share one
//! standalone simulation) and the plan cache behind the concurrent
//! planner service (`hetpipe-plansvc`), whose request keys and
//! invalidation protocol are built from the same identity. This module
//! is that shared vocabulary:
//!
//! - [`graph_fingerprint`] / [`cluster_fingerprint`] — FNV-1a digests
//!   of every cost-relevant field. Deliberately **not** `Hash`-based:
//!   no `RandomState` is involved anywhere, so the same inputs produce
//!   the same `u64` in every process, today and tomorrow — a plan
//!   cache keyed by these fingerprints stays valid across restarts
//!   (the stability tests below pin golden values).
//! - [`RefineKey`] — everything that determines a refine candidate's
//!   simulated standalone rate, promoted out of `system.rs` so the
//!   memo key is a public, documented contract.
//! - [`ShardedCache`] — a `Mutex`-sharded concurrent map with hit/miss
//!   accounting, true-LRU eviction at capacity, and an entry-style
//!   [`ShardedCache::update`] for atomic read-modify-write (the plan
//!   cache's sequence-number protocol lives on top of it). Unlike the
//!   thread-local memo it replaces, entries are shared by *all*
//!   threads: scoped worker threads and repeated builds on different
//!   threads hit the same entries.
//!
//! # The `MatchSeq` invariant and why `update` is the whole protocol
//!
//! The plan service (`hetpipe-plansvc`) layers a MatchSeq-style
//! monotonic-sequence protocol on this cache: each key carries a
//! sequence number, a *publish* replaces the entry with `seq = prior +
//! 1` (1 when absent), an *insert-if-absent* installs `seq = 1` only
//! when no entry exists (yielding to any racing publisher), and the
//! invariant is
//!
//! > **MatchSeq**: once `seq = n` has been published for a key, no
//! > reader of that key can ever be served a sequence older than `n`.
//!
//! The entire argument rests on one fact about *this* module: every
//! read and every read-modify-write of a key runs as one critical
//! section under the key's shard lock ([`ShardedCache::get`] /
//! [`ShardedCache::update`]), so a concurrent history of cache ops is
//! equivalent to some *sequential* interleaving of atomic steps. The
//! [`shadow`] submodule reifies that atomic-step semantics as a pure
//! state machine ([`shadow::SeqCell`], one method per critical
//! section), and `hetpipe-verify`'s model checker enumerates **all**
//! interleavings of 2–3 threads of publish / read / insert-if-absent
//! steps over it, proving MatchSeq exhaustively rather than sampling
//! it with a racing test. A parity test below pins the shadow to the
//! real `update`-based implementation, so the proof transfers.

use crate::pserver::Placement;
use crate::system::SystemConfig;
use hetpipe_cluster::{Cluster, DeviceId};
use hetpipe_model::ModelGraph;
use std::collections::HashMap;
use std::hash::{Hash, Hasher};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Mutex, PoisonError};

/// FNV-1a offset basis.
const FNV_OFFSET: u64 = 0xcbf29ce484222325;
/// FNV-1a prime.
const FNV_PRIME: u64 = 0x100000001b3;

/// A tiny explicit FNV-1a accumulator — process-independent by
/// construction (no `RandomState`, no pointer identity).
struct Fnv(u64);

impl Fnv {
    fn new() -> Fnv {
        Fnv(FNV_OFFSET)
    }

    fn mix(&mut self, v: u64) {
        self.0 ^= v;
        self.0 = self.0.wrapping_mul(FNV_PRIME);
    }

    fn mix_bytes(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.mix(b as u64);
        }
    }
}

/// FNV-1a over every layer's cost-relevant fields: two models that
/// hash equal simulate equal (up to astronomically unlikely
/// collisions), two models differing in any per-layer profile hash
/// apart. Stable across processes — safe to persist and to use as a
/// service request key.
pub fn graph_fingerprint(graph: &ModelGraph) -> u64 {
    let mut h = Fnv::new();
    h.mix(graph.batch_size as u64);
    for l in graph.layers() {
        h.mix(l.param_bytes);
        h.mix(l.stored_bytes);
        h.mix(l.activation_bytes);
        h.mix(l.membound_bytes);
        h.mix(l.kernels as u64);
        h.mix(l.fwd_flops.to_bits());
        h.mix(l.bwd_flops.to_bits());
    }
    h.0
}

/// FNV-1a over the cluster's cost-relevant shape: node layout
/// (device → node mapping decides PCIe vs InfiniBand and shard
/// locality) and every device's nominal GPU spec fields. Observed
/// derates are *not* part of the cluster identity — they are
/// per-request state (a plan cache keys them separately), and the
/// cluster fingerprint must survive a straggler coming and going.
pub fn cluster_fingerprint(cluster: &Cluster) -> u64 {
    let mut h = Fnv::new();
    h.mix(cluster.node_count() as u64);
    h.mix(cluster.device_count() as u64);
    for d in cluster.devices() {
        let spec = cluster.spec_of(d);
        h.mix(cluster.node_of(d).0 as u64);
        h.mix_bytes(spec.name.as_bytes());
        h.mix(spec.cuda_cores as u64);
        h.mix(spec.boost_clock_mhz as u64);
        h.mix(spec.memory_bytes);
        h.mix(spec.memory_bw_bytes_per_sec.to_bits());
        h.mix(spec.effective_throughput.to_bits());
    }
    h.0
}

/// Everything that determines a refine candidate's simulated
/// standalone rate: the kind-order (GPU kinds of the expanded stage
/// list), the node co-location pattern (canonicalized to
/// first-occurrence ranks — it decides PCIe-vs-InfiniBand links and
/// shard-transfer locality), the candidate `Nm`, the placement /
/// schedule / recompute / staleness / sync-transfer configuration,
/// and the model fingerprint. Two candidates with equal keys simulate
/// identically, so the refine pass memoizes on this key — on big
/// clusters most virtual workers are kind-identical (e.g. every ED
/// group), and repeated `build` calls re-rank the same leaders.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct RefineKey {
    kinds: Vec<&'static str>,
    node_pattern: Vec<usize>,
    /// Cluster shape: the round-robin default shard placement spreads
    /// over `node_count()` nodes, so the same candidate on a
    /// different-shaped cluster is a different simulation.
    cluster_shape: (usize, usize),
    nm: usize,
    placement: Placement,
    schedule: hetpipe_schedule::Schedule,
    recompute: hetpipe_schedule::RecomputePolicy,
    staleness_bound: usize,
    sync_transfers: bool,
    /// Per-layer model fingerprint ([`graph_fingerprint`]) plus the
    /// layer count — totals alone would let two models with equal
    /// sums collide.
    graph: (usize, u64),
}

impl RefineKey {
    /// Builds the memo key of one refine candidate.
    pub fn new(
        cluster: &Cluster,
        graph: &ModelGraph,
        devices: &[DeviceId],
        nm: usize,
        config: &SystemConfig,
    ) -> RefineKey {
        // Node layout. Under ED-style *local* shard placement, only
        // the co-location pattern matters (it decides the links and
        // every shard sits on its stage's own node), so nodes are
        // canonicalized to first-appearance ranks and kind-identical
        // VWs on different nodes share a memo entry. Under the
        // round-robin *default* placement the absolute nodes decide
        // which shard transfers stay on-node, so they key verbatim.
        let node_pattern = match config.placement {
            Placement::Local => {
                let mut seen: Vec<hetpipe_cluster::NodeId> = Vec::new();
                devices
                    .iter()
                    .map(|&d| {
                        let node = cluster.node_of(d);
                        match seen.iter().position(|&n| n == node) {
                            Some(rank) => rank,
                            None => {
                                seen.push(node);
                                seen.len() - 1
                            }
                        }
                    })
                    .collect()
            }
            Placement::Default => devices.iter().map(|&d| cluster.node_of(d).0).collect(),
        };
        RefineKey {
            kinds: devices.iter().map(|&d| cluster.spec_of(d).name).collect(),
            node_pattern,
            cluster_shape: (cluster.node_count(), cluster.device_count()),
            nm,
            placement: config.placement,
            schedule: config.schedule,
            recompute: config.recompute,
            staleness_bound: config.staleness_bound,
            sync_transfers: config.sync_transfers,
            graph: (graph.len(), graph_fingerprint(graph)),
        }
    }
}

/// Number of shards (a power of two; the shard index is the key
/// hash's low bits).
const SHARD_COUNT: usize = 16;

/// One cached value with its last-touched recency stamp (drawn from
/// the cache-wide monotone clock).
#[derive(Debug)]
struct Stamped<V> {
    value: V,
    touched: u64,
}

/// A concurrent map sharded across [`SHARD_COUNT`] `Mutex<HashMap>`
/// shards, with hit/miss accounting and a bounded capacity enforced
/// by **true LRU eviction**: every `get`, `insert`, and `update`
/// refreshes the entry's recency stamp, and an insert into a full
/// shard evicts exactly the shard's least-recently-touched entry
/// (replacing the earlier whole-shard dump, which threw away up to
/// `cap` hot entries to admit one).
///
/// Shard selection uses `DefaultHasher::new()` (fixed-key SipHash), so
/// it is deterministic within and across processes; the `HashMap`s
/// inside each shard still use `RandomState`, which is fine because a
/// shard map is never serialized or compared across processes.
#[derive(Debug)]
pub struct ShardedCache<K, V> {
    shards: Vec<Mutex<HashMap<K, Stamped<V>>>>,
    cap_per_shard: usize,
    hits: AtomicU64,
    misses: AtomicU64,
    /// Monotone recency clock; stamps are unique, so LRU eviction is
    /// total-ordered and deterministic for a given access history.
    clock: AtomicU64,
}

impl<K: Hash + Eq, V: Clone> ShardedCache<K, V> {
    /// Creates a cache holding at most roughly `capacity` entries
    /// (split evenly across shards).
    pub fn new(capacity: usize) -> Self {
        ShardedCache {
            shards: (0..SHARD_COUNT)
                .map(|_| Mutex::new(HashMap::new()))
                .collect(),
            cap_per_shard: (capacity / SHARD_COUNT).max(1),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            clock: AtomicU64::new(0),
        }
    }

    fn shard(&self, key: &K) -> &Mutex<HashMap<K, Stamped<V>>> {
        let mut h = std::collections::hash_map::DefaultHasher::new();
        key.hash(&mut h);
        &self.shards[(h.finish() as usize) & (SHARD_COUNT - 1)]
    }

    fn lock(
        shard: &Mutex<HashMap<K, Stamped<V>>>,
    ) -> std::sync::MutexGuard<'_, HashMap<K, Stamped<V>>> {
        // A panicking holder must not poison the cache for everyone
        // else; the map itself is never left mid-mutation by the
        // operations below.
        shard.lock().unwrap_or_else(PoisonError::into_inner)
    }

    fn tick(&self) -> u64 {
        self.clock.fetch_add(1, Ordering::Relaxed)
    }

    /// Evicts the least-recently-touched entry of `map`. Stamps are
    /// unique (one monotone clock), so the victim is unambiguous.
    /// Removal goes through `retain` rather than a key clone, keeping
    /// `K: Clone` off the public bounds.
    fn evict_lru(map: &mut HashMap<K, Stamped<V>>) {
        if let Some(oldest) = map.values().map(|e| e.touched).min() {
            map.retain(|_, e| e.touched != oldest);
        }
    }

    /// Looks up `key`, counting a hit or a miss. A hit refreshes the
    /// entry's LRU recency.
    pub fn get(&self, key: &K) -> Option<V> {
        let found = {
            let mut map = Self::lock(self.shard(key));
            map.get_mut(key).map(|e| {
                e.touched = self.clock.fetch_add(1, Ordering::Relaxed);
                e.value.clone()
            })
        };
        match found {
            Some(v) => {
                self.hits.fetch_add(1, Ordering::Relaxed);
                Some(v)
            }
            None => {
                self.misses.fetch_add(1, Ordering::Relaxed);
                None
            }
        }
    }

    /// Inserts `key → value` as the most-recently-used entry, evicting
    /// the shard's least-recently-touched entry first when the shard
    /// is at capacity (replacing an existing key never evicts).
    pub fn insert(&self, key: K, value: V) {
        let touched = self.tick();
        let mut map = Self::lock(self.shard(&key));
        if map.len() >= self.cap_per_shard && !map.contains_key(&key) {
            Self::evict_lru(&mut map);
        }
        map.insert(key, Stamped { value, touched });
    }

    /// Atomic read-modify-write of one entry under its shard lock:
    /// `f` sees `Some(existing)` or `None` and may replace, keep, or
    /// remove the slot's content. This is the primitive a
    /// sequence-validated cache builds compare-and-publish on — two
    /// racing publishers serialize on the shard lock, so whatever `f`
    /// decides is atomic with respect to every other `get`/`update`
    /// of that key (the critical section [`shadow::SeqCell`] models
    /// as one step). Not counted as a hit or a miss; the written-back
    /// entry becomes the most recently used, and filling a shard past
    /// capacity evicts its LRU entry.
    pub fn update<R>(&self, key: K, f: impl FnOnce(&mut Option<V>) -> R) -> R {
        let mut map = Self::lock(self.shard(&key));
        let mut slot = map.remove(&key).map(|e| e.value);
        let r = f(&mut slot);
        if let Some(value) = slot {
            if map.len() >= self.cap_per_shard {
                Self::evict_lru(&mut map);
            }
            let touched = self.tick();
            map.insert(key, Stamped { value, touched });
        }
        r
    }

    /// Total entries across shards.
    pub fn len(&self) -> usize {
        self.shards.iter().map(|s| Self::lock(s).len()).sum()
    }

    /// True when no shard holds an entry.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Drops every entry (counters are kept).
    pub fn clear(&self) {
        for s in &self.shards {
            Self::lock(s).clear();
        }
    }

    /// Lifetime lookup hits.
    pub fn hits(&self) -> u64 {
        self.hits.load(Ordering::Relaxed)
    }

    /// Lifetime lookup misses.
    pub fn misses(&self) -> u64 {
        self.misses.load(Ordering::Relaxed)
    }
}

pub mod shadow {
    //! Pure single-key shadow of the seq-publish protocol.
    //!
    //! Every sequence-protocol operation on a [`super::ShardedCache`]
    //! key is one critical section under the key's shard lock, so a
    //! concurrent history is equivalent to a sequential interleaving
    //! of atomic steps. [`SeqCell`] is that step semantics as a pure
    //! state machine — one method per critical section, no locks, no
    //! heap — which is what makes exhaustive model checking feasible:
    //! `hetpipe-verify`'s explorer clones the state at every branch
    //! point and enumerates **all** interleavings of 2–3 threads of
    //! these steps, checking the MatchSeq invariant ("a reader never
    //! observes a seq older than the latest published") at every
    //! reachable state. The parity test in this module pins each step
    //! to the real `update`-based implementation, so the checker's
    //! verdict is about the shipped protocol, not a lookalike.

    /// One key's protocol state: its current sequence number, with
    /// `0` meaning "absent" (real sequences start at 1).
    #[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Hash)]
    pub struct SeqCell {
        seq: u64,
    }

    impl SeqCell {
        /// An absent key.
        pub fn new() -> SeqCell {
            SeqCell::default()
        }

        /// The publish step (`PlanCache::publish`'s critical
        /// section): install `seq = prior + 1`, or 1 when absent.
        /// Returns the published sequence.
        pub fn publish(&mut self) -> u64 {
            self.seq += 1;
            self.seq
        }

        /// The insert-if-absent step (`PlanCache::insert_if_absent`'s
        /// critical section): install `seq = 1` only when no entry
        /// exists; a present entry is returned untouched. Returns
        /// `(seq, fresh)`.
        pub fn insert_if_absent(&mut self) -> (u64, bool) {
            if self.seq == 0 {
                self.seq = 1;
                (1, true)
            } else {
                (self.seq, false)
            }
        }

        /// The read step: the entry's sequence, `None` when absent.
        pub fn read(&self) -> Option<u64> {
            (self.seq > 0).then_some(self.seq)
        }

        /// The **deliberately broken** insert the protocol exists to
        /// forbid: a blind install of `seq = 1` that clobbers whatever
        /// is there — the pre-protocol bug where a slow solver's
        /// stale result overwrites a racing publisher's newer plan.
        /// Kept so the model checker's gate can be demonstrated to
        /// fail: swapping this step in for `insert_if_absent` must
        /// produce a MatchSeq violation.
        pub fn blind_insert(&mut self) -> u64 {
            self.seq = 1;
            1
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hetpipe_cluster::GpuKind;
    use hetpipe_model::{Layer, LayerKind};

    fn tiny_graph(tweak: u64) -> ModelGraph {
        let layer = |i: u64| Layer {
            name: format!("l{i}"),
            kind: LayerKind::Conv2d,
            param_bytes: 100 + i,
            activation_bytes: 200 + i,
            stored_bytes: 300 + i + tweak,
            fwd_flops: 1e6 + i as f64,
            bwd_flops: 2e6 + i as f64,
            membound_bytes: 50 + i,
            kernels: 3,
        };
        ModelGraph::new("tiny", 8, 1024, (0..4).map(layer).collect())
    }

    #[test]
    fn graph_fingerprint_is_stable_and_sensitive() {
        // Same inputs ⇒ same key, in this process and any other: the
        // digest is pure FNV-1a over explicit fields (no RandomState),
        // pinned here by a golden value. If this assertion ever fires
        // without an intentional fingerprint-algorithm change, cached
        // plans keyed by the old value would silently mismatch — that
        // is exactly what the pin is for.
        let a = graph_fingerprint(&tiny_graph(0));
        let b = graph_fingerprint(&tiny_graph(0));
        assert_eq!(a, b, "identical inputs must fingerprint identically");
        assert_eq!(a, 15113568239010406371, "golden fingerprint moved");
        // Any cost-relevant per-layer change must move the digest.
        assert_ne!(a, graph_fingerprint(&tiny_graph(1)));
        // Batch size is part of the identity.
        let other_batch = ModelGraph::new("tiny", 16, 1024, tiny_graph(0).layers().to_vec());
        assert_ne!(a, graph_fingerprint(&other_batch));
        let zoo = hetpipe_model::vgg19(32);
        assert_eq!(graph_fingerprint(&zoo), graph_fingerprint(&zoo.clone()));
        assert_ne!(
            graph_fingerprint(&zoo),
            graph_fingerprint(&hetpipe_model::resnet152(32))
        );
    }

    #[test]
    fn cluster_fingerprint_is_stable_and_sensitive() {
        let paper = Cluster::paper_testbed();
        assert_eq!(
            cluster_fingerprint(&paper),
            cluster_fingerprint(&Cluster::paper_testbed()),
            "identical clusters must fingerprint identically"
        );
        let whimpy = Cluster::testbed_subset(&[GpuKind::Rtx2060; 4]);
        assert_ne!(cluster_fingerprint(&paper), cluster_fingerprint(&whimpy));
        // Node layout matters even with identical device multisets:
        // 1×4 RTX 2060 vs 4×1 RTX 2060 differ in every link.
        let one_node = Cluster::testbed_subset(&[GpuKind::Rtx2060]);
        assert_ne!(cluster_fingerprint(&whimpy), cluster_fingerprint(&one_node));
    }

    #[test]
    fn sharded_cache_basic_ops_and_counters() {
        let cache: ShardedCache<u64, u64> = ShardedCache::new(1024);
        assert_eq!(cache.get(&1), None);
        cache.insert(1, 10);
        cache.insert(2, 20);
        assert_eq!(cache.get(&1), Some(10));
        assert_eq!(cache.get(&2), Some(20));
        assert_eq!(cache.len(), 2);
        assert_eq!(cache.hits(), 2);
        assert_eq!(cache.misses(), 1);
        cache.clear();
        assert!(cache.is_empty());
    }

    #[test]
    fn sharded_cache_update_is_atomic_read_modify_write() {
        let cache: ShardedCache<u64, (u64, &'static str)> = ShardedCache::new(1024);
        // Publish-style CAS: bump a sequence number atomically.
        for expect in 1..=5u64 {
            let seq = cache.update(7, |slot| {
                let seq = slot.as_ref().map(|(s, _)| s + 1).unwrap_or(1);
                *slot = Some((seq, "plan"));
                seq
            });
            assert_eq!(seq, expect);
        }
        assert_eq!(cache.get(&7), Some((5, "plan")));
        // An update may also decline to write.
        let seen = cache.update(7, |slot| slot.as_ref().map(|(s, _)| *s));
        assert_eq!(seen, Some(5));
        assert_eq!(cache.get(&7), Some((5, "plan")));
        // Or remove the entry.
        cache.update(7, |slot| *slot = None);
        assert_eq!(cache.get(&7), None);
    }

    #[test]
    fn sharded_cache_is_shared_across_threads() {
        // The property the thread-local refine memo lacked: an entry
        // inserted by one thread is a hit on every other.
        let cache: ShardedCache<u64, u64> = ShardedCache::new(1024);
        std::thread::scope(|s| {
            s.spawn(|| {
                for k in 0..64u64 {
                    cache.insert(k, k * 2);
                }
            })
            .join()
            .unwrap();
            let readers: Vec<_> = (0..4)
                .map(|_| {
                    s.spawn(|| {
                        for k in 0..64u64 {
                            assert_eq!(cache.get(&k), Some(k * 2));
                        }
                    })
                })
                .collect();
            for r in readers {
                r.join().unwrap();
            }
        });
        assert!(cache.hits() >= 4 * 64, "cross-thread lookups must hit");
    }

    #[test]
    fn sharded_cache_caps_each_shard() {
        let cache: ShardedCache<u64, u64> = ShardedCache::new(SHARD_COUNT);
        // cap_per_shard == 1: the second distinct key landing in a
        // shard evicts the first.
        for k in 0..1024u64 {
            cache.insert(k, k);
        }
        assert!(cache.len() <= SHARD_COUNT, "cap must bound the cache");
    }

    /// The shard a key lands in, computed with the same fixed-key
    /// SipHash the cache uses — lets tests steer keys into one shard.
    fn shard_of(k: u64) -> usize {
        let mut h = std::collections::hash_map::DefaultHasher::new();
        k.hash(&mut h);
        (h.finish() as usize) & (SHARD_COUNT - 1)
    }

    /// `n` distinct keys that all hash to one shard.
    fn same_shard_keys(n: usize) -> Vec<u64> {
        (0u64..)
            .filter(|&k| shard_of(k) == shard_of(0))
            .take(n)
            .collect()
    }

    #[test]
    fn eviction_is_true_lru_not_shard_dump() {
        // cap_per_shard == 2. Pin the eviction *order*: the entry that
        // goes is exactly the least-recently-touched one, and the rest
        // of the shard survives (the old policy dumped the whole
        // shard).
        let cache: ShardedCache<u64, u64> = ShardedCache::new(2 * SHARD_COUNT);
        let keys = same_shard_keys(4);
        let (a, b, c, d) = (keys[0], keys[1], keys[2], keys[3]);
        cache.insert(a, 1);
        cache.insert(b, 2);
        // Touch `a`: now `b` is the LRU entry.
        assert_eq!(cache.get(&a), Some(1));
        cache.insert(c, 3);
        assert_eq!(cache.get(&b), None, "the LRU entry is the victim");
        assert_eq!(cache.get(&a), Some(1), "the refreshed entry survives");
        assert_eq!(cache.get(&c), Some(3));
        // The get(&c) above refreshed `c`... and get(&a) before it
        // refreshed `a`, so now `a` is older. A fourth key evicts `a`.
        cache.insert(d, 4);
        assert_eq!(cache.get(&a), None, "eviction follows touch order");
        assert_eq!(cache.get(&c), Some(3));
        assert_eq!(cache.get(&d), Some(4));
    }

    #[test]
    fn replacing_a_resident_key_never_evicts() {
        let cache: ShardedCache<u64, u64> = ShardedCache::new(2 * SHARD_COUNT);
        let keys = same_shard_keys(2);
        cache.insert(keys[0], 1);
        cache.insert(keys[1], 2);
        // The shard is full; overwriting a resident key must not push
        // anything out.
        cache.insert(keys[0], 10);
        assert_eq!(cache.get(&keys[0]), Some(10));
        assert_eq!(cache.get(&keys[1]), Some(2));
    }

    #[test]
    fn update_path_evicts_lru_too() {
        let cache: ShardedCache<u64, u64> = ShardedCache::new(2 * SHARD_COUNT);
        let keys = same_shard_keys(3);
        cache.insert(keys[0], 1);
        cache.insert(keys[1], 2);
        assert_eq!(cache.get(&keys[0]), Some(1)); // keys[1] is LRU
        cache.update(keys[2], |slot| *slot = Some(3));
        assert_eq!(cache.get(&keys[1]), None, "update-insert evicts the LRU");
        assert_eq!(cache.get(&keys[0]), Some(1));
        assert_eq!(cache.get(&keys[2]), Some(3));
        // An update of a *resident* key is a touch, not an eviction.
        cache.update(keys[0], |slot| *slot = Some(11));
        assert_eq!(cache.len(), 2);
        assert_eq!(cache.get(&keys[0]), Some(11));
    }

    /// The protocol steps, as driven against either implementation.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    enum Step {
        Publish,
        InsertIfAbsent,
        Read,
    }

    /// Applies one protocol step to the real cache via its
    /// `update`/`get` critical sections — byte-for-byte the logic
    /// `PlanCache` runs — returning the observed sequence.
    fn real_step(cache: &ShardedCache<u64, u64>, step: Step) -> Option<u64> {
        match step {
            Step::Publish => Some(cache.update(7, |slot| {
                let seq = slot.map(|s| s + 1).unwrap_or(1);
                *slot = Some(seq);
                seq
            })),
            Step::InsertIfAbsent => Some(cache.update(7, |slot| match slot {
                Some(existing) => *existing,
                None => {
                    *slot = Some(1);
                    1
                }
            })),
            Step::Read => cache.get(&7),
        }
    }

    fn shadow_step(cell: &mut shadow::SeqCell, step: Step) -> Option<u64> {
        match step {
            Step::Publish => Some(cell.publish()),
            Step::InsertIfAbsent => Some(cell.insert_if_absent().0),
            Step::Read => cell.read(),
        }
    }

    #[test]
    fn shadow_seqcell_matches_real_update_semantics() {
        // Every ordering of a publish/publish/insert/read multiset
        // produces identical step results and identical final state in
        // the shadow and in the real `update`-based implementation —
        // the parity that lets the model checker's exhaustive verdict
        // transfer to the shipped cache. Orders are enumerated
        // exhaustively (4! = 24, duplicates harmless).
        use Step::*;
        let base = [Publish, Publish, InsertIfAbsent, Read];
        let mut orders = Vec::new();
        permute(&mut base.to_vec(), 0, &mut orders);
        assert_eq!(orders.len(), 24);
        for order in orders {
            let cache: ShardedCache<u64, u64> = ShardedCache::new(1024);
            let mut cell = shadow::SeqCell::new();
            for &step in &order {
                assert_eq!(
                    real_step(&cache, step),
                    shadow_step(&mut cell, step),
                    "step {step:?} diverged in order {order:?}"
                );
            }
            assert_eq!(cache.get(&7), cell.read(), "final state diverged");
        }
    }

    fn permute(items: &mut Vec<Step>, at: usize, out: &mut Vec<Vec<Step>>) {
        if at == items.len() {
            out.push(items.clone());
            return;
        }
        for i in at..items.len() {
            items.swap(at, i);
            permute(items, at + 1, out);
            items.swap(at, i);
        }
    }

    #[test]
    fn shadow_blind_insert_is_the_bug() {
        // The broken step really does violate MatchSeq in one obvious
        // sequential history — the checker's job is to find it in
        // *every* concurrent one.
        let mut cell = shadow::SeqCell::new();
        cell.publish();
        cell.publish();
        assert_eq!(cell.read(), Some(2));
        cell.blind_insert();
        assert!(cell.read() < Some(2), "blind insert rewinds the sequence");
    }

    #[test]
    fn refine_key_equality_follows_identity() {
        let cluster = Cluster::paper_testbed();
        let graph = hetpipe_model::vgg19(32);
        let config = SystemConfig::default();
        let devices: Vec<DeviceId> = vec![DeviceId(0), DeviceId(4), DeviceId(8), DeviceId(12)];
        let a = RefineKey::new(&cluster, &graph, &devices, 4, &config);
        let b = RefineKey::new(&cluster, &graph, &devices, 4, &config);
        assert_eq!(a, b);
        let c = RefineKey::new(&cluster, &graph, &devices, 5, &config);
        assert_ne!(a, c, "Nm is part of the identity");
        let mut other = config.clone();
        other.staleness_bound = 2;
        let d = RefineKey::new(&cluster, &graph, &devices, 4, &other);
        assert_ne!(a, d, "staleness bound is part of the identity");
    }
}
