//! Virtual workers.
//!
//! A virtual worker (VW) encapsulates the notion of a "worker" in a
//! classic data-parallel system (Section 3): a group of `k` — possibly
//! heterogeneous, possibly individually too-small — GPUs that jointly
//! execute one copy of the model as a `k`-stage pipeline.

use hetpipe_cluster::network::LinkKind;
use hetpipe_cluster::{Cluster, DeviceId};
use hetpipe_partition::PartitionPlan;

/// A virtual worker: an ordered list of stage devices plus its
/// partition plan.
#[derive(Debug, Clone)]
pub struct VirtualWorker {
    /// Index of this VW among its peers (0-based).
    pub index: usize,
    /// Stage devices in pipeline order (`devices[q]` hosts stage `q`).
    pub devices: Vec<DeviceId>,
    /// The model partition assigned to the stages.
    pub plan: PartitionPlan,
    /// Minibatches concurrently in the pipeline (`Nm`).
    pub nm: usize,
}

impl VirtualWorker {
    /// Number of pipeline stages `k`.
    pub fn stages(&self) -> usize {
        self.devices.len()
    }

    /// The stage whose layer range contains layer `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is outside every stage range.
    pub fn stage_of_layer(&self, i: usize) -> usize {
        self.plan
            .ranges
            .iter()
            .position(|r| r.contains(&i))
            .expect("layer must belong to exactly one stage")
    }

    /// The inter-stage links implied by device placement: PCIe when two
    /// adjacent stages share a node, InfiniBand otherwise.
    pub fn links(cluster: &Cluster, devices: &[DeviceId]) -> Vec<LinkKind> {
        devices
            .windows(2)
            .map(|w| {
                if cluster.same_node(w[0], w[1]) {
                    LinkKind::Pcie
                } else {
                    LinkKind::Infiniband
                }
            })
            .collect()
    }

    /// A short label like `"VVQQ"` describing the VW's GPU kinds.
    pub fn label(&self, cluster: &Cluster) -> String {
        self.devices
            .iter()
            .map(|&d| cluster.kind_of(d).code())
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hetpipe_cluster::{GpuKind, LinkKind};
    use hetpipe_partition::{PartitionProblem, PartitionSolver};

    fn make_vw(cluster: &Cluster, devices: Vec<DeviceId>) -> VirtualWorker {
        let g = hetpipe_model::vgg19(32);
        let gpus = devices.iter().map(|&d| cluster.spec_of(d)).collect();
        let links = VirtualWorker::links(cluster, &devices);
        let plan = PartitionSolver::solve(&PartitionProblem::new(&g, gpus, links, 1)).unwrap();
        VirtualWorker {
            index: 0,
            devices,
            plan,
            nm: 1,
        }
    }

    #[test]
    fn links_follow_topology() {
        let c = Cluster::paper_testbed();
        // Same node: PCIe; across nodes: InfiniBand.
        let links = VirtualWorker::links(&c, &[DeviceId(0), DeviceId(1), DeviceId(4)]);
        assert_eq!(links, vec![LinkKind::Pcie, LinkKind::Infiniband]);
    }

    #[test]
    fn stage_of_layer_partitions() {
        let c = Cluster::paper_testbed();
        let vw = make_vw(
            &c,
            vec![DeviceId(0), DeviceId(4), DeviceId(8), DeviceId(12)],
        );
        let g = hetpipe_model::vgg19(32);
        for i in 0..g.len() {
            let s = vw.stage_of_layer(i);
            assert!(vw.plan.ranges[s].contains(&i));
        }
        assert_eq!(vw.stage_of_layer(0), 0);
        assert_eq!(vw.stage_of_layer(g.len() - 1), 3);
    }

    #[test]
    fn label_reads_kinds() {
        let c = Cluster::paper_testbed();
        let vw = make_vw(
            &c,
            vec![DeviceId(0), DeviceId(4), DeviceId(8), DeviceId(12)],
        );
        assert_eq!(vw.label(&c), "VRGQ");
        assert_eq!(vw.stages(), 4);
        let _ = GpuKind::ALL;
    }
}
