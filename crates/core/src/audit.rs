//! The measured ≤ declared activation-occupancy audit.
//!
//! The memory model certifies partition plans against each schedule's
//! declared per-stage activation window
//! ([`PipelineSchedule::max_in_flight`]), and the executor enforces
//! that window at dispatch time. This module closes the loop: it
//! measures the *realized* peak occupancy from a run's span trace — a
//! minibatch holds an activation set at a stage from its forward's
//! completion until its backward's completion — and asserts
//! measured ≤ declared as a first-class invariant, per stage and per
//! physical GPU.
//!
//! Used by the tier-1 `schedule_conditions` tests and by the
//! `schedule_compare` CI smoke run, which fails the build on any
//! violation.

use crate::exec::{RunStats, SpanTag};
use crate::vw::VirtualWorker;
use hetpipe_des::SimTime;
use hetpipe_schedule::{PipelineSchedule, Schedule};
use std::collections::BTreeMap;
use std::fmt;

/// One stage's measured-vs-declared occupancy.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StageOccupancy {
    /// Virtual worker index.
    pub vw: usize,
    /// Executor (virtual) stage index.
    pub stage: usize,
    /// Trace-measured peak number of minibatches simultaneously
    /// holding activations at the stage.
    pub measured: i64,
    /// The schedule's declared (and memory-charged) bound.
    pub declared: i64,
}

impl StageOccupancy {
    /// True when the run stayed within its certification.
    pub fn sound(&self) -> bool {
        self.measured <= self.declared
    }
}

impl fmt::Display for StageOccupancy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "vw{} stage {}: measured {} / declared {}",
            self.vw, self.stage, self.measured, self.declared
        )
    }
}

/// One physical GPU's measured-vs-declared occupancy (co-located
/// interleaved chunks summed).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GpuOccupancy {
    /// Virtual worker index.
    pub vw: usize,
    /// Physical GPU position within the VW (0-based).
    pub gpu: usize,
    /// Peak activation sets held across all of the GPU's co-located
    /// stages simultaneously.
    pub measured: i64,
    /// Sum of the co-located stages' declared bounds.
    pub declared: i64,
}

impl GpuOccupancy {
    /// True when the run stayed within its certification.
    pub fn sound(&self) -> bool {
        self.measured <= self.declared
    }
}

impl fmt::Display for GpuOccupancy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "vw{} gpu {}: measured {} / declared {}",
            self.vw, self.gpu, self.measured, self.declared
        )
    }
}

/// The full audit of one run.
#[derive(Debug, Clone)]
pub struct OccupancyAudit {
    /// Per executor stage, every `(vw, stage)` that ran tasks.
    pub stages: Vec<StageOccupancy>,
    /// Per physical GPU of every VW.
    pub gpus: Vec<GpuOccupancy>,
}

impl OccupancyAudit {
    /// Measures peak activation occupancy from `stats`' span trace and
    /// pairs it with `schedule`'s declared accounting.
    ///
    /// Occupancy events: +1 when a forward span ends (activations
    /// materialized), −1 when the matching backward span ends
    /// (released). The wave schedule's fused last-stage task carries
    /// both, so it contributes a net-zero handoff; recompute spans are
    /// stage-local re-runs and contribute nothing.
    pub fn measure(
        stats: &RunStats,
        vws: &[VirtualWorker],
        schedule: &Schedule,
        nm: usize,
    ) -> OccupancyAudit {
        let fused = schedule.fused_last_stage();
        let colocated = schedule.colocated_stages();
        // Key stages by (vw, stage) and GPUs by (vw, physical gpu).
        let stage_events = |tag: &SpanTag, end: SimTime| -> Vec<((usize, usize), SimTime, i64)> {
            match *tag {
                SpanTag::Forward { vw, stage, .. } => {
                    vec![((vw as usize, stage as usize), end, 1)]
                }
                SpanTag::Backward { vw, stage, .. } => {
                    let (vw, stage) = (vw as usize, stage as usize);
                    let mut evs = vec![((vw, stage), end, -1)];
                    if fused && stage + 1 == vws[vw].stages() {
                        // The fused task is its own forward.
                        evs.push(((vw, stage), end, 1));
                    }
                    evs
                }
                _ => Vec::new(),
            }
        };
        // One pass over the trace builds both keyings (per stage and
        // per physical GPU) — the trace is the run's largest artifact,
        // so it is scanned once, not once per keying.
        let mut stage_evs: BTreeMap<(usize, usize), Vec<(SimTime, i64)>> = BTreeMap::new();
        let mut gpu_evs: BTreeMap<(usize, usize), Vec<(SimTime, i64)>> = BTreeMap::new();
        for span in stats.trace.spans() {
            for ((vw, stage), at, delta) in stage_events(&span.tag, span.end) {
                let gpus = vws[vw].stages() / colocated;
                stage_evs.entry((vw, stage)).or_default().push((at, delta));
                gpu_evs
                    .entry((vw, stage % gpus))
                    .or_default()
                    .push((at, delta));
            }
        }
        let stage_peaks: BTreeMap<(usize, usize), i64> = stage_evs
            .into_iter()
            .map(|(key, evs)| (key, hetpipe_des::peak_of_events(evs)))
            .collect();
        let gpu_peaks: BTreeMap<(usize, usize), i64> = gpu_evs
            .into_iter()
            .map(|(key, evs)| (key, hetpipe_des::peak_of_events(evs)))
            .collect();

        let mut stages = Vec::new();
        let mut gpus = Vec::new();
        for (vwi, vw) in vws.iter().enumerate() {
            let k = vw.stages();
            let physical = k / colocated;
            for stage in 0..k {
                let measured = stage_peaks.get(&(vwi, stage)).copied().unwrap_or(0);
                stages.push(StageOccupancy {
                    vw: vwi,
                    stage,
                    measured,
                    declared: schedule.max_in_flight(stage, k, nm) as i64,
                });
            }
            for gpu in 0..physical {
                let declared: i64 = (0..k)
                    .filter(|s| s % physical == gpu)
                    .map(|s| schedule.max_in_flight(s, k, nm) as i64)
                    .sum();
                gpus.push(GpuOccupancy {
                    vw: vwi,
                    gpu,
                    measured: gpu_peaks.get(&(vwi, gpu)).copied().unwrap_or(0),
                    declared,
                });
            }
        }
        OccupancyAudit { stages, gpus }
    }

    /// Every stage or GPU whose measured peak exceeds its declaration,
    /// rendered for reporting. Empty iff the run was sound.
    pub fn violations(&self) -> Vec<String> {
        let mut v: Vec<String> = self
            .stages
            .iter()
            .filter(|s| !s.sound())
            .map(|s| format!("stage occupancy violation: {s}"))
            .collect();
        v.extend(
            self.gpus
                .iter()
                .filter(|g| !g.sound())
                .map(|g| format!("gpu occupancy violation: {g}")),
        );
        v
    }

    /// True when every measured peak is within its declaration.
    pub fn is_sound(&self) -> bool {
        self.stages.iter().all(StageOccupancy::sound) && self.gpus.iter().all(GpuOccupancy::sound)
    }

    /// Folds the audit's trace-measured peaks into matching
    /// occupancy-bound triples by entity, completing the
    /// `measured ≤ structural ≤ declared` chain when the triples came
    /// from the static verifier's structural pass
    /// (`hetpipe_des::check_bounds` then judges all three at once).
    /// Entities the trace never observed are left untouched.
    pub fn merge_measured(&self, bounds: &mut [hetpipe_des::OccupancyBound]) {
        use hetpipe_des::BoundEntity;
        for bound in bounds.iter_mut() {
            let measured = match bound.entity {
                BoundEntity::Stage { vw, stage } => self
                    .stages
                    .iter()
                    .find(|s| s.vw == vw && s.stage == stage)
                    .map(|s| s.measured),
                BoundEntity::Gpu { vw, gpu } => self
                    .gpus
                    .iter()
                    .find(|g| g.vw == vw && g.gpu == gpu)
                    .map(|g| g.measured),
            };
            if let Some(measured) = measured {
                bound.measured = Some(measured);
            }
        }
    }

    /// Panics with the full violation list unless the audit is sound.
    pub fn assert_sound(&self, label: &str) {
        let violations = self.violations();
        assert!(
            violations.is_empty(),
            "{label}: trace-measured activation occupancy exceeds the declared \
             memory accounting:\n  {}",
            violations.join("\n  ")
        );
    }
}
