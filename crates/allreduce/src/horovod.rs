//! The Horovod-style BSP data-parallel iteration simulator.
//!
//! Each participating GPU trains a full model replica on its own
//! minibatch; an iteration takes `max_i(compute_i) + allreduce(params)`.
//! In a heterogeneous cluster the slowest GPU paces everyone — the
//! straggler problem HetPipe's ED/HD policies avoid (Sections 1, 8.3).
//!
//! GPUs whose memory cannot hold the full model are excluded up-front
//! (with [`HorovodError::NoCapableGpu`] if none remain); this is the
//! Table-4 "X" entry — ResNet-152 cannot run Horovod on the 16-GPU set
//! because the RTX 2060s cannot hold it.

use crate::ring::RingAllreduce;
use hetpipe_cluster::{Cluster, DeviceId};
use hetpipe_model::{ModelGraph, TrainingMemoryModel};
use std::fmt;

/// Why the baseline cannot run at all.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum HorovodError {
    /// No GPU in the set can hold the full model.
    NoCapableGpu,
}

impl fmt::Display for HorovodError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            HorovodError::NoCapableGpu => write!(f, "no GPU can hold the full model"),
        }
    }
}

impl std::error::Error for HorovodError {}

/// Result of a Horovod baseline evaluation.
#[derive(Debug, Clone)]
pub struct HorovodReport {
    /// Devices that participate (memory-capable subset).
    pub devices: Vec<DeviceId>,
    /// Devices excluded because the model does not fit them.
    pub excluded: Vec<DeviceId>,
    /// Seconds per iteration (compute + all-reduce).
    pub iteration_secs: f64,
    /// Slowest replica's compute seconds.
    pub compute_secs: f64,
    /// All-reduce seconds.
    pub allreduce_secs: f64,
    /// Aggregate throughput in images/second.
    pub images_per_sec: f64,
    /// Cross-node bytes moved per iteration by the all-reduce
    /// (for the traffic comparison of Section 8.3).
    pub cross_node_bytes_per_iter: u64,
}

/// The Horovod-like BSP data-parallel baseline.
#[derive(Debug, Clone)]
pub struct HorovodBaseline;

impl HorovodBaseline {
    /// Evaluates the baseline for `model` over `devices` on `cluster`.
    ///
    /// Devices that cannot hold the full model are excluded (matching
    /// the paper, which runs ResNet-152 Horovod on 12 of 16 GPUs).
    pub fn evaluate(
        cluster: &Cluster,
        model: &ModelGraph,
        devices: &[DeviceId],
    ) -> Result<HorovodReport, HorovodError> {
        let (capable, excluded): (Vec<DeviceId>, Vec<DeviceId>) = devices
            .iter()
            .partition(|&&d| TrainingMemoryModel::fits_full_model(model, &cluster.spec_of(d)));
        if capable.is_empty() {
            return Err(HorovodError::NoCapableGpu);
        }

        // Slowest replica paces the BSP iteration.
        let compute_secs = capable
            .iter()
            .map(|&d| hetpipe_model::profile::range_time_secs(model.layers(), &cluster.spec_of(d)))
            .fold(0.0, f64::max);

        let (allreduce_secs, cross_node_bytes) = if capable.len() >= 2 {
            let ring = RingAllreduce::new(cluster, &capable);
            // Per-link volume: cross-node share of ring hops times the
            // reduced payload.
            let n = capable.len();
            let cross_hops = (0..n)
                .filter(|&i| !cluster.same_node(capable[i], capable[(i + 1) % n]))
                .count();
            let per_link =
                (2.0 * (n as f64 - 1.0) / n as f64 * model.total_param_bytes() as f64) as u64;
            (
                ring.allreduce_secs(model.total_param_bytes()),
                per_link * cross_hops as u64 / n.max(1) as u64,
            )
        } else {
            (0.0, 0)
        };

        // Horovod overlaps the all-reduce of already-computed gradients
        // with the remaining backward pass (tensor fusion); model the
        // overlap as hiding half of whichever is smaller — the backward
        // 2/3 of compute or the all-reduce itself.
        let overlap = 0.5 * (compute_secs * 2.0 / 3.0).min(allreduce_secs);
        // One forward + one backward dispatch per iteration, same
        // framework overhead the pipeline stages pay.
        let iteration_secs = compute_secs + allreduce_secs - overlap
            + 2.0 * hetpipe_model::profile::STAGE_TASK_OVERHEAD_SECS;
        let images_per_iter = (capable.len() * model.batch_size) as f64;
        Ok(HorovodReport {
            devices: capable,
            excluded,
            iteration_secs,
            compute_secs,
            allreduce_secs,
            images_per_sec: images_per_iter / iteration_secs,
            cross_node_bytes_per_iter: cross_node_bytes,
        })
    }

    /// Convenience: evaluate over every GPU of the cluster.
    pub fn evaluate_all(
        cluster: &Cluster,
        model: &ModelGraph,
    ) -> Result<HorovodReport, HorovodError> {
        let devices: Vec<DeviceId> = cluster.devices().collect();
        Self::evaluate(cluster, model, &devices)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hetpipe_cluster::GpuKind;

    #[test]
    fn resnet152_excludes_rtx2060() {
        // Section 8.3: "For ResNet-152, the whole model is too large to
        // be loaded into a single GPU with G type, and thus, Horovod
        // uses only 12 GPUs."
        let c = Cluster::paper_testbed();
        let g = hetpipe_model::resnet152(32);
        let r = HorovodBaseline::evaluate_all(&c, &g).unwrap();
        assert_eq!(r.devices.len(), 12);
        assert_eq!(r.excluded.len(), 4);
        for &d in &r.excluded {
            assert_eq!(c.kind_of(d), GpuKind::Rtx2060);
        }
    }

    #[test]
    fn vgg19_uses_all_16() {
        let c = Cluster::paper_testbed();
        let g = hetpipe_model::vgg19(32);
        let r = HorovodBaseline::evaluate_all(&c, &g).unwrap();
        assert_eq!(r.devices.len(), 16);
        assert!(r.excluded.is_empty());
    }

    #[test]
    fn whimpy_only_cluster_cannot_run_resnet() {
        // Table 4's "X": no HetPipe means no ResNet-152 on G-only sets.
        let c = Cluster::testbed_subset(&[GpuKind::Rtx2060]);
        let g = hetpipe_model::resnet152(32);
        assert!(matches!(
            HorovodBaseline::evaluate_all(&c, &g),
            Err(HorovodError::NoCapableGpu)
        ));
    }

    #[test]
    fn straggler_paces_everyone() {
        // Adding a slow GPU to a fast node reduces per-GPU efficiency:
        // the mixed iteration is paced by the P4000.
        let c = Cluster::paper_testbed();
        let g = hetpipe_model::vgg19(32);
        let v_only: Vec<DeviceId> = (0..4).map(DeviceId).collect();
        let mixed: Vec<DeviceId> = vec![DeviceId(0), DeviceId(1), DeviceId(12), DeviceId(13)];
        let fast = HorovodBaseline::evaluate(&c, &g, &v_only).unwrap();
        let slow = HorovodBaseline::evaluate(&c, &g, &mixed).unwrap();
        assert!(slow.compute_secs > fast.compute_secs);
    }

    #[test]
    fn table4_calibration_anchor_vgg_4v() {
        // Table 4: Horovod VGG-19 on 4[V] = 164 images/s. The model
        // should land in the right neighbourhood (shape, not exactness).
        let c = Cluster::testbed_subset(&[GpuKind::TitanV]);
        let g = hetpipe_model::vgg19(32);
        let r = HorovodBaseline::evaluate_all(&c, &g).unwrap();
        assert!(
            r.images_per_sec > 120.0 && r.images_per_sec < 260.0,
            "Horovod 4[V] VGG-19 = {:.0} img/s",
            r.images_per_sec
        );
    }

    #[test]
    fn adding_gpus_increases_throughput() {
        use GpuKind::*;
        let g = hetpipe_model::vgg19(32);
        let mut last = 0.0;
        for kinds in [
            vec![TitanV],
            vec![TitanV, TitanRtx],
            vec![TitanV, TitanRtx, QuadroP4000],
            vec![TitanV, TitanRtx, QuadroP4000, Rtx2060],
        ] {
            let c = Cluster::testbed_subset(&kinds);
            let r = HorovodBaseline::evaluate_all(&c, &g).unwrap();
            assert!(
                r.images_per_sec > last,
                "throughput must grow with GPUs: {} after {}",
                r.images_per_sec,
                last
            );
            last = r.images_per_sec;
        }
    }
}
