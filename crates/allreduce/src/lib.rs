//! The Horovod-like data-parallel baseline.
//!
//! The paper's baseline is "the state-of-the-art DP via Horovod that
//! uses AllReduce communication" (Section 8.1): every GPU holds a full
//! model replica, processes its own minibatch, and synchronizes
//! gradients with a bandwidth-optimal ring all-reduce after every
//! iteration (BSP).
//!
//! - [`ring`] — the Patarasuk–Yuan ring all-reduce cost model over the
//!   simulated cluster's links.
//! - [`horovod`] — the iteration simulator: slowest-replica compute
//!   plus the all-reduce, with the per-GPU memory feasibility gate
//!   (ResNet-152 at batch 32 does not fit the RTX 2060, so Horovod can
//!   only use 12 of the 16 GPUs — Section 8.3, Table 4).

pub mod horovod;
pub mod ring;

pub use horovod::{HorovodBaseline, HorovodError, HorovodReport};
pub use ring::RingAllreduce;
