//! Ring all-reduce cost model.
//!
//! Patarasuk & Yuan's bandwidth-optimal ring all-reduce moves
//! `2 (N-1)/N · S` bytes through every link for payload `S` over `N`
//! ranks, in `2 (N-1)` steps. The ring's speed is set by its slowest
//! link. On the paper's testbed, Horovod over TensorFlow sustains far
//! less than raw link bandwidth (host-staged reductions, tensor-by-
//! tensor launches), captured by [`ALLREDUCE_EFFICIENCY`] — fitted so
//! the Horovod columns of Table 4 land near the paper's measurements.

use hetpipe_cluster::network::LinkKind;
use hetpipe_cluster::{Cluster, DeviceId};

/// Fraction of effective PCIe bandwidth a Horovod ring all-reduce
/// sustains on an NVLink-less node (host-staged copies with CPU
/// reduction; the paper's testbed has no GPUDirect peer access).
pub const ALLREDUCE_PCIE_EFFICIENCY: f64 = 0.18;

/// Fraction of effective InfiniBand bandwidth a cross-node Horovod
/// ring sustains (RDMA helps, but tensor-by-tensor launches and the
/// host staging on the PCIe hop still dominate). Fitted so the Horovod
/// columns of Table 4 land near the paper's measurements.
pub const ALLREDUCE_IB_EFFICIENCY: f64 = 0.20;

/// Per-step latency of one ring step (launch + NCCL/MPI handshake).
pub const RING_STEP_LATENCY_SECS: f64 = 150e-6;

/// The ring all-reduce cost model over a set of cluster devices.
#[derive(Debug, Clone)]
pub struct RingAllreduce {
    /// The slowest link's effective bandwidth on the ring, bytes/sec.
    bottleneck_bw: f64,
    ranks: usize,
}

impl RingAllreduce {
    /// Builds the model for a ring over `devices` laid out in order
    /// (the natural ring order: consecutive devices are neighbours,
    /// last wraps to first).
    ///
    /// # Panics
    ///
    /// Panics if fewer than two devices are given.
    pub fn new(cluster: &Cluster, devices: &[DeviceId]) -> Self {
        assert!(devices.len() >= 2, "a ring needs at least two ranks");
        let mut bottleneck = f64::INFINITY;
        let n = devices.len();
        for i in 0..n {
            let a = devices[i];
            let b = devices[(i + 1) % n];
            let (link, eff) = if cluster.same_node(a, b) {
                (LinkKind::Pcie, ALLREDUCE_PCIE_EFFICIENCY)
            } else {
                (LinkKind::Infiniband, ALLREDUCE_IB_EFFICIENCY)
            };
            bottleneck = bottleneck.min(link.effective_bandwidth() * eff);
        }
        RingAllreduce {
            bottleneck_bw: bottleneck,
            ranks: n,
        }
    }

    /// Number of ranks on the ring.
    pub fn ranks(&self) -> usize {
        self.ranks
    }

    /// Time in seconds to all-reduce `bytes` of gradients.
    ///
    /// `2 (N-1)/N · bytes / bw + 2 (N-1) · step latency`.
    pub fn allreduce_secs(&self, bytes: u64) -> f64 {
        let n = self.ranks as f64;
        let volume = 2.0 * (n - 1.0) / n * bytes as f64;
        volume / self.bottleneck_bw + 2.0 * (n - 1.0) * RING_STEP_LATENCY_SECS
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hetpipe_cluster::GpuKind;

    #[test]
    fn intra_node_ring_faster_than_cross_node() {
        let c = Cluster::paper_testbed();
        let intra = RingAllreduce::new(&c, &(0..4).map(DeviceId).collect::<Vec<_>>());
        let cross = RingAllreduce::new(&c, &(0..16).map(DeviceId).collect::<Vec<_>>());
        let bytes = 548 << 20;
        assert!(intra.allreduce_secs(bytes) < cross.allreduce_secs(bytes));
    }

    #[test]
    fn cost_scales_linearly_in_bytes() {
        let c = Cluster::paper_testbed();
        let ring = RingAllreduce::new(&c, &(0..4).map(DeviceId).collect::<Vec<_>>());
        let lat = 2.0 * 3.0 * RING_STEP_LATENCY_SECS;
        let t1 = ring.allreduce_secs(1 << 20) - lat;
        let t2 = ring.allreduce_secs(2 << 20) - lat;
        assert!((t2 / t1 - 2.0).abs() < 1e-9);
    }

    #[test]
    fn more_ranks_approach_2x_volume() {
        // The 2(N-1)/N factor grows with N; per-link volume for N=16 is
        // larger than for N=4 at the same payload.
        let c = Cluster::paper_testbed();
        let bytes = 100 << 20;
        let r4 = RingAllreduce::new(&c, &(0..4).map(DeviceId).collect::<Vec<_>>());
        // A 16-rank ring over identical PCIe links cannot exist on the
        // testbed (it must cross nodes), so compare pure factors.
        let n4 = 2.0 * 3.0 / 4.0 * bytes as f64;
        let n16 = 2.0 * 15.0 / 16.0 * bytes as f64;
        assert!(n16 > n4);
        assert_eq!(r4.ranks(), 4);
    }

    #[test]
    fn vgg19_allreduce_on_one_titan_v_node_matches_calibration() {
        // Calibration anchor: Horovod VGG-19 on 4[V] measures 164 img/s
        // in Table 4; with ~0.26s of compute that implies an all-reduce
        // of roughly 0.4-0.6s for the 548 MB parameter set.
        let c = Cluster::paper_testbed();
        let ring = RingAllreduce::new(&c, &(0..4).map(DeviceId).collect::<Vec<_>>());
        let t = ring.allreduce_secs(548 << 20);
        assert!(t > 0.3 && t < 0.8, "allreduce(548MB, 4xPCIe) = {t:.3}s");
        let _ = GpuKind::ALL;
    }

    #[test]
    #[should_panic(expected = "at least two ranks")]
    fn single_rank_rejected() {
        let c = Cluster::paper_testbed();
        let _ = RingAllreduce::new(&c, &[DeviceId(0)]);
    }
}
